"""Synthetic workloads standing in for the paper's benchmark suites.

The paper runs SPLASH-2 and PARSEC binaries (CPU) and the AMD-SDK-APP
OpenCL kernels (GPU) under Multi2Sim.  Binaries cannot be executed here, so
each application is replaced by a *profile* -- instruction mix, dependency
distances (ILP), working-set/locality structure, branch predictability, and
parallel scalability -- and a deterministic generator that expands a profile
into a dynamic trace.  The relative behaviour the evaluation depends on
(FP-dense vs pointer-chasing vs streaming apps reacting differently to TFET
latencies) is carried entirely by these profiles.

* :mod:`repro.workloads.profiles` -- the 14 CPU application profiles.
* :mod:`repro.workloads.generator` -- CPU trace synthesis.
* :mod:`repro.workloads.gpu_profiles` -- the 16 GPU kernel profiles.
* :mod:`repro.workloads.gpu_generator` -- GPU wavefront-stream synthesis.
* :mod:`repro.workloads.trace_cache` -- process-wide LRU over generation.
"""

from repro.workloads.profiles import AppProfile, CPU_APPS, cpu_app
from repro.workloads.generator import generate_trace
from repro.workloads.gpu_profiles import KernelProfile, GPU_KERNELS, gpu_kernel
from repro.workloads.gpu_generator import generate_kernel
from repro.workloads.trace_cache import (
    TraceCache,
    cached_kernel,
    cached_trace,
    reset_shared_cache,
    shared_cache,
)

__all__ = [
    "AppProfile",
    "CPU_APPS",
    "cpu_app",
    "generate_trace",
    "KernelProfile",
    "GPU_KERNELS",
    "gpu_kernel",
    "generate_kernel",
    "TraceCache",
    "cached_trace",
    "cached_kernel",
    "shared_cache",
    "reset_shared_cache",
]
