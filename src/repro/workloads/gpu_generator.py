"""GPU wavefront-stream synthesis from a :class:`KernelProfile`.

Each wavefront executes an in-order instruction stream of vector FMA/ALU
ops and global-memory ops.  Per instruction the generator emits:

* the op class (FMA vs MEM);
* a dependency distance (0 = independent) limiting in-order issue;
* two source register ids and one destination register id, drawn with the
  profile's reuse locality so register-file-cache hit rates emerge from the
  actual 6-entry LRU model rather than being dialled in.

All wavefronts of a kernel share the profile but use per-wavefront seeds.
"""

from __future__ import annotations

from dataclasses import dataclass

import zlib

import numpy as np

from repro.workloads.gpu_profiles import KernelProfile

#: Op class encoding in the stream arrays.
OP_FMA = 0
OP_MEM = 1

#: Maximum dependency distance emitted (in-order wavefronts cannot make use
#: of longer ones anyway).
MAX_GPU_DEP = 16

#: How far back "recently written" reaches for register reuse.
REUSE_WINDOW = 4

#: Fraction of would-be dependencies on memory ops that are relaxed
#: (software pipelining hides those loads entirely).
MEM_DEP_RELAX = 0.75


def _stable_seed(name: str, seed: int) -> int:
    """Process-independent seed (Python's str hash is salted per process)."""
    return (zlib.crc32(name.encode()) ^ (seed * 0x9E3779B1)) & 0x7FFFFFFF


@dataclass
class KernelTrace:
    """Per-wavefront instruction streams for one kernel launch.

    Arrays are shaped ``(n_wavefronts, stream_len)``.
    """

    profile: KernelProfile
    op: np.ndarray
    dep_dist: np.ndarray
    src1_reg: np.ndarray
    src2_reg: np.ndarray
    dst_reg: np.ndarray

    @property
    def n_wavefronts(self) -> int:
        return self.op.shape[0]

    @property
    def stream_len(self) -> int:
        return self.op.shape[1]

    def validate(self) -> None:
        """Check structural invariants; raises ValueError on violation."""
        shape = self.op.shape
        for name in ("dep_dist", "src1_reg", "src2_reg", "dst_reg"):
            if getattr(self, name).shape != shape:
                raise ValueError(f"kernel array {name!r} has mismatched shape")
        cols = np.arange(shape[1])
        if (self.dep_dist > cols).any():
            raise ValueError("a dependency points before the stream start")
        n_regs = self.profile.n_regs
        for name in ("src1_reg", "src2_reg", "dst_reg"):
            arr = getattr(self, name)
            if (arr < 0).any() or (arr >= n_regs).any():
                raise ValueError(f"{name} out of register range")


def generate_kernel(profile: KernelProfile, seed: int = 0) -> KernelTrace:
    """Expand ``profile`` into per-wavefront streams (deterministic)."""
    rng = np.random.default_rng(_stable_seed(profile.name, seed))
    n_wf = profile.n_wavefronts
    n_ins = profile.stream_len
    shape = (n_wf, n_ins)

    op = np.where(rng.random(shape) < profile.fma_frac, OP_FMA, OP_MEM).astype(np.int8)

    dep = rng.geometric(profile.dep_geom_p, size=shape)
    dep = np.minimum(dep, MAX_GPU_DEP)
    # A quarter of instructions are fully independent (address arithmetic
    # on loop-invariant values, broadcast constants, ...).
    dep = np.where(rng.random(shape) < 0.25, 0, dep)
    cols = np.arange(n_ins)
    dep = np.minimum(dep, cols[None, :]).astype(np.int16)

    # Tuned GPU kernels batch their loads early and consume them late
    # (software pipelining / s_waitcnt discipline), so most dependencies
    # that would land on a memory op are relaxed to "value long since
    # arrived"; the remainder model genuinely latency-bound consumers.
    rows = np.arange(n_wf)[:, None]
    producer = cols[None, :] - dep
    on_mem = (dep > 0) & (op[rows, np.maximum(producer, 0)] == OP_MEM)
    relax = rng.random(shape) < MEM_DEP_RELAX
    dep = np.where(on_mem & relax, 0, dep).astype(np.int16)

    n_regs = profile.n_regs
    dst = rng.integers(0, n_regs, size=shape, dtype=np.int16)

    def sources() -> np.ndarray:
        src = rng.integers(0, n_regs, size=shape, dtype=np.int16)
        reuse = rng.random(shape) < profile.reg_reuse
        back = rng.integers(1, REUSE_WINDOW + 1, size=shape)
        back = np.minimum(back, cols[None, :])
        # Read the register written `back` instructions ago.
        rows = np.arange(n_wf)[:, None]
        recent = dst[rows, cols[None, :] - back]
        usable = reuse & (back > 0)
        return np.where(usable, recent, src).astype(np.int16)

    trace = KernelTrace(
        profile=profile,
        op=op,
        dep_dist=dep,
        src1_reg=sources(),
        src2_reg=sources(),
        dst_reg=dst,
    )
    trace.validate()
    return trace
