"""Deterministic CPU trace synthesis from an :class:`AppProfile`.

The generator expands a profile into a dynamic micro-op stream:

* **ops** are sampled from the profile's instruction mix;
* **dependency distances** are geometric (clipped to the window a real
  renamer would expose), with a separate, longer-range distribution for FP
  ops -- this is where each app's ILP comes from;
* **addresses** come from a region mixture (stack / hot / warm / big /
  out-of-cache) plus a sequential stream, overlaid with temporal
  burstiness (a fraction of accesses repeat one of the last few distinct
  addresses, the MRU locality real DL1 streams exhibit); each app's
  DL1/L2/L3 hit profile then *emerges* from the real cache models;
* **control flow** follows a static CFG of basic blocks: each block has a
  fixed start pc, a fixed conditional branch (with a per-block bias) at a
  fixed pc, and a fixed taken target, so the tournament predictor and the
  BTB see learnable streams and the misprediction rate is an output, not
  an input.  Calls and returns are properly nested and exercise the RAS.

Everything is seeded: the same (profile, n, seed) triple always yields an
identical trace.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.cpu.trace import Trace
from repro.cpu.uops import UopType
from repro.workloads.profiles import AppProfile

#: Maximum dependency distance the generator emits (a real renamer cannot
#: expose dependencies farther apart than the ROB anyway).
MAX_DEP_DIST = 96

#: How far back the temporal-burstiness repeat reaches (distinct accesses).
REPEAT_WINDOW = 3

#: Code layout: blocks are spaced this many bytes apart; the block's branch
#: lives at a fixed slot near the end.
BLOCK_SPACING = 256

#: Base virtual addresses of each data region (spread far apart so regions
#: never alias in the caches beyond what their sizes dictate).
_STACK_BASE = 0x7F00_0000_0000
_HOT_BASE = 0x0000_1000_0000
_WARM_BASE = 0x0000_2000_0000
_BIG_BASE = 0x0000_4000_0000
_MEM_BASE = 0x0000_8000_0000
_STREAM_BASE = 0x0001_0000_0000
_CODE_BASE = 0x0000_0040_0000


def _stable_seed(name: str, seed: int) -> int:
    """Process-independent seed (Python's str hash is salted per process)."""
    return (zlib.crc32(name.encode()) ^ (seed * 0x9E3779B1)) & 0x7FFFFFFF


def _sample_ops(profile: AppProfile, n: int, rng: np.random.Generator) -> np.ndarray:
    classes = [
        (UopType.LOAD, profile.f_load),
        (UopType.STORE, profile.f_store),
        (UopType.BRANCH, profile.f_branch),
        (UopType.CALL, profile.f_call),
        (UopType.RET, profile.f_call),
        (UopType.FADD, profile.f_fadd),
        (UopType.FMUL, profile.f_fmul),
        (UopType.FDIV, profile.f_fdiv),
        (UopType.IMUL, profile.f_imul),
        (UopType.IDIV, profile.f_idiv),
    ]
    probs = [f for _, f in classes]
    probs.append(1.0 - sum(probs))  # IALU remainder
    values = [int(t) for t, _ in classes] + [int(UopType.IALU)]
    return rng.choice(values, size=n, p=probs).astype(np.int8)


def _sample_deps(
    profile: AppProfile, ops: np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    n = len(ops)
    idx = np.arange(n)
    fp_mask = np.isin(ops, [int(UopType.FADD), int(UopType.FMUL), int(UopType.FDIV)])
    geom_p = np.where(fp_mask, profile.fp_dep_geom_p, profile.dep_geom_p)

    def draw(present_prob: float) -> np.ndarray:
        present = rng.random(n) < present_prob
        dist = rng.geometric(geom_p)
        dist = np.minimum(dist, MAX_DEP_DIST)
        dist = np.minimum(dist, idx)  # cannot point before the trace
        return np.where(present, dist, 0).astype(np.int32)

    src1 = draw(profile.p_src1)
    src2 = draw(profile.p_src2)

    # Load-use chains: a fraction of loads are consumed 1-2 instructions
    # later (address arithmetic, pointer chasing).  This is the dependence
    # pattern that DL1 latency actually stretches, so it is modelled
    # explicitly rather than left to the geometric tail.
    loads = np.nonzero(ops == int(UopType.LOAD))[0]
    chosen = loads[rng.random(len(loads)) < profile.p_loaduse]
    offsets = rng.integers(1, 3, size=len(chosen))
    consumers = chosen + offsets
    in_range = consumers < n
    src1[consumers[in_range]] = offsets[in_range]

    # RET dependencies flow through the RAS, not registers.
    ret_mask = ops == int(UopType.RET)
    src1[ret_mask] = 0
    src2[ret_mask] = 0
    return src1, src2


def _sample_addresses(
    profile: AppProfile, ops: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Region-mixture addresses with an MRU-repeat overlay."""
    n = len(ops)
    mem_mask = np.isin(ops, [int(UopType.LOAD), int(UopType.STORE)])
    n_mem = int(mem_mask.sum())
    addr = np.zeros(n, dtype=np.int64)
    if n_mem == 0:
        return addr

    p = [profile.p_stack, profile.p_hot, profile.p_warm, profile.p_big, profile.p_mem]
    p.append(max(0.0, 1.0 - sum(p)))  # sequential stream remainder
    region = rng.choice(6, size=n_mem, p=np.array(p) / sum(p))

    sizes = [
        profile.stack_kb * 1024,
        profile.hot_kb * 1024,
        profile.warm_kb * 1024,
        profile.big_mb * 1024 * 1024,
        profile.footprint_mb * 1024 * 1024,
    ]
    bases = [_STACK_BASE, _HOT_BASE, _WARM_BASE, _BIG_BASE, _MEM_BASE]
    mem_addr = np.zeros(n_mem, dtype=np.int64)
    for r in range(5):
        mask = region == r
        count = int(mask.sum())
        if count:
            offsets = rng.integers(0, max(1, sizes[r] // 8), size=count) * 8
            mem_addr[mask] = bases[r] + offsets
    # Sequential stream: a pointer marching through the footprint.
    stream_mask = region == 5
    count = int(stream_mask.sum())
    if count:
        stride = profile.stream_stride
        wrap = profile.footprint_mb * 1024 * 1024
        offsets = (np.arange(count, dtype=np.int64) * stride) % wrap
        mem_addr[stream_mask] = _STREAM_BASE + offsets

    # Temporal burstiness: a fraction of accesses re-touch one of the last
    # few addresses.  Applied in memory-op order; chained repeats are fine
    # (a repeat of a repeat is still recent).
    repeat = rng.random(n_mem) < profile.p_repeat
    back = rng.integers(1, REPEAT_WINDOW + 1, size=n_mem)
    for i in np.nonzero(repeat)[0]:
        j = i - int(back[i])
        if j >= 0:
            mem_addr[i] = mem_addr[j]

    addr[mem_mask] = mem_addr
    return addr


def _build_cfg(
    profile: AppProfile, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Static control-flow graph: per-block start pc, bias, taken target."""
    n_blocks = profile.n_static_branches
    starts = _CODE_BASE + np.arange(n_blocks, dtype=np.int64) * BLOCK_SPACING
    targets = rng.integers(0, n_blocks, size=n_blocks)
    biased = rng.random(n_blocks) < profile.biased_fraction
    takenness = np.where(
        biased, profile.biased_takenness, profile.hard_takenness
    )
    flip = rng.random(n_blocks) < 0.5
    biases = np.where(flip & biased, 1.0 - takenness, takenness)
    # A subset of blocks serve as function entry points for calls.
    func_entries = rng.integers(0, n_blocks, size=max(4, n_blocks // 8))
    return starts, biases, targets, func_entries


def generate_trace(profile: AppProfile, n: int, seed: int = 0) -> Trace:
    """Generate an ``n``-entry dynamic trace for ``profile``.

    ``seed`` selects the thread/run; multicore runs use distinct seeds per
    core so sibling threads touch overlapping shared regions but produce
    distinct interleavings.
    """
    if n <= 0:
        raise ValueError("trace length must be positive")
    rng = np.random.default_rng(_stable_seed(profile.name, seed))
    ops = _sample_ops(profile, n, rng)
    src1, src2 = _sample_deps(profile, ops, rng)
    addr = _sample_addresses(profile, ops, rng)

    starts, biases, targets, func_entries = _build_cfg(profile, rng)
    n_blocks = len(starts)
    rand = rng.random(n)
    func_pick = rng.integers(0, len(func_entries), size=n)
    # The branch instruction of each block sits at a fixed, per-block slot
    # so the predictor and BTB see one stable pc per static branch (slots
    # vary across blocks the way real code layouts do).
    branch_slots = (
        rng.integers(0, BLOCK_SPACING // 4, size=n_blocks) * 4
    ).tolist()

    taken = np.zeros(n, dtype=bool)
    pc = np.zeros(n, dtype=np.int64)
    block = 0
    off = 0
    max_off = (BLOCK_SPACING // 4) - 2
    call_stack: list[tuple[int, int]] = []
    op_list = ops.tolist()
    starts_list = starts.tolist()
    targets_list = targets.tolist()
    biases_list = biases.tolist()
    _BRANCH = int(UopType.BRANCH)
    _CALL = int(UopType.CALL)
    _RET = int(UopType.RET)
    _IALU = int(UopType.IALU)
    for i in range(n):
        o = op_list[i]
        if o == _BRANCH:
            pc[i] = starts_list[block] + branch_slots[block]
            is_taken = rand[i] < biases_list[block]
            taken[i] = is_taken
            block = targets_list[block] if is_taken else (block + 1) % n_blocks
            off = 0
            continue
        pc[i] = starts_list[block] + 4 * min(off, max_off)
        if o == _CALL:
            if len(call_stack) >= 64:
                ops[i] = _IALU  # degenerate recursion; treat as plain op
                off += 1
                continue
            call_stack.append((block, min(off, max_off) + 1))
            taken[i] = True
            block = int(func_entries[func_pick[i]])
            off = 0
        elif o == _RET:
            if not call_stack:
                ops[i] = _IALU  # unmatched return; treat as plain op
                off += 1
                continue
            block, off = call_stack.pop()
            taken[i] = True
            # Architected return target (the core checks the RAS against
            # it); must equal the call pc + 4 that the core pushed.
            addr[i] = starts_list[block] + 4 * off
        else:
            off += 1

    trace = Trace(op=ops, src1_dist=src1, src2_dist=src2, addr=addr, pc=pc, taken=taken)
    trace.validate()
    return trace
