"""CPU application profiles for the paper's SPLASH-2 + PARSEC suite.

Each profile parameterises the trace generator.  The values are drawn from
the published characterisations of these suites (Woo et al.'s SPLASH-2
paper, Bienia et al.'s PARSEC papers, and later locality studies): FP-dense
numeric kernels (lu, fft, water) with high ILP and small-to-medium working
sets; pointer chasers (canneal, raytrace, radiosity) with poor locality and
harder branches; a pure-integer sort (radix) with scatter traffic; and
streaming codes (streamcluster) bound by the outer memory levels.

The absolute numbers are approximations -- the reproduction's claims are
about *relative* behaviour across configurations, which needs apps that
occupy distinct, plausible operating points (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AppProfile:
    """Generator parameters for one application."""

    name: str
    suite: str  # "splash2" or "parsec"
    input_name: str

    # ---- instruction mix (fractions of dynamic uops; the remainder after
    # all listed classes is IALU) ----
    f_load: float = 0.25
    f_store: float = 0.10
    f_branch: float = 0.12
    f_call: float = 0.004
    f_fadd: float = 0.0
    f_fmul: float = 0.0
    f_fdiv: float = 0.0
    f_imul: float = 0.01
    f_idiv: float = 0.002

    # ---- dependencies / ILP ----
    #: Probability that an op has a first/second source operand.
    p_src1: float = 0.85
    p_src2: float = 0.45
    #: Geometric parameter for dependency distance; smaller = longer
    #: distances = more ILP.
    dep_geom_p: float = 0.30
    #: Separate (usually longer-range) distances for FP ops.
    fp_dep_geom_p: float = 0.18

    # ---- memory locality (region mixture; probabilities sum to <= 1,
    # remainder is a sequential stream) ----
    stack_kb: int = 4
    hot_kb: int = 24
    warm_kb: int = 192
    big_mb: int = 4
    footprint_mb: int = 32
    p_stack: float = 0.45
    p_hot: float = 0.33
    p_warm: float = 0.12
    p_big: float = 0.05
    p_mem: float = 0.01
    #: Stride in bytes for the sequential-stream component.
    stream_stride: int = 8
    #: Probability a memory access repeats one of the last few distinct
    #: addresses (temporal burstiness; drives MRU/fast-way hit rates).
    p_repeat: float = 0.68
    #: Probability a load's value is consumed within the next 1-2
    #: instructions (load-use chains; what DL1 latency actually stretches).
    p_loaduse: float = 0.55

    # ---- branches ----
    n_static_branches: int = 128
    #: Fraction of static branches that are strongly biased (predictable).
    biased_fraction: float = 0.85
    biased_takenness: float = 0.97
    hard_takenness: float = 0.62
    code_kb: int = 24

    # ---- parallel scalability (for the multicore model) ----
    serial_fraction: float = 0.04
    sync_coeff: float = 0.02
    mem_intensity: float = 0.25

    def __post_init__(self) -> None:
        mix = (
            self.f_load + self.f_store + self.f_branch + self.f_call * 2
            + self.f_fadd + self.f_fmul + self.f_fdiv + self.f_imul + self.f_idiv
        )
        if mix >= 1.0:
            raise ValueError(f"{self.name}: instruction mix exceeds 1.0")
        loc = self.p_stack + self.p_hot + self.p_warm + self.p_big + self.p_mem
        if loc > 1.0 + 1e-9:
            raise ValueError(f"{self.name}: locality mixture exceeds 1.0")
        if not 0.0 <= self.serial_fraction < 1.0:
            raise ValueError(f"{self.name}: serial fraction out of range")

    @property
    def fp_fraction(self) -> float:
        return self.f_fadd + self.f_fmul + self.f_fdiv


def _app(**kwargs) -> AppProfile:
    return AppProfile(**kwargs)


#: The ten SPLASH-2 and four PARSEC applications of Section VI-B, with the
#: paper's input sets recorded for provenance.
CPU_APPS: dict[str, AppProfile] = {
    p.name: p
    for p in [
        _app(
            name="barnes", suite="splash2", input_name="16K particles",
            f_load=0.27, f_store=0.09, f_branch=0.11,
            f_fadd=0.09, f_fmul=0.10, f_fdiv=0.008,
            dep_geom_p=0.30, fp_dep_geom_p=0.077,
            stack_kb=4, hot_kb=24, warm_kb=160, big_mb=3, footprint_mb=24,
            p_stack=0.50, p_hot=0.37, p_warm=0.050, p_big=0.018, p_mem=0.004,
            biased_fraction=0.82, hard_takenness=0.62,
            serial_fraction=0.03, sync_coeff=0.035, mem_intensity=0.30,
        ),
        _app(
            name="cholesky", suite="splash2", input_name="tk29.O",
            f_load=0.28, f_store=0.10, f_branch=0.09,
            f_fadd=0.10, f_fmul=0.13, f_fdiv=0.006,
            dep_geom_p=0.26, fp_dep_geom_p=0.058,
            stack_kb=4, hot_kb=28, warm_kb=224, big_mb=4, footprint_mb=28,
            p_stack=0.48, p_hot=0.39, p_warm=0.060, p_big=0.020, p_mem=0.004,
            biased_fraction=0.88, serial_fraction=0.08, sync_coeff=0.045,
            mem_intensity=0.35,
        ),
        _app(
            name="fft", suite="splash2", input_name="2^20 points",
            f_load=0.26, f_store=0.12, f_branch=0.06,
            f_fadd=0.14, f_fmul=0.15, f_fdiv=0.002,
            dep_geom_p=0.22, fp_dep_geom_p=0.046,
            stack_kb=4, hot_kb=28, warm_kb=224, big_mb=6, footprint_mb=48,
            p_stack=0.40, p_hot=0.32, p_warm=0.100, p_big=0.080, p_mem=0.015,
            biased_fraction=0.93, serial_fraction=0.02, sync_coeff=0.03,
            mem_intensity=0.55,
        ),
        _app(
            name="fmm", suite="splash2", input_name="16K particles",
            f_load=0.26, f_store=0.09, f_branch=0.10,
            f_fadd=0.11, f_fmul=0.12, f_fdiv=0.01,
            dep_geom_p=0.28, fp_dep_geom_p=0.066,
            stack_kb=4, hot_kb=24, warm_kb=192, big_mb=3, footprint_mb=24,
            p_stack=0.50, p_hot=0.38, p_warm=0.050, p_big=0.016, p_mem=0.003,
            biased_fraction=0.85, serial_fraction=0.03, sync_coeff=0.03,
            mem_intensity=0.25,
        ),
        _app(
            name="lu", suite="splash2", input_name="512x512",
            f_load=0.27, f_store=0.09, f_branch=0.05,
            f_fadd=0.13, f_fmul=0.17, f_fdiv=0.004,
            dep_geom_p=0.20, fp_dep_geom_p=0.043,
            stack_kb=4, hot_kb=30, warm_kb=256, big_mb=2, footprint_mb=8,
            p_stack=0.49, p_hot=0.41, p_warm=0.055, p_big=0.012, p_mem=0.002,
            biased_fraction=0.95, serial_fraction=0.04, sync_coeff=0.05,
            mem_intensity=0.20,
        ),
        _app(
            name="radiosity", suite="splash2", input_name="batch",
            f_load=0.28, f_store=0.10, f_branch=0.14,
            f_fadd=0.07, f_fmul=0.08, f_fdiv=0.009,
            dep_geom_p=0.34, fp_dep_geom_p=0.085,
            stack_kb=4, hot_kb=20, warm_kb=160, big_mb=3, footprint_mb=24,
            p_stack=0.48, p_hot=0.36, p_warm=0.055, p_big=0.020, p_mem=0.006,
            biased_fraction=0.76, hard_takenness=0.58,
            serial_fraction=0.05, sync_coeff=0.045, mem_intensity=0.30,
        ),
        _app(
            name="radix", suite="splash2", input_name="2M keys",
            f_load=0.29, f_store=0.16, f_branch=0.10,
            f_fadd=0.0, f_fmul=0.0, f_fdiv=0.0, f_imul=0.02,
            dep_geom_p=0.33,
            stack_kb=2, hot_kb=16, warm_kb=128, big_mb=8, footprint_mb=64,
            p_stack=0.32, p_hot=0.28, p_warm=0.130, p_big=0.130, p_mem=0.040,
            biased_fraction=0.90, p_repeat=0.48,
            serial_fraction=0.02, sync_coeff=0.04, mem_intensity=0.75,
        ),
        _app(
            name="raytrace", suite="splash2", input_name="teapot.env",
            f_load=0.30, f_store=0.08, f_branch=0.15,
            f_fadd=0.08, f_fmul=0.09, f_fdiv=0.012,
            dep_geom_p=0.36, fp_dep_geom_p=0.092,
            stack_kb=4, hot_kb=20, warm_kb=160, big_mb=4, footprint_mb=32,
            p_stack=0.46, p_hot=0.35, p_warm=0.060, p_big=0.025, p_mem=0.008,
            biased_fraction=0.72, hard_takenness=0.60,
            serial_fraction=0.03, sync_coeff=0.03, mem_intensity=0.35,
        ),
        _app(
            name="water-nsq", suite="splash2", input_name="random.in",
            f_load=0.25, f_store=0.08, f_branch=0.08,
            f_fadd=0.13, f_fmul=0.14, f_fdiv=0.012,
            dep_geom_p=0.24, fp_dep_geom_p=0.054,
            stack_kb=4, hot_kb=26, warm_kb=192, big_mb=2, footprint_mb=8,
            p_stack=0.51, p_hot=0.39, p_warm=0.050, p_big=0.012, p_mem=0.002,
            biased_fraction=0.90, serial_fraction=0.03, sync_coeff=0.04,
            mem_intensity=0.18,
        ),
        _app(
            name="water-sp", suite="splash2", input_name="512 molecules",
            f_load=0.25, f_store=0.08, f_branch=0.08,
            f_fadd=0.12, f_fmul=0.14, f_fdiv=0.010,
            dep_geom_p=0.24, fp_dep_geom_p=0.054,
            stack_kb=4, hot_kb=26, warm_kb=192, big_mb=2, footprint_mb=8,
            p_stack=0.51, p_hot=0.40, p_warm=0.045, p_big=0.012, p_mem=0.002,
            biased_fraction=0.91, serial_fraction=0.02, sync_coeff=0.03,
            mem_intensity=0.15,
        ),
        _app(
            name="blackscholes", suite="parsec", input_name="16K options",
            f_load=0.24, f_store=0.07, f_branch=0.06,
            f_fadd=0.14, f_fmul=0.16, f_fdiv=0.02,
            dep_geom_p=0.21, fp_dep_geom_p=0.05,
            stack_kb=4, hot_kb=30, warm_kb=128, big_mb=1, footprint_mb=4,
            p_stack=0.54, p_hot=0.41, p_warm=0.035, p_big=0.008, p_mem=0.001,
            biased_fraction=0.96, serial_fraction=0.01, sync_coeff=0.015,
            mem_intensity=0.10,
        ),
        _app(
            name="canneal", suite="parsec", input_name="10000 elements",
            f_load=0.31, f_store=0.09, f_branch=0.13,
            f_fadd=0.02, f_fmul=0.02, f_fdiv=0.001,
            dep_geom_p=0.38,
            stack_kb=2, hot_kb=16, warm_kb=128, big_mb=8, footprint_mb=96,
            p_stack=0.32, p_hot=0.27, p_warm=0.120, p_big=0.140, p_mem=0.055,
            biased_fraction=0.70, hard_takenness=0.58, p_repeat=0.44, p_loaduse=0.55,
            serial_fraction=0.06, sync_coeff=0.03, mem_intensity=0.80,
        ),
        _app(
            name="streamcluster", suite="parsec", input_name="4K points",
            f_load=0.28, f_store=0.06, f_branch=0.08,
            f_fadd=0.12, f_fmul=0.13, f_fdiv=0.004,
            dep_geom_p=0.23, fp_dep_geom_p=0.05,
            stack_kb=4, hot_kb=24, warm_kb=192, big_mb=8, footprint_mb=48,
            p_stack=0.38, p_hot=0.31, p_warm=0.110, p_big=0.100, p_mem=0.025,
            biased_fraction=0.92, p_repeat=0.54,
            serial_fraction=0.03, sync_coeff=0.06, mem_intensity=0.65,
        ),
        _app(
            name="fluidanimate", suite="parsec", input_name="15K particles",
            f_load=0.26, f_store=0.09, f_branch=0.10,
            f_fadd=0.11, f_fmul=0.12, f_fdiv=0.009,
            dep_geom_p=0.27, fp_dep_geom_p=0.062,
            stack_kb=4, hot_kb=24, warm_kb=192, big_mb=3, footprint_mb=24,
            p_stack=0.49, p_hot=0.38, p_warm=0.055, p_big=0.020, p_mem=0.004,
            biased_fraction=0.86, serial_fraction=0.03, sync_coeff=0.05,
            mem_intensity=0.30,
        ),
    ]
}


def cpu_app(name: str) -> AppProfile:
    """Look up a CPU application profile by name."""
    try:
        return CPU_APPS[name]
    except KeyError:
        raise KeyError(
            f"unknown CPU app {name!r}; choose from {sorted(CPU_APPS)}"
        ) from None
