"""GPU kernel profiles standing in for the AMD-SDK-APP suite.

The paper evaluates every application in the AMD APP SDK sample suite
shipped with Multi2Sim.  Each kernel here is parameterised by what drives
the HetCore GPU results:

* **fma_frac / mem_frac** -- arithmetic vs memory instruction balance;
* **dep_geom_p** -- intra-wavefront dependency distances (short distances
  mean the deeper TFET FMA pipeline and slower register file hurt);
* **reg_reuse** -- probability that a read names a recently written
  register, which is exactly what the 6-entry register-file cache captures
  (Gebhart et al. report ~40% of values are consumed within a few
  instructions, which these values bracket);
* **n_wavefronts** -- occupancy per compute unit, the latency-hiding supply;
* **mem_intensity** -- pressure on shared memory bandwidth, which limits
  the 8 -> 16 CU scaling of AdvHet-2X.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class KernelProfile:
    """Generator parameters for one GPU kernel."""

    name: str
    #: Fraction of instructions that are FMA/ALU vector ops; the remainder
    #: are global memory operations.
    fma_frac: float = 0.80
    #: Geometric parameter for dependency distance between instructions in
    #: a wavefront (larger = tighter chains = less ILP inside a wavefront).
    dep_geom_p: float = 0.40
    #: Probability a source register was written within the last few
    #: instructions (register-file-cache locality).
    reg_reuse: float = 0.45
    #: Resident wavefronts per compute unit (occupancy).  AMD SDK sample
    #: kernels launch modest grids, so per-SIMD pools are shallow and
    #: latency hiding is partial -- the regime the paper's GPU results
    #: live in.
    n_wavefronts: int = 10
    #: Instructions per wavefront.
    stream_len: int = 512
    #: Registers per thread actually used by the kernel (<= 256).
    n_regs: int = 64
    #: Average memory latency in cycles, *including* vector-cache hits
    #: (most SDK-kernel accesses are cache-served; the DRAM tail is rare).
    mem_latency: int = 60
    #: Shared-bandwidth pressure in [0, 1] (for CU scaling).
    mem_intensity: float = 0.35
    #: Serial/launch overhead fraction (for CU scaling).
    serial_fraction: float = 0.02

    def __post_init__(self) -> None:
        if not 0.0 < self.fma_frac <= 1.0:
            raise ValueError(f"{self.name}: fma_frac out of range")
        if not 0.0 < self.dep_geom_p <= 1.0:
            raise ValueError(f"{self.name}: dep_geom_p out of range")
        if self.n_wavefronts <= 0 or self.stream_len <= 0:
            raise ValueError(f"{self.name}: empty kernel")
        if self.n_regs <= 0 or self.n_regs > 256:
            raise ValueError(f"{self.name}: n_regs must be in (0, 256]")


def _k(**kwargs) -> KernelProfile:
    return KernelProfile(**kwargs)


#: The sixteen AMD-SDK-APP kernels (suggested Multi2Sim input sizes).
GPU_KERNELS: dict[str, KernelProfile] = {
    p.name: p
    for p in [
        _k(name="BinarySearch", fma_frac=0.55, dep_geom_p=0.55, reg_reuse=0.35,
           n_wavefronts=6, mem_latency=64, mem_intensity=0.55, n_regs=24),
        _k(name="BitonicSort", fma_frac=0.60, dep_geom_p=0.45, reg_reuse=0.40,
           n_wavefronts=8, mem_latency=60, mem_intensity=0.60, n_regs=32),
        _k(name="BlackScholes", fma_frac=0.92, dep_geom_p=0.30, reg_reuse=0.55,
           n_wavefronts=12, mem_latency=60, mem_intensity=0.15, n_regs=84),
        _k(name="DCT", fma_frac=0.85, dep_geom_p=0.35, reg_reuse=0.50,
           n_wavefronts=10, mem_latency=60, mem_intensity=0.30, n_regs=64),
        _k(name="DwtHaar1D", fma_frac=0.75, dep_geom_p=0.40, reg_reuse=0.45,
           n_wavefronts=8, mem_latency=60, mem_intensity=0.40, n_regs=48),
        _k(name="FastWalshTransform", fma_frac=0.70, dep_geom_p=0.42, reg_reuse=0.42,
           n_wavefronts=10, mem_latency=60, mem_intensity=0.45, n_regs=40),
        _k(name="FloydWarshall", fma_frac=0.58, dep_geom_p=0.50, reg_reuse=0.38,
           n_wavefronts=8, mem_latency=64, mem_intensity=0.65, n_regs=28),
        _k(name="Histogram", fma_frac=0.62, dep_geom_p=0.48, reg_reuse=0.40,
           n_wavefronts=8, mem_latency=64, mem_intensity=0.55, n_regs=32),
        _k(name="MatrixMultiplication", fma_frac=0.90, dep_geom_p=0.28, reg_reuse=0.60,
           n_wavefronts=14, mem_latency=60, mem_intensity=0.25, n_regs=96),
        _k(name="MatrixTranspose", fma_frac=0.45, dep_geom_p=0.55, reg_reuse=0.30,
           n_wavefronts=10, mem_latency=64, mem_intensity=0.80, n_regs=24),
        _k(name="PrefixSum", fma_frac=0.68, dep_geom_p=0.50, reg_reuse=0.45,
           n_wavefronts=6, mem_latency=60, mem_intensity=0.45, n_regs=32),
        _k(name="RadixSort", fma_frac=0.60, dep_geom_p=0.48, reg_reuse=0.38,
           n_wavefronts=8, mem_latency=64, mem_intensity=0.65, n_regs=36),
        _k(name="RecursiveGaussian", fma_frac=0.82, dep_geom_p=0.36, reg_reuse=0.50,
           n_wavefronts=10, mem_latency=60, mem_intensity=0.35, n_regs=64),
        _k(name="Reduction", fma_frac=0.65, dep_geom_p=0.45, reg_reuse=0.42,
           n_wavefronts=12, mem_latency=60, mem_intensity=0.50, n_regs=24),
        _k(name="ScanLargeArrays", fma_frac=0.66, dep_geom_p=0.46, reg_reuse=0.42,
           n_wavefronts=10, mem_latency=60, mem_intensity=0.55, n_regs=32),
        _k(name="SobelFilter", fma_frac=0.80, dep_geom_p=0.38, reg_reuse=0.48,
           n_wavefronts=12, mem_latency=60, mem_intensity=0.40, n_regs=48),
    ]
}


def gpu_kernel(name: str) -> KernelProfile:
    """Look up a GPU kernel profile by name."""
    try:
        return GPU_KERNELS[name]
    except KeyError:
        raise KeyError(
            f"unknown GPU kernel {name!r}; choose from {sorted(GPU_KERNELS)}"
        ) from None
