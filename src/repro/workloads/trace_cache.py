"""Process-wide LRU cache for generated workload traces.

Every cell of a sweep regenerates its workload trace, yet the N
configurations of one figure all run the *same* (profile, length, seed)
trace -- generation is pure and deterministic, so the result can be shared.
The cache keys on exactly the determinism contract of the generators
(:func:`repro.workloads.generator.generate_trace` and
:func:`repro.workloads.gpu_generator.generate_kernel`): the frozen profile
dataclass, the trace length, and the seed -- hashed through the repo-wide
addressing scheme (:func:`repro.store.address.content_address`), the same
one the durable result store keys on, so "what identifies a trace" is
defined in exactly one place (:func:`trace_key` / :func:`kernel_key`).

Entries are returned by reference, not copied: the cycle engines treat
trace arrays as read-only (they unbox them with ``tolist()`` and never
write back), so sharing one trace across cells -- and across the serve
dispatcher's threads -- is safe.  The cache itself is guarded by a lock and
every public operation is atomic.

Capacity defaults to :data:`DEFAULT_CAPACITY` traces and can be overridden
with the ``REPRO_TRACE_CACHE`` environment variable (``0`` disables
caching entirely, for memory-constrained or paranoid runs).  The default
keeps a full main-sweep working set resident: one trace per (application,
seed) pair, not per configuration, which is the entire point.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Hashable

from repro.store.address import content_address
from repro.workloads.generator import generate_trace
from repro.workloads.gpu_generator import generate_kernel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.cpu.trace import Trace
    from repro.workloads.gpu_generator import KernelTrace
    from repro.workloads.gpu_profiles import KernelProfile
    from repro.workloads.profiles import AppProfile

#: Default number of cached traces (CPU and GPU combined).
DEFAULT_CAPACITY = 64


def _capacity_from_env() -> int:
    raw = os.environ.get("REPRO_TRACE_CACHE", "").strip()
    if not raw:
        return DEFAULT_CAPACITY
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_CAPACITY
    return max(0, value)


class TraceCache:
    """Thread-safe LRU over deterministic trace generation.

    ``get(key, factory)`` returns the cached value for ``key`` or calls
    ``factory()`` and caches the result.  The factory runs *outside* the
    lock -- generation takes milliseconds and must not serialise the serve
    dispatcher's worker threads -- so two threads racing on the same key
    may both generate; the first insert wins and both get equal (by
    determinism) traces.
    """

    def __init__(self, capacity: int | None = None):
        self.capacity = _capacity_from_env() if capacity is None else max(0, capacity)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable, factory):
        if self.capacity == 0:
            with self._lock:
                self.misses += 1
            return factory()
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
            else:
                self.hits += 1
                self._entries.move_to_end(key)
                return value
        value = factory()
        with self._lock:
            if key not in self._entries:
                self._entries[key] = value
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.evictions += 1
            else:
                # Lost the generation race: serve the first insert so every
                # caller shares one buffer.
                value = self._entries[key]
                self._entries.move_to_end(key)
        return value

    def put(self, key: Hashable, value):
        """Seed ``key`` without counting a hit or miss.

        Used by the shared-memory trace transport
        (:mod:`repro.resilience.shm`) to pre-load a worker's cache with
        zero-copy views of the parent's buffers.  First insert wins, same
        as a lost generation race: if ``key`` is already present (fork
        inherited it), the existing value is kept and returned.
        """
        if self.capacity == 0:
            return value
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return self._entries[key]
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return value

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        """Point-in-time counters (hits/misses/evictions/entries)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._entries),
            }


#: The process-wide cache used by :func:`cached_trace`/:func:`cached_kernel`.
_shared = TraceCache()


def shared_cache() -> TraceCache:
    """The process-wide trace cache (one per process, lazily sized)."""
    return _shared


def reset_shared_cache(capacity: int | None = None) -> TraceCache:
    """Replace the shared cache (tests; re-reads ``REPRO_TRACE_CACHE``)."""
    global _shared
    _shared = TraceCache(capacity)
    return _shared


def trace_key(profile: "AppProfile", n: int, seed: int = 0) -> str:
    """The canonical cache key of one CPU trace.

    Shared by this cache and the shm trace transport; built on the same
    content-addressing scheme as the durable result store.
    """
    return content_address(
        "trace", {"kind": "cpu", "profile": profile, "n": n, "seed": seed}
    )


def kernel_key(profile: "KernelProfile", seed: int = 0) -> str:
    """The canonical cache key of one GPU kernel trace."""
    return content_address(
        "trace", {"kind": "gpu", "profile": profile, "seed": seed}
    )


def cached_trace(profile: "AppProfile", n: int, seed: int = 0) -> "Trace":
    """`generate_trace` through the shared LRU cache."""
    return _shared.get(
        trace_key(profile, n, seed),
        lambda: generate_trace(profile, n, seed=seed),
    )


def cached_kernel(profile: "KernelProfile", seed: int = 0) -> "KernelTrace":
    """`generate_kernel` through the shared LRU cache."""
    return _shared.get(
        kernel_key(profile, seed), lambda: generate_kernel(profile, seed=seed)
    )
