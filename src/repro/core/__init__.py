"""HetCore: the hetero-device TFET-CMOS core architecture (the paper's
primary contribution).

This layer composes the substrates (devices, cpu, gpu, mem, power,
workloads) into the designs the paper evaluates:

* :mod:`repro.core.hetcore` -- ``CpuDesign`` / ``GpuDesign``: per-unit
  device assignment and everything derived from it (latency tables, cache
  round trips, energy device maps, resource sizes).
* :mod:`repro.core.configs` -- the named Table IV configurations (10 CPU +
  AdvHet-2X, 4 GPU + AdvHet-2X) and the Table III machine parameters.
* :mod:`repro.core.simulate` -- ``simulate_cpu`` / ``simulate_gpu``: run a
  configuration on a workload and return time + energy + ED + ED^2.
* :mod:`repro.core.dvfs` -- hetero-device DVFS and process-variation
  energy analysis (Figure 14).
* :mod:`repro.core.budget` -- fixed-power-budget core-count analysis
  (AdvHet-2X, Section VII-A1/B1).
"""

from repro.core.hetcore import CpuDesign, GpuDesign
from repro.core.configs import (
    CPU_CONFIGS,
    GPU_CONFIGS,
    cpu_config,
    gpu_config,
    machine_params,
    design_modifications,
)
from repro.core.simulate import CpuRunResult, GpuRunResult, simulate_cpu, simulate_gpu
from repro.core.dvfs import HetCoreDvfs
from repro.core.budget import PowerBudgetAnalysis

__all__ = [
    "CpuDesign",
    "GpuDesign",
    "CPU_CONFIGS",
    "GPU_CONFIGS",
    "cpu_config",
    "gpu_config",
    "machine_params",
    "design_modifications",
    "CpuRunResult",
    "GpuRunResult",
    "simulate_cpu",
    "simulate_gpu",
    "HetCoreDvfs",
    "PowerBudgetAnalysis",
]
