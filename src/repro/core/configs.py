"""The named configurations of Table IV (plus the Table II/III data).

Ten CPU configurations, four GPU configurations, and the fixed-power-budget
AdvHet-2X variants; this module is the single source of truth used by the
experiment harness, the benchmarks, and the examples.
"""

from __future__ import annotations

from repro.core.hetcore import CpuDesign, GpuDesign
from repro.power.model import DeviceKind

_C = DeviceKind.CMOS
_T = DeviceKind.TFET
_H = DeviceKind.HIGHVT
_N = DeviceKind.TFET_NATIVE


CPU_CONFIGS: dict[str, CpuDesign] = {
    d.name: d
    for d in [
        CpuDesign(name="BaseCMOS", notes="All-CMOS core"),
        CpuDesign(
            name="BaseCMOS-Enh",
            asym_dl1=True,
            enlarged=True,
            notes=(
                "BaseCMOS + larger ROB (160->192) & FP-RF (80->128) + CMOS "
                "asymmetric DL1 (1 cycle for 1 way & 3 cycles for rest)"
            ),
        ),
        CpuDesign(
            name="BaseTFET",
            freq_ghz=1.0,
            alu=_N, muldiv=_N, fpu=_N, dl1=_N, l2=_N, l3=_N, others=_N,
            notes="All-TFET core at half frequency",
        ),
        CpuDesign(
            name="BaseHet",
            alu=_T, muldiv=_T, fpu=_T, dl1=_T, l2=_T, l3=_T,
            notes="BaseCMOS + FPUs, ALUs, DL1, L2, and L3 in TFET",
        ),
        CpuDesign(
            name="AdvHet",
            alu=_T, muldiv=_T, fpu=_T, dl1=_T, l2=_T, l3=_T,
            asym_dl1=True, dual_speed_alu=True, enlarged=True,
            notes=(
                "BaseHet + larger ROB & FP-RF + dual-speed ALU (3 TFET + 1 "
                "CMOS) + asymmetric DL1 (1 way CMOS & rest TFET)"
            ),
        ),
        CpuDesign(
            name="BaseL3",
            l3=_T, enlarged=True,
            notes="BaseCMOS + larger ROB & FP-RF + L3 in TFET",
        ),
        CpuDesign(
            name="BaseHighVt",
            alu=_H, muldiv=_H, fpu=_H,
            notes=(
                "BaseCMOS + high-Vt FPUs & ALUs (Add/Mul/Div: Int 2/3/6, "
                "FP 3/6/12 cycles)"
            ),
        ),
        CpuDesign(
            name="BaseHet-FastALU",
            fpu=_T, dl1=_T, l2=_T, l3=_T,
            notes="BaseHet + all ALUs in CMOS",
        ),
        CpuDesign(
            name="BaseHet-Enh",
            alu=_T, muldiv=_T, fpu=_T, dl1=_T, l2=_T, l3=_T,
            enlarged=True,
            notes="BaseHet + larger ROB & FP-RF",
        ),
        CpuDesign(
            name="BaseHet-Split",
            alu=_T, muldiv=_T, fpu=_T, dl1=_T, l2=_T, l3=_T,
            enlarged=True, dual_speed_alu=True,
            notes="BaseHet-Enh + dual-speed ALU cluster",
        ),
        CpuDesign(
            name="AdvHet-2X",
            alu=_T, muldiv=_T, fpu=_T, dl1=_T, l2=_T, l3=_T,
            asym_dl1=True, dual_speed_alu=True, enlarged=True,
            n_cores=8,
            notes="AdvHet with 8 cores in the 4-core BaseCMOS power budget",
        ),
    ]
}


GPU_CONFIGS: dict[str, GpuDesign] = {
    d.name: d
    for d in [
        GpuDesign(
            name="BaseCMOS", rf_cache=True,
            notes="All-CMOS GPU + register file cache (added for fairness)",
        ),
        GpuDesign(
            name="BaseTFET", freq_ghz=0.5, fma=_N, rf=_N, others=_N,
            notes="All-TFET GPU at half frequency",
        ),
        GpuDesign(
            name="BaseHet", fma=_T, rf=_T,
            notes="BaseCMOS + SIMD FPUs & RF in TFET (no RF cache)",
        ),
        GpuDesign(
            name="AdvHet", fma=_T, rf=_T, rf_cache=True,
            notes="BaseHet + register file cache",
        ),
        GpuDesign(
            name="AdvHet-2X", fma=_T, rf=_T, rf_cache=True, n_cus=16,
            notes="AdvHet with 16 CUs in the 8-CU BaseCMOS power budget",
        ),
    ]
}

#: Figure 7-9 plot these CPU configurations, in this order.
CPU_MAIN_CONFIGS = ["BaseCMOS", "BaseCMOS-Enh", "BaseTFET", "BaseHet", "AdvHet", "AdvHet-2X"]
#: Figure 13 plots these CPU configurations.
CPU_SENSITIVITY_CONFIGS = [
    "BaseCMOS", "BaseL3", "BaseHighVt",
    "BaseHet-FastALU", "BaseHet", "BaseHet-Enh", "BaseHet-Split", "AdvHet",
]
#: Figures 10-12 plot these GPU configurations.
GPU_MAIN_CONFIGS = ["BaseCMOS", "BaseTFET", "BaseHet", "AdvHet", "AdvHet-2X"]


def cpu_config(name: str) -> CpuDesign:
    """Look up a CPU configuration by Table IV name."""
    try:
        return CPU_CONFIGS[name]
    except KeyError:
        raise KeyError(
            f"unknown CPU config {name!r}; choose from {sorted(CPU_CONFIGS)}"
        ) from None


def gpu_config(name: str) -> GpuDesign:
    """Look up a GPU configuration by Table IV name."""
    try:
        return GPU_CONFIGS[name]
    except KeyError:
        raise KeyError(
            f"unknown GPU config {name!r}; choose from {sorted(GPU_CONFIGS)}"
        ) from None


def machine_params() -> dict[str, str]:
    """Table III: parameters of the simulated architecture."""
    return {
        "CPU Hardware": "4 out-of-order cores, 4-issue each, 2GHz",
        "INT/FP RF; ROB": "128/80 regs; 160 entries",
        "Issue queue": "64 entries",
        "Ld-St queue": "48 entries",
        "Branch prediction": "Tournament: 2-level, 32-entry RAS, 4way 2K-entry BTB",
        "4 ALU": "CMOS: 1 cycle, TFET: 2 cycles",
        "2 Int Mult/Div": "CMOS: 2/4 cycles, TFET: 4/8 cycles",
        "2 LSU": "1 cycle",
        "2 FPU": (
            "CMOS: Add/Mult/Div 2/4/8 cycles; TFET: 4/8/16 cycles; "
            "Add/Mult issue every cycle, Div issues every 8/16 cycles"
        ),
        "Private I-Cache": "32KB, 2way, 64B line, Round-trip (RT): 2 cycles",
        "Asym. FastCache": "4KB, 1way, writeback (WB), 64B line, RT: 1 cycle",
        "Private D-Cache": (
            "32KB, 8way, WB, 64B line, RT: 2 cycles (CMOS) or 4 cycles (TFET)"
        ),
        "Private L2": (
            "256KB, 8way, WB, 64B line, RT: 8 cycles (CMOS) or 12 cycles (TFET)"
        ),
        "Shared L3": (
            "Per core: 2MB, 16way, WB, 64B line, RT: 32 cycles (CMOS) or "
            "40 cycles (TFET)"
        ),
        "DRAM latency": "RT: 50ns",
        "GPU Hardware": "8 CUs with 16 EUs each, 1GHz",
        "FMA unit": "CMOS: 3 cycles, TFET: 6 cycles, pipelined issue every cycle",
        "Vector registers": (
            "256 per thread, access: 1 cycle (CMOS) or 2 cycles (TFET)"
        ),
        "Register file cache": "6 entries per thread, access: 1 cycle",
        "Network": "Ring with MESI directory-based protocol",
    }


def design_modifications() -> dict[str, dict[str, str]]:
    """Table II: design modifications for HetCore."""
    return {
        "BaseHet": {
            "CPU": "FPUs, ALUs, DL1, L2, and L3 in TFET",
            "GPU": "SIMD FPUs and RF in TFET",
        },
        "AdvHet": {
            "CPU": (
                "BaseHet + asymmetric DL1 cache + dual-speed ALU + larger "
                "ROB and FP RF"
            ),
            "GPU": "BaseHet + register file cache",
        },
    }
