"""Fixed-power-budget analysis (Sections VII-A1 and VII-B1).

An AdvHet core draws roughly half the power of a BaseCMOS core, so a chip
with the BaseCMOS power budget can carry twice as many AdvHet cores
(AdvHet-2X); an all-TFET core draws ~7-8x less, allowing 7-8x more cores
but at half the single-thread speed.  This module derives those core
counts from measured run results rather than asserting them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.simulate import CpuRunResult, GpuRunResult


@dataclass
class BudgetComparison:
    """How many units of a design fit in the baseline's power budget."""

    baseline: str
    candidate: str
    baseline_power_w: float
    candidate_power_w: float

    @property
    def power_ratio(self) -> float:
        """Baseline power over candidate power (per same-unit-count chip)."""
        if self.candidate_power_w <= 0:
            raise ValueError("candidate power must be positive")
        return self.baseline_power_w / self.candidate_power_w

    @property
    def units_within_budget(self) -> int:
        """Units of the candidate provisioned in the baseline budget.

        Rounded to nearest: the paper provisions *twice* as many AdvHet
        cores from a measured ~1.8-2x power headroom (an AdvHet core
        "consumes half the power" of a BaseCMOS one, Section VII-A1) --
        power budgets are soft at this granularity.
        """
        return max(1, round(self.power_ratio))


class PowerBudgetAnalysis:
    """Aggregate power across applications and derive affordable counts."""

    @staticmethod
    def compare(
        baseline_runs: "list[CpuRunResult] | list[GpuRunResult]",
        candidate_runs: "list[CpuRunResult] | list[GpuRunResult]",
    ) -> BudgetComparison:
        """Average-power comparison over matched workload lists."""
        if not baseline_runs or len(baseline_runs) != len(candidate_runs):
            raise ValueError("need matched, non-empty run lists")
        base_p = sum(r.power_w for r in baseline_runs) / len(baseline_runs)
        cand_p = sum(r.power_w for r in candidate_runs) / len(candidate_runs)
        return BudgetComparison(
            baseline=baseline_runs[0].config,
            candidate=candidate_runs[0].config,
            baseline_power_w=base_p,
            candidate_power_w=cand_p,
        )
