"""HetCore design descriptions: which units use which device, and all the
micro-architectural consequences.

A :class:`CpuDesign` names a device (CMOS, TFET, high-Vt, or native TFET)
for each candidate unit of Section IV-B -- the FPUs, ALUs (with the integer
multiplier cluster), DL1, L2, and L3 -- plus the AdvHet options: the
asymmetric DL1, the dual-speed ALU cluster, and the enlarged ROB / FP
register file.  From that single description it derives:

* functional-unit latency tables (Table III's CMOS/TFET/high-Vt columns);
* cache round-trip latencies (2/4, 8/12, 32/40 cycles);
* the DL1 organisation (plain or asymmetric, with partition latencies);
* the energy-model device map and scaling knobs.

The invariant the whole paper rests on is encoded here: a TFET unit is
clocked at the core frequency by doubling its pipeline depth, so its
*cycle* latencies are exactly twice the CMOS ones while its occupancy
(issue rate) is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.resources import ResourceConfig
from repro.cpu.units import (
    CMOS_LATENCIES,
    HIGHVT_LATENCIES,
    TFET_LATENCIES,
    FunctionalUnitPool,
    LatencyTable,
)
from repro.mem.asym import AsymmetricL1
from repro.mem.cache import Cache
from repro.mem.contention import SharedResourceContention
from repro.mem.hierarchy import CacheLatencies, MemoryHierarchy
from repro.power.model import DeviceKind, ScalingKnobs


def _latency_table(device: DeviceKind) -> LatencyTable:
    if device in (DeviceKind.CMOS, DeviceKind.TFET_NATIVE):
        # An all-TFET core keeps CMOS-like *cycle* latencies: the entire
        # clock slows down instead (Section VI: BaseTFET runs at 1 GHz).
        return CMOS_LATENCIES
    if device == DeviceKind.TFET:
        return TFET_LATENCIES
    return HIGHVT_LATENCIES


@dataclass(frozen=True)
class CpuDesign:
    """One CPU configuration of Table IV."""

    name: str
    freq_ghz: float = 2.0
    alu: DeviceKind = DeviceKind.CMOS
    muldiv: DeviceKind = DeviceKind.CMOS
    fpu: DeviceKind = DeviceKind.CMOS
    dl1: DeviceKind = DeviceKind.CMOS
    l2: DeviceKind = DeviceKind.CMOS
    l3: DeviceKind = DeviceKind.CMOS
    #: Device of every remaining unit (front-end, rename, ROB, IQ, register
    #: files, LSU, IL1, clock tree).  Only the all-TFET core changes this.
    others: DeviceKind = DeviceKind.CMOS
    #: AdvHet options.
    asym_dl1: bool = False
    dual_speed_alu: bool = False
    enlarged: bool = False
    n_cores: int = 4
    notes: str = ""

    def __post_init__(self) -> None:
        if self.freq_ghz <= 0:
            raise ValueError("frequency must be positive")
        if self.n_cores <= 0:
            raise ValueError("core count must be positive")
        if self.dual_speed_alu and self.alu == DeviceKind.CMOS:
            raise ValueError(
                f"{self.name}: a dual-speed cluster needs slow (TFET) ALUs"
            )
        if self.asym_dl1 and self.dl1 == DeviceKind.TFET_NATIVE:
            raise ValueError(f"{self.name}: asymmetric DL1 inside an all-TFET core")

    # ---- timing derivations -------------------------------------------
    def cache_latencies(self) -> CacheLatencies:
        """Round trips per Table III, by device assignment."""
        return CacheLatencies(
            il1_rt=2,
            dl1_rt=4 if self.dl1 == DeviceKind.TFET else 2,
            l2_rt=12 if self.l2 == DeviceKind.TFET else 8,
            l3_rt=40 if self.l3 == DeviceKind.TFET else 32,
            dram_ns=50.0,
        )

    def build_dl1(self) -> "Cache | AsymmetricL1 | None":
        """The DL1 object (None means the hierarchy default plain cache)."""
        if not self.asym_dl1:
            return None
        # AdvHet: TFET slow ways cost 4 extra cycles; the all-CMOS variant
        # (BaseCMOS-Enh) costs 2 extra (1-cycle fast way, 3-cycle rest).
        slow_extra = 4 if self.dl1 == DeviceKind.TFET else 2
        return AsymmetricL1(fast_hit_cycles=1, slow_extra_cycles=slow_extra)

    def build_units(self) -> FunctionalUnitPool:
        """Functional-unit pool with this design's latency tables."""
        return FunctionalUnitPool(
            alu_table=_latency_table(self.alu),
            muldiv_table=_latency_table(self.muldiv),
            fpu_table=_latency_table(self.fpu),
            fast_alu_count=1 if self.dual_speed_alu else 0,
            fast_table=CMOS_LATENCIES,
        )

    def resources(self) -> ResourceConfig:
        base = ResourceConfig()
        return base.enlarged() if self.enlarged else base

    def build_hierarchy(self, mem_intensity: float = 0.0) -> MemoryHierarchy:
        """Memory hierarchy with multicore contention for this design."""
        contention = SharedResourceContention(
            n_sharers=self.n_cores, intensity=mem_intensity
        )
        return MemoryHierarchy(
            self.cache_latencies(),
            freq_ghz=self.freq_ghz,
            dl1=self.build_dl1(),
            contention=contention,
        )

    # ---- energy derivations -------------------------------------------
    def device_map(self) -> dict[str, DeviceKind]:
        return {
            "alu": self.alu,
            "muldiv": self.muldiv,
            "fpu": self.fpu,
            "dl1": self.dl1,
            "l2": self.l2,
            "l3": self.l3,
            "others": self.others,
        }

    def energy_knobs(self) -> ScalingKnobs:
        knobs = ScalingKnobs()
        if self.enlarged:
            base = ResourceConfig()
            big = base.enlarged()
            # Banked arrays grow per-access energy sublinearly with
            # capacity (only the selected bank switches); leakage is the
            # per-instance time term and is handled by the same knob, so a
            # sqrt compromise keeps both within CACTI-class behaviour.
            knobs.rob_scale = (big.rob_entries / base.rob_entries) ** 0.5
            knobs.fp_rf_scale = (big.fp_regs / base.fp_regs) ** 0.5
        knobs.leakage_instances = float(self.n_cores)
        return knobs

    @property
    def is_all_tfet(self) -> bool:
        return self.alu == DeviceKind.TFET_NATIVE


@dataclass(frozen=True)
class GpuDesign:
    """One GPU configuration of Table IV."""

    name: str
    freq_ghz: float = 1.0
    fma: DeviceKind = DeviceKind.CMOS
    rf: DeviceKind = DeviceKind.CMOS
    #: Device of the remaining CU logic (front-end, LDS/memory path, misc).
    others: DeviceKind = DeviceKind.CMOS
    rf_cache: bool = False
    n_cus: int = 8
    notes: str = ""

    def __post_init__(self) -> None:
        if self.freq_ghz <= 0:
            raise ValueError("frequency must be positive")
        if self.n_cus <= 0:
            raise ValueError("CU count must be positive")

    def fma_depth(self) -> int:
        """3-stage CMOS FMA, 6-stage TFET (Table III); an all-TFET GPU
        keeps the 3-stage layout at half clock."""
        return 6 if self.fma == DeviceKind.TFET else 3

    def rf_cycles(self) -> int:
        return 2 if self.rf == DeviceKind.TFET else 1

    def device_map(self) -> dict[str, DeviceKind]:
        return {"fma": self.fma, "rf": self.rf, "others": self.others}

    def energy_knobs(self) -> ScalingKnobs:
        knobs = ScalingKnobs()
        knobs.leakage_instances = float(self.n_cus)
        return knobs
