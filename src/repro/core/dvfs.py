"""Hetero-device DVFS and process variation (Sections III-D, VII-D).

HetCore scales both voltage domains together: a target core frequency f
needs V_CMOS from the CMOS Vdd-frequency curve at f and V_TFET from the
TFET curve at f/2 (TFET stages do half the work).  Because the TFET curve
is shallower, boosts cost relatively more TFET voltage (+90 mV vs +75 mV
for 2.5 GHz) and slow-downs give back more (-80 mV vs -70 mV for 1.5 GHz),
which moves AdvHet's relative energy advantage exactly the way Figure 14
shows.  Process-variation guardbands (+120 mV CMOS, +70 mV TFET) raise
everyone's energy and shave a little off AdvHet's relative savings.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.hetcore import CpuDesign
from repro.core.simulate import CpuRunResult, simulate_cpu
from repro.devices.scaling import dynamic_energy_scale, leakage_power_scale
from repro.devices.variation import VariationGuardbands
from repro.devices.vf import NOMINAL_V_CMOS, NOMINAL_V_TFET, DvfsSolver, VoltagePair
from repro.power.model import ScalingKnobs
from repro.workloads.profiles import AppProfile


@dataclass
class DvfsPoint:
    """One frequency point: voltages and the energy multipliers they imply."""

    freq_ghz: float
    pair: VoltagePair
    cmos_energy_scale: float
    tfet_energy_scale: float
    cmos_leakage_scale: float
    tfet_leakage_scale: float


class HetCoreDvfs:
    """Voltage/energy bookkeeping for frequency and variation studies."""

    def __init__(self, solver: DvfsSolver | None = None):
        self.solver = solver or DvfsSolver()

    def point(self, freq_ghz: float) -> DvfsPoint:
        """Voltage pair and energy scales for a core frequency."""
        pair = self.solver.pair_for(freq_ghz)
        return DvfsPoint(
            freq_ghz=freq_ghz,
            pair=pair,
            cmos_energy_scale=dynamic_energy_scale(pair.v_cmos, NOMINAL_V_CMOS),
            tfet_energy_scale=dynamic_energy_scale(pair.v_tfet, NOMINAL_V_TFET),
            cmos_leakage_scale=leakage_power_scale(pair.v_cmos, NOMINAL_V_CMOS),
            tfet_leakage_scale=leakage_power_scale(pair.v_tfet, NOMINAL_V_TFET),
        )

    def knobs_for(self, freq_ghz: float) -> ScalingKnobs:
        """Energy-model knobs for a DVFS point."""
        p = self.point(freq_ghz)
        return ScalingKnobs(
            cmos_energy=p.cmos_energy_scale,
            tfet_energy=p.tfet_energy_scale,
            cmos_leakage=p.cmos_leakage_scale,
            tfet_leakage=p.tfet_leakage_scale,
        )

    def variation_knobs(
        self, guardbands: VariationGuardbands | None = None
    ) -> ScalingKnobs:
        """Energy-model knobs under process-variation guardbands at 2 GHz."""
        g = guardbands or VariationGuardbands()
        return ScalingKnobs(
            cmos_energy=g.cmos_energy_scale(NOMINAL_V_CMOS),
            tfet_energy=g.tfet_energy_scale(NOMINAL_V_TFET),
            cmos_leakage=g.cmos_leakage_scale(NOMINAL_V_CMOS),
            tfet_leakage=g.tfet_leakage_scale(NOMINAL_V_TFET),
        )

    def simulate_at(
        self,
        design: CpuDesign,
        app: "str | AppProfile",
        freq_ghz: float,
        variation: bool = False,
        instructions: int | None = None,
        warmup: int | None = None,
    ) -> CpuRunResult:
        """Run a design at a DVFS point (optionally with guardbands).

        The performance simulation reruns at the new frequency (the DRAM
        round trip changes in cycles); the energy accounting applies the
        voltage scales on top of the design's own knobs.
        """
        from repro.core.simulate import DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP
        from repro.power.model import cpu_energy

        scaled = replace(design, freq_ghz=freq_ghz)
        result = simulate_cpu(
            scaled,
            app,
            instructions=instructions or DEFAULT_INSTRUCTIONS,
            warmup=warmup or DEFAULT_WARMUP,
        )
        if variation:
            v = self.variation_knobs()
        else:
            v = self.knobs_for(freq_ghz)
        knobs = scaled.energy_knobs()
        knobs.work_scale = result.multicore.total_work / result.core.committed
        knobs.cmos_energy = v.cmos_energy
        knobs.tfet_energy = v.tfet_energy
        knobs.cmos_leakage = v.cmos_leakage
        knobs.tfet_leakage = v.tfet_leakage
        result.energy = cpu_energy(
            result.core.activity,
            result.time_s,
            device_map=scaled.device_map(),
            asym_dl1=scaled.asym_dl1,
            knobs=knobs,
        )
        return result
