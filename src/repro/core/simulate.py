"""Top-level simulation API: run a configuration on a workload.

``simulate_cpu(design, app)`` assembles the core (latency tables, DL1
organisation, resources, steering), runs the app's synthetic trace through
the cycle-level engine within the multicore wrapper, feeds the measured
activity into the power model, and returns time / energy / ED / ED^2.
``simulate_gpu`` does the same for a GPU design and a kernel.

Determinism: the same (design, workload, instructions, seed) always
produces identical results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.hetcore import CpuDesign, GpuDesign
from repro.cpu.core import CoreConfig, CoreResult, OutOfOrderCore
from repro.cpu.multicore import MulticoreResult, run_multicore
from repro.gpu.cu import CUConfig
from repro.gpu.gpu import GpuConfig, GpuResult, run_gpu, run_gpu_batch
from repro.power.metrics import ed2_product, ed_product
from repro.power.model import EnergyBreakdown, cpu_energy, gpu_energy
from repro.workloads.gpu_profiles import KernelProfile, gpu_kernel
from repro.workloads.profiles import AppProfile, cpu_app
from repro.workloads.trace_cache import cached_kernel, cached_trace

#: Default measured window per core (instructions) and cache/predictor
#: warm-up, sized so a full sweep stays tractable in pure Python while
#: keeping cache/predictor statistics converged.
DEFAULT_INSTRUCTIONS = 60_000
DEFAULT_WARMUP = 20_000


@dataclass
class CpuRunResult:
    """One (CPU configuration, application) measurement."""

    config: str
    app: str
    time_s: float
    energy: EnergyBreakdown
    multicore: MulticoreResult

    @property
    def energy_j(self) -> float:
        return self.energy.total

    @property
    def ed(self) -> float:
        return ed_product(self.energy_j, self.time_s)

    @property
    def ed2(self) -> float:
        return ed2_product(self.energy_j, self.time_s)

    @property
    def core(self) -> CoreResult:
        return self.multicore.representative

    @property
    def power_w(self) -> float:
        return self.energy_j / self.time_s if self.time_s else 0.0


@dataclass
class GpuRunResult:
    """One (GPU configuration, kernel) measurement."""

    config: str
    kernel: str
    time_s: float
    energy: EnergyBreakdown
    gpu: GpuResult

    @property
    def energy_j(self) -> float:
        return self.energy.total

    @property
    def ed(self) -> float:
        return ed_product(self.energy_j, self.time_s)

    @property
    def ed2(self) -> float:
        return ed2_product(self.energy_j, self.time_s)

    @property
    def power_w(self) -> float:
        return self.energy_j / self.time_s if self.time_s else 0.0


def _prewarm(hierarchy, profile: AppProfile) -> None:
    """Functionally warm the resident regions (largest first, so recency
    ends up hottest-innermost).  Region bases mirror the trace generator's
    layout."""
    from repro.workloads import generator as g

    hierarchy.prewarm_region(g._BIG_BASE, profile.big_mb * 1024 * 1024)
    hierarchy.prewarm_region(g._WARM_BASE, profile.warm_kb * 1024)
    hierarchy.prewarm_region(g._HOT_BASE, profile.hot_kb * 1024, into_l1=True)
    hierarchy.prewarm_region(g._STACK_BASE, profile.stack_kb * 1024, into_l1=True)


def simulate_cpu(
    design: CpuDesign,
    app: "str | AppProfile",
    instructions: int = DEFAULT_INSTRUCTIONS,
    warmup: int = DEFAULT_WARMUP,
    detailed_cores: int = 1,
    seed: int = 0,
    tracer=None,
) -> CpuRunResult:
    """Run one CPU configuration on one application.

    ``instructions`` is the per-core trace length (including ``warmup``
    instructions of cache/predictor warm-up that are excluded from the
    measurement).  Energy is chip-level: dynamic for the fixed total work,
    leakage for all ``design.n_cores`` cores over the parallel runtime.
    ``tracer`` (a :class:`repro.obs.trace.PipelineTracer`) records the
    first detailed core's pipeline events when given.
    """
    profile = cpu_app(app) if isinstance(app, str) else app

    def core_factory(core_idx: int, n_cores: int) -> OutOfOrderCore:
        hierarchy = design.build_hierarchy(mem_intensity=profile.mem_intensity)
        _prewarm(hierarchy, profile)
        config = CoreConfig(
            freq_ghz=design.freq_ghz,
            resources=design.resources(),
            steering_enabled=design.dual_speed_alu,
        )
        return OutOfOrderCore(
            config,
            hierarchy,
            design.build_units(),
            name=f"cpu.core{core_idx}",
            tracer=tracer if core_idx == 0 else None,
        )

    def trace_factory(core_idx: int):
        # Cached: the N configurations of a sweep share one trace per
        # (profile, length, seed) -- generation is deterministic and the
        # engines treat trace arrays as read-only.
        return cached_trace(profile, instructions, seed=seed + core_idx)

    multicore = run_multicore(
        core_factory,
        trace_factory,
        profile,
        n_cores=design.n_cores,
        warmup=warmup,
        detailed_cores=detailed_cores,
    )
    rep = multicore.representative
    knobs = design.energy_knobs()
    knobs.work_scale = multicore.total_work / rep.committed
    energy = cpu_energy(
        rep.activity,
        multicore.time_s,
        device_map=design.device_map(),
        asym_dl1=design.asym_dl1,
        knobs=knobs,
    )
    return CpuRunResult(
        config=design.name,
        app=profile.name,
        time_s=multicore.time_s,
        energy=energy,
        multicore=multicore,
    )


@dataclass
class CpuCellOutcome:
    """One cell's outcome from :func:`simulate_cpu_batch`."""

    result: "CpuRunResult | None"
    error: "Exception | None"


def simulate_cpu_batch(
    cells: "list[tuple[CpuDesign, str | AppProfile]]",
    instructions: int = DEFAULT_INSTRUCTIONS,
    warmup: int = DEFAULT_WARMUP,
    seed: int = 0,
) -> "list[CpuCellOutcome]":
    """Run many (design, app) cells with per-cell failure containment.

    The CPU engine's per-uop control flow cannot run multiple cells in
    SIMT lockstep the way the GPU scoreboard can, so cells execute
    sequentially -- but the batch still amortises what is shareable:
    the trace cache hands every cell of an app the same trace objects
    and the SoA decode (:mod:`repro.cpu.soa`) memoised on them, so the
    per-run unboxing PR 5 paid once per (config, core) is paid once per
    app.  Results are byte-identical to calling :func:`simulate_cpu`
    per cell; a raising cell yields ``error`` while its siblings
    complete.
    """
    outcomes: "list[CpuCellOutcome]" = []
    for design, app in cells:
        try:
            result = simulate_cpu(
                design, app, instructions=instructions, warmup=warmup,
                seed=seed,
            )
        except Exception as exc:
            outcomes.append(CpuCellOutcome(result=None, error=exc))
        else:
            outcomes.append(CpuCellOutcome(result=result, error=None))
    return outcomes


def _gpu_config(design: GpuDesign) -> GpuConfig:
    """The whole-GPU config a design resolves to (shared by the serial
    and batched paths so they cannot drift)."""
    return GpuConfig(
        cu=CUConfig(
            freq_ghz=design.freq_ghz,
            fma_depth=design.fma_depth(),
            rf_cycles=design.rf_cycles(),
            rf_cache_enabled=design.rf_cache,
        ),
        n_cus=design.n_cus,
    )


def _gpu_run_result(
    design: GpuDesign, profile: KernelProfile, result: GpuResult
) -> GpuRunResult:
    """Energy/ED bookkeeping shared by the serial and batched paths."""
    knobs = design.energy_knobs()
    # The detailed CU executed one CU's share of the reference machine's
    # work; the whole job is 8 such shares regardless of this design's CU
    # count (fixed total work).
    knobs.work_scale = 8.0
    energy = gpu_energy(
        result.cu_result,
        result.time_s,
        device_map=design.device_map(),
        rf_cache_enabled=design.rf_cache,
        knobs=knobs,
    )
    return GpuRunResult(
        config=design.name,
        kernel=profile.name,
        time_s=result.time_s,
        energy=energy,
        gpu=result,
    )


@dataclass
class GpuCellOutcome:
    """One cell's outcome from :func:`simulate_gpu_batch`."""

    result: "GpuRunResult | None"
    error: "Exception | None"
    vectorized: bool = False
    #: Idle cycles the event-driven skip jumped over (telemetry only).
    skipped_cycles: int = 0
    skip_events: int = 0


def simulate_gpu_batch(
    cells: "list[tuple[GpuDesign, str | KernelProfile]]",
    seed: int = 0,
) -> "list[GpuCellOutcome]":
    """Run many (design, kernel) cells through the batched GPU engine.

    The batch driver amortises trace-cache lookups and engine
    construction across the batch while producing per-cell results
    byte-identical to :func:`simulate_gpu`.  A cell that raises --
    during setup, inside the engine, or in the energy model -- yields an
    outcome with ``error`` set; the other cells complete normally.
    """
    resolved: "list[tuple[GpuDesign, KernelProfile] | None]" = []
    engine_cells = []
    outcomes: "list[GpuCellOutcome | None]" = [None] * len(cells)
    for idx, (design, kernel) in enumerate(cells):
        try:
            profile = gpu_kernel(kernel) if isinstance(kernel, str) else kernel
            trace = cached_kernel(profile, seed=seed)
            engine_cells.append((_gpu_config(design), trace))
            resolved.append((design, profile))
        except Exception as exc:
            outcomes[idx] = GpuCellOutcome(result=None, error=exc)
            resolved.append(None)
    engine_outcomes = iter(run_gpu_batch(engine_cells))
    for idx, pair in enumerate(resolved):
        if pair is None:
            continue
        design, profile = pair
        out = next(engine_outcomes)
        if out.error is not None:
            outcomes[idx] = GpuCellOutcome(
                result=None,
                error=out.error,
                vectorized=out.vectorized,
                skipped_cycles=out.skipped_cycles,
                skip_events=out.skip_events,
            )
            continue
        try:
            run_result = _gpu_run_result(design, profile, out.result)
        except Exception as exc:
            outcomes[idx] = GpuCellOutcome(
                result=None,
                error=exc,
                vectorized=out.vectorized,
                skipped_cycles=out.skipped_cycles,
                skip_events=out.skip_events,
            )
            continue
        outcomes[idx] = GpuCellOutcome(
            result=run_result,
            error=None,
            vectorized=out.vectorized,
            skipped_cycles=out.skipped_cycles,
            skip_events=out.skip_events,
        )
    return outcomes


def simulate_gpu(
    design: GpuDesign,
    kernel: "str | KernelProfile",
    seed: int = 0,
    tracer=None,
) -> GpuRunResult:
    """Run one GPU configuration on one kernel.

    Energy is chip-level: dynamic for the fixed total work (the reference
    8-CU machine's), leakage for all ``design.n_cus`` compute units over
    the parallel runtime.
    """
    profile = gpu_kernel(kernel) if isinstance(kernel, str) else kernel
    trace = cached_kernel(profile, seed=seed)
    result = run_gpu(_gpu_config(design), trace, tracer=tracer)
    return _gpu_run_result(design, profile, result)
