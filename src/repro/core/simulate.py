"""Top-level simulation API: run a configuration on a workload.

``simulate_cpu(design, app)`` assembles the core (latency tables, DL1
organisation, resources, steering), runs the app's synthetic trace through
the cycle-level engine within the multicore wrapper, feeds the measured
activity into the power model, and returns time / energy / ED / ED^2.
``simulate_gpu`` does the same for a GPU design and a kernel.

Determinism: the same (design, workload, instructions, seed) always
produces identical results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.hetcore import CpuDesign, GpuDesign
from repro.cpu.core import CoreConfig, CoreResult, OutOfOrderCore
from repro.cpu.multicore import MulticoreResult, run_multicore
from repro.gpu.cu import CUConfig
from repro.gpu.gpu import GpuConfig, GpuResult, run_gpu
from repro.power.metrics import ed2_product, ed_product
from repro.power.model import EnergyBreakdown, cpu_energy, gpu_energy
from repro.workloads.gpu_profiles import KernelProfile, gpu_kernel
from repro.workloads.profiles import AppProfile, cpu_app
from repro.workloads.trace_cache import cached_kernel, cached_trace

#: Default measured window per core (instructions) and cache/predictor
#: warm-up, sized so a full sweep stays tractable in pure Python while
#: keeping cache/predictor statistics converged.
DEFAULT_INSTRUCTIONS = 60_000
DEFAULT_WARMUP = 20_000


@dataclass
class CpuRunResult:
    """One (CPU configuration, application) measurement."""

    config: str
    app: str
    time_s: float
    energy: EnergyBreakdown
    multicore: MulticoreResult

    @property
    def energy_j(self) -> float:
        return self.energy.total

    @property
    def ed(self) -> float:
        return ed_product(self.energy_j, self.time_s)

    @property
    def ed2(self) -> float:
        return ed2_product(self.energy_j, self.time_s)

    @property
    def core(self) -> CoreResult:
        return self.multicore.representative

    @property
    def power_w(self) -> float:
        return self.energy_j / self.time_s if self.time_s else 0.0


@dataclass
class GpuRunResult:
    """One (GPU configuration, kernel) measurement."""

    config: str
    kernel: str
    time_s: float
    energy: EnergyBreakdown
    gpu: GpuResult

    @property
    def energy_j(self) -> float:
        return self.energy.total

    @property
    def ed(self) -> float:
        return ed_product(self.energy_j, self.time_s)

    @property
    def ed2(self) -> float:
        return ed2_product(self.energy_j, self.time_s)

    @property
    def power_w(self) -> float:
        return self.energy_j / self.time_s if self.time_s else 0.0


def _prewarm(hierarchy, profile: AppProfile) -> None:
    """Functionally warm the resident regions (largest first, so recency
    ends up hottest-innermost).  Region bases mirror the trace generator's
    layout."""
    from repro.workloads import generator as g

    hierarchy.prewarm_region(g._BIG_BASE, profile.big_mb * 1024 * 1024)
    hierarchy.prewarm_region(g._WARM_BASE, profile.warm_kb * 1024)
    hierarchy.prewarm_region(g._HOT_BASE, profile.hot_kb * 1024, into_l1=True)
    hierarchy.prewarm_region(g._STACK_BASE, profile.stack_kb * 1024, into_l1=True)


def simulate_cpu(
    design: CpuDesign,
    app: "str | AppProfile",
    instructions: int = DEFAULT_INSTRUCTIONS,
    warmup: int = DEFAULT_WARMUP,
    detailed_cores: int = 1,
    seed: int = 0,
    tracer=None,
) -> CpuRunResult:
    """Run one CPU configuration on one application.

    ``instructions`` is the per-core trace length (including ``warmup``
    instructions of cache/predictor warm-up that are excluded from the
    measurement).  Energy is chip-level: dynamic for the fixed total work,
    leakage for all ``design.n_cores`` cores over the parallel runtime.
    ``tracer`` (a :class:`repro.obs.trace.PipelineTracer`) records the
    first detailed core's pipeline events when given.
    """
    profile = cpu_app(app) if isinstance(app, str) else app

    def core_factory(core_idx: int, n_cores: int) -> OutOfOrderCore:
        hierarchy = design.build_hierarchy(mem_intensity=profile.mem_intensity)
        _prewarm(hierarchy, profile)
        config = CoreConfig(
            freq_ghz=design.freq_ghz,
            resources=design.resources(),
            steering_enabled=design.dual_speed_alu,
        )
        return OutOfOrderCore(
            config,
            hierarchy,
            design.build_units(),
            name=f"cpu.core{core_idx}",
            tracer=tracer if core_idx == 0 else None,
        )

    def trace_factory(core_idx: int):
        # Cached: the N configurations of a sweep share one trace per
        # (profile, length, seed) -- generation is deterministic and the
        # engines treat trace arrays as read-only.
        return cached_trace(profile, instructions, seed=seed + core_idx)

    multicore = run_multicore(
        core_factory,
        trace_factory,
        profile,
        n_cores=design.n_cores,
        warmup=warmup,
        detailed_cores=detailed_cores,
    )
    rep = multicore.representative
    knobs = design.energy_knobs()
    knobs.work_scale = multicore.total_work / rep.committed
    energy = cpu_energy(
        rep.activity,
        multicore.time_s,
        device_map=design.device_map(),
        asym_dl1=design.asym_dl1,
        knobs=knobs,
    )
    return CpuRunResult(
        config=design.name,
        app=profile.name,
        time_s=multicore.time_s,
        energy=energy,
        multicore=multicore,
    )


def simulate_gpu(
    design: GpuDesign,
    kernel: "str | KernelProfile",
    seed: int = 0,
    tracer=None,
) -> GpuRunResult:
    """Run one GPU configuration on one kernel.

    Energy is chip-level: dynamic for the fixed total work (the reference
    8-CU machine's), leakage for all ``design.n_cus`` compute units over
    the parallel runtime.
    """
    profile = gpu_kernel(kernel) if isinstance(kernel, str) else kernel
    trace = cached_kernel(profile, seed=seed)
    gpu_cfg = GpuConfig(
        cu=CUConfig(
            freq_ghz=design.freq_ghz,
            fma_depth=design.fma_depth(),
            rf_cycles=design.rf_cycles(),
            rf_cache_enabled=design.rf_cache,
        ),
        n_cus=design.n_cus,
    )
    result = run_gpu(gpu_cfg, trace, tracer=tracer)
    knobs = design.energy_knobs()
    # The detailed CU executed one CU's share of the reference machine's
    # work; the whole job is 8 such shares regardless of this design's CU
    # count (fixed total work).
    knobs.work_scale = 8.0
    energy = gpu_energy(
        result.cu_result,
        result.time_s,
        device_map=design.device_map(),
        rf_cache_enabled=design.rf_cache,
        knobs=knobs,
    )
    return GpuRunResult(
        config=design.name,
        kernel=profile.name,
        time_s=result.time_s,
        energy=energy,
        gpu=result,
    )
