"""One entry point per paper exhibit.

Each function returns a :class:`FigureResult` carrying the structured data,
a formatted text table (the same rows/series the paper plots), and the
paper's reported mean values so callers can print paper-vs-measured
comparisons.  Perf/energy exhibits take a :class:`SweepRunner` so multiple
figures share one sweep.

Sweeps are gap-tolerant: a cell whose run failed (recorded in the
runner's failure taxonomy, see :mod:`repro.resilience`) arrives as
``None``, renders as ``--`` in the tables, and is excluded from the
means -- a partial sweep still yields a figure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.core.configs import (
    CPU_MAIN_CONFIGS,
    CPU_SENSITIVITY_CONFIGS,
    GPU_MAIN_CONFIGS,
    design_modifications,
    machine_params,
    CPU_CONFIGS,
    GPU_CONFIGS,
)
from repro.devices.activity import alu_power_curves
from repro.devices.iv import figure1_series
from repro.devices.technology import table1_rows
from repro.devices.vf import DvfsSolver
from repro.experiments.runner import SweepRunner, shared_runner
from repro.power.metrics import arithmetic_mean


@dataclass
class FigureResult:
    """A regenerated paper exhibit."""

    exhibit: str
    title: str
    rows: dict
    table: str
    paper_means: dict = field(default_factory=dict)
    measured_means: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"== {self.exhibit}: {self.title} ==\n{self.table}"


def _ratio(run, base, metric: Callable) -> float:
    """metric(run)/metric(base), or NaN when either cell is a gap."""
    if run is None or base is None:
        return float("nan")
    return metric(run) / metric(base)


def _finite_mean(values: list) -> float:
    """Arithmetic mean over the non-gap values (NaN when all are gaps)."""
    finite = [v for v in values if v is not None and math.isfinite(v)]
    return arithmetic_mean(finite) if finite else float("nan")


def _fmt_matrix(
    row_names: list[str], col_names: list[str], cells: dict, width: int = 9
) -> str:
    """Format {row: {col: float}} as an aligned text table.

    Failed sweep cells (NaN) render as ``--`` so a partial sweep still
    produces a readable exhibit.
    """
    name_w = max(len(r) for r in row_names) + 2
    header = " " * name_w + "".join(f"{c:>{max(width, len(c) + 1)}}" for c in col_names)
    lines = [header]
    for r in row_names:
        cols = ""
        for c in col_names:
            w = max(width, len(c) + 1)
            value = cells[r][c]
            if value is None or not math.isfinite(value):
                cols += f"{'--':>{w}}"
            else:
                cols += f"{value:>{w}.3f}"
        lines.append(f"{r:<{name_w}}" + cols)
    return "\n".join(lines)


# ---------------------------------------------------------------------
# Device exhibits (Tables I, Figures 1-3)
# ---------------------------------------------------------------------

def table1() -> FigureResult:
    """Table I: device characteristics at 15 nm."""
    rows = table1_rows()
    cols = ["Si-CMOS", "HetJTFET", "InAs-CMOS", "HomJTFET"]
    lines = [f"{'Parameter':<48}" + "".join(f"{c:>11}" for c in cols)]
    for row in rows:
        vals = "".join(f"{row[c]:>11.2f}" for c in cols)
        lines.append(f"{row['Parameter']:<48}" + vals)
    return FigureResult(
        exhibit="Table I",
        title="Characteristics of CMOS and TFET technologies at 15nm",
        rows={"rows": rows},
        table="\n".join(lines),
    )


def figure1() -> FigureResult:
    """Figure 1: I_D-V_G characteristics of N-HetJTFET and N-MOSFET."""
    series = figure1_series()
    lines = [f"{'Vg (V)':>8}{'MOSFET (A)':>14}{'HetJTFET (A)':>14}"]
    for vg, m, t in zip(series["vg_v"], series["mosfet_a"], series["hetjtfet_a"]):
        lines.append(f"{vg:>8.3f}{m:>14.3e}{t:>14.3e}")
    # The qualitative anchors the paper's Figure 1 shows.
    cross = next(
        (
            vg
            for vg, m, t in zip(
                series["vg_v"], series["mosfet_a"], series["hetjtfet_a"]
            )
            if m > t and vg > 0.3
        ),
        None,
    )
    return FigureResult(
        exhibit="Figure 1",
        title="I-V characteristics (TFET steep slope, saturates ~0.6V)",
        rows=series,
        table="\n".join(lines),
        paper_means={"crossover_v": 0.6},
        measured_means={"crossover_v": cross},
    )


def figure2() -> FigureResult:
    """Figure 2: total ALU power vs activity factor."""
    curves = alu_power_curves()
    lines = [f"{'activity':>9}{'CMOS (uW)':>12}{'TFET (uW)':>12}{'ratio':>9}"]
    for af, c, t, r in zip(
        curves["activity_factor"], curves["cmos_uw"], curves["tfet_uw"], curves["ratio"]
    ):
        lines.append(f"{af:>9.2f}{c:>12.2f}{t:>12.2f}{r:>9.1f}")
    return FigureResult(
        exhibit="Figure 2",
        title="ALU power vs activity factor (CMOS dual-Vt vs HetJTFET)",
        rows=curves,
        table="\n".join(lines),
        paper_means={"ratio_at_zero_activity": 125.0, "ratio_at_full_activity": 4.0},
        measured_means={
            "ratio_at_zero_activity": curves["ratio"][0],
            "ratio_at_full_activity": curves["ratio"][-1],
        },
    )


def figure3() -> FigureResult:
    """Figure 3: Vdd-frequency curves and the DVFS voltage deltas."""
    solver = DvfsSolver()
    series = solver.figure3_series()
    boost = solver.pair_for(2.5)
    slow = solver.pair_for(1.5)
    lines = [f"{'V (V)':>8}{'CMOS (GHz)':>12}   |{'V (V)':>8}{'TFET (GHz)':>12}"]
    for cv, cf, tv, tf in zip(
        series["cmos_v"], series["cmos_ghz"], series["tfet_v"], series["tfet_ghz"]
    ):
        lines.append(f"{cv:>8.3f}{cf:>12.3f}   |{tv:>8.3f}{tf:>12.3f}")
    return FigureResult(
        exhibit="Figure 3",
        title="Vdd-frequency curves for Si-CMOS and HetJTFET",
        rows=series,
        table="\n".join(lines),
        paper_means={
            "boost_dv_cmos_mv": 75.0,
            "boost_dv_tfet_mv": 90.0,
            "slow_dv_cmos_mv": -70.0,
            "slow_dv_tfet_mv": -80.0,
        },
        measured_means={
            "boost_dv_cmos_mv": boost.delta_v_cmos_mv,
            "boost_dv_tfet_mv": boost.delta_v_tfet_mv,
            "slow_dv_cmos_mv": slow.delta_v_cmos_mv,
            "slow_dv_tfet_mv": slow.delta_v_tfet_mv,
        },
    )


# ---------------------------------------------------------------------
# Configuration tables (Tables II-IV)
# ---------------------------------------------------------------------

def table2() -> FigureResult:
    """Table II: design modifications for HetCore."""
    mods = design_modifications()
    lines = [f"{'Design':<10}{'CPU Structures':<55}GPU Structures"]
    for name, row in mods.items():
        lines.append(f"{name:<10}{row['CPU']:<55}{row['GPU']}")
    return FigureResult(
        exhibit="Table II", title="Design modifications for HetCore",
        rows=mods, table="\n".join(lines),
    )


def table3() -> FigureResult:
    """Table III: parameters of the simulated architecture."""
    params = machine_params()
    width = max(len(k) for k in params) + 2
    lines = [f"{k:<{width}}{v}" for k, v in params.items()]
    return FigureResult(
        exhibit="Table III", title="Parameters of the simulated architecture",
        rows=params, table="\n".join(lines),
    )


def table4() -> FigureResult:
    """Table IV: configurations evaluated."""
    lines = ["CPU configurations:"]
    for name, d in CPU_CONFIGS.items():
        lines.append(f"  {name:<17}{d.notes}")
    lines.append("GPU configurations:")
    for name, d in GPU_CONFIGS.items():
        lines.append(f"  {name:<17}{d.notes}")
    return FigureResult(
        exhibit="Table IV", title="CPU and GPU configurations evaluated",
        rows={"cpu": dict(CPU_CONFIGS), "gpu": dict(GPU_CONFIGS)},
        table="\n".join(lines),
    )


# ---------------------------------------------------------------------
# CPU evaluation (Figures 7-9, 13, 14)
# ---------------------------------------------------------------------

def _cpu_metric_matrix(
    runner: SweepRunner, configs: list[str], metric: Callable
) -> tuple[dict, dict]:
    """Per-app normalised metric plus per-config means."""
    sweep = runner.cpu_sweep(configs)
    apps = runner.settings.apps
    cells: dict[str, dict[str, float]] = {app: {} for app in apps}
    for config in configs:
        for app in apps:
            cells[app][config] = _ratio(sweep[config][app], sweep["BaseCMOS"][app], metric)
    means = {
        config: _finite_mean([cells[app][config] for app in apps])
        for config in configs
    }
    cells["MEAN"] = means
    return cells, means


def figure7(runner: SweepRunner | None = None) -> FigureResult:
    """Figure 7: CPU execution time, normalised to BaseCMOS."""
    runner = runner or shared_runner()
    cells, means = _cpu_metric_matrix(
        runner, CPU_MAIN_CONFIGS, lambda r: r.time_s
    )
    return FigureResult(
        exhibit="Figure 7",
        title="Execution time of CPU designs (normalised to BaseCMOS)",
        rows=cells,
        table=_fmt_matrix(list(cells), CPU_MAIN_CONFIGS, cells),
        paper_means={
            "BaseCMOS": 1.0, "BaseCMOS-Enh": 1.0, "BaseTFET": 1.96,
            "BaseHet": 1.40, "AdvHet": 1.10, "AdvHet-2X": 0.68,
        },
        measured_means=means,
    )


def figure8(runner: SweepRunner | None = None) -> FigureResult:
    """Figure 8: CPU energy, normalised, with core/L2/L3 x dyn/leak split."""
    runner = runner or shared_runner()
    sweep = runner.cpu_sweep(CPU_MAIN_CONFIGS)
    apps = runner.settings.apps
    cells: dict[str, dict[str, float]] = {app: {} for app in apps}
    breakdown: dict[str, dict[str, float]] = {}
    for config in CPU_MAIN_CONFIGS:
        parts = {k: 0.0 for k in (
            "core-dyn", "core-leak", "l2-dyn", "l2-leak", "l3-dyn", "l3-leak")}
        for app in apps:
            run, base_run = sweep[config][app], sweep["BaseCMOS"][app]
            if run is None or base_run is None:
                cells[app][config] = float("nan")
                continue
            base = base_run.energy_j
            e = run.energy
            cells[app][config] = e.total / base
            for group in ("core", "l2", "l3"):
                parts[f"{group}-dyn"] += e.dynamic_j.get(group, 0.0) / base / len(apps)
                parts[f"{group}-leak"] += e.leakage_j.get(group, 0.0) / base / len(apps)
        breakdown[config] = parts
    means = {
        config: _finite_mean([cells[app][config] for app in apps])
        for config in CPU_MAIN_CONFIGS
    }
    cells["MEAN"] = means
    table = _fmt_matrix(list(cells), CPU_MAIN_CONFIGS, cells)
    bd_lines = ["", "Mean breakdown (fractions of BaseCMOS total):"]
    for config, parts in breakdown.items():
        detail = "  ".join(f"{k}={v:.3f}" for k, v in parts.items())
        bd_lines.append(f"  {config:<13}{detail}")
    return FigureResult(
        exhibit="Figure 8",
        title="Energy of CPU designs (normalised to BaseCMOS)",
        rows={"cells": cells, "breakdown": breakdown},
        table=table + "\n" + "\n".join(bd_lines),
        paper_means={
            "BaseCMOS": 1.0, "BaseCMOS-Enh": 1.0, "BaseTFET": 0.24,
            "BaseHet": 0.65, "AdvHet": 0.61, "AdvHet-2X": 0.66,
        },
        measured_means=means,
    )


def figure9(runner: SweepRunner | None = None) -> FigureResult:
    """Figure 9: CPU ED^2, normalised to BaseCMOS."""
    runner = runner or shared_runner()
    cells, means = _cpu_metric_matrix(runner, CPU_MAIN_CONFIGS, lambda r: r.ed2)
    return FigureResult(
        exhibit="Figure 9",
        title="ED^2 of CPU designs (normalised to BaseCMOS)",
        rows=cells,
        table=_fmt_matrix(list(cells), CPU_MAIN_CONFIGS, cells),
        paper_means={
            "BaseCMOS": 1.0, "BaseTFET": 0.93, "BaseHet": 1.15,
            "AdvHet": 0.74, "AdvHet-2X": 0.32,
        },
        measured_means=means,
    )


def figure13(runner: SweepRunner | None = None) -> FigureResult:
    """Figure 13: sensitivity analysis (time/energy/ED/ED^2 means)."""
    runner = runner or shared_runner()
    sweep = runner.cpu_sweep(CPU_SENSITIVITY_CONFIGS)
    apps = runner.settings.apps
    metrics = {
        "time": lambda r: r.time_s,
        "energy": lambda r: r.energy_j,
        "ED": lambda r: r.ed,
        "ED^2": lambda r: r.ed2,
    }
    cells: dict[str, dict[str, float]] = {}
    for config in CPU_SENSITIVITY_CONFIGS:
        cells[config] = {}
        for mname, metric in metrics.items():
            vals = [
                _ratio(sweep[config][app], sweep["BaseCMOS"][app], metric)
                for app in apps
            ]
            cells[config][mname] = _finite_mean(vals)
    return FigureResult(
        exhibit="Figure 13",
        title="Sensitivity analysis of HetCore CPU designs (means)",
        rows=cells,
        table=_fmt_matrix(CPU_SENSITIVITY_CONFIGS, list(metrics), cells),
        paper_means={
            "BaseL3-energy": 0.90,
            "BaseHighVt-energy": 1.02,
            "BaseHet-vs-FastALU-time": 1.02,
            "BaseHet-vs-FastALU-energy": 0.90,
            "AdvHet-time": 1.10,
            "AdvHet-energy": 0.61,
        },
        measured_means={
            "BaseL3-energy": cells["BaseL3"]["energy"],
            "BaseHighVt-energy": cells["BaseHighVt"]["energy"],
            "BaseHet-vs-FastALU-time": (
                cells["BaseHet"]["time"] / cells["BaseHet-FastALU"]["time"]
            ),
            "BaseHet-vs-FastALU-energy": (
                cells["BaseHet"]["energy"] / cells["BaseHet-FastALU"]["energy"]
            ),
            "AdvHet-time": cells["AdvHet"]["time"],
            "AdvHet-energy": cells["AdvHet"]["energy"],
        },
    )


def figure14(
    runner: SweepRunner | None = None, apps: list[str] | None = None
) -> FigureResult:
    """Figure 14: DVFS (1.5/2/2.5 GHz) and process-variation energy."""
    runner = runner or shared_runner()
    apps = apps or runner.settings.apps
    points = [
        ("BaseFreq-2GHz", 2.0, False),
        ("BoostFreq-2.5GHz", 2.5, False),
        ("SlowFreq-1.5GHz", 1.5, False),
        ("ProcessVar", 2.0, True),
    ]
    cells: dict[str, dict[str, float]] = {}
    base_runs = {app: runner.dvfs_cell("BaseCMOS", app, 2.0, False) for app in apps}
    base_energy = {
        app: run.energy_j if run is not None else float("nan")
        for app, run in base_runs.items()
    }
    for label, freq, variation in points:
        cells[label] = {}
        for config_name in ("BaseCMOS", "AdvHet"):
            vals = []
            for app in apps:
                run = runner.dvfs_cell(config_name, app, freq, variation)
                vals.append(
                    run.energy_j / base_energy[app]
                    if run is not None
                    else float("nan")
                )
            cells[label][config_name] = _finite_mean(vals)
    means = {
        f"{label}-savings": 1.0 - cells[label]["AdvHet"] / cells[label]["BaseCMOS"]
        for label, _, _ in points
    }
    return FigureResult(
        exhibit="Figure 14",
        title="DVFS and process variation impact on energy",
        rows=cells,
        table=_fmt_matrix(list(cells), ["BaseCMOS", "AdvHet"], cells),
        paper_means={
            "BaseFreq-2GHz-savings": 0.39,
            "BoostFreq-2.5GHz-savings": 0.36,
            "SlowFreq-1.5GHz-savings": 0.43,
            "ProcessVar-savings": 0.37,
        },
        measured_means=means,
    )


# ---------------------------------------------------------------------
# GPU evaluation (Figures 10-12)
# ---------------------------------------------------------------------

def _gpu_metric_matrix(
    runner: SweepRunner, metric: Callable
) -> tuple[dict, dict]:
    sweep = runner.gpu_sweep(GPU_MAIN_CONFIGS)
    kernels = runner.settings.kernels
    cells: dict[str, dict[str, float]] = {k: {} for k in kernels}
    for config in GPU_MAIN_CONFIGS:
        for k in kernels:
            cells[k][config] = _ratio(sweep[config][k], sweep["BaseCMOS"][k], metric)
    means = {
        config: _finite_mean([cells[k][config] for k in kernels])
        for config in GPU_MAIN_CONFIGS
    }
    cells["MEAN"] = means
    return cells, means


def figure10(runner: SweepRunner | None = None) -> FigureResult:
    """Figure 10: GPU execution time, normalised to BaseCMOS."""
    runner = runner or shared_runner()
    cells, means = _gpu_metric_matrix(runner, lambda r: r.time_s)
    return FigureResult(
        exhibit="Figure 10",
        title="Execution time of GPU designs (normalised to BaseCMOS)",
        rows=cells,
        table=_fmt_matrix(list(cells), GPU_MAIN_CONFIGS, cells),
        paper_means={
            "BaseCMOS": 1.0, "BaseTFET": 2.0, "BaseHet": 1.28,
            "AdvHet": 1.20, "AdvHet-2X": 0.70,
        },
        measured_means=means,
    )


def figure11(runner: SweepRunner | None = None) -> FigureResult:
    """Figure 11: GPU energy, normalised to BaseCMOS."""
    runner = runner or shared_runner()
    cells, means = _gpu_metric_matrix(runner, lambda r: r.energy_j)
    return FigureResult(
        exhibit="Figure 11",
        title="Energy of GPU designs (normalised to BaseCMOS)",
        rows=cells,
        table=_fmt_matrix(list(cells), GPU_MAIN_CONFIGS, cells),
        paper_means={
            "BaseCMOS": 1.0, "BaseTFET": 0.25, "BaseHet": 0.65,
            "AdvHet": 0.60, "AdvHet-2X": 0.66,
        },
        measured_means=means,
    )


def figure12(runner: SweepRunner | None = None) -> FigureResult:
    """Figure 12: GPU ED^2, normalised to BaseCMOS."""
    runner = runner or shared_runner()
    cells, means = _gpu_metric_matrix(runner, lambda r: r.ed2)
    return FigureResult(
        exhibit="Figure 12",
        title="ED^2 of GPU designs (normalised to BaseCMOS)",
        rows=cells,
        table=_fmt_matrix(list(cells), GPU_MAIN_CONFIGS, cells),
        paper_means={
            "BaseCMOS": 1.0, "BaseHet": 1.07, "AdvHet": 0.91, "AdvHet-2X": 0.40,
        },
        measured_means=means,
    )


#: Every exhibit, keyed the way DESIGN.md's experiment index names them.
ALL_EXHIBITS: dict[str, Callable[..., FigureResult]] = {
    "table1": table1,
    "figure1": figure1,
    "figure2": figure2,
    "figure3": figure3,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
    "figure11": figure11,
    "figure12": figure12,
    "figure13": figure13,
    "figure14": figure14,
}
