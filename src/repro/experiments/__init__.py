"""Experiment harness: regenerate every table and figure in the paper.

* :mod:`repro.experiments.runner` -- configuration x workload sweeps with
  a shared result cache (figures 7-9 and 13 reuse one CPU sweep).
* :mod:`repro.experiments.figures` -- one entry point per paper exhibit
  (``table1`` ... ``figure14``), each returning structured rows plus a
  formatted text table.
* :mod:`repro.experiments.report` -- paper-vs-measured summary used to
  build EXPERIMENTS.md.
"""

from repro.experiments.runner import SweepRunner, SweepSettings
from repro.experiments.figures import (
    FigureResult,
    table1,
    figure1,
    figure2,
    figure3,
    table2,
    table3,
    table4,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    ALL_EXHIBITS,
)
from repro.experiments.report import paper_vs_measured

__all__ = [
    "SweepRunner",
    "SweepSettings",
    "FigureResult",
    "table1",
    "figure1",
    "figure2",
    "figure3",
    "table2",
    "table3",
    "table4",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "ALL_EXHIBITS",
    "paper_vs_measured",
]
