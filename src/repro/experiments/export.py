"""Export regenerated exhibits to machine-readable formats (CSV / JSON).

The figure entry points return structured :class:`FigureResult` objects;
this module flattens them for plotting pipelines and archival.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any

from repro.experiments.figures import FigureResult


def _flatten(rows: Any) -> "list[dict]":
    """Best-effort flattening of a FigureResult.rows payload."""
    if isinstance(rows, dict):
        # {row: {col: value}} matrices become one record per row.
        if all(isinstance(v, dict) for v in rows.values()):
            return [{"row": name, **value} for name, value in rows.items()]
        # Parallel-list series ({name: [values...]}) become records per index.
        if all(isinstance(v, (list, tuple)) for v in rows.values()):
            lengths = {len(v) for v in rows.values()}
            if len(lengths) == 1:
                n = lengths.pop()
                keys = list(rows)
                return [{k: rows[k][i] for k in keys} for i in range(n)]
        return [{"key": k, "value": v} for k, v in rows.items()]
    raise TypeError(f"cannot flatten rows of type {type(rows).__name__}")


def to_csv(result: FigureResult) -> str:
    """The exhibit's rows as CSV text."""
    records = _flatten(result.rows)
    if not records:
        return ""
    fieldnames: list[str] = []
    for record in records:
        for key in record:
            if key not in fieldnames:
                fieldnames.append(key)
    out = io.StringIO()
    writer = csv.DictWriter(out, fieldnames=fieldnames)
    writer.writeheader()
    for record in records:
        writer.writerow(
            {k: _plain(v) for k, v in record.items() if k in fieldnames}
        )
    return out.getvalue()


def to_json(result: FigureResult) -> str:
    """The whole exhibit (rows + means) as a JSON document."""
    payload = {
        "exhibit": result.exhibit,
        "title": result.title,
        "paper_means": result.paper_means,
        "measured_means": result.measured_means,
        "rows": result.rows,
    }
    return json.dumps(payload, default=_plain, indent=2)


def _plain(value: Any) -> Any:
    """Coerce numpy scalars / dataclasses to JSON/CSV-friendly values."""
    if hasattr(value, "item"):
        return value.item()
    if hasattr(value, "__dict__") and not isinstance(value, type):
        return {k: _plain(v) for k, v in vars(value).items()}
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    return value
