"""Paper-vs-measured reporting (feeds EXPERIMENTS.md)."""

from __future__ import annotations

from repro.experiments.figures import FigureResult


def paper_vs_measured(result: FigureResult) -> str:
    """A markdown table comparing the paper's means with ours."""
    if not result.paper_means:
        return f"*{result.exhibit} is a data/configuration table (no means to compare).*"
    lines = [
        "| quantity | paper | measured |",
        "|---|---|---|",
    ]
    for key, paper_value in result.paper_means.items():
        measured = result.measured_means.get(key)
        measured_str = f"{measured:.3f}" if isinstance(measured, (int, float)) else "n/a"
        lines.append(f"| {key} | {paper_value:.3f} | {measured_str} |")
    return "\n".join(lines)


def full_report(results: "list[FigureResult]") -> str:
    """Markdown report over a list of regenerated exhibits."""
    sections = []
    for result in results:
        sections.append(f"## {result.exhibit}: {result.title}\n")
        sections.append(paper_vs_measured(result))
        sections.append("")
    return "\n".join(sections)
