"""Paper-vs-measured reporting (feeds EXPERIMENTS.md) and stall tables."""

from __future__ import annotations

import math

from repro.experiments.figures import FigureResult

#: Stall-breakdown column order (fractions of measured cycles).
STALL_COLUMNS = ("frontend", "dep", "mem", "structural", "busy")


def paper_vs_measured(result: FigureResult) -> str:
    """A markdown table comparing the paper's means with ours."""
    if not result.paper_means:
        return f"*{result.exhibit} is a data/configuration table (no means to compare).*"
    lines = [
        "| quantity | paper | measured |",
        "|---|---|---|",
    ]
    for key, paper_value in result.paper_means.items():
        measured = result.measured_means.get(key)
        if not isinstance(measured, (int, float)):
            measured_str = "n/a"
        elif not math.isfinite(measured):
            measured_str = "-- (failed cells)"
        else:
            measured_str = f"{measured:.3f}"
        lines.append(f"| {key} | {paper_value:.3f} | {measured_str} |")
    return "\n".join(lines)


def failure_table(failures: "list") -> str:
    """Recorded sweep gaps (``RunFailure`` records) as a markdown table."""
    if not failures:
        return "*no failed cells*"
    lines = [
        "| kind | config | workload | failure | attempts | message |",
        "|---|---|---|---|---|---|",
    ]
    for f in failures:
        workload = f.workload + "".join(f" @{e}" for e in f.extra)
        message = f.message.replace("|", "\\|").replace("\n", " ")
        lines.append(
            f"| {f.run_kind} | {f.config} | {workload} | {f.kind} "
            f"| {f.attempts} | {message} |"
        )
    return "\n".join(lines)


def stall_breakdown_rows(runs: "list") -> "list[dict]":
    """Stall-cycle fractions per CPU run (``CpuRunResult``), one row each.

    Each row carries the identifying config/app pair, the IPC, and one
    column per :data:`STALL_COLUMNS` entry -- the fraction of measured
    cycles on which no op issued for that (first-cause) reason, plus the
    busy remainder.
    """
    rows = []
    for run in runs:
        core = run.core
        breakdown = core.activity.stall_breakdown(core.cycles)
        rows.append(
            {
                "config": run.config,
                "app": run.app,
                "ipc": round(core.ipc, 3),
                **{col: round(breakdown[col], 3) for col in STALL_COLUMNS},
            }
        )
    return rows


def stall_breakdown_table(runs: "list") -> str:
    """The stall breakdown as a markdown table (columns = stall causes)."""
    header = ["config", "app", "ipc", *STALL_COLUMNS]
    lines = [
        "| " + " | ".join(header) + " |",
        "|" + "---|" * len(header),
    ]
    for row in stall_breakdown_rows(runs):
        lines.append(
            "| " + " | ".join(str(row[col]) for col in header) + " |"
        )
    return "\n".join(lines)


def full_report(results: "list[FigureResult]") -> str:
    """Markdown report over a list of regenerated exhibits."""
    sections = []
    for result in results:
        sections.append(f"## {result.exhibit}: {result.title}\n")
        sections.append(paper_vs_measured(result))
        sections.append("")
    return "\n".join(sections)
