"""Sweep runner with a shared result cache.

Figures 7, 8, 9, and 13 all consume the same (configuration x application)
CPU runs, and Figures 10-12 the same GPU runs; the runner executes each
pair once and caches the result.  Sweep size is controlled by
:class:`SweepSettings`; the ``REPRO_INSTRUCTIONS`` / ``REPRO_APPS`` /
``REPRO_KERNELS`` environment variables override it for quick runs.

Every lookup is accounted by the runner's :class:`SweepTelemetry`
(:mod:`repro.obs.telemetry`): executed runs record wall time and simulated
instructions per second, cache-served lookups bump hit counters (also
mirrored into the global metrics registry as ``sweep.cpu.cache_hits``
etc.), and registered progress callbacks fire after each lookup so long
sweeps can report live.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.core.configs import cpu_config, gpu_config
from repro.core.simulate import CpuRunResult, GpuRunResult, simulate_cpu, simulate_gpu
from repro.obs.telemetry import SweepTelemetry
from repro.workloads.gpu_profiles import GPU_KERNELS
from repro.workloads.profiles import CPU_APPS


def _default_instructions() -> int:
    return int(os.environ.get("REPRO_INSTRUCTIONS", 40_000))


def _default_apps() -> list[str]:
    env = os.environ.get("REPRO_APPS")
    if env:
        return [a.strip() for a in env.split(",") if a.strip()]
    return list(CPU_APPS)


def _default_kernels() -> list[str]:
    env = os.environ.get("REPRO_KERNELS")
    if env:
        return [k.strip() for k in env.split(",") if k.strip()]
    return list(GPU_KERNELS)


@dataclass
class SweepSettings:
    """Workload sizing for a sweep."""

    instructions: int = field(default_factory=_default_instructions)
    warmup_fraction: float = 0.375
    apps: list[str] = field(default_factory=_default_apps)
    kernels: list[str] = field(default_factory=_default_kernels)

    @property
    def warmup(self) -> int:
        return int(self.instructions * self.warmup_fraction)


class SweepRunner:
    """Runs and caches (configuration, workload) measurements.

    ``progress`` (or any callback added later via
    ``runner.telemetry.on_progress``) is called with an event dict after
    every lookup -- cached or not -- so callers can surface live status.
    """

    def __init__(
        self,
        settings: SweepSettings | None = None,
        progress: "Callable[[dict], None] | None" = None,
    ):
        self.settings = settings or SweepSettings()
        self.telemetry = SweepTelemetry()
        if progress is not None:
            self.telemetry.on_progress(progress)
        self._cpu_cache: dict[tuple[str, str], CpuRunResult] = {}
        self._gpu_cache: dict[tuple[str, str], GpuRunResult] = {}
        self._dvfs_cache: dict[tuple[str, str, float, bool], CpuRunResult] = {}

    def dvfs_run(
        self, config_name: str, app: str, freq_ghz: float, variation: bool
    ) -> CpuRunResult:
        """A DVFS/guardband point (Figure 14), cached like the sweeps."""
        key = (config_name, app, freq_ghz, variation)
        cached = key in self._dvfs_cache
        wall = 0.0
        if not cached:
            from repro.core.dvfs import HetCoreDvfs

            start = time.perf_counter()
            self._dvfs_cache[key] = HetCoreDvfs().simulate_at(
                cpu_config(config_name),
                app,
                freq_ghz,
                variation=variation,
                instructions=self.settings.instructions,
                warmup=self.settings.warmup,
            )
            wall = time.perf_counter() - start
        result = self._dvfs_cache[key]
        self.telemetry.record_run(
            "dvfs", config_name, app, wall, result.core.committed, cached
        )
        return result

    def cpu_run(self, config_name: str, app: str) -> CpuRunResult:
        key = (config_name, app)
        cached = key in self._cpu_cache
        wall = 0.0
        if not cached:
            start = time.perf_counter()
            self._cpu_cache[key] = simulate_cpu(
                cpu_config(config_name),
                app,
                instructions=self.settings.instructions,
                warmup=self.settings.warmup,
            )
            wall = time.perf_counter() - start
        result = self._cpu_cache[key]
        self.telemetry.record_run(
            "cpu", config_name, app, wall, result.core.committed, cached
        )
        return result

    def gpu_run(self, config_name: str, kernel: str) -> GpuRunResult:
        key = (config_name, kernel)
        cached = key in self._gpu_cache
        wall = 0.0
        if not cached:
            start = time.perf_counter()
            self._gpu_cache[key] = simulate_gpu(gpu_config(config_name), kernel)
            wall = time.perf_counter() - start
        result = self._gpu_cache[key]
        self.telemetry.record_run(
            "gpu",
            config_name,
            kernel,
            wall,
            result.gpu.cu_result.instructions,
            cached,
        )
        return result

    def cpu_sweep(self, config_names: list[str]) -> dict[str, dict[str, CpuRunResult]]:
        """All (config, app) results as {config: {app: result}}."""
        return {
            name: {app: self.cpu_run(name, app) for app in self.settings.apps}
            for name in config_names
        }

    def gpu_sweep(self, config_names: list[str]) -> dict[str, dict[str, GpuRunResult]]:
        return {
            name: {k: self.gpu_run(name, k) for k in self.settings.kernels}
            for name in config_names
        }


#: Process-wide default runner so independent figure calls share runs.
_SHARED: SweepRunner | None = None


def shared_runner() -> SweepRunner:
    """The process-wide cached runner (created on first use)."""
    global _SHARED
    if _SHARED is None:
        _SHARED = SweepRunner()
    return _SHARED
