"""Sweep runner with a shared result cache and a resilient execution path.

Figures 7, 8, 9, and 13 all consume the same (configuration x application)
CPU runs, and Figures 10-12 the same GPU runs; the runner executes each
pair once and caches the result.  Sweep size is controlled by
:class:`SweepSettings`; the ``REPRO_INSTRUCTIONS`` / ``REPRO_APPS`` /
``REPRO_KERNELS`` environment variables override it for quick runs.

Every lookup is accounted by the runner's :class:`SweepTelemetry`
(:mod:`repro.obs.telemetry`): executed runs record wall time and simulated
instructions per second, cache-served lookups bump hit counters (also
mirrored into the global metrics registry as ``sweep.cpu.cache_hits``
etc.), and registered progress callbacks fire after each lookup so long
sweeps can report live.

Resilience (:mod:`repro.resilience`)
------------------------------------
Every execution goes through the guard path: configuration and workload
names are validated *before* anything runs (an unknown name is an
immediate, actionable ``KeyError``, recorded in the failure taxonomy as
``config``/``workload``); the simulation itself runs under the
:class:`~repro.resilience.guard.GuardPolicy` wall-clock timeout and
retry/backoff budget, routed through the env-gated fault injector when one
is active; and results are sanity-checked so a corrupted measurement is
rejected rather than cached.  A cell that exhausts its budget raises
:class:`~repro.resilience.errors.SweepError` from the strict per-cell
methods (``cpu_run`` etc.) but degrades to a recorded gap (``None`` cell,
:class:`~repro.resilience.errors.RunFailure` in :attr:`SweepRunner.failures`)
inside ``cpu_sweep``/``gpu_sweep``/``dvfs_cell`` -- unless the policy says
``fail_fast``.

Attach a checkpoint path to persist the caches across interruptions:
results are saved (versioned JSON, integrity-hashed, keyed on the
settings fingerprint) after every executed run, and ``resume=True``
preloads them so a rerun executes only the missing cells.

Isolation and parallelism
-------------------------
``cpu_sweep`` / ``gpu_sweep`` / ``dvfs_sweep`` accept ``workers=`` and
``isolation=``.  The default (``workers=1``, ``isolation="thread"``) is
the in-process guard path above.  ``isolation="process"`` routes the
missing cells through the supervised multiprocessing executor
(:mod:`repro.resilience.pool`): each attempt runs in its own worker
process, hung attempts are SIGKILLed at the policy timeout (no zombie
CPU burners), and a hard worker crash costs one cell attempt instead of
the sweep.  Results stream back and merge into the caches/checkpoint as
they complete, but the returned mapping is always in deterministic cell
order, so serial and parallel sweeps produce byte-identical reports.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable

from repro import obs
from repro.core.configs import cpu_config, gpu_config
from repro.core.simulate import (
    CpuRunResult,
    GpuRunResult,
    simulate_cpu,
    simulate_cpu_batch,
    simulate_gpu,
    simulate_gpu_batch,
)
from repro.obs.events import get_event_log
from repro.obs.telemetry import SweepTelemetry
from repro.resilience import faults
from repro.resilience.checkpoint import SweepCheckpoint
from repro.resilience.errors import RunFailure, SweepError
from repro.resilience.guard import GuardPolicy, run_guarded, zombie_thread_count
from repro.resilience.selfcheck import validate_result
from repro.workloads.gpu_profiles import GPU_KERNELS, gpu_kernel
from repro.workloads.profiles import CPU_APPS, cpu_app


def _default_instructions() -> int:
    return int(os.environ.get("REPRO_INSTRUCTIONS", 40_000))


def _default_apps() -> list[str]:
    env = os.environ.get("REPRO_APPS")
    if env:
        return [a.strip() for a in env.split(",") if a.strip()]
    return list(CPU_APPS)


def _default_kernels() -> list[str]:
    env = os.environ.get("REPRO_KERNELS")
    if env:
        return [k.strip() for k in env.split(",") if k.strip()]
    return list(GPU_KERNELS)


@dataclass
class SweepSettings:
    """Workload sizing for a sweep."""

    instructions: int = field(default_factory=_default_instructions)
    warmup_fraction: float = 0.375
    apps: list[str] = field(default_factory=_default_apps)
    kernels: list[str] = field(default_factory=_default_kernels)

    @property
    def warmup(self) -> int:
        return int(self.instructions * self.warmup_fraction)

    def fingerprint(self) -> str:
        """A stable digest of everything that shapes the cached results.

        Checkpoints minted under one fingerprint are invalid under any
        other, and :func:`shared_runner` re-keys on it so env overrides
        (``REPRO_APPS`` etc.) changed after first use are honoured.
        """
        payload = {
            "instructions": self.instructions,
            "warmup_fraction": self.warmup_fraction,
            "apps": list(self.apps),
            "kernels": list(self.kernels),
        }
        canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:16]


#: Largest cell batch handed to one pool worker attempt.  Bounds both the
#: blast radius of a worker death (the whole batch requeues as single-cell
#: attempts) and the padded array footprint of the lockstep GPU engine.
POOL_BATCH_MAX = 16


def _resolve_isolation(workers: int, isolation: "str | None") -> str:
    """Default ``isolation`` from ``workers`` and reject bad combinations."""
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if isolation is None:
        isolation = "process" if workers > 1 else "thread"
    if isolation not in ("thread", "process"):
        raise ValueError(
            f"unknown isolation {isolation!r} (expected 'thread' or 'process')"
        )
    if isolation == "thread" and workers > 1:
        raise ValueError(
            "workers > 1 requires isolation='process': thread isolation "
            "cannot parallelise CPU-bound sweeps, nor kill hung attempts"
        )
    return isolation


class SweepRunner:
    """Runs and caches (configuration, workload) measurements.

    ``progress`` (or any callback added later via
    ``runner.telemetry.on_progress``) is called with an event dict after
    every lookup -- cached or not -- so callers can surface live status.

    ``policy`` sets the per-run guard budget (timeout, retries, backoff,
    fail-fast); ``checkpoint`` (a path or :class:`SweepCheckpoint`)
    persists the caches after every executed run, and ``resume=True``
    preloads whatever a matching checkpoint already holds.

    ``store`` (a path or :class:`~repro.store.cas.ResultStore`; default
    from ``REPRO_STORE``) plugs in the durable content-addressed result
    store: cache misses read through it before touching a cycle engine,
    and every executed result is written back, so identical cells are
    served across processes, sweeps, and sessions.  Store I/O is
    strictly best-effort -- a failed read is a miss, a failed write a
    counter -- a broken disk degrades serving, never correctness.
    """

    def __init__(
        self,
        settings: SweepSettings | None = None,
        progress: "Callable[[dict], None] | None" = None,
        policy: GuardPolicy | None = None,
        checkpoint: "str | os.PathLike | SweepCheckpoint | None" = None,
        resume: bool = False,
        store=None,
    ):
        self.settings = settings or SweepSettings()
        self.policy = policy or GuardPolicy()
        self.telemetry = SweepTelemetry()
        if progress is not None:
            self.telemetry.on_progress(progress)
        if store is None:
            store = os.environ.get("REPRO_STORE") or None
        if store is not None and not hasattr(store, "get"):
            from repro.store.cas import ResultStore

            store = ResultStore(store)
        self.store = store
        self._cpu_cache: dict[tuple[str, str], CpuRunResult] = {}
        self._gpu_cache: dict[tuple[str, str], GpuRunResult] = {}
        self._dvfs_cache: dict[tuple[str, str, float, bool], CpuRunResult] = {}
        #: Recorded gaps, keyed by failure cell coordinate.
        self.failures: "dict[tuple, RunFailure]" = {}
        #: Serialises cache/failure/telemetry/checkpoint mutations so the
        #: job service can run concurrent dispatcher threads against one
        #: runner.  Reentrant: merge paths flush the checkpoint inline.
        self._lock = threading.RLock()
        #: In-flight process pools, abortable via :meth:`abort_active_pools`.
        self._active_pools: set = set()
        self._zombie_warned = False
        if checkpoint is None:
            self.checkpoint = None
        elif isinstance(checkpoint, SweepCheckpoint):
            self.checkpoint = checkpoint
        else:
            self.checkpoint = SweepCheckpoint(checkpoint)
        if resume:
            if self.checkpoint is None:
                raise ValueError("resume=True requires a checkpoint")
            self._load_checkpoint()

    # -- checkpointing -------------------------------------------------
    def _load_checkpoint(self) -> None:
        data = self.checkpoint.load(self.settings.fingerprint())
        if data is None:
            self.telemetry.record_checkpoint("invalid")
            return
        self._cpu_cache.update(data.cpu)
        self._gpu_cache.update(data.gpu)
        self._dvfs_cache.update(data.dvfs)
        # Past failures inform reporting but are NOT re-recorded as gaps:
        # the whole point of resuming is to retry exactly those cells.
        self.telemetry.record_checkpoint("load")
        self.telemetry.record_checkpoint("entries_loaded", data.entries)

    def save_checkpoint(self) -> int:
        """Persist the caches now; returns entries written (0 = no path).

        A write failure (full disk, injected EIO/ENOSPC, ...) degrades
        to a recorded ``write_failed`` event: losing one flush costs
        re-execution on resume, never the sweep in progress.
        """
        if self.checkpoint is None:
            return 0
        with self._lock:
            try:
                count = self.checkpoint.save(
                    self.settings.fingerprint(),
                    {
                        "cpu": self._cpu_cache,
                        "gpu": self._gpu_cache,
                        "dvfs": self._dvfs_cache,
                    },
                    list(self.failures.values()),
                )
            except OSError as exc:
                self.telemetry.record_checkpoint("write_failed")
                get_event_log().emit(
                    "checkpoint.write_failed", error=str(exc),
                )
                return 0
            self.telemetry.record_checkpoint("save")
            get_event_log().emit(
                "checkpoint.flush", entries=count,
                failures=len(self.failures),
            )
        return count

    # -- durable result store ------------------------------------------
    def _store_fetch(self, run_kind: str, key: tuple):
        """Read one cell through the durable store; None on miss/error."""
        if self.store is None:
            return None
        config_name, workload, *extra = key
        try:
            result = self.store.get(
                self.settings.fingerprint(), run_kind, config_name,
                workload, tuple(extra),
            )
        except OSError:
            self.telemetry.record_store("errors")
            return None
        if result is None:
            self.telemetry.record_store("misses")
            return None
        self.telemetry.record_store("hits")
        return result

    def _store_put(self, run_kind: str, key: tuple, result) -> None:
        """Best-effort durable write-back of one executed cell."""
        if self.store is None:
            return
        config_name, workload, *extra = key
        try:
            self.store.put(
                self.settings.fingerprint(), run_kind, config_name,
                workload, tuple(extra), result,
            )
        except OSError as exc:
            self.telemetry.record_store("errors")
            get_event_log().emit(
                "store.write_failed", run_kind=run_kind,
                config=config_name, workload=workload, error=str(exc),
            )
            return
        self.telemetry.record_store("puts")

    def lookup_cached(self, run_kind: str, key: tuple):
        """The cached result for a cell, consulting the durable store.

        Returns None when neither the in-memory cache nor the store has
        it.  A store hit is promoted into the memory cache, so callers
        (the fabric coordinator's pre-pass, the job service) can keep
        reading the caches directly afterwards.
        """
        cache = self._cache_for(run_kind)
        if key in cache:
            return cache[key]
        stored = self._store_fetch(run_kind, key)
        if stored is not None:
            with self._lock:
                cache[key] = stored
        return stored

    # -- guarded execution ---------------------------------------------
    def _validated(self, run_kind: str, config_name: str, workload: str):
        """Config/workload name validation, *before* any execution.

        Raises the same actionable ``KeyError`` as
        :func:`repro.core.configs.cpu_config` -- and records the cell in
        the failure taxonomy (kind ``config``/``workload``) on the way
        out, so sweeps degrade it to a gap instead of aborting.
        """
        lookup_config = gpu_config if run_kind == "gpu" else cpu_config
        lookup_workload = gpu_kernel if run_kind == "gpu" else cpu_app
        try:
            design = lookup_config(config_name)
        except KeyError as exc:
            self._record_validation_failure(
                run_kind, config_name, workload, "config", exc
            )
            raise
        try:
            lookup_workload(workload)
        except KeyError as exc:
            self._record_validation_failure(
                run_kind, config_name, workload, "workload", exc
            )
            raise
        return design

    def _record_validation_failure(
        self, run_kind: str, config: str, workload: str, kind: str, exc: Exception
    ) -> None:
        failure = RunFailure(
            run_kind=run_kind,
            config=config,
            workload=workload,
            kind=kind,
            attempts=0,
            message=str(exc).strip('"'),
        )
        with self._lock:
            self.failures[failure.cell] = failure
            self.telemetry.record_failure(failure)

    def _execute(self, run_kind: str, key: tuple, fn: Callable[[], object]):
        """One execution attempt, routed through the fault injector."""
        injector = faults.active()
        if injector is None:
            return fn()
        return injector.call(run_kind, key, fn)

    def _note_zombies(self) -> None:
        """Surface abandoned (unkillable) guard threads after a timeout.

        Thread isolation cannot reclaim a hung attempt: the daemon thread
        keeps burning CPU alongside its retries.  Record the leak in
        telemetry and warn once per sweep so users know process isolation
        (``isolation="process"``) actually kills overrunners.
        """
        zombies = zombie_thread_count()
        if not zombies:
            return
        self.telemetry.record_zombie_threads(zombies)
        if not self._zombie_warned:
            self._zombie_warned = True
            warnings.warn(
                f"{zombies} timed-out attempt(s) left running as zombie "
                f"thread(s) under isolation='thread'; they burn CPU until "
                f"the process exits. Use isolation='process' (sweep "
                f"--isolation process) to SIGKILL hung attempts instead.",
                RuntimeWarning,
                stacklevel=3,
            )

    def _guarded(
        self,
        run_kind: str,
        key: tuple,
        cache: dict,
        fn: Callable[[], object],
        config_name: str,
        workload: str,
        instructions_of: Callable[[object], int],
        extra: tuple = (),
    ):
        """Cache lookup + guarded execution for one sweep cell."""
        cached = key in cache
        if not cached:
            stored = self._store_fetch(run_kind, key)
            if stored is not None:
                with self._lock:
                    cache[key] = stored
                    # A durably stored success supersedes any recorded gap.
                    self.failures.pop(
                        (run_kind, config_name, workload, *extra), None
                    )
                    self.telemetry.record_run(
                        run_kind, config_name, workload, 0.0,
                        instructions_of(stored), cached=True,
                    )
                return stored
            elog = get_event_log()

            def on_retry(attempt: int, kind: str) -> None:
                self.telemetry.record_retry(run_kind, kind)
                elog.emit(
                    "guard.retry", run_kind=run_kind, config=config_name,
                    workload=workload, attempt=attempt, failure_kind=kind,
                )

            with elog.span(
                "cell.attempt", run_kind=run_kind, config=config_name,
                workload=workload,
            ):
                outcome = run_guarded(
                    lambda: self._execute(run_kind, key, fn),
                    policy=self.policy,
                    run_kind=run_kind,
                    config=config_name,
                    workload=workload,
                    extra=extra,
                    validate=lambda result: validate_result(run_kind, result),
                    on_retry=on_retry,
                )
            self._note_zombies()
            if outcome.failure is not None:
                with self._lock:
                    self.failures[outcome.failure.cell] = outcome.failure
                    self.telemetry.record_failure(outcome.failure)
                raise SweepError(outcome.failure)
            with self._lock:
                cache[key] = outcome.result
                # A fresh success supersedes any gap recorded for this cell.
                self.failures.pop(
                    (run_kind, config_name, workload, *extra), None
                )
                self.telemetry.record_run(
                    run_kind,
                    config_name,
                    workload,
                    outcome.wall_s,
                    instructions_of(outcome.result),
                    cached=False,
                )
                self._store_put(run_kind, key, outcome.result)
                if self.checkpoint is not None:
                    self.save_checkpoint()
            return outcome.result
        result = cache[key]
        with self._lock:
            self.telemetry.record_run(
                run_kind, config_name, workload, 0.0,
                instructions_of(result), cached=True,
            )
        return result

    # -- strict per-cell API -------------------------------------------
    def dvfs_run(
        self, config_name: str, app: str, freq_ghz: float, variation: bool
    ) -> CpuRunResult:
        """A DVFS/guardband point (Figure 14), cached like the sweeps."""
        design = self._validated("dvfs", config_name, app)
        key = (config_name, app, freq_ghz, variation)

        def execute() -> CpuRunResult:
            from repro.core.dvfs import HetCoreDvfs

            return HetCoreDvfs().simulate_at(
                design,
                app,
                freq_ghz,
                variation=variation,
                instructions=self.settings.instructions,
                warmup=self.settings.warmup,
            )

        return self._guarded(
            "dvfs",
            key,
            self._dvfs_cache,
            execute,
            config_name,
            app,
            lambda r: r.core.committed,
            extra=(freq_ghz, variation),
        )

    def cpu_run(self, config_name: str, app: str) -> CpuRunResult:
        design = self._validated("cpu", config_name, app)
        key = (config_name, app)

        def execute() -> CpuRunResult:
            return simulate_cpu(
                design,
                app,
                instructions=self.settings.instructions,
                warmup=self.settings.warmup,
            )

        return self._guarded(
            "cpu",
            key,
            self._cpu_cache,
            execute,
            config_name,
            app,
            lambda r: r.core.committed,
        )

    def gpu_run(self, config_name: str, kernel: str) -> GpuRunResult:
        design = self._validated("gpu", config_name, kernel)
        key = (config_name, kernel)

        def execute() -> GpuRunResult:
            return simulate_gpu(design, kernel)

        return self._guarded(
            "gpu",
            key,
            self._gpu_cache,
            execute,
            config_name,
            kernel,
            lambda r: r.gpu.cu_result.instructions,
        )

    # -- gap-tolerant API ----------------------------------------------
    def _cell(self, fn: Callable[[], object]):
        """Run one cell; degrade failures to None unless fail-fast."""
        try:
            return fn()
        except (SweepError, KeyError):
            if self.policy.fail_fast:
                raise
            return None

    def cpu_cell(self, config_name: str, app: str) -> "CpuRunResult | None":
        """Like :meth:`cpu_run`, but a failed cell returns None (recorded
        in :attr:`failures`) instead of raising."""
        return self._cell(lambda: self.cpu_run(config_name, app))

    def gpu_cell(self, config_name: str, kernel: str) -> "GpuRunResult | None":
        return self._cell(lambda: self.gpu_run(config_name, kernel))

    def dvfs_cell(
        self, config_name: str, app: str, freq_ghz: float, variation: bool
    ) -> "CpuRunResult | None":
        return self._cell(
            lambda: self.dvfs_run(config_name, app, freq_ghz, variation)
        )

    def run_cell(
        self,
        run_kind: str,
        config_name: str,
        workload: str,
        extra: tuple = (),
        *,
        isolation: str = "thread",
    ):
        """Execute one cell of any kind; gap-tolerant, isolation-selectable.

        The job service's per-job execution entrypoint: ``"thread"``
        routes through the in-process guard path
        (:meth:`cpu_cell`/:meth:`gpu_cell`/:meth:`dvfs_cell`),
        ``"process"`` through a single-slot supervised worker pool.
        Returns the result or ``None`` with the gap recorded in
        :attr:`failures` -- identical semantics to a one-cell sweep.
        """
        if isolation == "process":
            self._pool_cells(
                run_kind, [(config_name, workload, tuple(extra))], workers=1
            )
            return self._cache_for(run_kind).get(
                (config_name, workload, *extra)
            )
        if run_kind == "cpu":
            return self.cpu_cell(config_name, workload)
        if run_kind == "gpu":
            return self.gpu_cell(config_name, workload)
        if run_kind == "dvfs":
            return self.dvfs_cell(config_name, workload, *extra)
        raise ValueError(f"unknown run kind {run_kind!r}")

    def record_gap(self, failure: RunFailure) -> None:
        """Record an externally decided gap (e.g. a shed or drained job)
        in the failure taxonomy, telemetry, and the next checkpoint flush."""
        with self._lock:
            self.failures[failure.cell] = failure
            self.telemetry.record_failure(failure)

    # -- batched in-process execution ----------------------------------
    def _batched_cells(self, run_kind: str, cells: "list[tuple]") -> None:
        """Execute a sweep's missing cells through the batched drivers.

        One :func:`~repro.core.simulate.simulate_gpu_batch` /
        ``simulate_cpu_batch`` invocation covers every cell the caches,
        the durable store, and name validation leave over; each
        batch-computed cell is then *replayed* through exactly the
        per-cell guard path the serial sweep uses -- fault injector,
        ``validate_result`` self-check, retry/backoff budget, failure
        taxonomy, store write-back, incremental checkpoint flush -- so
        batched and unbatched sweeps produce byte-identical result
        mappings and failure records.  A cell whose engine run raised
        re-raises inside its own replay: the guard degrades it to a
        recorded gap for that cell only, its batch siblings keep their
        results.
        """
        cache = self._cache_for(run_kind)
        todo: "list[tuple]" = []  # (key, config, workload, extra, design)
        for config_name, workload, extra in cells:
            key = (config_name, workload, *extra)
            if key not in cache:
                stored = self._store_fetch(run_kind, key)
                if stored is not None:
                    with self._lock:
                        cache[key] = stored
                        self.failures.pop(
                            (run_kind, config_name, workload, *extra), None
                        )
            if key in cache:
                with self._lock:
                    self.telemetry.record_run(
                        run_kind,
                        config_name,
                        workload,
                        0.0,
                        self._instructions_of(run_kind, cache[key]),
                        cached=True,
                    )
                continue
            try:
                design = self._validated(run_kind, config_name, workload)
            except KeyError:
                if self.policy.fail_fast:
                    raise
                continue  # recorded as a config/workload gap
            todo.append((key, config_name, workload, extra, design))
        if not todo:
            return

        start = time.perf_counter()
        if run_kind == "gpu":
            outcomes = simulate_gpu_batch(
                [(design, workload) for _, _, workload, _, design in todo]
            )
        else:
            outcomes = simulate_cpu_batch(
                [(design, workload) for _, _, workload, _, design in todo],
                instructions=self.settings.instructions,
                warmup=self.settings.warmup,
            )
        batch_wall = time.perf_counter() - start
        per_cell_wall = batch_wall / len(todo)

        elog = get_event_log()
        instructions = cycles = skipped = vectorized = 0
        for (key, config_name, workload, extra, _), out in zip(todo, outcomes):
            vectorized += int(getattr(out, "vectorized", False))
            skipped += getattr(out, "skipped_cycles", 0)

            def replay(out=out):
                if out.error is not None:
                    raise out.error
                return out.result

            def on_retry(attempt: int, kind: str) -> None:
                self.telemetry.record_retry(run_kind, kind)
                elog.emit(
                    "guard.retry", run_kind=run_kind, config=config_name,
                    workload=workload, attempt=attempt, failure_kind=kind,
                )

            with elog.span(
                "cell.attempt", run_kind=run_kind, config=config_name,
                workload=workload, batched=True,
            ):
                outcome = run_guarded(
                    lambda: self._execute(run_kind, key, replay),
                    policy=self.policy,
                    run_kind=run_kind,
                    config=config_name,
                    workload=workload,
                    extra=extra,
                    validate=lambda result: validate_result(run_kind, result),
                    on_retry=on_retry,
                )
            self._note_zombies()
            if outcome.failure is not None:
                with self._lock:
                    self.failures[outcome.failure.cell] = outcome.failure
                    self.telemetry.record_failure(outcome.failure)
                if self.policy.fail_fast:
                    raise SweepError(outcome.failure)
                continue
            with self._lock:
                cache[key] = outcome.result
                self.failures.pop(
                    (run_kind, config_name, workload, *extra), None
                )
                n = self._instructions_of(run_kind, outcome.result)
                instructions += n
                if run_kind == "gpu":
                    cycles += outcome.result.gpu.cu_result.cycles
                else:
                    cycles += outcome.result.core.cycles
                self.telemetry.record_run(
                    run_kind,
                    config_name,
                    workload,
                    per_cell_wall + outcome.wall_s,
                    n,
                    cached=False,
                )
                self._store_put(run_kind, key, outcome.result)
                if self.checkpoint is not None:
                    self.save_checkpoint()
        with self._lock:
            self.telemetry.record_batch(
                run_kind,
                cells=len(todo),
                vectorized=vectorized,
                wall_s=batch_wall,
                instructions=instructions,
                cycles=cycles,
                skipped_cycles=skipped,
            )
        get_event_log().emit(
            "sweep.batch", run_kind=run_kind, cells=len(todo),
            vectorized=vectorized, wall_s=batch_wall,
            instructions=instructions,
        )

    # -- process-isolated parallel execution ---------------------------
    def _cache_for(self, run_kind: str) -> dict:
        return {
            "cpu": self._cpu_cache,
            "gpu": self._gpu_cache,
            "dvfs": self._dvfs_cache,
        }[run_kind]

    @staticmethod
    def _instructions_of(run_kind: str, result) -> int:
        if run_kind == "gpu":
            return result.gpu.cu_result.instructions
        return result.core.committed

    def _pool_event(self, event: str, info: dict) -> None:
        """Map pool lifecycle events onto the telemetry counters."""
        if event == "utilization":
            self.telemetry.record_pool_utilization(info["value"])
            return
        if event == "batch_completed":
            stats = info.get("stats") or {}
            with self._lock:
                self.telemetry.record_batch(
                    info["run_kind"],
                    cells=stats.get("cells", info.get("cells", 0)),
                    vectorized=stats.get("vectorized", 0),
                    wall_s=stats.get("wall_s", 0.0),
                    instructions=stats.get("instructions", 0),
                    cycles=stats.get("cycles", 0),
                    skipped_cycles=stats.get("skipped_cycles", 0),
                )
            return
        self.telemetry.record_pool(event)
        if event == "requeued":
            # Mirror the serial guard's retry accounting so dashboards
            # and CI assertions see one consistent counter.
            self.telemetry.record_retry(info["run_kind"], info["failure_kind"])

    def _pool_cells(
        self, run_kind: str, cells: "list[tuple]", workers: int
    ) -> None:
        """Execute the non-cached cells of a sweep in worker processes.

        ``cells`` is a list of (config, workload, extra) coordinates.
        Completed results stream back and merge into the cache (with an
        incremental checkpoint flush each), failures into
        :attr:`failures` -- callers then assemble the returned mapping
        from the caches in deterministic cell order.
        """
        from repro.resilience.pool import CellTask, SweepPool

        cache = self._cache_for(run_kind)
        tasks: "list[CellTask]" = []
        for config_name, workload, extra in cells:
            key = (config_name, workload, *extra)
            if key not in cache:
                stored = self._store_fetch(run_kind, key)
                if stored is not None:
                    with self._lock:
                        cache[key] = stored
                        self.failures.pop(
                            (run_kind, config_name, workload, *extra), None
                        )
            if key in cache:
                with self._lock:
                    self.telemetry.record_run(
                        run_kind,
                        config_name,
                        workload,
                        0.0,
                        self._instructions_of(run_kind, cache[key]),
                        cached=True,
                    )
                continue
            try:
                self._validated(run_kind, config_name, workload)
            except KeyError:
                if self.policy.fail_fast:
                    raise
                continue  # recorded as a config/workload gap
            tasks.append(CellTask(run_kind, config_name, workload, tuple(extra)))
        if not tasks:
            return

        # Hand each worker attempt a *batch* of cells (amortising process
        # start-up, trace decode, and -- for the GPU -- the lockstep
        # engine across the batch) unless batching is hatched off.  The
        # batch splits evenly across the worker slots so parallelism is
        # never traded away for batch depth.
        batch_cells = 1
        if not obs.batch_disabled():
            batch_cells = min(
                POOL_BATCH_MAX, math.ceil(len(tasks) / workers)
            )
        pool = SweepPool(
            policy=self.policy,
            instructions=self.settings.instructions,
            warmup=self.settings.warmup,
            workers=workers,
            batch_cells=batch_cells,
            on_event=self._pool_event,
        )
        with self._lock:
            self._active_pools.add(pool)
        try:
            pool.run(
                tasks,
                on_result=lambda task, outcome: self.merge_pool_outcome(
                    run_kind, task, outcome
                ),
            )
        finally:
            with self._lock:
                self._active_pools.discard(pool)

    def merge_pool_outcome(self, run_kind: str, task, outcome) -> None:
        """Merge one pool-executed cell (success or exhausted failure)
        into the caches, failure taxonomy, telemetry, and checkpoint.

        Public so the job service can drive its own :class:`SweepPool`
        instances while sharing this runner's state; raises
        :class:`SweepError` under a ``fail_fast`` policy (which aborts
        the emitting pool).
        """
        cache = self._cache_for(run_kind)
        with self._lock:
            if outcome.ok:
                cache[task.key] = outcome.result
                self.failures.pop(task.cell, None)
                self.telemetry.record_run(
                    run_kind,
                    task.config,
                    task.workload,
                    outcome.wall_s,
                    self._instructions_of(run_kind, outcome.result),
                    cached=False,
                )
                self._store_put(run_kind, task.key, outcome.result)
                if self.checkpoint is not None:
                    self.save_checkpoint()
            else:
                self.failures[outcome.failure.cell] = outcome.failure
                self.telemetry.record_failure(outcome.failure)
                if self.policy.fail_fast:
                    raise SweepError(outcome.failure)

    def abort_active_pools(self) -> int:
        """Abort every in-flight :class:`SweepPool` (drain-deadline path);
        returns how many pools were signalled."""
        with self._lock:
            pools = list(self._active_pools)
        for pool in pools:
            pool.abort()
        return len(pools)

    def cpu_sweep(
        self,
        config_names: list[str],
        *,
        workers: int = 1,
        isolation: "str | None" = None,
    ) -> "dict[str, dict[str, CpuRunResult | None]]":
        """All (config, app) results as {config: {app: result-or-None}}.

        ``workers``/``isolation`` select the execution backend: the
        default is the in-process thread-guard path; ``"process"``
        dispatches missing cells to SIGKILL-supervised worker processes
        (``workers`` of them in parallel).
        """
        apps = self.settings.apps
        cells = [(name, app, ()) for name in config_names for app in apps]
        if _resolve_isolation(workers, isolation) == "process":
            self._pool_cells("cpu", cells, workers)
        elif obs.batch_disabled():
            # REPRO_NO_BATCH=1: the single-cell differential hatch.
            return {
                name: {app: self.cpu_cell(name, app) for app in apps}
                for name in config_names
            }
        else:
            self._batched_cells("cpu", cells)
        return {
            name: {app: self._cpu_cache.get((name, app)) for app in apps}
            for name in config_names
        }

    def gpu_sweep(
        self,
        config_names: list[str],
        *,
        workers: int = 1,
        isolation: "str | None" = None,
    ) -> "dict[str, dict[str, GpuRunResult | None]]":
        kernels = self.settings.kernels
        cells = [(name, k, ()) for name in config_names for k in kernels]
        if _resolve_isolation(workers, isolation) == "process":
            self._pool_cells("gpu", cells, workers)
        elif obs.batch_disabled():
            # REPRO_NO_BATCH=1: the single-cell differential hatch.
            return {
                name: {k: self.gpu_cell(name, k) for k in kernels}
                for name in config_names
            }
        else:
            self._batched_cells("gpu", cells)
        return {
            name: {k: self._gpu_cache.get((name, k)) for k in kernels}
            for name in config_names
        }

    def dvfs_sweep(
        self,
        points: "list[tuple[str, str, float, bool]]",
        *,
        workers: int = 1,
        isolation: "str | None" = None,
    ) -> "dict[tuple, CpuRunResult | None]":
        """DVFS/guardband points (config, app, freq_ghz, variation) as a
        {point: result-or-None} mapping, in the given point order."""
        points = [tuple(p) for p in points]
        if _resolve_isolation(workers, isolation) == "process":
            self._pool_cells(
                "dvfs",
                [(config, app, (freq, var)) for config, app, freq, var in points],
                workers,
            )
            return {p: self._dvfs_cache.get(p) for p in points}
        return {p: self.dvfs_cell(*p) for p in points}


#: Process-wide default runner so independent figure calls share runs.
_SHARED: SweepRunner | None = None


def shared_runner() -> SweepRunner:
    """The process-wide cached runner.

    Re-keyed on the env-derived :meth:`SweepSettings.fingerprint`, so
    changing ``REPRO_INSTRUCTIONS`` / ``REPRO_APPS`` / ``REPRO_KERNELS``
    after first use yields a fresh runner instead of silently serving
    results sized under the old settings.
    """
    global _SHARED
    current = SweepSettings()
    if _SHARED is None or _SHARED.settings.fingerprint() != current.fingerprint():
        _SHARED = SweepRunner(current)
    return _SHARED


def reset_shared_runner() -> None:
    """Drop the process-wide runner (next :func:`shared_runner` rebuilds)."""
    global _SHARED
    _SHARED = None
