"""Shared-L3 / DRAM contention uplift for multicore runs.

The paper's multicore results (4-core BaseCMOS vs 8-core AdvHet-2X under a
fixed power budget) include the extra queueing that doubling the core count
puts on the shared L3 ring and the memory controller.  We model that as an
analytic latency multiplier: each additional sharer adds a delay fraction
proportional to the workload's shared-traffic intensity.

``multiplier = 1 + alpha * (n_sharers - 1) * intensity``

with ``alpha`` calibrated so that memory-heavy applications see a tens-of-
percent uplift at 8 cores while compute-bound ones are barely affected --
the first-order behaviour of an M/D/1 queue at moderate utilisation without
tracking per-request queues (which a one-detailed-core model cannot see).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Per-sharer, per-unit-intensity latency uplift.
DEFAULT_CONTENTION_ALPHA = 0.06


@dataclass(frozen=True)
class SharedResourceContention:
    """Latency multiplier for shared L3/DRAM under multicore load."""

    n_sharers: int = 1
    #: Workload shared-traffic intensity in [0, 1] (from the app profile).
    intensity: float = 0.0
    alpha: float = DEFAULT_CONTENTION_ALPHA

    def __post_init__(self) -> None:
        if self.n_sharers < 1:
            raise ValueError("need at least one sharer")
        if not 0.0 <= self.intensity <= 1.0:
            raise ValueError("intensity must be in [0, 1]")
        if self.alpha < 0.0:
            raise ValueError("alpha cannot be negative")

    def latency_multiplier(self) -> float:
        """The uplift applied to L3/DRAM round trips (>= 1.0)."""
        return 1.0 + self.alpha * (self.n_sharers - 1) * self.intensity
