"""Memory-hierarchy substrate for the HetCore reproduction.

* :mod:`repro.mem.cache` -- set-associative write-back caches with true LRU
  replacement and per-level statistics.
* :mod:`repro.mem.asym` -- the AdvHet asymmetric DL1 (Section IV-C1): one
  CMOS fast way plus TFET slow ways with MRU promotion.
* :mod:`repro.mem.hierarchy` -- the IL1/DL1/L2/L3/DRAM stack with the
  Table III round-trip latencies for CMOS and TFET variants.
* :mod:`repro.mem.contention` -- shared-L3/DRAM queueing uplift for
  multicore runs.
* :mod:`repro.mem.ring` -- the bidirectional ring connecting cores and L3
  slices (Table III).
* :mod:`repro.mem.coherence` -- directory-based MESI protocol for the
  shared L3 (Table III).
"""

from repro.mem.cache import Cache, CacheStats
from repro.mem.asym import AsymmetricL1
from repro.mem.hierarchy import CacheLatencies, MemoryHierarchy, AccessResult
from repro.mem.contention import SharedResourceContention
from repro.mem.ring import RingNetwork
from repro.mem.coherence import CoherenceActions, LineState, MesiDirectory

__all__ = [
    "Cache",
    "CacheStats",
    "AsymmetricL1",
    "CacheLatencies",
    "MemoryHierarchy",
    "AccessResult",
    "SharedResourceContention",
    "RingNetwork",
    "CoherenceActions",
    "LineState",
    "MesiDirectory",
]
