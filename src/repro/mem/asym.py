"""The AdvHet asymmetric DL1 cache (Section IV-C1, Figure 5).

An 8-way 32 KB DL1 is split by way: one 4 KB way is implemented in CMOS
(the *FastCache*, 1-cycle hits) and the remaining seven ways in TFET (the
*SlowCache*, 4 additional cycles).  Requests probe the FastCache first; on a
FastCache miss the SlowCache is probed, and a SlowCache hit promotes the
line into the FastCache (swapping out the FastCache resident) so that the
MRU line of each set lives in the fast way.  A full miss fills into the
FastCache.

The same structure, with both partitions in CMOS and latencies 1/3 cycles,
models the BaseCMOS-Enh variant of Table IV.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mem.cache import Cache, CacheStats


@dataclass
class AsymStats:
    """Counters specific to the asymmetric organisation."""

    fast_hits: int = 0
    slow_hits: int = 0
    misses: int = 0
    line_moves: int = 0

    @property
    def accesses(self) -> int:
        return self.fast_hits + self.slow_hits + self.misses

    @property
    def fast_hit_rate(self) -> float:
        """Fraction of all accesses served by the CMOS fast way."""
        total = self.accesses
        return self.fast_hits / total if total else 0.0

    @property
    def hit_rate(self) -> float:
        total = self.accesses
        return (self.fast_hits + self.slow_hits) / total if total else 1.0

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset(self) -> None:
        self.fast_hits = 0
        self.slow_hits = 0
        self.misses = 0
        self.line_moves = 0

    def publish(self, registry, prefix: str) -> None:
        """Register lazy probes for the asymmetric counters.

        Names follow the observability convention (``fast_way_hits`` /
        ``slow_way_hits``) so ``cpu.coreN.dl1.fast_way_hits`` reads the
        paper's headline DL1 statistic straight out of a snapshot.
        """
        registry.probe(f"{prefix}.fast_way_hits", lambda: self.fast_hits)
        registry.probe(f"{prefix}.slow_way_hits", lambda: self.slow_hits)
        registry.probe(f"{prefix}.misses", lambda: self.misses)
        registry.probe(f"{prefix}.line_moves", lambda: self.line_moves)
        registry.probe(f"{prefix}.accesses", lambda: self.accesses)


class AsymmetricL1:
    """FastCache + SlowCache pair acting as one DL1.

    ``fast_hit_cycles`` and ``slow_extra_cycles`` are round-trip components:
    a fast hit costs ``fast_hit_cycles`` and a slow hit costs
    ``fast_hit_cycles + slow_extra_cycles`` (the paper's 1 and 1+4 = 5 for
    AdvHet; 1 and 3 for the CMOS-only BaseCMOS-Enh variant).
    """

    def __init__(
        self,
        total_size_bytes: int = 32 * 1024,
        assoc: int = 8,
        line_bytes: int = 64,
        fast_hit_cycles: int = 1,
        slow_extra_cycles: int = 4,
        name: str = "asym-dl1",
    ):
        if assoc < 2:
            raise ValueError("asymmetric cache needs at least two ways")
        way_bytes = total_size_bytes // assoc
        self.name = name
        self.fast = Cache(f"{name}.fast", way_bytes, 1, line_bytes)
        self.slow = Cache(
            f"{name}.slow", way_bytes * (assoc - 1), assoc - 1, line_bytes
        )
        self.fast_hit_cycles = fast_hit_cycles
        self.slow_extra_cycles = slow_extra_cycles
        self.line_bytes = line_bytes
        self.stats = AsymStats()

    @property
    def slow_hit_cycles(self) -> int:
        """Total round trip of a SlowCache hit (fast probe + slow access)."""
        return self.fast_hit_cycles + self.slow_extra_cycles

    def access(self, addr: int, is_write: bool = False) -> tuple[bool, int]:
        """Access ``addr``.  Returns ``(hit_anywhere, latency_cycles)``.

        On a full miss the line is filled into the FastCache (the caller
        adds the lower-level latency to the returned fast-probe cost).
        """
        if self.fast.lookup(addr, is_write):
            self.stats.fast_hits += 1
            return True, self.fast_hit_cycles
        present, dirty = self.slow.extract(addr)
        if present:
            self.stats.slow_hits += 1
            self._promote(addr, dirty or is_write)
            return True, self.slow_hit_cycles
        self.stats.misses += 1
        self._promote(addr, is_write)
        return False, self.fast_hit_cycles

    def _promote(self, addr: int, dirty: bool) -> None:
        """Install ``addr`` in the FastCache, demoting its victim to slow."""
        victim_addr, victim_dirty = self.fast.insert(addr, dirty)
        if victim_addr is not None:
            self.stats.line_moves += 1
            slow_victim, _ = self.slow.insert(victim_addr, victim_dirty)
            # slow_victim falls out of the DL1 entirely (writeback already
            # counted by the slow cache's stats).
            del slow_victim

    def probe(self, addr: int) -> bool:
        """Residency in either partition, without side effects."""
        return self.fast.probe(addr) or self.slow.probe(addr)

    def publish(self, registry, prefix: "str | None" = None) -> None:
        """Expose the asymmetric counters plus both partitions' cache
        statistics under ``prefix.`` in a metrics registry."""
        prefix = prefix or self.name
        self.stats.publish(registry, prefix)
        self.fast.publish(registry, f"{prefix}.fast")
        self.slow.publish(registry, f"{prefix}.slow")

    def invalidate_all(self) -> None:
        self.fast.invalidate_all()
        self.slow.invalidate_all()

    def combined_stats(self) -> CacheStats:
        """A CacheStats view aggregating both partitions for reporting."""
        stats = CacheStats()
        stats.accesses = self.stats.accesses
        stats.hits = self.stats.fast_hits + self.stats.slow_hits
        stats.misses = self.stats.misses
        stats.evictions = self.fast.stats.evictions + self.slow.stats.evictions
        stats.writebacks = self.fast.stats.writebacks + self.slow.stats.writebacks
        return stats
