"""Directory-based MESI coherence for the shared L3 (Table III).

Each L3 slice keeps a directory entry per resident line: the MESI state
and the sharer set.  The controller serialises requests per line and
returns both the protocol actions taken (for latency/energy accounting)
and the resulting state, so invariants are checkable:

* at most one core holds a line Modified or Exclusive;
* a Modified/Exclusive holder excludes all other sharers;
* Shared lines may have any number of readers;
* every transition matches the MESI reference state machine.

The single-detailed-core runs of the main figures do not exercise
cross-core sharing (threads of these workloads mostly touch private data,
and the paper's own evaluation treats coherence traffic as part of the L3
round trip); the directory exists for explicitly multicore studies and is
validated independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class LineState(str, Enum):
    """Directory-visible MESI state of a cache line."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


@dataclass
class DirectoryEntry:
    """State and sharer set for one line."""

    state: LineState = LineState.INVALID
    sharers: set = field(default_factory=set)
    owner: int | None = None  # valid when state is M or E


@dataclass
class CoherenceActions:
    """Protocol work performed for one request (for latency accounting)."""

    #: Invalidations sent to other sharers.
    invalidations: int = 0
    #: A dirty copy was written back / forwarded from the owner.
    owner_intervention: bool = False
    #: The line was fetched from memory (directory had no copy).
    memory_fetch: bool = False
    new_state: LineState = LineState.INVALID


class MesiDirectory:
    """Directory controller for one shared cache."""

    def __init__(self, n_cores: int, line_bytes: int = 64):
        if n_cores < 1:
            raise ValueError("need at least one core")
        self.n_cores = n_cores
        self.line_bytes = line_bytes
        self._lines: dict[int, DirectoryEntry] = {}
        # statistics
        self.read_requests = 0
        self.write_requests = 0
        self.invalidations_sent = 0
        self.interventions = 0
        self.memory_fetches = 0

    def _entry(self, addr: int) -> DirectoryEntry:
        line = addr // self.line_bytes
        if line not in self._lines:
            self._lines[line] = DirectoryEntry()
        return self._lines[line]

    def _check_core(self, core: int) -> None:
        if not 0 <= core < self.n_cores:
            raise ValueError(f"core {core} out of range")

    def read(self, core: int, addr: int) -> CoherenceActions:
        """Core ``core`` issues a GetS for ``addr``."""
        self._check_core(core)
        self.read_requests += 1
        entry = self._entry(addr)
        actions = CoherenceActions()
        if entry.state == LineState.INVALID:
            actions.memory_fetch = True
            self.memory_fetches += 1
            entry.state = LineState.EXCLUSIVE
            entry.owner = core
            entry.sharers = {core}
        elif entry.state in (LineState.MODIFIED, LineState.EXCLUSIVE):
            if entry.owner == core:
                pass  # silent hit in the owner
            else:
                # Owner forwards/downgrades; dirty data is written back.
                actions.owner_intervention = entry.state == LineState.MODIFIED
                if actions.owner_intervention:
                    self.interventions += 1
                entry.state = LineState.SHARED
                entry.sharers.add(core)
                entry.owner = None
        else:  # SHARED
            entry.sharers.add(core)
        actions.new_state = entry.state
        return actions

    def write(self, core: int, addr: int) -> CoherenceActions:
        """Core ``core`` issues a GetX (write/upgrade) for ``addr``."""
        self._check_core(core)
        self.write_requests += 1
        entry = self._entry(addr)
        actions = CoherenceActions()
        if entry.state == LineState.INVALID:
            actions.memory_fetch = True
            self.memory_fetches += 1
        elif entry.state in (LineState.MODIFIED, LineState.EXCLUSIVE):
            if entry.owner != core:
                actions.owner_intervention = entry.state == LineState.MODIFIED
                if actions.owner_intervention:
                    self.interventions += 1
                actions.invalidations = 1
                self.invalidations_sent += 1
        else:  # SHARED: invalidate every other sharer
            others = entry.sharers - {core}
            actions.invalidations = len(others)
            self.invalidations_sent += len(others)
        entry.state = LineState.MODIFIED
        entry.owner = core
        entry.sharers = {core}
        actions.new_state = entry.state
        return actions

    def evict(self, core: int, addr: int) -> bool:
        """Core ``core`` drops its copy.  Returns True if data written back."""
        self._check_core(core)
        entry = self._entry(addr)
        if core not in entry.sharers:
            return False
        dirty = entry.state == LineState.MODIFIED and entry.owner == core
        entry.sharers.discard(core)
        if entry.owner == core:
            entry.owner = None
        if not entry.sharers:
            entry.state = LineState.INVALID
        elif entry.state in (LineState.MODIFIED, LineState.EXCLUSIVE):
            entry.state = LineState.SHARED
        return dirty

    def state_of(self, addr: int) -> LineState:
        line = addr // self.line_bytes
        entry = self._lines.get(line)
        return entry.state if entry else LineState.INVALID

    def sharers_of(self, addr: int) -> frozenset:
        line = addr // self.line_bytes
        entry = self._lines.get(line)
        return frozenset(entry.sharers) if entry else frozenset()

    def check_invariants(self) -> None:
        """Raise AssertionError if any MESI invariant is violated."""
        for line, entry in self._lines.items():
            if entry.state in (LineState.MODIFIED, LineState.EXCLUSIVE):
                assert entry.owner is not None, f"line {line:#x}: ownerless {entry.state}"
                assert entry.sharers == {entry.owner}, (
                    f"line {line:#x}: {entry.state} with sharers {entry.sharers}"
                )
            elif entry.state == LineState.SHARED:
                assert entry.sharers, f"line {line:#x}: SHARED with no sharers"
                assert entry.owner is None, f"line {line:#x}: SHARED with owner"
            else:
                assert not entry.sharers, f"line {line:#x}: INVALID with sharers"
