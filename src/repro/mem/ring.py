"""Ring interconnect between cores and shared-L3 slices (Table III).

The modelled multicore connects its cores and L3 slices with a
bidirectional ring ("Network: Ring with MESI directory-based protocol").
Each node hosts one core plus one L3 slice; an L3 access travels to the
slice that owns the line (address-interleaved) and back.

The single-core calibration folds the *average* ring round trip into the
Table III L3 latency (32/40 cycles); this module exists for explicitly
multicore studies -- per-hop latencies, slice mapping, and traffic
accounting -- and for the coherence layer's message costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RingNetwork:
    """A bidirectional ring of ``n_nodes`` (core + L3-slice per node)."""

    n_nodes: int = 4
    hop_cycles: int = 1
    #: Router pipeline cost paid once per traversal, each direction.
    router_cycles: int = 1
    line_bytes: int = 64
    messages: int = field(default=0, init=False)
    total_hops: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("ring needs at least one node")
        if self.hop_cycles < 0 or self.router_cycles < 0:
            raise ValueError("latencies cannot be negative")

    def hops(self, src: int, dst: int) -> int:
        """Shortest-path hop count between two nodes (either direction)."""
        self._check(src)
        self._check(dst)
        clockwise = (dst - src) % self.n_nodes
        return min(clockwise, self.n_nodes - clockwise)

    def one_way_latency(self, src: int, dst: int) -> int:
        """Cycles for one message ``src`` -> ``dst`` (counts the message)."""
        hops = self.hops(src, dst)
        self.messages += 1
        self.total_hops += hops
        if hops == 0:
            return 0
        return hops * self.hop_cycles + self.router_cycles

    def round_trip_latency(self, src: int, dst: int) -> int:
        """Request + response latency between two nodes."""
        return self.one_way_latency(src, dst) + self.one_way_latency(dst, src)

    def slice_of(self, addr: int) -> int:
        """The L3 slice owning ``addr`` (line-interleaved across nodes)."""
        if addr < 0:
            raise ValueError("addresses are non-negative")
        return (addr // self.line_bytes) % self.n_nodes

    def average_round_trip(self) -> float:
        """Mean request+response latency over uniformly distributed slices."""
        n = self.n_nodes
        if n == 1:
            return 0.0
        total = 0.0
        for d in range(1, n):
            hops = min(d, n - d)
            total += 2 * (hops * self.hop_cycles + self.router_cycles)
        # A request targets its own slice 1/n of the time (zero cost).
        return total / n

    @property
    def mean_hops(self) -> float:
        """Observed mean hops per message."""
        return self.total_hops / self.messages if self.messages else 0.0

    def _check(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} outside ring of {self.n_nodes}")
