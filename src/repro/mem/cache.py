"""Set-associative write-back caches with true LRU replacement.

The asymmetric-DL1 result in the paper hinges on MRU locality (the fast way
captures the most-recently-used line of each set), so the cache model keeps
real per-set recency state rather than sampling hit rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial


@dataclass
class CacheStats:
    """Access counters for one cache."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over accesses; 1.0 for an untouched cache (vacuous)."""
        if self.accesses == 0:
            return 1.0
        return self.hits / self.accesses

    @property
    def miss_rate(self) -> float:
        """Misses over accesses; 0.0 for an untouched cache."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def reset(self) -> None:
        """Zero every counter (used between warm-up and measurement)."""
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    def publish(self, registry, prefix: str) -> None:
        """Register lazy probes for every counter under ``prefix.`` in
        ``registry`` (a :class:`repro.obs.metrics.MetricsRegistry`); the
        hot access path keeps its plain integer attributes."""
        for name in ("accesses", "hits", "misses", "evictions", "writebacks"):
            registry.probe(f"{prefix}.{name}", partial(getattr, self, name))


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


class Cache:
    """A set-associative, write-back, write-allocate cache.

    Each set keeps its lines in recency order (index 0 = MRU).  Dirty state
    is tracked per line so writebacks can be counted for the energy model.
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        assoc: int,
        line_bytes: int = 64,
    ):
        if size_bytes <= 0 or assoc <= 0 or line_bytes <= 0:
            raise ValueError("cache geometry must be positive")
        if not _is_power_of_two(line_bytes):
            raise ValueError("line size must be a power of two")
        if size_bytes % (assoc * line_bytes) != 0:
            raise ValueError(
                f"{name}: size {size_bytes} is not divisible by "
                f"assoc*line ({assoc}*{line_bytes})"
            )
        n_sets = size_bytes // (assoc * line_bytes)
        if not _is_power_of_two(n_sets):
            raise ValueError(f"{name}: set count {n_sets} must be a power of two")
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.n_sets = n_sets
        self._line_shift = line_bytes.bit_length() - 1
        self._set_mask = n_sets - 1
        self._tag_shift = n_sets.bit_length() - 1
        # Per set: list of tags in recency order, and a parallel dirty set.
        self._tags: list[list[int]] = [[] for _ in range(n_sets)]
        self._dirty: list[set[int]] = [set() for _ in range(n_sets)]
        self.stats = CacheStats()

    def _index_tag(self, addr: int) -> tuple[int, int]:
        line = addr >> self._line_shift
        return line & self._set_mask, line >> self._tag_shift

    def access(self, addr: int, is_write: bool = False) -> bool:
        """Look up ``addr``; on miss, allocate the line.  Returns hit flag.

        Evicted-dirty lines count as writebacks.  The caller is responsible
        for charging lower-level latency on a miss.  Index/tag extraction is
        inlined (vs :meth:`_index_tag`): this runs once per data access and
        several times per miss walk.
        """
        line = addr >> self._line_shift
        set_idx = line & self._set_mask
        tag = line >> self._tag_shift
        tags = self._tags[set_idx]
        stats = self.stats
        stats.accesses += 1
        if tag in tags:
            stats.hits += 1
            if tags[0] != tag:
                tags.remove(tag)
                tags.insert(0, tag)
            if is_write:
                self._dirty[set_idx].add(tag)
            return True
        stats.misses += 1
        self._fill(set_idx, tag, is_write)
        return False

    def lookup(self, addr: int, is_write: bool = False) -> bool:
        """Like :meth:`access` but does *not* allocate on a miss.

        Used where fill policy is decided elsewhere (asymmetric cache).
        """
        set_idx, tag = self._index_tag(addr)
        tags = self._tags[set_idx]
        self.stats.accesses += 1
        if tag in tags:
            self.stats.hits += 1
            if tags[0] != tag:
                tags.remove(tag)
                tags.insert(0, tag)
            if is_write:
                self._dirty[set_idx].add(tag)
            return True
        self.stats.misses += 1
        return False

    def _fill(self, set_idx: int, tag: int, is_write: bool) -> None:
        tags = self._tags[set_idx]
        if len(tags) >= self.assoc:
            victim = tags.pop()
            self.stats.evictions += 1
            if victim in self._dirty[set_idx]:
                self._dirty[set_idx].discard(victim)
                self.stats.writebacks += 1
        tags.insert(0, tag)
        if is_write:
            self._dirty[set_idx].add(tag)

    def extract(self, addr: int) -> tuple[bool, bool]:
        """Remove ``addr``'s line if present.  Returns (was_present, dirty).

        Used by the asymmetric cache to move lines between the fast and slow
        partitions without charging hits/misses.
        """
        set_idx, tag = self._index_tag(addr)
        tags = self._tags[set_idx]
        if tag not in tags:
            return False, False
        tags.remove(tag)
        dirty = tag in self._dirty[set_idx]
        self._dirty[set_idx].discard(tag)
        return True, dirty

    def insert(self, addr: int, dirty: bool = False) -> tuple[int | None, bool]:
        """Insert ``addr``'s line at MRU, evicting LRU if the set is full.

        Returns ``(victim_addr, victim_dirty)`` where ``victim_addr`` is a
        representative address of the evicted line (or None).  Statistics
        count the eviction/writeback but not a hit or miss.
        """
        set_idx, tag = self._index_tag(addr)
        tags = self._tags[set_idx]
        victim_addr: int | None = None
        victim_dirty = False
        if tag in tags:
            tags.remove(tag)
            dirty = dirty or tag in self._dirty[set_idx]
        elif len(tags) >= self.assoc:
            victim = tags.pop()
            self.stats.evictions += 1
            victim_dirty = victim in self._dirty[set_idx]
            self._dirty[set_idx].discard(victim)
            if victim_dirty:
                self.stats.writebacks += 1
            victim_line = (victim << self._tag_shift) | set_idx
            victim_addr = victim_line << self._line_shift
        tags.insert(0, tag)
        if dirty:
            self._dirty[set_idx].add(tag)
        else:
            self._dirty[set_idx].discard(tag)
        return victim_addr, victim_dirty

    def probe(self, addr: int) -> bool:
        """Check residency without touching recency or statistics."""
        set_idx, tag = self._index_tag(addr)
        return tag in self._tags[set_idx]

    def publish(self, registry, prefix: "str | None" = None) -> None:
        """Expose this cache's counters in a metrics registry (see
        :meth:`CacheStats.publish`); defaults to the cache's own name."""
        self.stats.publish(registry, prefix or self.name)

    def mru_line(self, addr: int) -> int | None:
        """The MRU tag of ``addr``'s set, or None if the set is empty."""
        set_idx, _ = self._index_tag(addr)
        tags = self._tags[set_idx]
        return tags[0] if tags else None

    def invalidate_all(self) -> None:
        """Drop every line (statistics are preserved)."""
        for s in range(self.n_sets):
            self._tags[s].clear()
            self._dirty[s].clear()

    @property
    def resident_lines(self) -> int:
        """Number of lines currently cached."""
        return sum(len(t) for t in self._tags)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cache({self.name}, {self.size_bytes}B, {self.assoc}-way, "
            f"{self.n_sets} sets)"
        )
