"""The private-IL1/DL1, private-L2, shared-L3, DRAM stack (Table III).

Round-trip (RT) latencies follow the paper's Table III convention: an access
that hits at level X costs that level's RT from the core's point of view
(the RT already includes the lookups above it).  Per-level RTs differ by
device assignment: DL1 is 2 (CMOS) or 4 (TFET) cycles, L2 is 8 or 12, L3 is
32 or 40; DRAM is a fixed 50 ns converted at the core frequency.

With an asymmetric DL1, a FastCache hit costs 1 cycle, a SlowCache hit 5,
and a full miss pays one extra probe cycle on top of the L2 RT (the request
walked the fast way before the normal path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

from repro.mem.asym import AsymmetricL1
from repro.mem.cache import Cache
from repro.mem.contention import SharedResourceContention


@dataclass(frozen=True)
class CacheLatencies:
    """Round-trip latencies (cycles, except DRAM in ns) for one config."""

    il1_rt: int = 2
    dl1_rt: int = 2
    l2_rt: int = 8
    l3_rt: int = 32
    dram_ns: float = 50.0

    def dram_cycles(self, freq_ghz: float) -> int:
        """DRAM round trip in core cycles at ``freq_ghz``."""
        return max(1, round(self.dram_ns * freq_ghz))


class AccessResult(NamedTuple):
    """Outcome of one data access: total latency and the level that hit.

    A NamedTuple rather than a (frozen) dataclass: one is allocated per
    load/store on the simulator's hottest path, and frozen-dataclass
    construction costs an ``object.__setattr__`` per field.
    """

    latency: int
    level: str  # "dl1-fast", "dl1", "dl1-slow", "l2", "l3", "dram"


class MemoryHierarchy:
    """Cache stack used by one CPU core.

    ``dl1`` may be a plain :class:`Cache` (BaseCMOS/BaseHet) or an
    :class:`AsymmetricL1` (AdvHet / BaseCMOS-Enh).  The shared L3 may carry
    a :class:`SharedResourceContention` uplift for multicore runs.
    """

    def __init__(
        self,
        latencies: CacheLatencies,
        freq_ghz: float = 2.0,
        dl1: "Cache | AsymmetricL1 | None" = None,
        il1: Cache | None = None,
        l2: Cache | None = None,
        l3: Cache | None = None,
        contention: SharedResourceContention | None = None,
        prefetch_lines: int = 2,
    ):
        if prefetch_lines < 0:
            raise ValueError("prefetch_lines cannot be negative")
        self.prefetch_lines = prefetch_lines
        self.latencies = latencies
        self.freq_ghz = freq_ghz
        self.il1 = il1 or Cache("il1", 32 * 1024, 2)
        self.dl1 = dl1 if dl1 is not None else Cache("dl1", 32 * 1024, 8)
        self.l2 = l2 or Cache("l2", 256 * 1024, 8)
        # Table III: 2 MB of shared L3 *per core*; the single detailed core
        # of a 4-core run sees the full 8 MB.
        self.l3 = l3 or Cache("l3", 8 * 1024 * 1024, 16)
        self.contention = contention
        self.dram_accesses = 0
        self._dram_cycles = latencies.dram_cycles(freq_ghz)
        #: Cached organisation flag: ``dl1`` never changes after
        #: construction, and :meth:`data_access` tests this per access.
        self.has_asymmetric_dl1 = isinstance(self.dl1, AsymmetricL1)

    def fetch(self, addr: int) -> AccessResult:
        """Instruction fetch through IL1 (misses walk L2/L3/DRAM)."""
        if self.il1.access(addr):
            return AccessResult(self.latencies.il1_rt, "il1")
        return self._walk_below_l1(addr, is_write=False, extra=0)

    def data_access(self, addr: int, is_write: bool = False) -> AccessResult:
        """Load/store through DL1.  Stores update state; their latency is
        reported the same way (the core hides it behind the store buffer)."""
        if self.has_asymmetric_dl1:
            hit, latency = self.dl1.access(addr, is_write)
            if hit:
                level = "dl1-fast" if latency == self.dl1.fast_hit_cycles else "dl1-slow"
                return AccessResult(latency, level)
            return self._walk_below_l1(addr, is_write, extra=1)
        if self.dl1.access(addr, is_write):
            return AccessResult(self.latencies.dl1_rt, "dl1")
        return self._walk_below_l1(addr, is_write, extra=0)

    def _walk_below_l1(self, addr: int, is_write: bool, extra: int) -> AccessResult:
        if self.l2.access(addr, is_write):
            return AccessResult(self.latencies.l2_rt + extra, "l2")
        self._prefetch(addr)
        if self.l3.access(addr, is_write):
            latency = self._contended(self.latencies.l3_rt) + extra
            return AccessResult(latency, "l3")
        self.dram_accesses += 1
        base = self.latencies.l3_rt + self._dram_cycles
        return AccessResult(self._contended(base) + extra, "dram")

    def _prefetch(self, addr: int) -> None:
        """Next-line stream prefetch into L2/L3 on an L2 miss.

        Models the sequential prefetchers every commercial hierarchy has;
        without it, streaming access patterns pay a DRAM round trip per
        line, which no real machine does.
        """
        for i in range(1, self.prefetch_lines + 1):
            next_addr = addr + 64 * i
            self.l3.access(next_addr)
            self.l2.access(next_addr)

    def _contended(self, base: int) -> int:
        if self.contention is None:
            return base
        return round(base * self.contention.latency_multiplier())

    def prewarm_region(self, base: int, size_bytes: int, into_l1: bool = False) -> None:
        """Functionally warm a data region before timed simulation.

        Sampled-simulation methodology (SMARTS-style functional warming):
        real applications run billions of instructions, so their resident
        regions are cache-warm long before any measured window.  Fills L3
        and L2 (capacity permitting) and optionally the DL1 for every line
        of ``[base, base + size_bytes)``.
        """
        if size_bytes <= 0:
            return
        line = 64
        for addr in range(base, base + size_bytes, line):
            self.l3.access(addr)
            if size_bytes <= self.l2.size_bytes:
                self.l2.access(addr)
            if into_l1:
                self.dl1.access(addr)

    def reset_stats(self) -> None:
        """Zero all counters (cache contents are preserved for warm state)."""
        self.il1.stats.reset()
        self.l2.stats.reset()
        self.l3.stats.reset()
        self.dram_accesses = 0
        if self.has_asymmetric_dl1:
            self.dl1.stats.reset()
            self.dl1.fast.stats.reset()
            self.dl1.slow.stats.reset()
        else:
            self.dl1.stats.reset()

    def dl1_stats_summary(self) -> dict[str, float]:
        """Uniform DL1 statistics across plain and asymmetric organisations."""
        if self.has_asymmetric_dl1:
            s = self.dl1.stats
            return {
                "accesses": s.accesses,
                "hit_rate": s.hit_rate,
                "fast_hit_rate": s.fast_hit_rate,
                "line_moves": s.line_moves,
            }
        s = self.dl1.stats
        return {
            "accesses": s.accesses,
            "hit_rate": s.hit_rate,
            "fast_hit_rate": 0.0,
            "line_moves": 0,
        }
