"""On-disk checkpointing of SweepRunner result caches.

A checkpoint is a single versioned JSON document::

    {"integrity": "<sha256 of canonical payload>",
     "payload": {"version": 1,
                 "fingerprint": "<SweepSettings fingerprint>",
                 "entries": {"cpu": [...], "gpu": [...], "dvfs": [...]},
                 "failures": [...]}}

Loading is strictly *fail-soft*: a missing, truncated, corrupted, or
tampered file, an unknown version, or a fingerprint minted under different
:class:`~repro.experiments.runner.SweepSettings` all load as a cache miss
(``None``) -- a bad checkpoint can cost re-execution, never correctness.
A zero-byte or unparsable file (a crash landed between truncate and
write, or tore the data) additionally warns, since it means a previous
writer died mid-save.
Writes go through :mod:`repro.resilience.diskio`: temp file + file
fsync + atomic rename + parent-directory fsync.  The rename makes a
sweep killed mid-save leave the previous checkpoint intact; the fsyncs
make that hold across power loss too, which a bare rename does not.

Writes are additionally serialised through an advisory lock file
(:class:`CheckpointLock`, ``<path>.lock``): two processes sharing a
checkpoint directory (a sweep plus a job service, or two service
replicas) take turns instead of interleaving temp files.  The lock is
crash-safe via *stale takeover* -- a lock whose owning PID is dead, or
older than ``stale_s``, is broken and re-acquired -- so a SIGKILLed
writer can never wedge the directory.

Results are encoded losslessly: every dataclass in the
``CpuRunResult`` / ``GpuRunResult`` trees is plain scalars, dicts, and
lists, so ``dataclasses.asdict`` round-trips through the explicit decoders
below with exact float equality.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
import warnings
from pathlib import Path

from repro.core.simulate import CpuRunResult, GpuRunResult
from repro.cpu.core import ActivityCounts, CoreResult
from repro.cpu.multicore import MulticoreResult
from repro.gpu.cu import CUResult
from repro.gpu.gpu import GpuResult
from repro.power.model import EnergyBreakdown
from repro.resilience import diskio
from repro.resilience.errors import RunFailure

#: Bump when the on-disk layout changes; older files load as misses.
CHECKPOINT_VERSION = 1


class CheckpointLockTimeout(TimeoutError):
    """The advisory checkpoint lock stayed held past the acquire budget."""


class CheckpointLock:
    """Advisory cross-process lock file with stale-lock takeover.

    ``O_CREAT | O_EXCL`` creation is the atomic primitive (portable, no
    ``fcntl`` dependence); the lock file body records the owner's PID,
    acquisition wall-clock time, and a unique per-acquisition token so
    contenders can detect abandonment.  A lock is *stale* -- and broken
    by the next contender -- when its owner PID is provably dead on this
    host, or the lock is older than ``stale_s`` (covers unreadable/
    foreign owners).  Unlinks are read-check-unlink: :meth:`release`
    only removes a lock file that still carries this holder's token (a
    holder whose lock was stale-broken must not delete the usurper's
    live lock), and :meth:`_break_stale` only removes the exact body it
    judged stale (not a contender's freshly created lock).  A narrow
    check-to-unlink race remains by construction -- acceptable for an
    advisory lock whose failure mode is one extra takeover.  Advisory
    means cooperative: only writers that take the lock are serialised.

    Usable as a context manager; re-entrant acquisition within one
    process is an error (the owner check is PID-based, not thread-based
    -- callers serialise their own threads, as ``SweepRunner`` does by
    construction of its single-threaded checkpoint flush path).
    """

    def __init__(
        self,
        path: "str | os.PathLike",
        *,
        stale_s: float = 30.0,
        timeout_s: float = 10.0,
        poll_s: float = 0.05,
    ):
        self.path = Path(path)
        self.stale_s = stale_s
        self.timeout_s = timeout_s
        self.poll_s = poll_s
        self._held = False
        #: Token written into the lock body at acquisition; release()
        #: refuses to unlink a body carrying someone else's token.
        self._token: "str | None" = None
        #: The exact body _is_stale judged stale; _break_stale only
        #: unlinks while the on-disk body is still that body.
        self._stale_body: "str | None" = None
        #: Takeovers performed by this lock instance (observable in tests
        #: and surfaced through checkpoint telemetry).
        self.takeovers = 0

    # -- helpers -------------------------------------------------------
    def _try_create(self) -> bool:
        token = f"{os.getpid()}-{os.urandom(8).hex()}"
        body = json.dumps(
            {"pid": os.getpid(), "acquired_at": time.time(), "token": token}
        ).encode("utf-8")
        try:
            fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        try:
            os.write(fd, body)
        finally:
            os.close(fd)
        self._token = token
        return True

    def _is_stale(self) -> bool:
        self._stale_body = None
        try:
            raw = self.path.read_text()
        except OSError:
            return False  # vanished -- next create attempt decides
        try:
            info = json.loads(raw)
            pid = int(info["pid"])
            acquired_at = float(info["acquired_at"])
        except (ValueError, KeyError, TypeError):
            # Unreadable or torn lock body: age it via mtime, not content.
            try:
                acquired_at = self.path.stat().st_mtime
            except OSError:
                return False
            if time.time() - acquired_at > self.stale_s:
                self._stale_body = raw
                return True
            return False
        stale = False
        if time.time() - acquired_at > self.stale_s:
            stale = True
        elif pid != os.getpid():
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                stale = True  # owner died without unlinking
            except PermissionError:
                pass  # alive, owned by someone else
        if stale:
            self._stale_body = raw
        return stale

    def _break_stale(self) -> None:
        # Read-check-unlink: only break the exact body we judged stale.
        # A contender may have broken it first and re-created the lock;
        # unlinking blindly here would delete their live lock.
        try:
            current = self.path.read_text()
        except OSError:
            return  # already gone; retry the create
        if self._stale_body is None or current != self._stale_body:
            return  # the lock changed hands since the staleness check
        try:
            self.path.unlink()
        except OSError:
            return  # a contender beat us to it; retry the create
        self.takeovers += 1

    # -- API -----------------------------------------------------------
    def acquire(self) -> "CheckpointLock":
        if self._held:
            raise RuntimeError(f"lock {self.path} already held by this process")
        deadline = time.monotonic() + self.timeout_s
        while True:
            if self._try_create():
                self._held = True
                return self
            if self._is_stale():
                self._break_stale()
                continue
            if time.monotonic() >= deadline:
                raise CheckpointLockTimeout(
                    f"could not acquire {self.path} within "
                    f"{self.timeout_s:g}s (held by a live writer)"
                )
            time.sleep(self.poll_s)

    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        token, self._token = self._token, None
        # Read-check-unlink: if our lock was stale-broken (e.g. this
        # process was suspended past stale_s) and a contender now holds
        # the path, the body carries *their* token -- leave it alone.
        try:
            info = json.loads(self.path.read_text())
        except OSError:
            return  # broken by a takeover and not re-taken; nothing to free
        except ValueError:
            return  # torn body we did not write; not ours to unlink
        if info.get("token") != token:
            return  # a contender re-acquired after breaking our stale lock
        try:
            self.path.unlink()
        except OSError:
            pass

    def __enter__(self) -> "CheckpointLock":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _digest(payload: dict) -> str:
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------
# Result codecs
# ---------------------------------------------------------------------

def encode_cpu_result(result: CpuRunResult) -> dict:
    return dataclasses.asdict(result)


def decode_cpu_result(data: dict) -> CpuRunResult:
    mc = data["multicore"]
    per_core = [
        CoreResult(**{**core, "activity": ActivityCounts(**core["activity"])})
        for core in mc["per_core"]
    ]
    return CpuRunResult(
        config=data["config"],
        app=data["app"],
        time_s=data["time_s"],
        energy=EnergyBreakdown(**data["energy"]),
        multicore=MulticoreResult(**{**mc, "per_core": per_core}),
    )


def encode_gpu_result(result: GpuRunResult) -> dict:
    return dataclasses.asdict(result)


def decode_gpu_result(data: dict) -> GpuRunResult:
    gpu = data["gpu"]
    return GpuRunResult(
        config=data["config"],
        kernel=data["kernel"],
        time_s=data["time_s"],
        energy=EnergyBreakdown(**data["energy"]),
        gpu=GpuResult(**{**gpu, "cu_result": CUResult(**gpu["cu_result"])}),
    )


_CODECS = {
    "cpu": (encode_cpu_result, decode_cpu_result),
    "gpu": (encode_gpu_result, decode_gpu_result),
    "dvfs": (encode_cpu_result, decode_cpu_result),
}


@dataclasses.dataclass
class CheckpointData:
    """Decoded checkpoint contents, keyed exactly like the runner caches."""

    cpu: dict
    gpu: dict
    dvfs: dict
    failures: "list[RunFailure]"

    @property
    def entries(self) -> int:
        return len(self.cpu) + len(self.gpu) + len(self.dvfs)


class SweepCheckpoint:
    """Versioned, integrity-checked persistence for one checkpoint path.

    ``lock_stale_s`` / ``lock_timeout_s`` shape the advisory write lock
    (see :class:`CheckpointLock`); reads need no lock because writes are
    atomic replaces of a single file.
    """

    def __init__(
        self,
        path: "str | os.PathLike",
        *,
        lock_stale_s: float = 30.0,
        lock_timeout_s: float = 10.0,
    ):
        self.path = Path(path)
        # The lock file is created before the first durable write gets
        # a chance to make directories, so the parent must exist now.
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.lock = CheckpointLock(
            self.path.with_name(self.path.name + ".lock"),
            stale_s=lock_stale_s,
            timeout_s=lock_timeout_s,
        )
        # Writer-startup hygiene: collect temp droppings left by writers
        # that died between temp-write and rename.
        diskio.sweep_orphan_temps(self.path.parent, site="checkpoint")

    def save(
        self,
        fingerprint: str,
        caches: "dict[str, dict]",
        failures: "list[RunFailure]",
    ) -> int:
        """Atomically write the caches; returns the entry count written."""
        entries = {}
        count = 0
        for kind, (encode, _) in _CODECS.items():
            cache = caches.get(kind, {})
            entries[kind] = [
                {"key": list(key), "result": encode(result)}
                for key, result in cache.items()
            ]
            count += len(cache)
        payload = {
            "version": CHECKPOINT_VERSION,
            "fingerprint": fingerprint,
            "entries": entries,
            "failures": [f.to_dict() for f in failures],
        }
        doc = {"integrity": _digest(payload), "payload": payload}
        with self.lock:
            diskio.durable_write_text(
                self.path,
                json.dumps(doc, indent=1, sort_keys=True),
                site="checkpoint",
            )
        return count

    def load(self, fingerprint: str) -> "CheckpointData | None":
        """Decode the checkpoint, or None for any invalid/mismatched file."""
        try:
            raw = self.path.read_text()
        except OSError:
            return None
        if not raw.strip():
            # A crash between open-truncate and write (pre-diskio
            # writers) leaves a zero-byte file: missing, but worth a
            # warning because it means a writer died mid-save.
            warnings.warn(
                f"checkpoint {self.path} is empty (crash-truncated?); "
                "treating as missing",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        try:
            doc = json.loads(raw)
        except ValueError:
            warnings.warn(
                f"checkpoint {self.path} is not parseable JSON "
                "(torn write?); treating as missing",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        try:
            payload = doc["payload"]
            if doc["integrity"] != _digest(payload):
                return None
            if payload["version"] != CHECKPOINT_VERSION:
                return None
            if payload["fingerprint"] != fingerprint:
                return None
            caches: "dict[str, dict]" = {}
            for kind, (_, decode) in _CODECS.items():
                caches[kind] = {
                    tuple(entry["key"]): decode(entry["result"])
                    for entry in payload["entries"][kind]
                }
            failures = [RunFailure.from_dict(f) for f in payload["failures"]]
        except Exception:
            return None
        return CheckpointData(
            cpu=caches["cpu"],
            gpu=caches["gpu"],
            dvfs=caches["dvfs"],
            failures=failures,
        )
