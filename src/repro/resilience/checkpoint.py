"""On-disk checkpointing of SweepRunner result caches.

A checkpoint is a single versioned JSON document::

    {"integrity": "<sha256 of canonical payload>",
     "payload": {"version": 1,
                 "fingerprint": "<SweepSettings fingerprint>",
                 "entries": {"cpu": [...], "gpu": [...], "dvfs": [...]},
                 "failures": [...]}}

Loading is strictly *fail-soft*: a missing, truncated, corrupted, or
tampered file, an unknown version, or a fingerprint minted under different
:class:`~repro.experiments.runner.SweepSettings` all load as a cache miss
(``None``) -- a bad checkpoint can cost re-execution, never correctness.
Writes are atomic (temp file + ``os.replace``), so a sweep killed mid-save
leaves the previous checkpoint intact.

Results are encoded losslessly: every dataclass in the
``CpuRunResult`` / ``GpuRunResult`` trees is plain scalars, dicts, and
lists, so ``dataclasses.asdict`` round-trips through the explicit decoders
below with exact float equality.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path

from repro.core.simulate import CpuRunResult, GpuRunResult
from repro.cpu.core import ActivityCounts, CoreResult
from repro.cpu.multicore import MulticoreResult
from repro.gpu.cu import CUResult
from repro.gpu.gpu import GpuResult
from repro.power.model import EnergyBreakdown
from repro.resilience.errors import RunFailure

#: Bump when the on-disk layout changes; older files load as misses.
CHECKPOINT_VERSION = 1


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _digest(payload: dict) -> str:
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------
# Result codecs
# ---------------------------------------------------------------------

def encode_cpu_result(result: CpuRunResult) -> dict:
    return dataclasses.asdict(result)


def decode_cpu_result(data: dict) -> CpuRunResult:
    mc = data["multicore"]
    per_core = [
        CoreResult(**{**core, "activity": ActivityCounts(**core["activity"])})
        for core in mc["per_core"]
    ]
    return CpuRunResult(
        config=data["config"],
        app=data["app"],
        time_s=data["time_s"],
        energy=EnergyBreakdown(**data["energy"]),
        multicore=MulticoreResult(**{**mc, "per_core": per_core}),
    )


def encode_gpu_result(result: GpuRunResult) -> dict:
    return dataclasses.asdict(result)


def decode_gpu_result(data: dict) -> GpuRunResult:
    gpu = data["gpu"]
    return GpuRunResult(
        config=data["config"],
        kernel=data["kernel"],
        time_s=data["time_s"],
        energy=EnergyBreakdown(**data["energy"]),
        gpu=GpuResult(**{**gpu, "cu_result": CUResult(**gpu["cu_result"])}),
    )


_CODECS = {
    "cpu": (encode_cpu_result, decode_cpu_result),
    "gpu": (encode_gpu_result, decode_gpu_result),
    "dvfs": (encode_cpu_result, decode_cpu_result),
}


@dataclasses.dataclass
class CheckpointData:
    """Decoded checkpoint contents, keyed exactly like the runner caches."""

    cpu: dict
    gpu: dict
    dvfs: dict
    failures: "list[RunFailure]"

    @property
    def entries(self) -> int:
        return len(self.cpu) + len(self.gpu) + len(self.dvfs)


class SweepCheckpoint:
    """Versioned, integrity-checked persistence for one checkpoint path."""

    def __init__(self, path: "str | os.PathLike"):
        self.path = Path(path)

    def save(
        self,
        fingerprint: str,
        caches: "dict[str, dict]",
        failures: "list[RunFailure]",
    ) -> int:
        """Atomically write the caches; returns the entry count written."""
        entries = {}
        count = 0
        for kind, (encode, _) in _CODECS.items():
            cache = caches.get(kind, {})
            entries[kind] = [
                {"key": list(key), "result": encode(result)}
                for key, result in cache.items()
            ]
            count += len(cache)
        payload = {
            "version": CHECKPOINT_VERSION,
            "fingerprint": fingerprint,
            "entries": entries,
            "failures": [f.to_dict() for f in failures],
        }
        doc = {"integrity": _digest(payload), "payload": payload}
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.parent.mkdir(parents=True, exist_ok=True)
        tmp.write_text(json.dumps(doc, indent=1, sort_keys=True))
        os.replace(tmp, self.path)
        return count

    def load(self, fingerprint: str) -> "CheckpointData | None":
        """Decode the checkpoint, or None for any invalid/mismatched file."""
        try:
            doc = json.loads(self.path.read_text())
            payload = doc["payload"]
            if doc["integrity"] != _digest(payload):
                return None
            if payload["version"] != CHECKPOINT_VERSION:
                return None
            if payload["fingerprint"] != fingerprint:
                return None
            caches: "dict[str, dict]" = {}
            for kind, (_, decode) in _CODECS.items():
                caches[kind] = {
                    tuple(entry["key"]): decode(entry["result"])
                    for entry in payload["entries"][kind]
                }
            failures = [RunFailure.from_dict(f) for f in payload["failures"]]
        except Exception:
            return None
        return CheckpointData(
            cpu=caches["cpu"],
            gpu=caches["gpu"],
            dvfs=caches["dvfs"],
            failures=failures,
        )
