"""Worker-process entrypoint for the process-isolated sweep executor.

One worker process executes exactly **one attempt of one sweep cell** and
exits.  All policy -- timeouts, retries, backoff -- lives in the parent's
supervisor (:mod:`repro.resilience.pool`); keeping the worker
single-attempt means a SIGKILL from the supervisor can never strand
partial retry state, and a hard crash (segfault, OOM kill, injected
``die`` fault) costs one attempt, not a pool.

Protocol (over a dedicated :func:`multiprocessing.Pipe` connection, so a
killed worker can never poison a lock shared with its siblings):

* ``("hb",)`` -- heartbeat, sent every ``spec["heartbeat_s"]`` seconds
  from a daemon thread; the supervisor SIGKILLs workers whose heartbeats
  stop (a wedged-but-alive process);
* ``("ok", result, wall_s, obs)`` -- the attempt succeeded and passed
  the end-of-run self-checks; ``result`` is the pickled run result;
* ``("fail", kind, message, traceback, wall_s, obs)`` -- the attempt
  raised; ``kind`` is ``corrupt`` for self-check rejections, else
  ``crash``.  Timeouts never originate here: the supervisor kills
  overrunners.
* ``("batch", entries, wall_s, stats, obs)`` -- a batched attempt
  (``spec["cells"]`` present) finished; ``entries`` holds one terminal
  per-cell tuple each (``("ok", result, wall_s)`` or
  ``("fail", kind, message, traceback, wall_s)``) in cell order, and
  ``stats`` the engine aggregates (cells, vectorized, instructions,
  cycles, skipped_cycles, wall_s) the coordinator's batch telemetry
  consumes.

The trailing ``obs`` element is the worker's telemetry freight: ``None``
while observability is off (zero overhead), else a dict carrying the
worker's structured-event export and its metrics-registry delta since
worker start (:meth:`~repro.obs.metrics.MetricsRegistry.export_state`
with ``since=``, so state inherited over ``fork`` is never re-shipped).
The supervisor merges both into the coordinator's registry/event log.
Because a SIGKILL can land at any instant, the worker *also* appends
every event to a sidecar JSONL file named in the spec as it happens --
the flight recorder the supervisor reads back when the pipe dies.

Span propagation: the spec's ``trace`` entry carries the coordinator's
``(trace_id, span_id)``; the worker adopts it so its ``worker.attempt``
and ``engine.run`` spans stitch into the same distributed trace.

Determinism: the worker re-applies the parent's ``REPRO_*`` environment
and fault plan from the task spec (so programmatically installed
injectors and spawn-context workers behave identically to the parent),
then *primes* the injector with the attempt number it was handed --
fault draws key on (cell, attempt), never on PID, so a faulted parallel
sweep replays the serial schedule exactly.
"""

from __future__ import annotations

import contextlib
import threading
import time
import traceback as tb_module

from repro.resilience import faults
from repro.resilience.errors import CorruptResult
from repro.resilience.selfcheck import validate_result


def execute_cell(
    run_kind: str,
    config: str,
    workload: str,
    extra: tuple,
    instructions: int,
    warmup: int,
):
    """Run one (config, workload) cell directly against the simulators.

    Mirrors the :class:`~repro.experiments.runner.SweepRunner` execute
    closures exactly (same call shape, same sizing), so a cell computed in
    a worker process is bit-identical to one computed in-process.
    """
    from repro.core.configs import cpu_config, gpu_config
    from repro.core.simulate import simulate_cpu, simulate_gpu

    if run_kind == "cpu":
        return simulate_cpu(
            cpu_config(config), workload, instructions=instructions, warmup=warmup
        )
    if run_kind == "gpu":
        return simulate_gpu(gpu_config(config), workload)
    if run_kind == "dvfs":
        from repro.core.dvfs import HetCoreDvfs

        freq_ghz, variation = extra
        return HetCoreDvfs().simulate_at(
            cpu_config(config),
            workload,
            freq_ghz,
            variation=variation,
            instructions=instructions,
            warmup=warmup,
        )
    raise ValueError(f"unknown run kind {run_kind!r}")


def execute_batch(cells: "list[dict]", instructions: int, warmup: int):
    """Run one worker attempt's cell batch through the batched drivers.

    Returns per-cell outcome objects (``result``/``error``) in cell
    order.  CPU and GPU batches route through
    :func:`repro.core.simulate.simulate_cpu_batch` /
    ``simulate_gpu_batch`` (the GPU cells in SIMT lockstep); anything
    else executes sequentially with the same per-cell containment.  A
    cell whose configuration fails to resolve gets its error recorded
    without taking the batch down -- names are validated coordinator-side,
    so this is a belt-and-braces path.
    """
    from repro.core.configs import cpu_config, gpu_config
    from repro.core.simulate import (
        CpuCellOutcome,
        simulate_cpu_batch,
        simulate_gpu_batch,
    )

    kind = cells[0]["run_kind"]
    if kind in ("cpu", "gpu"):
        lookup = gpu_config if kind == "gpu" else cpu_config
        designs = []
        outcomes: "list" = [None] * len(cells)
        for i, cell in enumerate(cells):
            try:
                designs.append(lookup(cell["config"]))
            except Exception as exc:
                designs.append(None)
                outcomes[i] = CpuCellOutcome(result=None, error=exc)
        batch = [
            (design, cell["workload"])
            for design, cell in zip(designs, cells)
            if design is not None
        ]
        if kind == "gpu":
            ready = iter(simulate_gpu_batch(batch))
        else:
            ready = iter(
                simulate_cpu_batch(
                    batch, instructions=instructions, warmup=warmup
                )
            )
        for i, design in enumerate(designs):
            if design is not None:
                outcomes[i] = next(ready)
        return outcomes
    results = []
    for cell in cells:
        try:
            result = execute_cell(
                cell["run_kind"], cell["config"], cell["workload"],
                tuple(cell["extra"]), instructions, warmup,
            )
        except Exception as exc:
            results.append(CpuCellOutcome(result=None, error=exc))
        else:
            results.append(CpuCellOutcome(result=result, error=None))
    return results


def _batch_stats(kind: str, outcomes, wall_s: float) -> dict:
    """Aggregate engine stats for one batch (``pool.batch_completed``)."""
    instructions = cycles = skipped = vectorized = 0
    for out in outcomes:
        vectorized += int(getattr(out, "vectorized", False))
        skipped += int(getattr(out, "skipped_cycles", 0))
        result = out.result
        if result is None:
            continue
        if kind == "gpu":
            instructions += result.gpu.cu_result.instructions
            cycles += result.gpu.cu_result.cycles
        else:
            instructions += result.core.committed
            cycles += result.core.cycles
    return {
        "cells": len(outcomes),
        "vectorized": vectorized,
        "instructions": instructions,
        "cycles": cycles,
        "skipped_cycles": skipped,
        "wall_s": wall_s,
    }


def _start_heartbeat(conn, lock: threading.Lock, interval_s: float):
    """Send ``("hb",)`` every ``interval_s`` until stopped or the pipe dies."""
    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(interval_s):
            with lock:
                try:
                    conn.send(("hb",))
                except OSError:  # parent gone; nothing left to report to
                    return

    thread = threading.Thread(target=beat, daemon=True, name="repro-worker-hb")
    thread.start()
    return stop


def worker_main(conn, spec: dict) -> None:
    """Process entrypoint: run one attempt of one cell, report, exit."""
    import os

    # Propagate the parent's sweep-shaping environment (REPRO_FAULTS*,
    # REPRO_OBS, sizing overrides).  Under a fork context this is a no-op;
    # under spawn it makes the worker's env-gated behaviour explicit
    # rather than dependent on inheritance.
    os.environ.update(spec.get("env", {}))

    # Map the parent's shared-memory trace segment (if exported) and seed
    # the process-local trace cache, so the simulators below reuse the
    # parent's buffers instead of regenerating the workload.  Best-effort:
    # a failed attach (segment already gone in a drain race) just means
    # regeneration -- slower, bit-identical.
    shm_meta = spec.get("shm_traces")
    if shm_meta is not None:
        from repro.resilience import shm as shm_transport

        shm_transport.attach_traces(shm_meta)

    # Reconstruct fault state from the spec, never from inherited process
    # state, then draw for exactly the attempt the supervisor assigned.
    faults.reset()
    plan = spec.get("fault_plan")
    injector = (
        faults.install(faults.FaultInjector(faults.FaultPlan.from_dict(plan)))
        if plan is not None
        else faults.active()
    )
    key = tuple(spec["key"])
    if injector is not None:
        injector.prime(spec["run_kind"], key, spec["attempt"])

    # Observability: the spec says explicitly whether the coordinator had
    # it on (the flag may have been set programmatically, which a spawn
    # context would not inherit).  When on, the worker keeps its own
    # event log (spilled per-event to the sidecar flight recorder) and
    # snapshots the registry so only this attempt's delta ships back.
    from repro import obs
    from repro.obs.events import EventLog
    from repro.obs.metrics import get_registry

    if spec.get("obs"):
        obs.set_enabled(True)
    wlog = None
    base_state = None
    if obs.enabled():
        base_state = get_registry().export_state()
        wlog = EventLog(
            proc=f"worker-{os.getpid()}",
            spill_path=spec.get("obs_sidecar"),
            enabled=True,
        )

    send_lock = threading.Lock()
    stop_heartbeat = _start_heartbeat(
        conn, send_lock, float(spec.get("heartbeat_s", 0.5))
    )
    start = time.perf_counter()

    trace_ctx = spec.get("trace") or {}
    span_stack = contextlib.ExitStack()
    if wlog is not None:
        span_stack.enter_context(
            wlog.activate(trace_ctx.get("trace_id"), trace_ctx.get("span_id"))
        )

    cells = spec.get("cells")
    try:
        if cells:
            # Batched attempt: one engine batch, then each cell replayed
            # through its own injector draw + self-check so failures
            # stay per cell (an injected raise or a corrupt result costs
            # exactly the cell it hit).
            with span_stack:
                if wlog is not None:
                    span_stack.enter_context(
                        wlog.span(
                            "worker.batch",
                            cells=len(cells),
                            run_kind=spec["run_kind"],
                            attempt=spec["attempt"],
                        )
                    )
                engine_start = time.perf_counter()
                if wlog is not None:
                    with wlog.span(
                        "engine.batch",
                        run_kind=spec["run_kind"],
                        cells=len(cells),
                    ):
                        outcomes = execute_batch(
                            cells, spec["instructions"], spec["warmup"]
                        )
                else:
                    outcomes = execute_batch(
                        cells, spec["instructions"], spec["warmup"]
                    )
                engine_wall = time.perf_counter() - engine_start
                share = engine_wall / len(cells)
                entries = []
                for cell, out in zip(cells, outcomes):
                    cell_start = time.perf_counter()
                    cell_key = tuple(cell["key"])
                    if injector is not None:
                        injector.prime(
                            cell["run_kind"], cell_key, spec["attempt"]
                        )

                    def replay(out=out):
                        if out.error is not None:
                            raise out.error
                        return out.result

                    try:
                        if injector is not None:
                            result = injector.call(
                                cell["run_kind"], cell_key, replay
                            )
                        else:
                            result = replay()
                        validate_result(cell["run_kind"], result)
                    except Exception as exc:
                        kind = (
                            "corrupt"
                            if isinstance(exc, CorruptResult)
                            else "crash"
                        )
                        entries.append((
                            "fail",
                            kind,
                            f"{type(exc).__name__}: {exc}",
                            tb_module.format_exc(),
                            share + time.perf_counter() - cell_start,
                        ))
                    else:
                        entries.append((
                            "ok",
                            result,
                            share + time.perf_counter() - cell_start,
                        ))
            message = (
                "batch",
                entries,
                time.perf_counter() - start,
                _batch_stats(spec["run_kind"], outcomes, engine_wall),
                _obs_payload(wlog, base_state),
            )
        else:
            def execute():
                inner = execute_cell
                if wlog is not None:
                    with wlog.span(
                        "engine.run",
                        run_kind=spec["run_kind"],
                        config=spec["config"],
                        workload=spec["workload"],
                    ):
                        return inner(
                            spec["run_kind"], spec["config"], spec["workload"],
                            tuple(spec.get("extra", ())),
                            spec["instructions"], spec["warmup"],
                        )
                return inner(
                    spec["run_kind"], spec["config"], spec["workload"],
                    tuple(spec.get("extra", ())),
                    spec["instructions"], spec["warmup"],
                )

            with span_stack:
                if wlog is not None:
                    span_stack.enter_context(
                        wlog.span(
                            "worker.attempt",
                            cell=list(key),
                            run_kind=spec["run_kind"],
                            attempt=spec["attempt"],
                        )
                    )
                if injector is not None:
                    result = injector.call(spec["run_kind"], key, execute)
                else:
                    result = execute()
                validate_result(spec["run_kind"], result)
            message = (
                "ok", result, time.perf_counter() - start,
                _obs_payload(wlog, base_state),
            )
    except BaseException as exc:
        kind = "corrupt" if isinstance(exc, CorruptResult) else "crash"
        message = (
            "fail",
            kind,
            f"{type(exc).__name__}: {exc}",
            tb_module.format_exc(),
            time.perf_counter() - start,
            _obs_payload(wlog, base_state),
        )
    stop_heartbeat.set()
    with send_lock:
        try:
            conn.send(message)
        except OSError:  # parent died first; exit quietly
            pass
    conn.close()


def _obs_payload(wlog, base_state) -> "dict | None":
    """The telemetry freight appended to a terminal message (or None)."""
    if wlog is None:
        return None
    from repro.obs.events import SCHEMA_VERSION
    from repro.obs.metrics import get_registry

    wlog.close()
    return {
        "schema": SCHEMA_VERSION,
        "events": wlog.events(),
        "metrics": get_registry().export_state(since=base_state),
    }
