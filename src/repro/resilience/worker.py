"""Worker-process entrypoint for the process-isolated sweep executor.

One worker process executes exactly **one attempt of one sweep cell** and
exits.  All policy -- timeouts, retries, backoff -- lives in the parent's
supervisor (:mod:`repro.resilience.pool`); keeping the worker
single-attempt means a SIGKILL from the supervisor can never strand
partial retry state, and a hard crash (segfault, OOM kill, injected
``die`` fault) costs one attempt, not a pool.

Protocol (over a dedicated :func:`multiprocessing.Pipe` connection, so a
killed worker can never poison a lock shared with its siblings):

* ``("hb",)`` -- heartbeat, sent every ``spec["heartbeat_s"]`` seconds
  from a daemon thread; the supervisor SIGKILLs workers whose heartbeats
  stop (a wedged-but-alive process);
* ``("ok", result, wall_s)`` -- the attempt succeeded and passed the
  end-of-run self-checks; ``result`` is the pickled run result;
* ``("fail", kind, message, traceback, wall_s)`` -- the attempt raised;
  ``kind`` is ``corrupt`` for self-check rejections, else ``crash``.
  Timeouts never originate here: the supervisor kills overrunners.

Determinism: the worker re-applies the parent's ``REPRO_*`` environment
and fault plan from the task spec (so programmatically installed
injectors and spawn-context workers behave identically to the parent),
then *primes* the injector with the attempt number it was handed --
fault draws key on (cell, attempt), never on PID, so a faulted parallel
sweep replays the serial schedule exactly.
"""

from __future__ import annotations

import threading
import time
import traceback as tb_module

from repro.resilience import faults
from repro.resilience.errors import CorruptResult
from repro.resilience.selfcheck import validate_result


def execute_cell(
    run_kind: str,
    config: str,
    workload: str,
    extra: tuple,
    instructions: int,
    warmup: int,
):
    """Run one (config, workload) cell directly against the simulators.

    Mirrors the :class:`~repro.experiments.runner.SweepRunner` execute
    closures exactly (same call shape, same sizing), so a cell computed in
    a worker process is bit-identical to one computed in-process.
    """
    from repro.core.configs import cpu_config, gpu_config
    from repro.core.simulate import simulate_cpu, simulate_gpu

    if run_kind == "cpu":
        return simulate_cpu(
            cpu_config(config), workload, instructions=instructions, warmup=warmup
        )
    if run_kind == "gpu":
        return simulate_gpu(gpu_config(config), workload)
    if run_kind == "dvfs":
        from repro.core.dvfs import HetCoreDvfs

        freq_ghz, variation = extra
        return HetCoreDvfs().simulate_at(
            cpu_config(config),
            workload,
            freq_ghz,
            variation=variation,
            instructions=instructions,
            warmup=warmup,
        )
    raise ValueError(f"unknown run kind {run_kind!r}")


def _start_heartbeat(conn, lock: threading.Lock, interval_s: float):
    """Send ``("hb",)`` every ``interval_s`` until stopped or the pipe dies."""
    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(interval_s):
            with lock:
                try:
                    conn.send(("hb",))
                except OSError:  # parent gone; nothing left to report to
                    return

    thread = threading.Thread(target=beat, daemon=True, name="repro-worker-hb")
    thread.start()
    return stop


def worker_main(conn, spec: dict) -> None:
    """Process entrypoint: run one attempt of one cell, report, exit."""
    import os

    # Propagate the parent's sweep-shaping environment (REPRO_FAULTS*,
    # REPRO_OBS, sizing overrides).  Under a fork context this is a no-op;
    # under spawn it makes the worker's env-gated behaviour explicit
    # rather than dependent on inheritance.
    os.environ.update(spec.get("env", {}))

    # Map the parent's shared-memory trace segment (if exported) and seed
    # the process-local trace cache, so the simulators below reuse the
    # parent's buffers instead of regenerating the workload.  Best-effort:
    # a failed attach (segment already gone in a drain race) just means
    # regeneration -- slower, bit-identical.
    shm_meta = spec.get("shm_traces")
    if shm_meta is not None:
        from repro.resilience import shm as shm_transport

        shm_transport.attach_traces(shm_meta)

    # Reconstruct fault state from the spec, never from inherited process
    # state, then draw for exactly the attempt the supervisor assigned.
    faults.reset()
    plan = spec.get("fault_plan")
    injector = (
        faults.install(faults.FaultInjector(faults.FaultPlan.from_dict(plan)))
        if plan is not None
        else faults.active()
    )
    key = tuple(spec["key"])
    if injector is not None:
        injector.prime(spec["run_kind"], key, spec["attempt"])

    send_lock = threading.Lock()
    stop_heartbeat = _start_heartbeat(
        conn, send_lock, float(spec.get("heartbeat_s", 0.5))
    )
    start = time.perf_counter()
    try:
        def execute():
            return execute_cell(
                spec["run_kind"],
                spec["config"],
                spec["workload"],
                tuple(spec.get("extra", ())),
                spec["instructions"],
                spec["warmup"],
            )

        if injector is not None:
            result = injector.call(spec["run_kind"], key, execute)
        else:
            result = execute()
        validate_result(spec["run_kind"], result)
        message = ("ok", result, time.perf_counter() - start)
    except BaseException as exc:
        kind = "corrupt" if isinstance(exc, CorruptResult) else "crash"
        message = (
            "fail",
            kind,
            f"{type(exc).__name__}: {exc}",
            tb_module.format_exc(),
            time.perf_counter() - start,
        )
    stop_heartbeat.set()
    with send_lock:
        try:
            conn.send(message)
        except OSError:  # parent died first; exit quietly
            pass
    conn.close()
