"""Deterministic fault injection for exercising the resilience layer.

The injector sits between the :class:`~repro.experiments.runner.SweepRunner`
guard path and ``simulate_cpu`` / ``simulate_gpu``: for every execution
attempt it draws once from a seeded RNG keyed on (seed, site, cell key,
attempt number) and either

* raises :class:`InjectedFault` (a ``crash`` in the taxonomy),
* *hangs* -- sleeps ``hang_s`` before running, so a guard timeout fires
  (or, with no timeout, the run is merely slow),
* runs the simulation and **corrupts** the result (``time_s`` becomes
  NaN), which the runner's sanity check rejects as ``corrupt``, or
* **dies** -- SIGKILLs its own process, the hard-crash class (segfault,
  OOM kill) that only the process-isolated sweep executor
  (:mod:`repro.resilience.pool`) can contain.  Under ``isolation="thread"``
  a die fault takes down the whole sweep, which is exactly the failure
  mode it exists to demonstrate.

Because the draw is keyed on the attempt number, retries re-roll: a cell
that crashed on attempt 1 can succeed on attempt 2, exactly the transient
behaviour the retry path exists for.  The same seed always produces the
same fault schedule, so CI failures reproduce locally.

Draws are keyed on (seed, site, cell key, attempt) -- never on PID or
process identity -- so a parallel sweep whose attempts run in spawned
worker processes replays byte-identically: the supervisor tells each
worker which attempt it is executing and the worker *primes* its local
injector (:meth:`FaultInjector.prime`) to draw for exactly that attempt.

Env gating (mirrors ``REPRO_OBS``)
----------------------------------
``REPRO_FAULTS=1`` enables injection with probabilities read from
``REPRO_FAULTS_FAIL_P`` / ``REPRO_FAULTS_HANG_P`` /
``REPRO_FAULTS_CORRUPT_P`` / ``REPRO_FAULTS_DIE_P`` (defaults 0), seed
from ``REPRO_FAULTS_SEED`` (default 0), and hang duration from
``REPRO_FAULTS_HANG_S`` (default 30s).
Tests install an injector programmatically via :func:`install` instead.

Network faults (the fabric tier)
--------------------------------
:class:`NetFaultInjector` is the wire-level sibling used by
:mod:`repro.fabric`: every frame a peer *sends* draws once from a seeded
RNG keyed on (seed, site, frame sequence number) -- sites are
directional link names like ``"node-1->coordinator"`` -- and is either
dropped, delayed, duplicated, delivered normally, or opens a timed
*partition* during which every subsequent frame on that site is dropped.
The decision is a pure function of (plan, site, seq), so a failing
chaos run replays byte-for-byte with the same seed.  Env gating uses
``REPRO_NET_FAULTS=1`` plus ``REPRO_NET_FAULTS_DROP_P`` /
``_DELAY_P`` / ``_DELAY_S`` / ``_DUP_P`` / ``_PARTITION_P`` /
``_PARTITION_S`` / ``_SEED``.

Disk faults (the storage tier)
------------------------------
:class:`DiskFaultInjector` is the storage-level sibling consumed by
:mod:`repro.resilience.diskio`: every durable write draws once from a
seeded RNG keyed on (seed, site, write sequence number) -- sites name
the artifact family (``"checkpoint"``, ``"store"``, ``"health"``, ...)
-- and either fails with ``EIO``, fails with ``ENOSPC`` after a partial
temp write, *tears* the write (half the bytes land, the rename still
happens, and only the per-record checksum catches it on read), loses
the fsync (the write "succeeds" but durability is gone), or proceeds
normally.  Env gating uses ``REPRO_DISK_FAULTS=1`` plus
``REPRO_DISK_FAULTS_EIO_P`` / ``_ENOSPC_P`` / ``_TORN_P`` /
``_LOST_FSYNC_P`` / ``_SEED``.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from typing import Callable

from repro.resilience.guard import stable_seed


class InjectedFault(RuntimeError):
    """A crash injected by the fault harness (classified as ``crash``)."""


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in {"1", "true", "yes", "on"}


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    return float(raw) if raw else default


@dataclass(frozen=True)
class FaultPlan:
    """Per-attempt fault probabilities (disjoint: fail, then hang, then
    corrupt, then die, drawn from one uniform sample)."""

    fail_p: float = 0.0
    hang_p: float = 0.0
    corrupt_p: float = 0.0
    seed: int = 0
    hang_s: float = 30.0
    die_p: float = 0.0

    def __post_init__(self) -> None:
        for name in ("fail_p", "hang_p", "corrupt_p", "die_p"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.fail_p + self.hang_p + self.corrupt_p + self.die_p > 1.0:
            raise ValueError("fault probabilities must sum to <= 1")

    @classmethod
    def from_env(cls) -> "FaultPlan":
        return cls(
            fail_p=_env_float("REPRO_FAULTS_FAIL_P", 0.0),
            hang_p=_env_float("REPRO_FAULTS_HANG_P", 0.0),
            corrupt_p=_env_float("REPRO_FAULTS_CORRUPT_P", 0.0),
            seed=int(_env_float("REPRO_FAULTS_SEED", 0)),
            hang_s=_env_float("REPRO_FAULTS_HANG_S", 30.0),
            die_p=_env_float("REPRO_FAULTS_DIE_P", 0.0),
        )

    def to_dict(self) -> dict:
        """Plain-dict form, picklable into worker processes."""
        return {
            "fail_p": self.fail_p,
            "hang_p": self.hang_p,
            "corrupt_p": self.corrupt_p,
            "seed": self.seed,
            "hang_s": self.hang_s,
            "die_p": self.die_p,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(**data)


class FaultInjector:
    """Seeded, per-attempt fault decisions for sweep executions."""

    def __init__(self, plan: FaultPlan, sleep: "Callable[[float], None]" = time.sleep):
        self.plan = plan
        self._sleep = sleep
        self._attempt_counts: "dict[tuple, int]" = {}
        #: How many of each fault kind were actually injected.
        self.injected = {"fail": 0, "hang": 0, "corrupt": 0, "die": 0}

    def _draw(self, site: str, key: tuple) -> float:
        """One uniform [0, 1) sample, unique per (site, key, attempt)."""
        cell = (site, key)
        attempt = self._attempt_counts.get(cell, 0) + 1
        self._attempt_counts[cell] = attempt
        return stable_seed(self.plan.seed, site, key, attempt) / float(1 << 64)

    def prime(self, site: str, key: tuple, attempt: int) -> None:
        """Make the next draw for (site, key) use ``attempt`` (1-based).

        A worker process executing a requeued attempt starts with a fresh
        injector whose counters would otherwise restart at 1, replaying
        attempt 1's fault forever.  The supervisor tells the worker which
        attempt it is running; priming re-keys the draw on (cell, attempt)
        -- never on PID -- so parallel sweeps replay deterministically.
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        self._attempt_counts[(site, tuple(key))] = attempt - 1

    def call(self, site: str, key: tuple, fn: Callable[[], object]):
        """Run one execution attempt through the fault schedule."""
        plan = self.plan
        u = self._draw(site, key)
        if u < plan.fail_p:
            self.injected["fail"] += 1
            raise InjectedFault(f"injected crash at {site} cell {key!r}")
        if u < plan.fail_p + plan.hang_p:
            self.injected["hang"] += 1
            self._sleep(plan.hang_s)
        band = plan.fail_p + plan.hang_p + plan.corrupt_p
        if band <= u < band + plan.die_p:
            # Hard process death: the supervisor must see a vanished
            # worker, not an exception.  SIGKILL cannot be caught.
            self.injected["die"] += 1
            os.kill(os.getpid(), getattr(signal, "SIGKILL", signal.SIGTERM))
        result = fn()
        if u >= plan.fail_p + plan.hang_p and (
            u < plan.fail_p + plan.hang_p + plan.corrupt_p
        ):
            self.injected["corrupt"] += 1
            result.time_s = float("nan")
        return result


#: Programmatically installed injector (takes precedence over the env one).
_INSTALLED: "FaultInjector | None" = None
#: Lazily built env-configured injector (kept so attempt counts persist).
_FROM_ENV: "FaultInjector | None" = None


def install(injector: FaultInjector) -> FaultInjector:
    """Install an injector for this process (tests; returns it back)."""
    global _INSTALLED
    _INSTALLED = injector
    return injector


def uninstall() -> None:
    """Remove the programmatically installed injector."""
    global _INSTALLED
    _INSTALLED = None


def reset() -> None:
    """Forget every installed/env-built injector (test hygiene)."""
    global _INSTALLED, _FROM_ENV, _NET_INSTALLED, _NET_FROM_ENV
    global _DISK_INSTALLED, _DISK_FROM_ENV
    _INSTALLED = None
    _FROM_ENV = None
    _NET_INSTALLED = None
    _NET_FROM_ENV = None
    _DISK_INSTALLED = None
    _DISK_FROM_ENV = None


def installed_plan() -> "FaultPlan | None":
    """The programmatically installed plan, if any.

    The process-isolated sweep executor serialises this into worker specs
    so an injector installed in the parent (tests, harnesses) drives the
    same fault schedule inside spawned workers -- env-gated injection
    needs no help, since ``REPRO_FAULTS*`` is propagated as environment.
    """
    return _INSTALLED.plan if _INSTALLED is not None else None


def active() -> "FaultInjector | None":
    """The injector to route executions through, or None when disabled."""
    global _FROM_ENV
    if _INSTALLED is not None:
        return _INSTALLED
    if not _env_flag("REPRO_FAULTS"):
        return None
    if _FROM_ENV is None:
        _FROM_ENV = FaultInjector(FaultPlan.from_env())
    return _FROM_ENV


@dataclass(frozen=True)
class NetFaultPlan:
    """Per-frame network fault probabilities (disjoint bands: drop, then
    delay, then duplicate, then partition, from one uniform sample)."""

    drop_p: float = 0.0
    delay_p: float = 0.0
    dup_p: float = 0.0
    partition_p: float = 0.0
    delay_s: float = 0.05
    partition_s: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("drop_p", "delay_p", "dup_p", "partition_p"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.drop_p + self.delay_p + self.dup_p + self.partition_p > 1.0:
            raise ValueError("network fault probabilities must sum to <= 1")
        for name in ("delay_s", "partition_s"):
            if getattr(self, name) < 0.0:
                raise ValueError(f"{name} must be >= 0")

    @classmethod
    def from_env(cls) -> "NetFaultPlan":
        return cls(
            drop_p=_env_float("REPRO_NET_FAULTS_DROP_P", 0.0),
            delay_p=_env_float("REPRO_NET_FAULTS_DELAY_P", 0.0),
            dup_p=_env_float("REPRO_NET_FAULTS_DUP_P", 0.0),
            partition_p=_env_float("REPRO_NET_FAULTS_PARTITION_P", 0.0),
            delay_s=_env_float("REPRO_NET_FAULTS_DELAY_S", 0.05),
            partition_s=_env_float("REPRO_NET_FAULTS_PARTITION_S", 2.0),
            seed=int(_env_float("REPRO_NET_FAULTS_SEED", 0)),
        )

    def to_dict(self) -> dict:
        return {
            "drop_p": self.drop_p,
            "delay_p": self.delay_p,
            "dup_p": self.dup_p,
            "partition_p": self.partition_p,
            "delay_s": self.delay_s,
            "partition_s": self.partition_s,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "NetFaultPlan":
        return cls(**data)


class NetFaultInjector:
    """Seeded per-frame delivery decisions for fabric links.

    :meth:`fates` returns the *delivery schedule* for the next outgoing
    frame on a site: a list of per-copy delays.  ``[]`` means the frame
    is dropped, ``[0.0]`` is normal delivery, ``[0.0, 0.0]`` is a
    duplicate, ``[delay_s]`` a delayed frame.  A ``partition`` fate
    drops the frame *and* opens a window during which every later frame
    on the same site is dropped too -- the closest a seeded, send-side
    injector gets to yanking the cable.
    """

    def __init__(self, plan: NetFaultPlan, clock: "Callable[[], float]" = time.monotonic):
        self.plan = plan
        self._clock = clock
        self._seq: "dict[str, int]" = {}
        self._partition_until: "dict[str, float]" = {}
        #: How many of each fate was actually injected.
        self.injected = {
            "drop": 0, "delay": 0, "dup": 0,
            "partition": 0, "partition_drop": 0,
        }

    def fates(self, site: str) -> "list[float]":
        """Delivery schedule (list of per-copy delays) for the next frame."""
        seq = self._seq.get(site, 0) + 1
        self._seq[site] = seq
        now = self._clock()
        until = self._partition_until.get(site)
        if until is not None:
            if now < until:
                self.injected["partition_drop"] += 1
                return []
            del self._partition_until[site]
        plan = self.plan
        u = stable_seed(plan.seed, "net", site, seq) / float(1 << 64)
        if u < plan.drop_p:
            self.injected["drop"] += 1
            return []
        band = plan.drop_p
        if u < band + plan.delay_p:
            self.injected["delay"] += 1
            return [plan.delay_s]
        band += plan.delay_p
        if u < band + plan.dup_p:
            self.injected["dup"] += 1
            return [0.0, 0.0]
        band += plan.dup_p
        if u < band + plan.partition_p:
            self.injected["partition"] += 1
            self._partition_until[site] = now + plan.partition_s
            return []
        return [0.0]


#: Programmatically installed network injector (beats the env one).
_NET_INSTALLED: "NetFaultInjector | None" = None
#: Lazily built env-configured network injector (frame seqs persist).
_NET_FROM_ENV: "NetFaultInjector | None" = None


def install_network(injector: NetFaultInjector) -> NetFaultInjector:
    """Install a network injector for this process (tests; returns it)."""
    global _NET_INSTALLED
    _NET_INSTALLED = injector
    return injector


def uninstall_network() -> None:
    """Remove the programmatically installed network injector."""
    global _NET_INSTALLED
    _NET_INSTALLED = None


def active_network() -> "NetFaultInjector | None":
    """The network injector for fabric links, or None when disabled."""
    global _NET_FROM_ENV
    if _NET_INSTALLED is not None:
        return _NET_INSTALLED
    if not _env_flag("REPRO_NET_FAULTS"):
        return None
    if _NET_FROM_ENV is None:
        _NET_FROM_ENV = NetFaultInjector(NetFaultPlan.from_env())
    return _NET_FROM_ENV


@dataclass(frozen=True)
class DiskFaultPlan:
    """Per-write disk fault probabilities (disjoint bands: EIO, then
    ENOSPC, then torn write, then lost fsync, from one uniform sample)."""

    eio_p: float = 0.0
    enospc_p: float = 0.0
    torn_p: float = 0.0
    lost_fsync_p: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("eio_p", "enospc_p", "torn_p", "lost_fsync_p"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.eio_p + self.enospc_p + self.torn_p + self.lost_fsync_p > 1.0:
            raise ValueError("disk fault probabilities must sum to <= 1")

    @classmethod
    def from_env(cls) -> "DiskFaultPlan":
        return cls(
            eio_p=_env_float("REPRO_DISK_FAULTS_EIO_P", 0.0),
            enospc_p=_env_float("REPRO_DISK_FAULTS_ENOSPC_P", 0.0),
            torn_p=_env_float("REPRO_DISK_FAULTS_TORN_P", 0.0),
            lost_fsync_p=_env_float("REPRO_DISK_FAULTS_LOST_FSYNC_P", 0.0),
            seed=int(_env_float("REPRO_DISK_FAULTS_SEED", 0)),
        )

    def to_dict(self) -> dict:
        return {
            "eio_p": self.eio_p,
            "enospc_p": self.enospc_p,
            "torn_p": self.torn_p,
            "lost_fsync_p": self.lost_fsync_p,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DiskFaultPlan":
        return cls(**data)


class DiskFaultInjector:
    """Seeded per-write fate decisions for durable storage.

    :meth:`fate` returns what the next durable write at a site should
    suffer: ``"eio"`` (fail before any bytes land), ``"enospc"`` (fail
    mid-write, tearing the temp file), ``"torn"`` (half the payload is
    written and the rename *succeeds* -- silent corruption only the
    record checksum can catch), ``"lost_fsync"`` (the write completes
    but no fsync is issued), or ``None`` for a normal write.  The fate
    is a pure function of (plan, site, seq), so a failing chaos run
    replays byte-for-byte with the same seed.
    """

    def __init__(self, plan: DiskFaultPlan):
        self.plan = plan
        self._seq: "dict[str, int]" = {}
        #: How many of each fate was actually injected.
        self.injected = {"eio": 0, "enospc": 0, "torn": 0, "lost_fsync": 0}

    def fate(self, site: str) -> "str | None":
        """The fate of the next durable write at ``site``."""
        seq = self._seq.get(site, 0) + 1
        self._seq[site] = seq
        plan = self.plan
        u = stable_seed(plan.seed, "disk", site, seq) / float(1 << 64)
        band = 0.0
        for kind, p in (
            ("eio", plan.eio_p),
            ("enospc", plan.enospc_p),
            ("torn", plan.torn_p),
            ("lost_fsync", plan.lost_fsync_p),
        ):
            if u < band + p:
                self.injected[kind] += 1
                return kind
            band += p
        return None


#: Programmatically installed disk injector (beats the env one).
_DISK_INSTALLED: "DiskFaultInjector | None" = None
#: Lazily built env-configured disk injector (write seqs persist).
_DISK_FROM_ENV: "DiskFaultInjector | None" = None


def install_disk(injector: DiskFaultInjector) -> DiskFaultInjector:
    """Install a disk injector for this process (tests; returns it)."""
    global _DISK_INSTALLED
    _DISK_INSTALLED = injector
    return injector


def uninstall_disk() -> None:
    """Remove the programmatically installed disk injector."""
    global _DISK_INSTALLED
    _DISK_INSTALLED = None


def active_disk() -> "DiskFaultInjector | None":
    """The disk injector for durable writes, or None when disabled."""
    global _DISK_FROM_ENV
    if _DISK_INSTALLED is not None:
        return _DISK_INSTALLED
    if not _env_flag("REPRO_DISK_FAULTS"):
        return None
    if _DISK_FROM_ENV is None:
        _DISK_FROM_ENV = DiskFaultInjector(DiskFaultPlan.from_env())
    return _DISK_FROM_ENV
