"""Deterministic fault injection for exercising the resilience layer.

The injector sits between the :class:`~repro.experiments.runner.SweepRunner`
guard path and ``simulate_cpu`` / ``simulate_gpu``: for every execution
attempt it draws once from a seeded RNG keyed on (seed, site, cell key,
attempt number) and either

* raises :class:`InjectedFault` (a ``crash`` in the taxonomy),
* *hangs* -- sleeps ``hang_s`` before running, so a guard timeout fires
  (or, with no timeout, the run is merely slow),
* runs the simulation and **corrupts** the result (``time_s`` becomes
  NaN), which the runner's sanity check rejects as ``corrupt``, or
* **dies** -- SIGKILLs its own process, the hard-crash class (segfault,
  OOM kill) that only the process-isolated sweep executor
  (:mod:`repro.resilience.pool`) can contain.  Under ``isolation="thread"``
  a die fault takes down the whole sweep, which is exactly the failure
  mode it exists to demonstrate.

Because the draw is keyed on the attempt number, retries re-roll: a cell
that crashed on attempt 1 can succeed on attempt 2, exactly the transient
behaviour the retry path exists for.  The same seed always produces the
same fault schedule, so CI failures reproduce locally.

Draws are keyed on (seed, site, cell key, attempt) -- never on PID or
process identity -- so a parallel sweep whose attempts run in spawned
worker processes replays byte-identically: the supervisor tells each
worker which attempt it is executing and the worker *primes* its local
injector (:meth:`FaultInjector.prime`) to draw for exactly that attempt.

Env gating (mirrors ``REPRO_OBS``)
----------------------------------
``REPRO_FAULTS=1`` enables injection with probabilities read from
``REPRO_FAULTS_FAIL_P`` / ``REPRO_FAULTS_HANG_P`` /
``REPRO_FAULTS_CORRUPT_P`` / ``REPRO_FAULTS_DIE_P`` (defaults 0), seed
from ``REPRO_FAULTS_SEED`` (default 0), and hang duration from
``REPRO_FAULTS_HANG_S`` (default 30s).
Tests install an injector programmatically via :func:`install` instead.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from typing import Callable

from repro.resilience.guard import stable_seed


class InjectedFault(RuntimeError):
    """A crash injected by the fault harness (classified as ``crash``)."""


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in {"1", "true", "yes", "on"}


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    return float(raw) if raw else default


@dataclass(frozen=True)
class FaultPlan:
    """Per-attempt fault probabilities (disjoint: fail, then hang, then
    corrupt, then die, drawn from one uniform sample)."""

    fail_p: float = 0.0
    hang_p: float = 0.0
    corrupt_p: float = 0.0
    seed: int = 0
    hang_s: float = 30.0
    die_p: float = 0.0

    def __post_init__(self) -> None:
        for name in ("fail_p", "hang_p", "corrupt_p", "die_p"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.fail_p + self.hang_p + self.corrupt_p + self.die_p > 1.0:
            raise ValueError("fault probabilities must sum to <= 1")

    @classmethod
    def from_env(cls) -> "FaultPlan":
        return cls(
            fail_p=_env_float("REPRO_FAULTS_FAIL_P", 0.0),
            hang_p=_env_float("REPRO_FAULTS_HANG_P", 0.0),
            corrupt_p=_env_float("REPRO_FAULTS_CORRUPT_P", 0.0),
            seed=int(_env_float("REPRO_FAULTS_SEED", 0)),
            hang_s=_env_float("REPRO_FAULTS_HANG_S", 30.0),
            die_p=_env_float("REPRO_FAULTS_DIE_P", 0.0),
        )

    def to_dict(self) -> dict:
        """Plain-dict form, picklable into worker processes."""
        return {
            "fail_p": self.fail_p,
            "hang_p": self.hang_p,
            "corrupt_p": self.corrupt_p,
            "seed": self.seed,
            "hang_s": self.hang_s,
            "die_p": self.die_p,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(**data)


class FaultInjector:
    """Seeded, per-attempt fault decisions for sweep executions."""

    def __init__(self, plan: FaultPlan, sleep: "Callable[[float], None]" = time.sleep):
        self.plan = plan
        self._sleep = sleep
        self._attempt_counts: "dict[tuple, int]" = {}
        #: How many of each fault kind were actually injected.
        self.injected = {"fail": 0, "hang": 0, "corrupt": 0, "die": 0}

    def _draw(self, site: str, key: tuple) -> float:
        """One uniform [0, 1) sample, unique per (site, key, attempt)."""
        cell = (site, key)
        attempt = self._attempt_counts.get(cell, 0) + 1
        self._attempt_counts[cell] = attempt
        return stable_seed(self.plan.seed, site, key, attempt) / float(1 << 64)

    def prime(self, site: str, key: tuple, attempt: int) -> None:
        """Make the next draw for (site, key) use ``attempt`` (1-based).

        A worker process executing a requeued attempt starts with a fresh
        injector whose counters would otherwise restart at 1, replaying
        attempt 1's fault forever.  The supervisor tells the worker which
        attempt it is running; priming re-keys the draw on (cell, attempt)
        -- never on PID -- so parallel sweeps replay deterministically.
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        self._attempt_counts[(site, tuple(key))] = attempt - 1

    def call(self, site: str, key: tuple, fn: Callable[[], object]):
        """Run one execution attempt through the fault schedule."""
        plan = self.plan
        u = self._draw(site, key)
        if u < plan.fail_p:
            self.injected["fail"] += 1
            raise InjectedFault(f"injected crash at {site} cell {key!r}")
        if u < plan.fail_p + plan.hang_p:
            self.injected["hang"] += 1
            self._sleep(plan.hang_s)
        band = plan.fail_p + plan.hang_p + plan.corrupt_p
        if band <= u < band + plan.die_p:
            # Hard process death: the supervisor must see a vanished
            # worker, not an exception.  SIGKILL cannot be caught.
            self.injected["die"] += 1
            os.kill(os.getpid(), getattr(signal, "SIGKILL", signal.SIGTERM))
        result = fn()
        if u >= plan.fail_p + plan.hang_p and (
            u < plan.fail_p + plan.hang_p + plan.corrupt_p
        ):
            self.injected["corrupt"] += 1
            result.time_s = float("nan")
        return result


#: Programmatically installed injector (takes precedence over the env one).
_INSTALLED: "FaultInjector | None" = None
#: Lazily built env-configured injector (kept so attempt counts persist).
_FROM_ENV: "FaultInjector | None" = None


def install(injector: FaultInjector) -> FaultInjector:
    """Install an injector for this process (tests; returns it back)."""
    global _INSTALLED
    _INSTALLED = injector
    return injector


def uninstall() -> None:
    """Remove the programmatically installed injector."""
    global _INSTALLED
    _INSTALLED = None


def reset() -> None:
    """Forget both the installed and the env-built injector (test hygiene)."""
    global _INSTALLED, _FROM_ENV
    _INSTALLED = None
    _FROM_ENV = None


def installed_plan() -> "FaultPlan | None":
    """The programmatically installed plan, if any.

    The process-isolated sweep executor serialises this into worker specs
    so an injector installed in the parent (tests, harnesses) drives the
    same fault schedule inside spawned workers -- env-gated injection
    needs no help, since ``REPRO_FAULTS*`` is propagated as environment.
    """
    return _INSTALLED.plan if _INSTALLED is not None else None


def active() -> "FaultInjector | None":
    """The injector to route executions through, or None when disabled."""
    global _FROM_ENV
    if _INSTALLED is not None:
        return _INSTALLED
    if not _env_flag("REPRO_FAULTS"):
        return None
    if _FROM_ENV is None:
        _FROM_ENV = FaultInjector(FaultPlan.from_env())
    return _FROM_ENV
