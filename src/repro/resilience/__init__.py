"""Resilient sweep execution: guards, checkpoints, and fault injection.

The paper's headline figures come from large (configuration x workload)
sweeps whose cells are independent -- a failed cell should cost one data
point, not the sweep.  This package hardens
:class:`repro.experiments.runner.SweepRunner` end to end:

* :mod:`repro.resilience.errors` -- the structured failure taxonomy
  (:class:`RunFailure` records with kind timeout / config / workload /
  crash / corrupt);
* :mod:`repro.resilience.guard` -- per-run wall-clock timeouts and retry
  with exponential backoff + deterministic jitter (:class:`GuardPolicy`,
  :func:`run_guarded`);
* :mod:`repro.resilience.checkpoint` -- versioned, integrity-hashed JSON
  persistence of the runner caches keyed on a settings fingerprint, so
  interrupted sweeps resume with only the missing cells re-executed;
* :mod:`repro.resilience.pool` / :mod:`repro.resilience.worker` -- the
  process-isolated parallel executor: each cell attempt runs in a
  supervised worker process from a bounded pool, overrunning workers are
  SIGKILLed at the policy timeout, and worker death (crash, signal, lost
  heartbeat) is contained to one attempt and requeued under the same
  retry/backoff budget;
* :mod:`repro.resilience.selfcheck` -- end-of-run result invariants
  (ROB/RF drained, positive cycle counts, retired-instruction
  conservation) that reject corrupted measurements as ``corrupt``
  failures instead of silently wrong report rows;
* :mod:`repro.resilience.faults` -- a seeded, env-gated fault-injection
  harness (``REPRO_FAULTS``) that makes simulations crash, hang, return
  corrupted results, or hard-kill their own process at configurable
  probabilities, used to test this layer itself and exercised from CI;
* :mod:`repro.resilience.diskio` -- the single crash-consistent write
  path to disk (temp + fsync + rename + directory fsync, per-record
  checksums with quarantine-on-corruption, orphaned-temp sweeps) used
  by checkpoints, the result store, and every snapshot writer, with
  seeded disk faults (``REPRO_DISK_FAULTS``) injected at this one
  choke point.

Guards live in the *runner*, not in ``simulate_cpu``/``simulate_gpu``:
the simulators stay deterministic pure functions (the property the whole
reproduction leans on), while the runner -- the only place that already
knows about cells, caches, and telemetry -- owns everything about
executing them unreliably-but-recoverably.
"""

from repro.resilience.errors import (
    FAILURE_KINDS,
    CorruptResult,
    RunFailure,
    SweepError,
)
from repro.resilience.guard import (
    GuardOutcome,
    GuardPolicy,
    GuardTimeout,
    call_with_timeout,
    run_guarded,
    stable_seed,
    zombie_thread_count,
)
from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointData,
    CheckpointLock,
    CheckpointLockTimeout,
    SweepCheckpoint,
)
from repro.resilience.faults import FaultInjector, FaultPlan, InjectedFault
from repro.resilience.pool import CellTask, PoolAborted, SweepPool
from repro.resilience.selfcheck import (
    check_cpu_result,
    check_gpu_result,
    validate_result,
)

__all__ = [
    "FAILURE_KINDS",
    "CorruptResult",
    "RunFailure",
    "SweepError",
    "GuardOutcome",
    "GuardPolicy",
    "GuardTimeout",
    "call_with_timeout",
    "run_guarded",
    "stable_seed",
    "zombie_thread_count",
    "CHECKPOINT_VERSION",
    "CheckpointData",
    "CheckpointLock",
    "CheckpointLockTimeout",
    "SweepCheckpoint",
    "FaultInjector",
    "FaultPlan",
    "InjectedFault",
    "CellTask",
    "PoolAborted",
    "SweepPool",
    "check_cpu_result",
    "check_gpu_result",
    "validate_result",
]
