"""Crash-consistent durable file I/O -- the one write path to disk.

Every persistent artifact the service tier owns (checkpoints, store
entries, health/metrics/fleet snapshots) goes through this module
instead of hand-rolling its own temp-file dance.  The write protocol
is the full crash-consistency sequence, not just an atomic replace:

1. write to ``<name>.tmp.<pid>`` in the target directory,
2. flush and **fsync the file descriptor** (the bytes are on the
   platter, not in the page cache),
3. ``os.replace`` onto the target (atomic on POSIX),
4. **fsync the parent directory** (the rename itself is durable).

Without steps 2 and 4 a power loss after "success" can resurface the
old file, a zero-byte file, or garbage -- rename-without-fsync only
protects against process death, not machine death.

Records (:func:`write_record` / :func:`read_record`) additionally wrap
the payload in a checksum envelope so torn or partially-flushed writes
are *detected* on open: a record that fails its checksum (or fails to
parse at all) is quarantined to ``<name>.quarantine`` and reported as
missing, never raised.  Writers call :func:`sweep_orphan_temps` at
startup so ``*.tmp.<pid>`` droppings from crashed processes do not
accumulate forever.

Fault injection (:mod:`repro.resilience.faults`, ``REPRO_DISK_FAULTS*``)
is honored at this single choke point: an injected EIO/ENOSPC raises
``OSError`` exactly as a real one would (with the temp file cleaned
up), a torn write silently corrupts the record for the read-side
checksum to catch, and a lost fsync skips durability while still
"succeeding".

Chaos hook: ``REPRO_DISKIO_CRASH_AFTER_TMP=<site>:<n>`` SIGKILLs the
process immediately after the *n*-th write at ``site`` has fsynced its
temp file but before the rename -- the exact window a crash-consistent
writer must leave harmless (the target is untouched; the temp is an
orphan for the next startup sweep).
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import re
import signal
from pathlib import Path

from repro.resilience import faults

#: Suffix of quarantined (checksum-failed / unparsable) records.
QUARANTINE_SUFFIX = ".quarantine"

_TMP_RE = re.compile(r"\.tmp\.(\d+)$")

#: Module-level counters: cheap plain ints, surfaced through telemetry
#: probes (``sweep.diskio.*``) so every process's durable-I/O behaviour
#: shows up in metrics snapshots and ``repro top``.
_STATS = {
    "writes": 0,
    "write_failures": 0,
    "reads": 0,
    "quarantined": 0,
    "fsync_skipped": 0,
    "orphans_swept": 0,
}

#: Per-site write counts for the SIGKILL-mid-flush chaos hook.
_CRASH_COUNTS: "dict[str, int]" = {}


def stats() -> "dict[str, int]":
    """A copy of this process's durable-I/O counters."""
    return dict(_STATS)


def reset_stats() -> None:
    """Zero the counters and the crash-hook state (test hygiene)."""
    for key in _STATS:
        _STATS[key] = 0
    _CRASH_COUNTS.clear()


def _emit(event: str, **fields) -> None:
    """Best-effort structured event; never lets telemetry break I/O."""
    try:
        from repro.obs.events import get_event_log

        get_event_log().emit(event, **fields)
    except Exception:
        pass


def _fsync_dir(directory: Path) -> None:
    """fsync a directory so a just-renamed entry survives power loss."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # platforms/filesystems without directory fds
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _maybe_crash_after_tmp(site: str) -> None:
    spec = os.environ.get("REPRO_DISKIO_CRASH_AFTER_TMP", "")
    if not spec:
        return
    want, _, nth = spec.partition(":")
    if want != site:
        return
    count = _CRASH_COUNTS.get(site, 0) + 1
    _CRASH_COUNTS[site] = count
    if count == int(nth or 1):
        os.kill(os.getpid(), getattr(signal, "SIGKILL", signal.SIGTERM))


def durable_write_text(path, text: str, *, site: str = "diskio") -> None:
    """Crash-consistently replace ``path`` with ``text``.

    Raises ``OSError`` (real or injected) on failure; the temp file
    never survives an exception, so failed writes leave no droppings --
    only an actual process death between temp-fsync and rename does,
    and startup sweeps collect those.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    injector = faults.active_disk()
    fate = injector.fate(site) if injector is not None else None
    if fate == "eio":
        _STATS["write_failures"] += 1
        _emit("diskio.fault", site=site, kind="eio", path=str(target))
        raise OSError(errno.EIO, f"injected EIO at {site}", str(target))
    data = text.encode("utf-8")
    tmp = target.with_name(target.name + f".tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            if fate == "enospc":
                # A real ENOSPC lands mid-write: some bytes made it,
                # then the device was full.  The except-unlink below
                # restores the no-droppings invariant either way.
                handle.write(data[: len(data) // 2])
                _emit("diskio.fault", site=site, kind="enospc",
                      path=str(target))
                raise OSError(
                    errno.ENOSPC, f"injected ENOSPC at {site}", str(target)
                )
            if fate == "torn":
                # Half the payload lands and the rename below still
                # "succeeds" -- the checksum envelope is the only thing
                # standing between this and silent corruption.
                handle.write(data[: max(len(data) // 2, 1)])
                _emit("diskio.fault", site=site, kind="torn",
                      path=str(target))
            else:
                handle.write(data)
            if fate == "lost_fsync":
                _STATS["fsync_skipped"] += 1
                _emit("diskio.fault", site=site, kind="lost_fsync",
                      path=str(target))
            else:
                handle.flush()
                os.fsync(handle.fileno())
        _maybe_crash_after_tmp(site)
        os.replace(tmp, target)
        if fate != "lost_fsync":
            _fsync_dir(target.parent)
    except OSError:
        _STATS["write_failures"] += 1
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    _STATS["writes"] += 1


def record_checksum(payload) -> str:
    """sha256 over the canonical JSON form of ``payload``."""
    canon = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


def write_record(path, payload: dict, *, site: str = "record") -> None:
    """Durably write ``payload`` wrapped in a checksum envelope."""
    doc = {"checksum": record_checksum(payload), "payload": payload}
    durable_write_text(
        path,
        json.dumps(doc, indent=1, sort_keys=True, default=str),
        site=site,
    )


def quarantine_file(path, *, site: str = "record", reason: str = "corrupt"):
    """Move a damaged file aside (``<name>.quarantine``) and report it.

    Returns the quarantine path, or None if the move itself failed.
    """
    target = Path(path)
    dest = target.with_name(target.name + QUARANTINE_SUFFIX)
    try:
        os.replace(target, dest)
    except OSError:
        return None
    _STATS["quarantined"] += 1
    _emit("diskio.quarantine", site=site, path=str(target), reason=reason)
    return dest


def read_record(path, *, site: str = "record", quarantine: bool = True):
    """Read a record written by :func:`write_record`; fail soft.

    Returns the payload dict, or None when the file is missing.  A
    torn, truncated, or checksum-failed record is quarantined (moved to
    ``<name>.quarantine``) rather than raised, and reads as missing.  A
    legacy plain-JSON document (no envelope) is returned as-is, so old
    snapshot files stay readable across the upgrade.
    """
    target = Path(path)
    try:
        raw = target.read_text()
    except OSError:
        return None
    _STATS["reads"] += 1

    def damaged(reason: str):
        if quarantine:
            quarantine_file(target, site=site, reason=reason)
        else:
            _STATS["quarantined"] += 1
            _emit("diskio.quarantine", site=site, path=str(target),
                  reason=reason, moved=False)
        return None

    if not raw.strip():
        return damaged("empty")
    try:
        doc = json.loads(raw)
    except ValueError:
        return damaged("torn")
    if not isinstance(doc, dict):
        return damaged("not-a-record")
    if set(doc) == {"checksum", "payload"}:
        if doc["checksum"] != record_checksum(doc["payload"]):
            return damaged("checksum")
        return doc["payload"]
    return doc  # legacy pre-envelope document


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True  # exists but not ours (EPERM)
    return True


def sweep_orphan_temps(directory, *, site: str = "diskio") -> int:
    """Unlink ``*.tmp.<pid>`` droppings from dead writers.

    Called by writers at startup.  A temp whose pid is still alive (and
    is not us) belongs to a concurrent writer and is left alone; our
    own pid at startup means a recycled pid from a crash, so it goes
    too.  Returns the number removed.
    """
    root = Path(directory)
    try:
        names = os.listdir(root)
    except OSError:
        return 0
    removed = 0
    for name in names:
        match = _TMP_RE.search(name)
        if match is None:
            continue
        pid = int(match.group(1))
        if pid != os.getpid() and _pid_alive(pid):
            continue
        try:
            (root / name).unlink()
        except OSError:
            continue
        removed += 1
    if removed:
        _STATS["orphans_swept"] += removed
        _emit("diskio.orphans_swept", site=site, directory=str(root),
              count=removed)
    return removed
