"""Shared-memory trace transport for the process-isolated sweep pool.

Every worker attempt used to regenerate its cell's workload trace from
scratch (fork makes the parent's in-process trace cache available via
copy-on-write, but spawn contexts -- and every retry under either context
when the cache misses -- pay full generation cost, and pickling traces
through the task spec would pay a serialisation copy per attempt instead).
This module moves the trace bytes through one POSIX shared-memory segment:

* the **parent** (:class:`repro.resilience.pool.SweepPool`) calls
  :func:`export_traces` once per :meth:`run`: it generates (through the
  process-wide trace cache, so the parent itself also benefits) every
  distinct trace its task list will need, packs the numpy arrays
  back-to-back into a single segment, and passes a picklable description
  of the layout to workers inside the task spec;
* each **worker** calls :func:`attach_traces` before executing: it maps
  the segment, rebuilds zero-copy read-only numpy views, and seeds its
  process-local trace cache under the exact keys
  ``("cpu", profile, n, seed)`` / ``("gpu", profile, seed)`` that
  :func:`repro.workloads.trace_cache.cached_trace` /
  :func:`~repro.workloads.trace_cache.cached_kernel` will look up -- the
  simulators then hit the cache and never regenerate.

Ownership and cleanup are deliberately asymmetric, because workers can die
at any instant (SIGKILL on timeout, injected crash, OOM):

* the parent is the *sole owner*: it creates the segment and
  ``unlink``\\ s it in the supervisor's ``finally`` (which runs on normal
  completion, :class:`~repro.resilience.pool.PoolAborted`, fail-fast
  callback errors, and KeyboardInterrupt alike), so a SIGKILLed worker
  can never leak a ``/dev/shm`` entry -- the kernel drops the worker's
  mapping with the process, and the name is the parent's to reclaim;
* workers only ever *attach*.  CPython's ``resource_tracker``
  (3.9--3.12) registers attached segments too (cpython#82300), which in a
  process tree sharing one tracker either does nothing or, when
  compensated with ``unregister``, strips the parent's own registration;
  :func:`attach_traces` therefore suppresses the attach-side registration
  entirely, leaving the parent the segment's only tracked owner.
* if the parent itself dies before the ``finally`` runs, its own
  resource tracker survives it and reclaims the segment -- that is the
  one job the tracker is kept for.

Failure never escalates: a parent that cannot create shared memory (no
``/dev/shm``, size limits) exports nothing, and a worker that cannot
attach (segment already unlinked during a drain race) seeds nothing; both
fall back to ordinary generation, which is slower but bit-identical.
``REPRO_NO_SHM_TRACES=1`` disables the transport outright.
"""

from __future__ import annotations

import atexit
import os
from multiprocessing import resource_tracker, shared_memory

import numpy as np

#: Per-array alignment inside the segment (covers every trace dtype).
_ALIGN = 16

#: Trace dataclass fields packed per kind, in layout order.
_CPU_FIELDS = ("op", "src1_dist", "src2_dist", "addr", "pc", "taken")
_GPU_FIELDS = ("op", "dep_dist", "src1_reg", "src2_reg", "dst_reg")

#: Segments this process has attached to, kept alive for its lifetime
#: (the zero-copy numpy views seeded into the trace cache borrow the
#: segment's buffer).
_attached: "list[shared_memory.SharedMemory]" = []
_cleanup_registered = False

#: Process-local transport counters, surfaced by ``repro stats`` and the
#: sweep telemetry probes (plain ints: incrementing them must stay free).
_stats = {
    "exported_segments": 0,   # segments this process created
    "exported_bytes": 0,      # total packed payload bytes
    "export_unavailable": 0,  # exports that fell back (no /dev/shm, ...)
    "attached_segments": 0,   # segments this process mapped
    "attach_failures": 0,     # attachments that fell back to regeneration
    "seeded_traces": 0,       # cache entries seeded from mapped segments
}


def transport_stats() -> "dict[str, int]":
    """Point-in-time counters of this process's shm-trace activity."""
    return dict(_stats)


def transport_enabled() -> bool:
    """``REPRO_NO_SHM_TRACES`` escape hatch for the trace transport."""
    raw = os.environ.get("REPRO_NO_SHM_TRACES", "").strip().lower()
    return raw not in {"1", "true", "yes", "on"}


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


def plan_entries(tasks) -> "list[tuple[str, str]]":
    """Distinct ``(kind, workload)`` traces the task list will pull.

    CPU and DVFS cells share one trace per application (DVFS reruns the
    same workload at a different frequency; the trace key does not include
    the configuration), GPU cells one per kernel.  Unknown run kinds are
    skipped -- they regenerate as before.
    """
    seen: "set[tuple[str, str]]" = set()
    entries: "list[tuple[str, str]]" = []
    for task in tasks:
        kind = "cpu" if task.run_kind in ("cpu", "dvfs") else (
            "gpu" if task.run_kind == "gpu" else None
        )
        if kind is None:
            continue
        ident = (kind, task.workload)
        if ident not in seen:
            seen.add(ident)
            entries.append(ident)
    return entries


def _trace_arrays(kind: str, workload: str, instructions: int, seed: int):
    """Generate (through the shared cache) and return the field arrays."""
    if kind == "cpu":
        from repro.workloads.profiles import cpu_app
        from repro.workloads.trace_cache import cached_trace

        trace = cached_trace(cpu_app(workload), instructions, seed=seed)
        fields = _CPU_FIELDS
    else:
        from repro.workloads.gpu_profiles import gpu_kernel
        from repro.workloads.trace_cache import cached_kernel

        trace = cached_kernel(gpu_kernel(workload), seed=seed)
        fields = _GPU_FIELDS
    return [(name, np.ascontiguousarray(getattr(trace, name))) for name in fields]


def export_traces(tasks, instructions: int, seed: int = 0):
    """Pack every trace ``tasks`` will need into one shared-memory segment.

    Returns ``(meta, shm)``: ``meta`` is the picklable layout description
    to embed in worker specs, ``shm`` the created segment whose name the
    caller must reclaim with :func:`release` when the pool finishes.
    Returns ``(None, None)`` when there is nothing to share or shared
    memory is unavailable (the sweep proceeds without the transport).
    """
    idents = plan_entries(tasks)
    if not idents:
        return None, None

    entries = []
    offset = 0
    payload = []
    for kind, workload in idents:
        arrays = _trace_arrays(kind, workload, instructions, seed)
        layout = []
        for name, arr in arrays:
            offset = _align(offset)
            layout.append((name, arr.dtype.str, tuple(arr.shape), offset))
            payload.append((offset, arr))
            offset += arr.nbytes
        entries.append(
            {
                "kind": kind,
                "workload": workload,
                "n": instructions,
                "seed": seed,
                "arrays": layout,
            }
        )
    if offset == 0:
        return None, None

    try:
        shm = shared_memory.SharedMemory(create=True, size=offset)
    except (OSError, ValueError):
        _stats["export_unavailable"] += 1
        return None, None
    try:
        for off, arr in payload:
            dst = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=off)
            dst[...] = arr
    except BaseException:
        release(shm)
        raise
    _stats["exported_segments"] += 1
    _stats["exported_bytes"] += offset
    meta = {"name": shm.name, "size": offset, "entries": entries}
    return meta, shm


def release(shm) -> None:
    """Close and unlink a segment created by :func:`export_traces`.

    Idempotent and exception-free: safe to call from ``finally`` blocks
    after any partial failure (already-unlinked names are fine).
    """
    try:
        shm.close()
    except (BufferError, OSError):  # pragma: no cover - defensive
        pass
    try:
        shm.unlink()
    except (FileNotFoundError, OSError):
        pass


def _attach_untracked(name: str) -> "shared_memory.SharedMemory":
    """Attach to an existing segment without resource-tracker registration.

    CPython <= 3.12 registers *attachments* with the resource tracker too
    (cpython#82300).  Worker processes share the parent's tracker, so an
    attach-side registration is either a set no-op or -- if later
    unregistered -- strips the parent's own crash-safety registration and
    makes the parent's eventual ``unlink`` complain.  Suppressing the
    register call at attach time leaves the parent as the segment's only
    tracked owner, which is the ownership model this module wants.
    """
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _release_attached() -> None:
    """atexit: drop cache-held views, then detach cleanly.

    Ordered so the numpy views (owned by the process-wide trace cache) are
    released before the segments close; otherwise interpreter teardown may
    close a buffer that still has exported views and spray ``BufferError``
    noise onto stderr.
    """
    from repro.workloads.trace_cache import shared_cache

    shared_cache().clear()
    for shm in _attached:
        try:
            shm.close()
        except (BufferError, OSError):  # views still referenced elsewhere
            pass
    _attached.clear()


def attach_traces(meta) -> int:
    """Map the parent's segment and seed this process's trace cache.

    Returns the number of traces seeded.  First insert wins in the cache
    (under a fork context the inherited entries are the same buffers
    anyway); any failure to attach returns 0 and the worker falls back to
    regeneration -- slower, bit-identical.
    """
    global _cleanup_registered
    if meta is None or not transport_enabled():
        return 0
    try:
        shm = _attach_untracked(meta["name"])
    except (FileNotFoundError, OSError, ValueError):
        _stats["attach_failures"] += 1
        return 0
    _attached.append(shm)
    _stats["attached_segments"] += 1
    if not _cleanup_registered:
        atexit.register(_release_attached)
        _cleanup_registered = True

    from repro.workloads.trace_cache import shared_cache

    cache = shared_cache()
    seeded = 0
    for entry in meta["entries"]:
        arrays = {}
        for name, dtype, shape, off in entry["arrays"]:
            arr = np.ndarray(
                tuple(shape), dtype=np.dtype(dtype), buffer=shm.buf, offset=off
            )
            arr.flags.writeable = False  # engines read traces, never write
            arrays[name] = arr
        if entry["kind"] == "cpu":
            from repro.cpu.trace import Trace
            from repro.workloads.profiles import cpu_app
            from repro.workloads.trace_cache import trace_key

            profile = cpu_app(entry["workload"])
            value = Trace(**arrays)
            key = trace_key(profile, entry["n"], entry["seed"])
        else:
            from repro.workloads.gpu_generator import KernelTrace
            from repro.workloads.gpu_profiles import gpu_kernel
            from repro.workloads.trace_cache import kernel_key

            profile = gpu_kernel(entry["workload"])
            value = KernelTrace(profile=profile, **arrays)
            key = kernel_key(profile, entry["seed"])
        cache.put(key, value)
        seeded += 1
    _stats["seeded_traces"] += seeded
    return seeded
