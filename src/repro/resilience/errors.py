"""Structured error taxonomy for sweep execution.

Every failed (configuration, workload) cell collapses into a
:class:`RunFailure` record instead of an unwound stack: what failed
(``run_kind``/``config``/``workload``), *how* it failed (``kind``, one of
:data:`FAILURE_KINDS`), how hard the guard tried (``attempts``), and the
evidence (``message``, ``traceback``, ``wall_s``).  The records are plain
data -- JSON-serialisable via :meth:`RunFailure.to_dict` -- so they travel
through checkpoints, telemetry, and reports unchanged.

Kinds
-----
``timeout``
    The run exceeded the guard's wall-clock budget.
``config``
    The configuration name failed validation (unknown Table IV name).
``workload``
    The app/kernel name failed validation (unknown profile).
``crash``
    The simulation raised (including injected faults).
``corrupt``
    The simulation returned, but the result failed the sanity check
    (non-finite or non-positive time/energy).
``shed``
    The job service refused to execute the cell: load shedding (queue
    full, past its deadline), an open circuit breaker for the
    (run_kind, config), or a graceful drain that ran out of deadline.
    Shed cells were never attempted (``attempts == 0``) -- they are
    admission-control decisions, not execution failures, but they are
    still recorded gaps so nothing is ever dropped silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Every failure kind a :class:`RunFailure` may carry.
FAILURE_KINDS = ("timeout", "config", "workload", "crash", "corrupt", "shed")


class CorruptResult(RuntimeError):
    """A simulation returned a result that fails the sanity check."""


@dataclass(frozen=True)
class RunFailure:
    """One sweep cell that degraded to a recorded gap."""

    run_kind: str  # "cpu" | "gpu" | "dvfs"
    config: str
    workload: str
    kind: str  # one of FAILURE_KINDS
    attempts: int
    message: str
    traceback: str = ""
    wall_s: float = 0.0
    #: Extra cell coordinates beyond (config, workload) -- the DVFS runs
    #: add (freq_ghz, variation).
    extra: tuple = field(default=())
    #: Flight-recorder tail: the last structured events the worker spilled
    #: to its sidecar before dying without a terminal message (SIGKILL,
    #: lost heartbeat).  Plain event dicts, JSON-ready; empty for attempts
    #: that reported normally.
    flight: tuple = field(default=())

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_KINDS:
            raise ValueError(
                f"unknown failure kind {self.kind!r} (expected {FAILURE_KINDS})"
            )

    @property
    def cell(self) -> tuple:
        """The unique sweep-cell coordinate this failure occupies."""
        return (self.run_kind, self.config, self.workload, *self.extra)

    def summary(self) -> str:
        """One human-readable line for tables and logs."""
        extra = "".join(f" @{e}" for e in self.extra)
        return (
            f"{self.run_kind} {self.config}/{self.workload}{extra}: "
            f"{self.kind} after {self.attempts} attempt(s) -- {self.message}"
        )

    def to_dict(self) -> dict:
        return {
            "run_kind": self.run_kind,
            "config": self.config,
            "workload": self.workload,
            "kind": self.kind,
            "attempts": self.attempts,
            "message": self.message,
            "traceback": self.traceback,
            "wall_s": self.wall_s,
            "extra": list(self.extra),
            "flight": list(self.flight),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunFailure":
        return cls(
            run_kind=data["run_kind"],
            config=data["config"],
            workload=data["workload"],
            kind=data["kind"],
            attempts=data["attempts"],
            message=data["message"],
            traceback=data.get("traceback", ""),
            wall_s=data.get("wall_s", 0.0),
            extra=tuple(data.get("extra", ())),
            flight=tuple(data.get("flight", ())),
        )


class SweepError(RuntimeError):
    """Raised when a guarded run exhausts its retry budget.

    Carries the :class:`RunFailure` so strict callers (direct ``cpu_run``
    calls, ``--fail-fast`` sweeps) still see the full taxonomy record.
    """

    def __init__(self, failure: RunFailure):
        super().__init__(failure.summary())
        self.failure = failure
