"""End-of-run result self-checks: reject corrupted measurements.

A simulation that *returns* is not necessarily a simulation that ran
correctly: a bit-flipped counter, a broken refactor, or an injected
corruption can produce a structurally complete result whose numbers are
silently wrong.  Every check here raises
:class:`~repro.resilience.errors.CorruptResult`, so a bad cell flows
through the guard path's existing ``corrupt`` failure kind -- retried,
then recorded as a gap -- instead of landing in a report as a plausible
row.

Checked invariants (CPU / DVFS results):

* **scalars** -- ``time_s`` and ``energy_j`` finite and positive;
* **cycle count** -- every detailed core's measured window is a positive
  cycle count that advanced no faster than the physical commit bandwidth
  allows (committed <= cycles x 8, a generous bound on the 4-wide core);
* **retired-instruction conservation** -- the engine's incremented commit
  counter and the measurement-window arithmetic (``n - warmup``) must
  agree exactly;
* **ROB/RF drained** -- at end of run no entries may remain in the ROB,
  issue queue, LSQ, or rename register files
  (:attr:`~repro.cpu.core.CoreResult.undrained`).

GPU results get the scalar checks plus positive cycle/instruction counts
and the fixed-total-work cycle accounting.
"""

from __future__ import annotations

import math

from repro.resilience.errors import CorruptResult

#: Upper bound on per-cycle commits; the core is 4-wide, 8 absorbs the
#: half-open measurement-window boundary cycles.
_MAX_COMMIT_PER_CYCLE = 8


def _check_scalars(result) -> None:
    time_s = result.time_s
    energy = result.energy_j
    if not (math.isfinite(time_s) and time_s > 0):
        raise CorruptResult(f"non-finite or non-positive time_s ({time_s!r})")
    if not (math.isfinite(energy) and energy > 0):
        raise CorruptResult(f"non-finite or non-positive energy_j ({energy!r})")


def check_cpu_result(result) -> None:
    """Validate a :class:`~repro.core.simulate.CpuRunResult` in depth."""
    _check_scalars(result)
    mc = result.multicore
    if not (math.isfinite(mc.effective_cycles) and mc.effective_cycles > 0):
        raise CorruptResult(
            f"non-positive effective cycle count ({mc.effective_cycles!r})"
        )
    for idx, core in enumerate(mc.per_core):
        if core.cycles <= 0:
            raise CorruptResult(f"core {idx}: non-positive cycle count ({core.cycles})")
        if core.committed <= 0:
            raise CorruptResult(
                f"core {idx}: non-positive committed count ({core.committed})"
            )
        if core.activity.committed != core.committed:
            raise CorruptResult(
                f"core {idx}: retired-instruction conservation violated "
                f"(activity counted {core.activity.committed}, window holds "
                f"{core.committed})"
            )
        if core.committed > core.cycles * _MAX_COMMIT_PER_CYCLE:
            raise CorruptResult(
                f"core {idx}: {core.committed} commits in {core.cycles} cycles "
                f"exceeds physical commit bandwidth"
            )
        if core.undrained:
            raise CorruptResult(
                f"core {idx}: {core.undrained} ROB/IQ/LSQ/RF entries not "
                f"drained at end of run"
            )


def check_gpu_result(result) -> None:
    """Validate a :class:`~repro.core.simulate.GpuRunResult` in depth."""
    _check_scalars(result)
    gpu = result.gpu
    cu = gpu.cu_result
    if not (math.isfinite(gpu.effective_cycles) and gpu.effective_cycles > 0):
        raise CorruptResult(
            f"non-positive effective cycle count ({gpu.effective_cycles!r})"
        )
    if cu.cycles <= 0:
        raise CorruptResult(f"non-positive CU cycle count ({cu.cycles})")
    if cu.instructions <= 0:
        raise CorruptResult(
            f"non-positive CU instruction count ({cu.instructions})"
        )


def validate_result(run_kind: str, result) -> None:
    """Dispatch to the per-kind deep check (``dvfs`` results are CPU-shaped)."""
    if run_kind == "gpu":
        check_gpu_result(result)
    else:
        check_cpu_result(result)
