"""Per-run execution guards: wall-clock timeout, retry with backoff.

:func:`run_guarded` wraps one simulation call in the full guard path:

* **timeout** -- the call runs in a daemon worker thread and is abandoned
  (recorded as a ``timeout`` failure) if it exceeds ``policy.timeout_s``;
* **retry** -- transient failures (crash, timeout, corrupt result) are
  retried up to ``policy.max_retries`` times with exponential backoff and
  deterministic, seeded jitter, so two processes replaying the same sweep
  sleep the same schedule;
* **taxonomy** -- when the budget is exhausted the outcome carries a
  :class:`repro.resilience.errors.RunFailure` instead of raising, so the
  caller decides whether a failed cell aborts the sweep or degrades to a
  recorded gap.

The guard is deliberately synchronous and dependency-free: sweeps are
CPU-bound pure-Python loops, so one worker thread per *attempt* (not per
cell) adds nothing measurable.  The known limit is that an abandoned hung
thread is a *zombie*: a daemon that dies with the process but keeps
burning CPU until then.  Abandoned threads are tracked
(:func:`zombie_thread_count`) so the runner can surface the leak; when
hung attempts must actually be reclaimed, use the process-isolated
executor (:mod:`repro.resilience.pool`), which SIGKILLs overrunning
workers instead.
"""

from __future__ import annotations

import hashlib
import threading
import time
import traceback as tb_module
from dataclasses import dataclass, field
from typing import Callable

from repro.resilience.errors import CorruptResult, RunFailure


def stable_seed(*parts) -> int:
    """A process-independent 64-bit seed from arbitrary repr()-able parts.

    ``hash()`` is salted per process (PYTHONHASHSEED), so backoff jitter
    and fault-injection draws key off a SHA-256 of the parts instead --
    the same (seed, site, key, attempt) always yields the same draw.
    """
    digest = hashlib.sha256(repr(parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class GuardTimeout(TimeoutError):
    """A guarded call exceeded its wall-clock budget."""

    def __init__(self, timeout_s: float):
        super().__init__(f"run exceeded wall-clock timeout of {timeout_s:g}s")
        self.timeout_s = timeout_s


# -- zombie-thread accounting ------------------------------------------
#
# A timed-out attempt under thread isolation cannot be killed: the daemon
# worker thread keeps burning CPU until its simulation finishes (or the
# process exits).  We track every abandoned thread so the runner can
# surface the leak (``guard.zombie_threads`` gauge, a once-per-sweep
# warning) and point users at ``isolation="process"``, which reclaims the
# CPU with a real SIGKILL (:mod:`repro.resilience.pool`).
_ZOMBIE_LOCK = threading.Lock()
_ZOMBIES: "list[threading.Thread]" = []


def _note_zombie(worker: threading.Thread) -> None:
    with _ZOMBIE_LOCK:
        _ZOMBIES.append(worker)


def zombie_thread_count() -> int:
    """Abandoned guard threads still running (pruned of finished ones)."""
    with _ZOMBIE_LOCK:
        _ZOMBIES[:] = [t for t in _ZOMBIES if t.is_alive()]
        return len(_ZOMBIES)


@dataclass
class GuardPolicy:
    """How hard to try before a cell becomes a recorded gap."""

    #: Wall-clock budget per attempt (None = unbounded).
    timeout_s: "float | None" = None
    #: Re-executions after the first attempt (0 = no retries).
    max_retries: int = 0
    #: Exponential backoff: base * 2^(attempt-1), capped, plus jitter.
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    #: Jitter fraction of the backoff (0 = none, 0.5 = up to +50%).
    jitter: float = 0.5
    #: Seed for the deterministic jitter (and anything keyed off it).
    seed: int = 0
    #: Abort the whole sweep on the first failed cell.
    fail_fast: bool = False
    #: Injectable sleeper so tests assert the schedule without waiting.
    sleep: "Callable[[float], None]" = field(default=time.sleep, repr=False)

    def backoff_s(self, attempt: int, key: tuple = ()) -> float:
        """Deterministic backoff before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        base = min(self.backoff_cap_s, self.backoff_base_s * 2 ** (attempt - 1))
        if self.jitter <= 0:
            return base
        unit = stable_seed(self.seed, key, attempt) / float(1 << 64)
        return base * (1.0 + self.jitter * unit)


@dataclass
class GuardOutcome:
    """What one guarded call produced: a result or a failure, never both."""

    result: object
    failure: "RunFailure | None"
    attempts: int
    #: Wall time of the successful attempt (0.0 when the call failed).
    wall_s: float = 0.0

    @property
    def retries(self) -> int:
        return max(0, self.attempts - 1)

    @property
    def ok(self) -> bool:
        return self.failure is None


def call_with_timeout(fn: Callable[[], object], timeout_s: "float | None"):
    """Run ``fn()`` with a wall-clock budget; raise :class:`GuardTimeout`.

    With ``timeout_s=None`` the call runs inline.  Otherwise it runs in a
    daemon thread; on timeout the thread is abandoned (it cannot be
    killed from Python, but as a daemon it never blocks process exit).
    """
    if timeout_s is None:
        return fn()
    box: dict = {}

    def target() -> None:
        try:
            box["result"] = fn()
        except BaseException as exc:  # propagate into the caller below
            box["error"] = exc

    worker = threading.Thread(target=target, daemon=True, name="repro-guard")
    worker.start()
    worker.join(timeout_s)
    if worker.is_alive():
        _note_zombie(worker)
        raise GuardTimeout(timeout_s)
    if "error" in box:
        raise box["error"]
    return box["result"]


def classify(exc: BaseException) -> str:
    """Map an in-flight exception onto the failure taxonomy."""
    if isinstance(exc, GuardTimeout):
        return "timeout"
    if isinstance(exc, CorruptResult):
        return "corrupt"
    return "crash"


def run_guarded(
    fn: Callable[[], object],
    *,
    policy: GuardPolicy,
    run_kind: str,
    config: str,
    workload: str,
    extra: tuple = (),
    validate: "Callable[[object], None] | None" = None,
    on_retry: "Callable[[int, str], None] | None" = None,
) -> GuardOutcome:
    """Execute one sweep cell under the full guard path.

    ``validate(result)`` may raise :class:`CorruptResult` to reject a
    returned-but-bogus measurement (it is retried like a crash).
    ``on_retry(attempt, kind)`` fires before each backoff sleep so the
    telemetry layer can count retries as they happen.
    """
    key = (run_kind, config, workload, *extra)
    last_exc: "BaseException | None" = None
    last_kind = "crash"
    last_tb = ""
    last_wall = 0.0
    attempts = policy.max_retries + 1
    for attempt in range(1, attempts + 1):
        start = time.perf_counter()
        try:
            result = call_with_timeout(fn, policy.timeout_s)
            if validate is not None:
                validate(result)
            return GuardOutcome(
                result=result,
                failure=None,
                attempts=attempt,
                wall_s=time.perf_counter() - start,
            )
        except Exception as exc:
            last_exc = exc
            last_kind = classify(exc)
            last_tb = tb_module.format_exc()
            last_wall = time.perf_counter() - start
            if attempt <= policy.max_retries:
                if on_retry is not None:
                    on_retry(attempt, last_kind)
                policy.sleep(policy.backoff_s(attempt, key))
    failure = RunFailure(
        run_kind=run_kind,
        config=config,
        workload=workload,
        kind=last_kind,
        attempts=attempts,
        message=f"{type(last_exc).__name__}: {last_exc}",
        traceback=last_tb,
        wall_s=last_wall,
        extra=tuple(extra),
    )
    return GuardOutcome(result=None, failure=failure, attempts=attempts)
