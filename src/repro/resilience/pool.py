"""Process-isolated parallel sweep executor with worker supervision.

The thread-based guard (:mod:`repro.resilience.guard`) has a structural
limit: a hung attempt cannot be killed from Python, and a hard crash
(segfault, OOM kill, interpreter abort) in any cell takes down the whole
sweep.  :class:`SweepPool` removes both failure classes by running each
(configuration, workload) cell attempt in its own worker process
(:mod:`repro.resilience.worker`) under a supervisor loop in the parent:

* **hard timeouts** -- an attempt that exceeds ``policy.timeout_s`` is
  SIGKILLed and reaped; no abandoned zombies keep burning CPU;
* **crash containment** -- a worker that dies (nonzero exit, signal,
  ``kill -9``, lost heartbeat) costs one attempt of one cell, mapped onto
  the existing :class:`~repro.resilience.errors.RunFailure` taxonomy
  (``timeout`` / ``crash``);
* **bounded requeue** -- failed attempts re-enter the queue until
  ``policy.max_retries`` is exhausted, honouring the same deterministic
  seeded backoff schedule as the serial guard (the cell becomes eligible
  again after the backoff delay instead of blocking the supervisor);
* **streamed results** -- each finished cell is reported through
  ``on_result`` the moment it completes, so the caller can merge it into
  the versioned checkpoint incrementally (a parent crash mid-sweep
  resumes with only the gaps re-run);
* **deterministic order** -- :meth:`SweepPool.run` returns outcomes in
  task-submission order regardless of completion order, so serial and
  parallel sweeps produce byte-identical reports.

Isolation mechanics: every worker gets a dedicated pipe (a killed worker
can never poison a queue lock shared with siblings) and runs exactly one
attempt, so the supervisor's SIGKILL is always safe.  Worker processes
are spawned from a bounded pool of ``workers`` slots; cells queue until
a slot frees.

Cell batches: with ``batch_cells > 1`` first attempts hand each worker a
*batch* of cells, executed through the batched engine drivers
(:func:`repro.core.simulate.simulate_gpu_batch` and friends) with one
terminal per-cell reply each -- amortising process start-up, trace
decode, and the lockstep GPU engine across the batch.  Results still
merge in task-submission order, so batched, serial, and ``--workers N``
sweeps produce byte-identical reports.  The attempt's wall-clock budget
scales with the batch size; a failed cell inside a healthy batch costs
only itself (one per-cell ``fail`` entry), while a dead or hung worker
costs every batch cell one attempt -- and every retry runs alone, so the
retry/backoff budget stays per cell.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import signal
import tempfile
import threading
import time
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Callable

from repro import obs
from repro.obs.events import get_event_log, new_trace_id, read_events
from repro.obs.metrics import get_registry
from repro.resilience import faults
from repro.resilience import shm as shm_transport
from repro.resilience.errors import RunFailure
from repro.resilience.guard import GuardOutcome, GuardPolicy
from repro.resilience.worker import worker_main

#: Supervisor loop responsiveness bounds (seconds).
_MIN_WAIT_S = 0.01
_MAX_WAIT_S = 0.25


class PoolAborted(RuntimeError):
    """:meth:`SweepPool.run` was stopped early via :meth:`SweepPool.abort`.

    Raised *from the supervisor loop* after every live worker has been
    SIGKILLed and reaped, so the caller (e.g. a draining
    :class:`repro.serve.service.SimService`) inherits a clean process
    table and can record the unfinished tasks as gaps.
    """


@dataclass(frozen=True)
class CellTask:
    """One sweep cell to execute: coordinates plus cache-key shape."""

    run_kind: str  # "cpu" | "gpu" | "dvfs"
    config: str
    workload: str
    extra: tuple = ()

    @property
    def key(self) -> tuple:
        """The runner's cache key (also the fault-injection draw key)."""
        return (self.config, self.workload, *self.extra)

    @property
    def cell(self) -> tuple:
        """The failure-taxonomy cell coordinate."""
        return (self.run_kind, self.config, self.workload, *self.extra)


@dataclass
class _Pending:
    """A queued attempt, eligible to start at ``not_before`` (monotonic).

    ``idxs`` holds the task indices this attempt executes: one for a
    classic single-cell attempt, several for a first-attempt cell batch.
    Retries always requeue as single-cell attempts, so the retry/backoff
    budget stays per cell.
    """

    idxs: tuple
    attempt: int
    not_before: float = 0.0


@dataclass
class _Live:
    """One running worker process under supervision."""

    idxs: tuple
    attempt: int
    proc: object
    conn: object
    started: float
    deadline: "float | None"
    last_beat: float = field(default=0.0)
    #: Flight-recorder sidecar JSONL the worker spills events to (only
    #: when observability is on); read back if the worker dies silently.
    sidecar: "str | None" = None


def _describe_exit(exitcode: "int | None") -> str:
    if exitcode is None:
        return "still running"
    if exitcode < 0:
        try:
            name = signal.Signals(-exitcode).name
        except ValueError:
            name = f"signal {-exitcode}"
        return f"killed by {name}"
    return f"exit code {exitcode}"


def default_mp_context():
    """Fork where available (fast, Linux), else the platform default."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class SweepPool:
    """Supervised bounded pool executing sweep cells in worker processes.

    ``on_event(event, info)`` observes the worker lifecycle
    (``spawned`` / ``completed`` / ``killed`` / ``crashed`` /
    ``heartbeat_lost`` / ``requeued`` / ``utilization``) so the telemetry
    layer can count it; ``on_result(task, outcome)`` streams each
    finalised cell (success or exhausted failure) in completion order.
    An ``on_result`` that raises aborts the pool: every live worker is
    killed and the exception propagates (this is how ``fail_fast``
    sweeps stop early without leaking children).
    """

    def __init__(
        self,
        *,
        policy: "GuardPolicy | None" = None,
        instructions: int,
        warmup: int,
        workers: int = 2,
        batch_cells: int = 1,
        mp_context=None,
        heartbeat_s: float = 0.5,
        heartbeat_timeout_s: float = 30.0,
        on_event: "Callable[[str, dict], None] | None" = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if batch_cells < 1:
            raise ValueError("batch_cells must be >= 1")
        self.policy = policy or GuardPolicy()
        self.instructions = instructions
        self.warmup = warmup
        self.workers = workers
        #: Cells handed to one worker attempt.  >1 routes first attempts
        #: through the worker's batched execution path (one engine batch
        #: per process); the per-attempt timeout budget scales with the
        #: batch size, and any failed or lost cell requeues *alone*.
        self.batch_cells = batch_cells
        self.ctx = mp_context or default_mp_context()
        self.heartbeat_s = heartbeat_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self._on_event = on_event
        self._abort = threading.Event()
        self._shm_meta: "dict | None" = None
        #: Telemetry-spine state for the current :meth:`run` (obs on only):
        #: tempdir holding worker flight-recorder sidecars, and the
        #: (trace_id, span_id) propagated to workers via the task spec.
        self._obs_dir: "str | None" = None
        self._trace_ctx: "dict | None" = None

    def abort(self) -> None:
        """Request an early stop (thread-safe, idempotent).

        The supervisor loop notices within one wait quantum
        (``_MAX_WAIT_S``), SIGKILLs and reaps every live worker, and
        raises :class:`PoolAborted` out of :meth:`run`.  Used by the job
        service's graceful-drain deadline.
        """
        self._abort.set()

    # -- events --------------------------------------------------------
    def _event(self, event: str, **info) -> None:
        if self._on_event is not None:
            self._on_event(event, info)
        if obs.enabled():
            get_event_log().emit(f"pool.{event}", **info)

    # -- spawning ------------------------------------------------------
    def _spec(
        self, batch: "list[CellTask]", attempt: int, env: dict,
        sidecar: "str | None" = None,
    ) -> dict:
        plan = faults.installed_plan()
        task = batch[0]
        spec = {
            "run_kind": task.run_kind,
            "config": task.config,
            "workload": task.workload,
            "extra": tuple(task.extra),
            "key": task.key,
            "attempt": attempt,
            "instructions": self.instructions,
            "warmup": self.warmup,
            "env": env,
            "fault_plan": plan.to_dict() if plan is not None else None,
            "heartbeat_s": self.heartbeat_s,
            "shm_traces": self._shm_meta,
            # Telemetry spine: carry the obs flag explicitly (it may have
            # been enabled programmatically, invisible to spawn-context
            # children), the coordinator's span context so worker spans
            # stitch into the same trace, and the sidecar path the worker
            # spills its flight recorder to.
            "obs": obs.enabled(),
            "trace": self._trace_ctx,
            "obs_sidecar": sidecar,
        }
        if len(batch) > 1:
            # Batched attempt: the worker runs the whole cell list through
            # the batched engine drivers and replies per cell.
            spec["cells"] = [
                {
                    "run_kind": t.run_kind,
                    "config": t.config,
                    "workload": t.workload,
                    "extra": tuple(t.extra),
                    "key": t.key,
                }
                for t in batch
            ]
        return spec

    def _spawn(
        self, tasks: "list[CellTask]", item: _Pending, env: dict
    ) -> _Live:
        batch = [tasks[i] for i in item.idxs]
        sidecar = None
        if self._obs_dir is not None:
            sidecar = os.path.join(
                self._obs_dir, f"cell{item.idxs[0]}-a{item.attempt}.jsonl"
            )
        recv_conn, send_conn = self.ctx.Pipe(duplex=False)
        proc = self.ctx.Process(
            target=worker_main,
            args=(send_conn, self._spec(batch, item.attempt, env, sidecar)),
            daemon=True,
            name=f"repro-sweep-{item.idxs[0]}-a{item.attempt}",
        )
        try:
            proc.start()
        except BaseException:
            # Spawn failure (fork EAGAIN, fd exhaustion): leak no pipe
            # ends; the caller decides whether to degrade isolation.
            recv_conn.close()
            send_conn.close()
            raise
        send_conn.close()  # parent's copy; worker holds the only writer
        now = time.monotonic()
        timeout_s = self.policy.timeout_s
        if timeout_s is not None:
            # One attempt now covers len(batch) cells' worth of work.
            timeout_s = timeout_s * len(batch)
        live = _Live(
            idxs=item.idxs,
            attempt=item.attempt,
            proc=proc,
            conn=recv_conn,
            started=now,
            deadline=(now + timeout_s) if timeout_s is not None else None,
            last_beat=now,
            sidecar=sidecar,
        )
        self._event(
            "spawned",
            pid=proc.pid,
            cell=batch[0].cell,
            cells=len(batch),
            attempt=item.attempt,
            run_kind=batch[0].run_kind,
        )
        return live

    def _reap(self, live: _Live) -> None:
        """Close the pipe and join the process; SIGKILL stragglers."""
        try:
            live.conn.close()
        except OSError:
            pass
        live.proc.join(timeout=5.0)
        if live.proc.is_alive():  # pragma: no cover - defensive
            live.proc.kill()
            live.proc.join()

    def _kill(self, live: _Live) -> None:
        """SIGKILL a worker and reap it (no zombie PIDs)."""
        live.proc.kill()
        self._reap(live)

    # -- telemetry-spine merging ---------------------------------------
    def _merge_obs(self, live: _Live, payload: "dict | None") -> None:
        """Merge a worker's pipe-shipped telemetry into the coordinator.

        Metrics merge with ``order=idx`` (the serial iteration index), so
        gauges converge to the value the *serially last* cell would have
        left regardless of completion order; events keep their worker
        attribution.  The sidecar is redundant once the pipe delivered --
        drop it so the flight recorder only ever surfaces silent deaths.
        """
        if live.sidecar is not None:
            try:
                os.unlink(live.sidecar)
            except OSError:
                pass
        if not payload:
            return
        get_registry().merge_exported(payload.get("metrics"), order=live.idxs[-1])
        events = payload.get("events")
        if events:
            get_event_log().absorb(events)

    def _flight_recorder(self, live: _Live) -> tuple:
        """Recover a silently-dead worker's spilled events (best effort).

        Returns the tail of the sidecar (the attempt's last recorded
        moments) for attachment to the gap record; the full recovered
        stream is absorbed into the coordinator's event log.
        """
        if live.sidecar is None:
            return ()
        events = read_events(live.sidecar)
        try:
            os.unlink(live.sidecar)
        except OSError:
            pass
        if not events:
            return ()
        get_event_log().absorb(events)
        get_event_log().emit(
            "pool.flight_recovered",
            idx=live.idxs[0],
            attempt=live.attempt,
            pid=getattr(live.proc, "pid", None),
            events=len(events),
        )
        return tuple(events[-16:])

    # -- the supervisor loop -------------------------------------------
    def run(
        self,
        tasks: "list[CellTask]",
        on_result: "Callable[[CellTask, GuardOutcome], None] | None" = None,
    ) -> "list[GuardOutcome]":
        """Execute every task; outcomes are returned in task order."""
        env = {k: v for k, v in os.environ.items() if k.startswith("REPRO_")}

        # Telemetry spine: a tempdir for worker flight-recorder sidecars
        # and the span context workers adopt.  If the caller is already
        # inside a span (a serve job, a traced sweep), propagate it; else
        # mint a fresh trace id so all workers of this run share one.
        if obs.enabled():
            self._obs_dir = tempfile.mkdtemp(prefix="repro-obs-")
            trace_id, span_id = get_event_log().current_context()
            self._trace_ctx = {
                "trace_id": trace_id or new_trace_id(),
                "span_id": span_id,
            }

        # Pack the traces the tasks share into one shared-memory segment
        # so workers map the parent's buffers instead of regenerating them
        # per attempt.  The parent is the sole owner: the segment is
        # unlinked in the finally below, which runs on completion, abort,
        # fail-fast and KeyboardInterrupt alike -- a SIGKILLed worker can
        # never leak a /dev/shm entry.
        shm_seg = None
        if shm_transport.transport_enabled():
            self._shm_meta, shm_seg = shm_transport.export_traces(
                tasks, self.instructions
            )
            if shm_seg is not None:
                self._event(
                    "shm_exported",
                    name=self._shm_meta["name"],
                    bytes=self._shm_meta["size"],
                    traces=len(self._shm_meta["entries"]),
                )

        batch = max(1, int(self.batch_cells))
        pending: "list[_Pending]" = [
            _Pending(idxs=tuple(range(i, min(i + batch, len(tasks)))), attempt=1)
            for i in range(0, len(tasks), batch)
        ]
        live: "list[_Live]" = []
        results: "dict[int, GuardOutcome]" = {}
        busy_s = 0.0
        started = time.monotonic()

        def finalise(idx: int, outcome: GuardOutcome) -> None:
            results[idx] = outcome
            if on_result is not None:
                on_result(tasks[idx], outcome)

        def retry_or_fail(
            idx: int, attempt: int, kind: str, message: str, tb: str,
            wall: float, flight: tuple = (),
        ) -> None:
            task = tasks[idx]
            if attempt <= self.policy.max_retries:
                delay = self.policy.backoff_s(attempt, task.cell)
                # Retries always run alone: one cell, one worker, the
                # classic per-cell timeout budget.
                pending.append(
                    _Pending(idxs=(idx,), attempt=attempt + 1,
                             not_before=time.monotonic() + delay)
                )
                self._event(
                    "requeued",
                    cell=task.cell,
                    attempt=attempt,
                    failure_kind=kind,
                    run_kind=task.run_kind,
                    backoff_s=delay,
                )
                return
            failure = RunFailure(
                run_kind=task.run_kind,
                config=task.config,
                workload=task.workload,
                kind=kind,
                attempts=attempt,
                message=message,
                traceback=tb,
                wall_s=wall,
                extra=tuple(task.extra),
                flight=flight,
            )
            finalise(idx, GuardOutcome(result=None, failure=failure,
                                       attempts=attempt))

        try:
            while pending or live:
                if self._abort.is_set():
                    raise PoolAborted(
                        f"pool aborted with {len(live)} live worker(s) and "
                        f"{len(pending)} queued attempt(s)"
                    )
                now = time.monotonic()

                # Fill free slots with eligible queued attempts (in queue
                # order, skipping cells still inside their backoff).
                while len(live) < self.workers:
                    slot = next(
                        (p for p in pending if p.not_before <= now), None
                    )
                    if slot is None:
                        break
                    pending.remove(slot)
                    live.append(self._spawn(tasks, slot, env))

                if not live:
                    # Everything queued is backing off; sleep to the
                    # earliest eligibility.
                    wake = min(p.not_before for p in pending)
                    time.sleep(
                        min(max(wake - time.monotonic(), 0.0), _MAX_WAIT_S)
                    )
                    continue

                # Wait for worker traffic, but wake early for the nearest
                # deadline / heartbeat check / backoff expiry.
                horizons = [_MAX_WAIT_S]
                for lv in live:
                    if lv.deadline is not None:
                        horizons.append(lv.deadline - now)
                    horizons.append(
                        lv.last_beat + self.heartbeat_timeout_s - now
                    )
                if len(live) < self.workers and pending:
                    horizons.append(min(p.not_before for p in pending) - now)
                timeout = max(min(horizons), _MIN_WAIT_S)
                ready = mp_connection.wait([lv.conn for lv in live], timeout)

                by_conn = {lv.conn: lv for lv in live}
                for conn in ready:
                    lv = by_conn[conn]
                    done = False
                    try:
                        while conn.poll():
                            msg = conn.recv()
                            if msg[0] == "hb":
                                lv.last_beat = time.monotonic()
                                continue
                            done = True
                            live.remove(lv)
                            busy_s += time.monotonic() - lv.started
                            self._reap(lv)
                            if msg[0] == "ok":
                                _, result, wall = msg[:3]
                                self._merge_obs(
                                    lv, msg[3] if len(msg) > 3 else None
                                )
                                task = tasks[lv.idxs[0]]
                                self._event(
                                    "completed",
                                    cell=task.cell,
                                    attempt=lv.attempt,
                                    run_kind=task.run_kind,
                                    wall_s=wall,
                                )
                                finalise(
                                    lv.idxs[0],
                                    GuardOutcome(
                                        result=result,
                                        failure=None,
                                        attempts=lv.attempt,
                                        wall_s=wall,
                                    ),
                                )
                            elif msg[0] == "batch":
                                # ("batch", entries, wall, stats, obs):
                                # one terminal per-cell entry each, in
                                # task order within the batch.
                                _, entries, wall, stats = msg[:4]
                                self._merge_obs(
                                    lv, msg[4] if len(msg) > 4 else None
                                )
                                for idx, entry in zip(lv.idxs, entries):
                                    task = tasks[idx]
                                    if entry[0] == "ok":
                                        _, result, cell_wall = entry[:3]
                                        self._event(
                                            "completed",
                                            cell=task.cell,
                                            attempt=lv.attempt,
                                            run_kind=task.run_kind,
                                            wall_s=cell_wall,
                                        )
                                        finalise(
                                            idx,
                                            GuardOutcome(
                                                result=result,
                                                failure=None,
                                                attempts=lv.attempt,
                                                wall_s=cell_wall,
                                            ),
                                        )
                                    else:
                                        (_, kind, message, tb,
                                         cell_wall) = entry[:5]
                                        retry_or_fail(
                                            idx, lv.attempt, kind,
                                            message, tb, cell_wall,
                                        )
                                self._event(
                                    "batch_completed",
                                    cells=len(entries),
                                    attempt=lv.attempt,
                                    run_kind=tasks[lv.idxs[0]].run_kind,
                                    wall_s=wall,
                                    stats=stats,
                                )
                            else:  # ("fail", kind, message, tb, wall, obs)
                                _, kind, message, tb, wall = msg[:5]
                                self._merge_obs(
                                    lv, msg[5] if len(msg) > 5 else None
                                )
                                # A whole-attempt failure from a batched
                                # worker (batch setup died before the
                                # per-cell loop) costs every cell of the
                                # batch this one attempt.
                                for idx in lv.idxs:
                                    retry_or_fail(
                                        idx, lv.attempt, kind, message,
                                        tb, wall,
                                    )
                            break
                    except (EOFError, OSError):
                        # The worker died without a terminal message:
                        # nonzero exit, signal, kill -9, or a pipe torn
                        # mid-send.  Contain it as a crash of this attempt.
                        done = True
                        live.remove(lv)
                        busy_s += time.monotonic() - lv.started
                        self._reap(lv)
                        task = tasks[lv.idxs[0]]
                        detail = _describe_exit(lv.proc.exitcode)
                        self._event(
                            "crashed",
                            cell=task.cell,
                            cells=len(lv.idxs),
                            attempt=lv.attempt,
                            run_kind=task.run_kind,
                            exit=detail,
                        )
                        # A dead batched worker costs every batch cell
                        # this one attempt; each requeues alone.
                        flight = self._flight_recorder(lv)
                        wall = time.monotonic() - lv.started
                        for idx in lv.idxs:
                            retry_or_fail(
                                idx,
                                lv.attempt,
                                "crash",
                                f"worker died before reporting ({detail})",
                                "",
                                wall,
                                flight=flight,
                            )
                    if done:
                        continue

                # Enforce wall-clock budgets and heartbeat liveness on
                # whatever is still running.
                now = time.monotonic()
                for lv in list(live):
                    task = tasks[lv.idxs[0]]
                    if lv.deadline is not None and now >= lv.deadline:
                        live.remove(lv)
                        busy_s += now - lv.started
                        self._kill(lv)
                        self._event(
                            "killed",
                            cell=task.cell,
                            cells=len(lv.idxs),
                            attempt=lv.attempt,
                            run_kind=task.run_kind,
                            pid=lv.proc.pid,
                        )
                        flight = self._flight_recorder(lv)
                        budget = self.policy.timeout_s * len(lv.idxs)
                        for idx in lv.idxs:
                            retry_or_fail(
                                idx,
                                lv.attempt,
                                "timeout",
                                f"GuardTimeout: run exceeded wall-clock "
                                f"timeout of {budget:g}s (worker SIGKILLed)",
                                "",
                                now - lv.started,
                                flight=flight,
                            )
                    elif now - lv.last_beat > self.heartbeat_timeout_s:
                        live.remove(lv)
                        busy_s += now - lv.started
                        self._kill(lv)
                        self._event(
                            "heartbeat_lost",
                            cell=task.cell,
                            cells=len(lv.idxs),
                            attempt=lv.attempt,
                            run_kind=task.run_kind,
                            silent_s=now - lv.last_beat,
                        )
                        flight = self._flight_recorder(lv)
                        for idx in lv.idxs:
                            retry_or_fail(
                                idx,
                                lv.attempt,
                                "crash",
                                f"worker lost heartbeat for "
                                f"{now - lv.last_beat:.1f}s (SIGKILLed)",
                                "",
                                now - lv.started,
                                flight=flight,
                            )
        finally:
            # Abort path (fail-fast, KeyboardInterrupt, caller error):
            # leave zero live children behind, whatever happened.
            for lv in live:
                self._kill(lv)
            if shm_seg is not None:
                shm_transport.release(shm_seg)
                self._shm_meta = None
            if self._obs_dir is not None:
                shutil.rmtree(self._obs_dir, ignore_errors=True)
                self._obs_dir = None
                self._trace_ctx = None
            elapsed = max(time.monotonic() - started, 1e-9)
            self._event(
                "utilization",
                value=min(busy_s / (elapsed * self.workers), 1.0),
                busy_s=busy_s,
                elapsed_s=elapsed,
                workers=self.workers,
            )

        return [results[i] for i in range(len(tasks))]
