"""Perf-regression microbenchmarks for the cycle engines (``repro bench``).

The fast-path work (event-driven cycle skipping, unboxed hot loops, the
trace cache, shared-memory trace transport) is only worth keeping if it
*stays* fast, so this module pins it down with a small reproducible
harness:

* **engine cells** -- a memory-heavy CPU cell (``canneal``: long DRAM
  stalls, where idle-cycle skipping dominates), an ILP-heavy CPU cell
  (``blackscholes``: mostly-busy pipeline, where the unboxed loop
  dominates), and a GPU cell (``DCT``).  Each is run twice in-process --
  once on the fast path, once with the ``REPRO_NO_CYCLE_SKIP=1`` escape
  hatch -- timing *only* the engine (trace generation excluded), and the
  results are compared field-for-field so every bench run doubles as a
  cycle-exactness check;
* **trace cache** -- generation cost vs cached-fetch cost for one trace
  (the amortization the LRU buys every sweep);
* **sweep latency** -- a small multi-configuration sweep with the cache
  enabled vs disabled (the end-to-end win of sharing one trace across
  configurations).

Regression guarding compares **ratios**, never absolute instructions per
second: the fast/slow runs execute in the same process on the same
machine, so their quotient is machine-independent, while absolute
throughput moves with the CI runner's hardware.  Absolute numbers are
still reported (they are what a human reads), they just don't gate.  The
committed baseline lives at ``benchmarks/perf/BENCH_cycle_engine.json``;
``compare()`` applies a one-sided tolerance (a measured ratio may fall at
most ``tolerance`` below baseline -- being faster never fails).
"""

from __future__ import annotations

import dataclasses
import json
import os
import time

#: Default committed baseline location (relative to the repo root, which
#: is where CI and developers invoke ``repro bench``).
DEFAULT_BASELINE = os.path.join("benchmarks", "perf", "BENCH_cycle_engine.json")

#: Report schema version (bump on incompatible layout changes).
SCHEMA = 1

#: The reference cells (name -> (kind, config, workload)).
CELLS = {
    "cpu_mem": ("cpu", "BaseCMOS", "canneal"),
    "cpu_ilp": ("cpu", "BaseCMOS", "blackscholes"),
    "gpu": ("gpu", "BaseCMOS", "DCT"),
}

#: Ratio metrics gated against the baseline (dotted paths into the report).
#: ``obs.efficiency`` (obs-off time / obs-on time; 1.0 = free) guards the
#: telemetry spine's zero-overhead-when-off *and* bounded-overhead-when-on
#: claims; ``compare`` skips paths the committed baseline predates.
GUARDED = (
    "cells.cpu_mem.speedup",
    "cells.cpu_ilp.speedup",
    "cells.gpu.speedup",
    "trace_cache.amortization",
    "sweep.speedup",
    "batched_sweep.speedup",
    "obs.efficiency",
)


def _build_cpu_core(design, profile):
    """A fresh detailed core for ``design``, mirroring ``simulate_cpu``."""
    from repro.core.simulate import _prewarm
    from repro.cpu.core import CoreConfig, OutOfOrderCore

    hierarchy = design.build_hierarchy(mem_intensity=profile.mem_intensity)
    _prewarm(hierarchy, profile)
    config = CoreConfig(
        freq_ghz=design.freq_ghz,
        resources=design.resources(),
        steering_enabled=design.dual_speed_alu,
    )
    return OutOfOrderCore(config, hierarchy, design.build_units(), name="bench")


def _build_cu(design):
    """A fresh compute unit for ``design``, mirroring ``simulate_gpu``."""
    from repro.gpu.cu import ComputeUnit, CUConfig

    return ComputeUnit(
        CUConfig(
            freq_ghz=design.freq_ghz,
            fma_depth=design.fma_depth(),
            rf_cycles=design.rf_cycles(),
            rf_cache_enabled=design.rf_cache,
        )
    )


def _timed(build, run, repeats: int):
    """Best-of-``repeats`` engine wall time; returns (seconds, result, engine)."""
    best = None
    for _ in range(repeats):
        engine = build()
        t0 = time.perf_counter()
        result = run(engine)
        dt = time.perf_counter() - t0
        if best is None or dt < best[0]:
            best = (dt, result, engine)
    return best


def bench_cell(kind: str, config: str, workload: str,
               instructions: int, warmup: int, repeats: int = 2) -> dict:
    """Fast-vs-hatch engine timing for one reference cell.

    Times only ``engine.run(trace)`` -- the trace is generated (and cached)
    up front -- and checks the two result dataclasses are identical, so a
    speedup bought by breaking cycle exactness can never pass.
    """
    from repro.core.configs import cpu_config, gpu_config
    from repro.workloads.gpu_profiles import gpu_kernel
    from repro.workloads.profiles import cpu_app
    from repro.workloads.trace_cache import cached_kernel, cached_trace

    if kind == "cpu":
        design = cpu_config(config)
        profile = cpu_app(workload)
        trace = cached_trace(profile, instructions, seed=0)
        build = lambda: _build_cpu_core(design, profile)
        run = lambda core: core.run(trace, warmup=warmup)
        work = instructions
    else:
        design = gpu_config(config)
        profile = gpu_kernel(workload)
        trace = cached_kernel(profile, seed=0)
        build = lambda: _build_cu(design)
        run = lambda cu: cu.run(trace)
        work = profile.n_wavefronts * profile.stream_len

    hatch = "REPRO_NO_CYCLE_SKIP"
    t_fast, r_fast, engine = _timed(build, run, repeats)
    prior = os.environ.get(hatch)
    os.environ[hatch] = "1"
    try:
        t_slow, r_slow, _ = _timed(build, run, repeats)
    finally:
        if prior is None:
            del os.environ[hatch]
        else:
            os.environ[hatch] = prior

    return {
        "kind": kind,
        "config": config,
        "workload": workload,
        "instructions": work,
        "fast_instr_per_s": round(work / t_fast, 1),
        "slow_instr_per_s": round(work / t_slow, 1),
        "fast_s": round(t_fast, 6),
        "slow_s": round(t_slow, 6),
        "speedup": round(t_slow / t_fast, 4),
        "skipped_cycles": engine.skipped_cycles,
        "skip_events": engine.skip_events,
        "equivalent": dataclasses.asdict(r_fast) == dataclasses.asdict(r_slow),
    }


def _batch_hits(cached_trace, profile, instructions: int, count: int) -> float:
    t0 = time.perf_counter()
    for _ in range(count):
        cached_trace(profile, instructions, seed=0)
    return time.perf_counter() - t0


def bench_trace_cache(instructions: int) -> dict:
    """Generation cost vs cached-fetch cost for one CPU trace."""
    from repro.workloads.profiles import cpu_app
    from repro.workloads.trace_cache import reset_shared_cache, shared_cache

    profile = cpu_app("canneal")
    reset_shared_cache()
    from repro.workloads.trace_cache import cached_trace

    t0 = time.perf_counter()
    cached_trace(profile, instructions, seed=0)
    generate_s = time.perf_counter() - t0
    # Hits are microseconds; time a batch (best of 3) to defeat clock
    # granularity and scheduler jitter.
    hits = 32
    hit_s = min(
        _batch_hits(cached_trace, profile, instructions, hits)
        for _ in range(3)
    ) / hits
    hit_s = max(hit_s, 1e-9)
    stats = shared_cache().stats()
    return {
        "generate_ms": round(generate_s * 1e3, 3),
        "hit_ms": round(hit_s * 1e3, 6),
        "amortization": round(generate_s / hit_s, 1),
        "stats": stats,
    }


def bench_sweep_latency(instructions: int, warmup: int) -> dict:
    """A 3-configuration mini-sweep, trace cache enabled vs disabled.

    The N configurations of one figure share a single trace per workload;
    this measures what that sharing is worth end to end (simulation
    included, which is why the ratio is modest compared to the raw
    amortization factor).
    """
    from repro.core.configs import cpu_config
    from repro.core.simulate import simulate_cpu
    from repro.workloads.trace_cache import reset_shared_cache

    configs = ["BaseCMOS", "BaseHet", "AdvHet"]

    def sweep() -> float:
        t0 = time.perf_counter()
        for name in configs:
            simulate_cpu(
                cpu_config(name), "canneal",
                instructions=instructions, warmup=warmup,
            )
        return time.perf_counter() - t0

    reset_shared_cache(0)  # disabled: every cell regenerates
    cold_s = sweep()
    reset_shared_cache()
    warm_s = sweep()
    reset_shared_cache()
    return {
        "configs": len(configs),
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup": round(cold_s / warm_s, 4),
    }


def bench_batched_sweep(repeats: int = 2) -> dict:
    """Batch=1 vs batch=N over the paper's full GPU matrix, traces cached.

    The batched engine's win is driver + lockstep-scoreboard amortization,
    so both arms run against a warm trace cache (and warm per-trace memos)
    and time only the simulate layer: batch=1 is the single-cell fast path
    with ``REPRO_NO_BATCH=1`` (the pre-batching engine), batch=N is one
    ``simulate_gpu_batch`` call over all cells.  Per-cell results are
    compared field-for-field, so the speedup cannot be bought by breaking
    batch exactness.
    """
    from repro.core.configs import GPU_MAIN_CONFIGS, gpu_config
    from repro.core.simulate import simulate_gpu, simulate_gpu_batch
    from repro.workloads.gpu_profiles import GPU_KERNELS

    cells = [(gpu_config(c), k) for c in GPU_MAIN_CONFIGS for k in GPU_KERNELS]
    warm = simulate_gpu_batch(cells)  # warm traces + timing-free memos
    work = sum(out.result.gpu.cu_result.instructions for out in warm)

    hatch = "REPRO_NO_BATCH"
    t_single = r_single = None
    t_batch = r_batch = None
    # Interleave the arms (as bench_obs_overhead does) so machine-state
    # drift hits both equally; best-of-N per arm cancels transients out
    # of the guarded ratio.  Three rounds minimum: the single arm walks
    # 80 python-level cells, so one noisy round skews it far more than
    # it skews the single fused batch call.
    for _ in range(max(repeats, 3)):
        prior = os.environ.get(hatch)
        os.environ[hatch] = "1"
        try:
            t0 = time.perf_counter()
            outs = [simulate_gpu(d, k) for d, k in cells]
            dt = time.perf_counter() - t0
        finally:
            if prior is None:
                del os.environ[hatch]
            else:
                os.environ[hatch] = prior
        if t_single is None or dt < t_single:
            t_single, r_single = dt, outs

        t0 = time.perf_counter()
        outs = simulate_gpu_batch(cells)
        dt = time.perf_counter() - t0
        if t_batch is None or dt < t_batch:
            t_batch, r_batch = dt, outs

    equivalent = all(
        out.error is None
        and dataclasses.asdict(out.result) == dataclasses.asdict(single)
        for out, single in zip(r_batch, r_single)
    )
    return {
        "cells": len(cells),
        "instructions": work,
        "single_instr_per_s": round(work / t_single, 1),
        "batch_instr_per_s": round(work / t_batch, 1),
        "single_s": round(t_single, 4),
        "batch_s": round(t_batch, 4),
        "speedup": round(t_single / t_batch, 4),
        "vectorized_cells": sum(int(out.vectorized) for out in r_batch),
        "equivalent": equivalent,
    }


def bench_obs_overhead(instructions: int, warmup: int,
                       repeats: int = 2) -> dict:
    """Engine timing with observability off vs on (the ≤5% band).

    Runs the ILP-heavy CPU cell (the worst case for instrumentation --
    no long stalls to hide behind) with the global obs flag off, then
    with it on (metrics registry live, event log active; no attached
    PipelineTracer, which is a separate opt-in with its own cost).  The
    guarded ``efficiency`` ratio is off-time / on-time: 1.0 means the
    spine is free, and the documented budget keeps it above 0.95.
    """
    from repro import obs
    from repro.core.configs import cpu_config
    from repro.obs.metrics import get_registry
    from repro.workloads.profiles import cpu_app
    from repro.workloads.trace_cache import cached_trace

    design = cpu_config("BaseCMOS")
    profile = cpu_app("blackscholes")
    trace = cached_trace(profile, instructions, seed=0)
    build = lambda: _build_cpu_core(design, profile)
    run = lambda core: core.run(trace, warmup=warmup)

    was_enabled = obs.enabled()
    t_off = t_on = None
    r_off = r_on = None
    try:
        # Interleave off/on samples so machine-state drift (turbo,
        # thermal, page cache) hits both sides equally; best-of-N per
        # side then cancels transient noise out of the ratio.
        for _ in range(max(repeats, 2)):
            obs.set_enabled(False)
            dt, result, _ = _timed(build, run, 1)
            if t_off is None or dt < t_off:
                t_off, r_off = dt, result
            obs.set_enabled(True)
            dt, result, _ = _timed(build, run, 1)
            if t_on is None or dt < t_on:
                t_on, r_on = dt, result
        get_registry().unmount("bench")
    finally:
        obs.set_enabled(was_enabled)
    return {
        "instructions": instructions,
        "off_s": round(t_off, 6),
        "on_s": round(t_on, 6),
        "overhead_ratio": round(t_on / t_off, 4),
        "efficiency": round(t_off / t_on, 4),
        "equivalent": dataclasses.asdict(r_off) == dataclasses.asdict(r_on),
    }


def run_bench(instructions: int = 30000, warmup: int = 5000,
              repeats: int = 2) -> dict:
    """The full benchmark report (the ``repro bench`` payload)."""
    report = {
        "schema": SCHEMA,
        "instructions": instructions,
        "warmup": warmup,
        "repeats": repeats,
        "cells": {
            name: bench_cell(kind, config, workload, instructions, warmup,
                             repeats=repeats)
            for name, (kind, config, workload) in CELLS.items()
        },
        "trace_cache": bench_trace_cache(instructions),
        "sweep": bench_sweep_latency(instructions, warmup),
        "batched_sweep": bench_batched_sweep(repeats=repeats),
        "obs": bench_obs_overhead(instructions, warmup, repeats=repeats),
    }
    return report


def _lookup(report: dict, path: str):
    node = report
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def compare(report: dict, baseline: dict, tolerance: float = 0.25) -> "list[str]":
    """Regression messages for ``report`` against ``baseline`` (empty = ok).

    Equivalence failures always regress; guarded ratios regress when the
    measured value falls more than ``tolerance`` below the baseline
    (one-sided: faster-than-baseline never fails).
    """
    problems = []
    for name, cell in report.get("cells", {}).items():
        if not cell.get("equivalent", False):
            problems.append(
                f"cells.{name}: fast-path result differs from escape-hatch "
                f"result (cycle exactness broken)"
            )
    ob = report.get("obs")
    if ob is not None and not ob.get("equivalent", True):
        problems.append(
            "obs: simulation result differs with observability enabled "
            "(instrumentation must never perturb the simulation)"
        )
    bs = report.get("batched_sweep")
    if bs is not None and not bs.get("equivalent", True):
        problems.append(
            "batched_sweep: batched results differ from single-cell "
            "results (batch exactness broken)"
        )
    for path in GUARDED:
        measured = _lookup(report, path)
        reference = _lookup(baseline, path)
        if measured is None or reference is None:
            continue
        floor = reference * (1.0 - tolerance)
        if measured < floor:
            problems.append(
                f"{path}: {measured:.3f} fell below {floor:.3f} "
                f"(baseline {reference:.3f}, tolerance {tolerance:.0%})"
            )
    return problems


def format_report(report: dict, problems: "list[str] | None" = None) -> str:
    """Human-readable summary of a bench report."""
    lines = ["cycle-engine benchmarks "
             f"(instructions={report['instructions']}, "
             f"warmup={report['warmup']}, best of {report['repeats']}):"]
    for name, cell in report["cells"].items():
        lines.append(
            f"  {name:<8} {cell['config']}/{cell['workload']:<14} "
            f"{cell['fast_instr_per_s']:>12,.0f} instr/s fast   "
            f"{cell['slow_instr_per_s']:>12,.0f} slow   "
            f"{cell['speedup']:.2f}x   "
            f"skipped={cell['skipped_cycles']:,} "
            f"({cell['skip_events']:,} events)   "
            f"{'exact' if cell['equivalent'] else 'MISMATCH'}"
        )
    tc = report["trace_cache"]
    lines.append(
        f"  trace cache: generate {tc['generate_ms']:.1f} ms vs hit "
        f"{tc['hit_ms']:.3f} ms ({tc['amortization']:,.0f}x amortized)"
    )
    sw = report["sweep"]
    lines.append(
        f"  {sw['configs']}-config sweep: cold {sw['cold_s']:.2f} s vs warm "
        f"{sw['warm_s']:.2f} s ({sw['speedup']:.2f}x)"
    )
    bs = report.get("batched_sweep")
    if bs is not None:
        lines.append(
            f"  batched sweep: {bs['cells']} cells  "
            f"{bs['single_instr_per_s']:>12,.0f} instr/s batch=1   "
            f"{bs['batch_instr_per_s']:>12,.0f} batch=N   "
            f"{bs['speedup']:.2f}x   "
            f"vectorized={bs['vectorized_cells']}   "
            f"{'exact' if bs['equivalent'] else 'MISMATCH'}"
        )
    ob = report.get("obs")
    if ob is not None:
        lines.append(
            f"  obs overhead: off {ob['off_s']:.3f} s vs on "
            f"{ob['on_s']:.3f} s ({(ob['overhead_ratio'] - 1) * 100:+.1f}%, "
            f"{'exact' if ob['equivalent'] else 'MISMATCH'})"
        )
    if problems:
        lines.append("regressions:")
        lines.extend(f"  FAIL {p}" for p in problems)
    elif problems is not None:
        lines.append("no regressions against baseline")
    return "\n".join(lines)


def load_baseline(path: str) -> "dict | None":
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


def save_baseline(report: dict, path: str) -> None:
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
