"""Process-variation guardbands (Sections III-E and VII-D).

Work-function variation affects both device families; reclaiming the lost
performance means raising Vdd on both sides.  Avci et al.'s 15 nm analysis
(as used by the paper) requires guardbands of dV_CMOS = 120 mV and
dV_TFET = 70 mV on the respective operating voltages.  Energy rises
quadratically with the raised supplies, and because the CMOS guardband is
proportionally larger, AdvHet keeps most -- but not quite all -- of its
relative energy advantage (39% -> ~37% in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.scaling import dynamic_energy_scale, leakage_power_scale

#: Guardbands from Avci et al. at 15 nm (Section VII-D).
GUARDBAND_V_CMOS = 0.120
GUARDBAND_V_TFET = 0.070


@dataclass(frozen=True)
class VariationGuardbands:
    """Voltage guardbands protecting against process variation."""

    delta_v_cmos: float = GUARDBAND_V_CMOS
    delta_v_tfet: float = GUARDBAND_V_TFET

    def __post_init__(self) -> None:
        if self.delta_v_cmos < 0.0 or self.delta_v_tfet < 0.0:
            raise ValueError("guardbands cannot be negative")

    def guarded_voltages(self, v_cmos: float, v_tfet: float) -> tuple[float, float]:
        """The operating voltages after adding the guardbands."""
        return v_cmos + self.delta_v_cmos, v_tfet + self.delta_v_tfet

    def cmos_energy_scale(self, v_cmos: float) -> float:
        """Dynamic-energy multiplier for CMOS units under the guardband."""
        return dynamic_energy_scale(v_cmos + self.delta_v_cmos, v_cmos)

    def tfet_energy_scale(self, v_tfet: float) -> float:
        """Dynamic-energy multiplier for TFET units under the guardband."""
        return dynamic_energy_scale(v_tfet + self.delta_v_tfet, v_tfet)

    def cmos_leakage_scale(self, v_cmos: float) -> float:
        """Leakage-power multiplier for CMOS units under the guardband."""
        return leakage_power_scale(v_cmos + self.delta_v_cmos, v_cmos)

    def tfet_leakage_scale(self, v_tfet: float) -> float:
        """Leakage-power multiplier for TFET units under the guardband."""
        return leakage_power_scale(v_tfet + self.delta_v_tfet, v_tfet)
