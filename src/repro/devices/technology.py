"""The four 15 nm device technologies of Table I.

The paper compares Si-CMOS, HetJTFET, InAs-CMOS, and HomJTFET at each
technology's most cost-effective supply voltage, using data from Nikonov and
Young.  This module embeds those numbers verbatim and provides the derived
ratios the paper's architecture sections rely on (HetJTFET switches ~2x
slower than Si-CMOS, consumes ~4x less dynamic energy per op, ~8x less
power, ~300x less leakage).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class DeviceTechnology:
    """One row-set of Table I: a device technology at its optimal Vdd.

    Attributes mirror Table I's rows.  Delays are in picoseconds, energies
    in attojoules (transistor/interconnect) or femtojoules (ALU), leakage in
    microwatts, power density in W/cm^2.
    """

    name: str
    supply_voltage_v: float
    switching_delay_ps: float
    interconnect_delay_ps: float
    alu_delay_ps: float
    switching_energy_aj: float
    interconnect_energy_aj: float
    alu_dynamic_energy_fj: float
    alu_leakage_uw: float
    alu_power_density_w_cm2: float

    def switching_delay_ratio(self, other: "DeviceTechnology") -> float:
        """How many times slower this device switches than ``other``."""
        return self.switching_delay_ps / other.switching_delay_ps

    def alu_energy_ratio(self, other: "DeviceTechnology") -> float:
        """Dynamic ALU energy of ``other`` relative to this device.

        ``SI_CMOS.alu_energy_ratio(HETJTFET)`` is ~3.9, the paper's "about
        4x" dynamic-energy advantage of HetJTFET.
        """
        return self.alu_dynamic_energy_fj / other.alu_dynamic_energy_fj

    def alu_power_ratio(self, other: "DeviceTechnology") -> float:
        """ALU *power* ratio vs ``other``: energy ratio x delay ratio.

        A HetJTFET op takes ~2x longer and ~4x less energy, so it draws ~8x
        less power than Si-CMOS (Section III-B).
        """
        energy = self.alu_dynamic_energy_fj / other.alu_dynamic_energy_fj
        delay = other.alu_delay_ps / self.alu_delay_ps
        return energy * delay

    def alu_leakage_ratio(self, other: "DeviceTechnology") -> float:
        """Leakage power of this device's ALU relative to ``other``'s."""
        return self.alu_leakage_uw / other.alu_leakage_uw


SI_CMOS = DeviceTechnology(
    name="Si-CMOS",
    supply_voltage_v=0.73,
    switching_delay_ps=0.41,
    interconnect_delay_ps=0.18,
    alu_delay_ps=939.0,
    switching_energy_aj=32.71,
    interconnect_energy_aj=10.08,
    alu_dynamic_energy_fj=170.1,
    alu_leakage_uw=90.2,
    alu_power_density_w_cm2=50.4,
)

HETJTFET = DeviceTechnology(
    name="HetJTFET",
    supply_voltage_v=0.40,
    switching_delay_ps=0.79,
    interconnect_delay_ps=0.42,
    alu_delay_ps=1881.0,
    switching_energy_aj=7.86,
    interconnect_energy_aj=3.03,
    alu_dynamic_energy_fj=43.4,
    alu_leakage_uw=0.30,
    alu_power_density_w_cm2=5.1,
)

INAS_CMOS = DeviceTechnology(
    name="InAs-CMOS",
    supply_voltage_v=0.30,
    switching_delay_ps=3.80,
    interconnect_delay_ps=2.50,
    alu_delay_ps=9327.0,
    switching_energy_aj=3.62,
    interconnect_energy_aj=1.70,
    alu_dynamic_energy_fj=20.5,
    alu_leakage_uw=0.14,
    alu_power_density_w_cm2=0.6,
)

HOMJTFET = DeviceTechnology(
    name="HomJTFET",
    supply_voltage_v=0.20,
    switching_delay_ps=6.68,
    interconnect_delay_ps=3.60,
    alu_delay_ps=15990.0,
    switching_energy_aj=1.96,
    interconnect_energy_aj=0.76,
    alu_dynamic_energy_fj=10.8,
    alu_leakage_uw=1.44,
    alu_power_density_w_cm2=0.2,
)

TECHNOLOGIES = {
    tech.name: tech for tech in (SI_CMOS, HETJTFET, INAS_CMOS, HOMJTFET)
}

#: High-Vt devices have a 1.4-1.6x higher delay than regular-Vt ones
#: (Section VI-A, citing Skotnicki et al.); we use the midpoint.
HIGH_VT_DELAY_FACTOR = 1.5

#: High-Vt transistors leak 25-30x less than regular-Vt ones at 28/32 nm
#: (Section III-B, Synopsys library); we use the midpoint.
HIGH_VT_LEAKAGE_REDUCTION = 27.5


def high_vt_variant(
    base: DeviceTechnology = SI_CMOS,
    delay_factor: float = HIGH_VT_DELAY_FACTOR,
    leakage_reduction: float = HIGH_VT_LEAKAGE_REDUCTION,
) -> DeviceTechnology:
    """A high-Vt variant of ``base`` (Section III-B).

    High-Vt transistors consume about the same dynamic energy as regular-Vt
    ones, but switch slower and leak much less.
    """
    if delay_factor < 1.0:
        raise ValueError("high-Vt devices are never faster than regular-Vt")
    if leakage_reduction <= 1.0:
        raise ValueError("high-Vt devices must leak less than regular-Vt")
    return replace(
        base,
        name=base.name + "-HighVt",
        switching_delay_ps=base.switching_delay_ps * delay_factor,
        interconnect_delay_ps=base.interconnect_delay_ps,
        alu_delay_ps=base.alu_delay_ps * delay_factor,
        alu_leakage_uw=base.alu_leakage_uw / leakage_reduction,
        alu_power_density_w_cm2=base.alu_power_density_w_cm2 / delay_factor,
    )


def table1_rows() -> list[dict]:
    """Table I as a list of row dictionaries, in the paper's column order."""
    return [
        {
            "Parameter": "Supply voltage (V)",
            **{t.name: t.supply_voltage_v for t in TECHNOLOGIES.values()},
        },
        {
            "Parameter": "Transistor switching delay (ps)",
            **{t.name: t.switching_delay_ps for t in TECHNOLOGIES.values()},
        },
        {
            "Parameter": "Interconnect delay per transistor length (ps)",
            **{t.name: t.interconnect_delay_ps for t in TECHNOLOGIES.values()},
        },
        {
            "Parameter": "32bit ALU delay (ps)",
            **{t.name: t.alu_delay_ps for t in TECHNOLOGIES.values()},
        },
        {
            "Parameter": "Transistor switching energy (aJ)",
            **{t.name: t.switching_energy_aj for t in TECHNOLOGIES.values()},
        },
        {
            "Parameter": "Interconnect energy per transistor length (aJ)",
            **{t.name: t.interconnect_energy_aj for t in TECHNOLOGIES.values()},
        },
        {
            "Parameter": "32bit ALU dynamic energy (fJ)",
            **{t.name: t.alu_dynamic_energy_fj for t in TECHNOLOGIES.values()},
        },
        {
            "Parameter": "32bit ALU leakage power (uW)",
            **{t.name: t.alu_leakage_uw for t in TECHNOLOGIES.values()},
        },
        {
            "Parameter": "ALU power density (W/cm^2)",
            **{t.name: t.alu_power_density_w_cm2 for t in TECHNOLOGIES.values()},
        },
    ]
