"""Vdd-frequency curves and the hetero-device DVFS pair solver.

Section III-D and Figure 3: HetCore powers CMOS units at ``V_CMOS`` and TFET
units at ``V_TFET`` but clocks everything at a single frequency ``f``.  TFET
units do half the work per stage, so a frequency target ``f`` requires the
TFET curve to deliver ``f/2``.  Because the TFET curve is less steep, voltage
deltas differ: boosting 2 GHz -> 2.5 GHz needs +75 mV on CMOS but +90 mV on
TFET; slowing to 1.5 GHz gives back -70 mV / -80 mV.

Each curve is a quadratic through the paper's three anchor points, which
reproduces those deltas exactly and is monotone over the supported range.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Nominal operating point (Section III-D / Figure 3).
NOMINAL_FREQ_GHZ = 2.0
NOMINAL_V_CMOS = 0.73
NOMINAL_V_TFET = 0.40

#: Anchor points from the paper: (Vdd in volts, frequency in GHz).
_CMOS_ANCHORS = ((0.66, 1.5), (0.73, 2.0), (0.805, 2.5))
#: TFET anchors are in *raw TFET frequency*; HetCore work-equivalence means a
#: core frequency of f maps to a TFET curve point at f/2.
_TFET_ANCHORS = ((0.32, 0.75), (0.40, 1.0), (0.49, 1.25))


@dataclass(frozen=True)
class VFCurve:
    """A monotone quadratic Vdd->frequency curve through three anchors."""

    name: str
    anchors: tuple[tuple[float, float], ...]
    v_min: float
    v_max: float

    def __post_init__(self) -> None:
        if len(self.anchors) != 3:
            raise ValueError("VFCurve is defined by exactly three anchors")
        xs = [a[0] for a in self.anchors]
        if sorted(xs) != xs or len(set(xs)) != 3:
            raise ValueError("anchor voltages must be strictly increasing")
        # Validate monotonicity of the fitted quadratic over [v_min, v_max].
        probe = [self.v_min + (self.v_max - self.v_min) * i / 50 for i in range(51)]
        freqs = [self.freq_ghz(v) for v in probe]
        if any(b <= a for a, b in zip(freqs, freqs[1:])):
            raise ValueError(
                f"{self.name} VF curve is not monotone on "
                f"[{self.v_min}, {self.v_max}]"
            )

    def _coeffs(self) -> tuple[float, float, float]:
        (x1, y1), (x2, y2), (x3, y3) = self.anchors
        s12 = (y2 - y1) / (x2 - x1)
        s23 = (y3 - y2) / (x3 - x2)
        a = (s23 - s12) / (x3 - x1)
        b = s12 - a * (x1 + x2)
        c = y1 - a * x1 * x1 - b * x1
        return a, b, c

    def freq_ghz(self, vdd_v: float) -> float:
        """Frequency delivered at supply ``vdd_v`` (extrapolates smoothly)."""
        a, b, c = self._coeffs()
        return a * vdd_v * vdd_v + b * vdd_v + c

    def vdd_for(self, freq_ghz: float, tol_v: float = 1e-9) -> float:
        """The supply voltage needed to reach ``freq_ghz`` (bisection).

        Raises :class:`ValueError` if the frequency is outside the curve's
        supported [v_min, v_max] range -- for the TFET curve that is how the
        model expresses performance saturation.
        """
        lo, hi = self.v_min, self.v_max
        if not (self.freq_ghz(lo) <= freq_ghz <= self.freq_ghz(hi)):
            raise ValueError(
                f"{self.name} cannot deliver {freq_ghz} GHz within "
                f"[{lo}, {hi}] V"
            )
        while hi - lo > tol_v:
            mid = 0.5 * (lo + hi)
            if self.freq_ghz(mid) < freq_ghz:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)


CMOS_VF = VFCurve(name="Si-CMOS", anchors=_CMOS_ANCHORS, v_min=0.55, v_max=0.95)
TFET_VF = VFCurve(name="HetJTFET", anchors=_TFET_ANCHORS, v_min=0.24, v_max=0.60)


@dataclass(frozen=True)
class VoltagePair:
    """A (V_CMOS, V_TFET) pair delivering one core frequency."""

    freq_ghz: float
    v_cmos: float
    v_tfet: float

    @property
    def delta_v_cmos_mv(self) -> float:
        """CMOS delta from the nominal 0.73 V point, in millivolts."""
        return (self.v_cmos - NOMINAL_V_CMOS) * 1e3

    @property
    def delta_v_tfet_mv(self) -> float:
        """TFET delta from the nominal 0.40 V point, in millivolts."""
        return (self.v_tfet - NOMINAL_V_TFET) * 1e3


class DvfsSolver:
    """Solve for HetCore voltage pairs at a target core frequency.

    The CMOS units must reach ``f`` and the TFET units ``f/2`` (they do half
    the work per stage, Section III-D).
    """

    def __init__(self, cmos_curve: VFCurve = CMOS_VF, tfet_curve: VFCurve = TFET_VF):
        self.cmos_curve = cmos_curve
        self.tfet_curve = tfet_curve

    def pair_for(self, freq_ghz: float) -> VoltagePair:
        """The voltage pair for a core frequency, or ValueError if unreachable."""
        return VoltagePair(
            freq_ghz=freq_ghz,
            v_cmos=self.cmos_curve.vdd_for(freq_ghz),
            v_tfet=self.tfet_curve.vdd_for(freq_ghz / 2.0),
        )

    def figure3_series(self, n_points: int = 41) -> dict[str, list[float]]:
        """Both Figure 3 curves sampled over their supported ranges."""
        def sample(curve: VFCurve) -> tuple[list[float], list[float]]:
            vs = [
                curve.v_min + (curve.v_max - curve.v_min) * i / (n_points - 1)
                for i in range(n_points)
            ]
            return vs, [curve.freq_ghz(v) for v in vs]

        cv, cf = sample(self.cmos_curve)
        tv, tf = sample(self.tfet_curve)
        return {"cmos_v": cv, "cmos_ghz": cf, "tfet_v": tv, "tfet_ghz": tf}
