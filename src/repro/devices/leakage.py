"""Dual-Vt leakage model (Section III-B).

Commercial CMOS processors place high-Vt transistors on non-critical paths
to cut leakage: AMD Ryzen-class designs use about 60% high-Vt devices, each
leaking 25-30x less than a regular-Vt device while consuming the same
dynamic energy.  The paper derives that a typical dual-Vt Si-CMOS unit leaks
only ~42% of the all-regular-Vt value in Table I, and that consequently a
HetJTFET ALU leaks ~125x less than a realistic dual-Vt CMOS ALU (down from
the raw 300x of Table I).  In the worst case -- 100% high-Vt CMOS -- the
TFET advantage is still ~10x, which is the conservative factor the
evaluation uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.technology import HIGH_VT_LEAKAGE_REDUCTION

#: Fraction of high-Vt transistors in commercial core logic (Section III-B).
TYPICAL_HIGH_VT_FRACTION = 0.60

#: The evaluation's conservative TFET leakage advantage over CMOS, "as if all
#: the CMOS transistors were high-Vt devices" (Section VI).
CONSERVATIVE_TFET_LEAKAGE_ADVANTAGE = 10.0


@dataclass(frozen=True)
class DualVtLeakageModel:
    """Effective leakage of a logic/SRAM unit mixing regular- and high-Vt.

    ``high_vt_fraction`` of the transistors leak ``leakage_reduction`` times
    less; the rest leak at the regular-Vt rate.
    """

    high_vt_fraction: float = TYPICAL_HIGH_VT_FRACTION
    leakage_reduction: float = HIGH_VT_LEAKAGE_REDUCTION

    def __post_init__(self) -> None:
        if not 0.0 <= self.high_vt_fraction <= 1.0:
            raise ValueError("high_vt_fraction must be in [0, 1]")
        if self.leakage_reduction < 1.0:
            raise ValueError("leakage_reduction must be >= 1")

    def effective_leakage_fraction(self) -> float:
        """Unit leakage relative to an all-regular-Vt implementation.

        At the typical 60% high-Vt mix this is ~0.42, the paper's "only
        about 42% of the value in Table I".
        """
        h = self.high_vt_fraction
        return (1.0 - h) + h / self.leakage_reduction

    def tfet_advantage(self, raw_advantage: float) -> float:
        """TFET leakage advantage after dual-Vt deflation of the CMOS side.

        ``raw_advantage`` is the all-regular-Vt ratio (e.g. ~300x for the
        ALU in Table I); the realistic advantage shrinks by the effective
        leakage fraction (~300 * 0.42 ~ 125x).
        """
        if raw_advantage <= 0.0:
            raise ValueError("raw_advantage must be positive")
        return raw_advantage * self.effective_leakage_fraction()
