"""Analytic I_D-V_G characteristics for N-MOSFET and N-HetJTFET (Figure 1).

The paper's Figure 1 (data from Avci, Morris, and Young at Intel) shows:

* the MOSFET is limited to a >= 60 mV/decade subthreshold slope;
* the HetJTFET has a much steeper slope (sub-60 mV/decade) near the OFF
  state, so it crosses from OFF to ON within a small gate-voltage window;
* the HetJTFET current saturates beyond ~0.6 V, while the MOSFET keeps
  improving, so the MOSFET wins at high Vdd and the TFET at low Vdd.

We model both curves analytically.  The MOSFET uses the textbook
exponential-subthreshold / alpha-power-law-saturation combination; the TFET
uses a logistic turn-on (steep exponential tail, hard saturation).  The
models are fit to reproduce the qualitative anchors above, which is all the
architecture layer consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Thermionic limit for MOSFET subthreshold slope at room temperature.
MOSFET_SS_LIMIT_MV_PER_DECADE = 60.0


@dataclass(frozen=True)
class MosfetIV:
    """N-MOSFET drain current vs gate voltage at fixed V_DS.

    Subthreshold: ``I = i_off_a * 10**((vg - vt)/ss)``.
    Above threshold: alpha-power law ``I = k * (vg - vt)**alpha`` joined
    continuously at threshold.
    """

    vt_v: float = 0.30
    ss_mv_per_decade: float = MOSFET_SS_LIMIT_MV_PER_DECADE
    i_at_vt_a: float = 1e-7
    alpha: float = 1.3
    k_a: float = 1.2e-3

    def __post_init__(self) -> None:
        if self.ss_mv_per_decade < MOSFET_SS_LIMIT_MV_PER_DECADE - 1e-9:
            raise ValueError(
                "a MOSFET cannot beat the 60 mV/decade thermionic limit"
            )

    def current_a(self, vg_v: float) -> float:
        """Drain current in amperes at gate voltage ``vg_v``."""
        if vg_v <= self.vt_v:
            decades = (vg_v - self.vt_v) / (self.ss_mv_per_decade * 1e-3)
            return self.i_at_vt_a * 10.0 ** decades
        return self.i_at_vt_a + self.k_a * (vg_v - self.vt_v) ** self.alpha


@dataclass(frozen=True)
class TfetIV:
    """N-HetJTFET drain current vs gate voltage at fixed V_DS.

    A logistic turn-on gives a steep exponential tail (slope
    ``ln(10) * width_v`` volts per decade) and saturation at ``i_on_a``
    beyond roughly ``sat_v`` -- matching the paper's "stops scaling beyond
    ~0.6 V" observation.
    """

    i_on_a: float = 2.2e-4
    i_off_a: float = 1e-11
    midpoint_v: float = 0.27
    width_v: float = 0.0115
    sat_v: float = 0.60

    def current_a(self, vg_v: float) -> float:
        """Drain current in amperes at gate voltage ``vg_v``."""
        logistic = 1.0 / (1.0 + math.exp(-(vg_v - self.midpoint_v) / self.width_v))
        return self.i_off_a + (self.i_on_a - self.i_off_a) * logistic

    @property
    def ss_mv_per_decade(self) -> float:
        """Asymptotic subthreshold slope of the logistic tail, in mV/decade."""
        return self.width_v * math.log(10.0) * 1e3


def subthreshold_slope_mv_per_decade(
    device: "MosfetIV | TfetIV", vg_v: float, dv_v: float = 1e-4
) -> float:
    """Numerical local slope dVg/d(log10 I) at ``vg_v``, in mV per decade."""
    lo = device.current_a(vg_v - dv_v)
    hi = device.current_a(vg_v + dv_v)
    dlog = math.log10(hi) - math.log10(lo)
    if dlog <= 0.0:
        return math.inf
    return (2.0 * dv_v / dlog) * 1e3


def figure1_series(
    n_points: int = 61, vg_max_v: float = 0.9
) -> dict[str, list[float]]:
    """The two Figure 1 curves sampled on a shared Vg grid."""
    mosfet = MosfetIV()
    tfet = TfetIV()
    vg = [vg_max_v * i / (n_points - 1) for i in range(n_points)]
    return {
        "vg_v": vg,
        "mosfet_a": [mosfet.current_a(v) for v in vg],
        "hetjtfet_a": [tfet.current_a(v) for v in vg],
    }
