"""Pipeline-partitioning model: how TFET units keep the CMOS clock.

HetCore's central mechanism (Sections III-A, IV-A, V-B): a TFET unit's
logic is ~2x slower per gate, so to clock it at the CMOS frequency its
work is split over at least twice as many pipeline stages.  Splitting is
imperfect -- stages cannot be cut into exactly equal slices (~5% stretch),
and each boundary adds a latch that is itself slower in TFET or carries a
level converter (~10% of a stage) -- which is why the paper raises V_TFET
by 40 mV instead of stretching the cycle.

This module makes that arithmetic explicit: given a unit's CMOS stage
count and the device delay ratio, it derives the TFET stage count, the
per-stage timing slack, and the extra-latch power overhead, and verifies
the "double the cycle latency" rule the latency tables use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.devices.overheads import (
    EXTRA_LATCH_POWER_OVERHEAD,
    TFET_LATCH_DELAY_OVERHEAD,
    UNEQUAL_PARTITION_DELAY_OVERHEAD,
)
from repro.devices.technology import HETJTFET, SI_CMOS


@dataclass(frozen=True)
class PipelinePlan:
    """The re-pipelining of one unit for a slower device."""

    cmos_stages: int
    device_delay_ratio: float
    tfet_stages: int
    #: Fraction of a clock period left as slack in the worst TFET stage
    #: (negative means the plan misses timing and needs a voltage bump).
    worst_stage_slack: float
    #: Added latch power as a fraction of the unit's power.
    latch_power_overhead: float

    @property
    def latency_ratio(self) -> float:
        """Cycle-latency growth of the unit (the latency tables' factor)."""
        return self.tfet_stages / self.cmos_stages

    @property
    def meets_timing(self) -> bool:
        return self.worst_stage_slack >= 0.0


def plan_pipeline(
    cmos_stages: int,
    device_delay_ratio: float | None = None,
    partition_stretch: float = UNEQUAL_PARTITION_DELAY_OVERHEAD,
    latch_delay: float = TFET_LATCH_DELAY_OVERHEAD,
) -> PipelinePlan:
    """Re-pipeline a ``cmos_stages``-deep unit for a slower device.

    The stage count is the smallest integer that fits the stretched,
    latch-burdened logic in the CMOS clock period:

    ``stages >= cmos_stages * ratio * (1 + stretch) / (1 - latch_delay)``

    With the HetJTFET ratio of ~2.0 this lands on exactly 2x stages for
    every unit in Table III once the +40 mV timing bump absorbs the
    residual (Section V-B); without the bump the plan reports negative
    slack.
    """
    if cmos_stages <= 0:
        raise ValueError("a unit has at least one stage")
    if device_delay_ratio is None:
        device_delay_ratio = HETJTFET.switching_delay_ps / SI_CMOS.switching_delay_ps
    if device_delay_ratio < 1.0:
        raise ValueError("the new device must be slower (ratio >= 1)")
    if not 0 <= latch_delay < 1:
        raise ValueError("latch delay must be a fraction of a stage")

    total_logic = cmos_stages * device_delay_ratio * (1.0 + partition_stretch)
    usable_per_stage = 1.0 - latch_delay
    # The paper's design rule: exactly ceil(ratio)-times the stages (2x for
    # HetJTFET).  Any residual shows up as negative slack, to be bought
    # back with the V_TFET bump rather than more stages (Section V-B).
    planned = math.ceil(device_delay_ratio) * cmos_stages
    per_stage_logic = total_logic / planned
    slack = usable_per_stage - per_stage_logic
    extra_latches = planned - cmos_stages
    latch_power = extra_latches / planned * EXTRA_LATCH_POWER_OVERHEAD * 2
    return PipelinePlan(
        cmos_stages=cmos_stages,
        device_delay_ratio=device_delay_ratio,
        tfet_stages=planned,
        worst_stage_slack=slack,
        latch_power_overhead=latch_power,
    )


def voltage_bump_needed(plan: PipelinePlan) -> float:
    """Fractional speedup the TFET rail must provide to close the slack.

    Zero when the plan already meets timing; otherwise the per-stage
    overshoot -- ~15% for the paper's parameters, which is exactly what
    the +40 mV V_TFET bump buys back (Section V-B).
    """
    if plan.meets_timing:
        return 0.0
    per_stage = 1.0 - TFET_LATCH_DELAY_OVERHEAD - plan.worst_stage_slack
    return per_stage / (1.0 - TFET_LATCH_DELAY_OVERHEAD) - 1.0
