"""Device-technology substrate for the HetCore reproduction.

This package models the transistor technologies the paper builds on
(Section II, Table I, Figures 1-3):

* :mod:`repro.devices.technology` -- the four 15 nm technologies of Table I
  (Si-CMOS, HetJTFET, InAs-CMOS, HomJTFET) plus a high-Vt CMOS variant.
* :mod:`repro.devices.iv` -- analytic I_D-V_G characteristics (Figure 1).
* :mod:`repro.devices.vf` -- Vdd-frequency curves and the DVFS voltage-pair
  solver (Figure 3, Section III-D).
* :mod:`repro.devices.leakage` -- dual-Vt leakage model (Section III-B).
* :mod:`repro.devices.activity` -- power vs. activity factor (Figure 2).
* :mod:`repro.devices.overheads` -- multi-Vdd substrate overheads
  (Section V-B): level converters, deeper pipelining, the +40 mV V_TFET bump
  and the 8x -> 6.1x -> 4x conservative dynamic-power chain.
* :mod:`repro.devices.variation` -- process-variation guardbands
  (Sections III-E and VII-D).
* :mod:`repro.devices.scaling` -- voltage-scaling laws for energy and leakage.
"""

from repro.devices.technology import (
    DeviceTechnology,
    SI_CMOS,
    HETJTFET,
    INAS_CMOS,
    HOMJTFET,
    TECHNOLOGIES,
    high_vt_variant,
)
from repro.devices.iv import MosfetIV, TfetIV, subthreshold_slope_mv_per_decade
from repro.devices.vf import VFCurve, CMOS_VF, TFET_VF, DvfsSolver, VoltagePair
from repro.devices.leakage import DualVtLeakageModel
from repro.devices.activity import ActivityPowerModel, alu_power_curves
from repro.devices.overheads import MultiVddOverheads
from repro.devices.pipelining import PipelinePlan, plan_pipeline, voltage_bump_needed
from repro.devices.variation import VariationGuardbands
from repro.devices.scaling import dynamic_energy_scale, leakage_power_scale

__all__ = [
    "DeviceTechnology",
    "SI_CMOS",
    "HETJTFET",
    "INAS_CMOS",
    "HOMJTFET",
    "TECHNOLOGIES",
    "high_vt_variant",
    "MosfetIV",
    "TfetIV",
    "subthreshold_slope_mv_per_decade",
    "VFCurve",
    "CMOS_VF",
    "TFET_VF",
    "DvfsSolver",
    "VoltagePair",
    "DualVtLeakageModel",
    "ActivityPowerModel",
    "alu_power_curves",
    "MultiVddOverheads",
    "VariationGuardbands",
    "PipelinePlan",
    "plan_pipeline",
    "voltage_bump_needed",
    "dynamic_energy_scale",
    "leakage_power_scale",
]
