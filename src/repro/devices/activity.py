"""ALU power vs activity factor (Figure 2, Section III-C).

Because HetJTFETs barely leak, units with a low activity factor benefit the
most from a TFET implementation: at activity 1 the advantage is the ~4x
dynamic-power gap, and as activity drops toward 0 the advantage approaches
the (dual-Vt-deflated) leakage ratio of ~125x.

``total power(af) = af * E_op * f_op + P_leak``

where the Si-CMOS ALU uses 60% high-Vt transistors on non-critical paths
(Figure 2's caption) so its leakage is ~42% of Table I's regular-Vt value.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.leakage import DualVtLeakageModel
from repro.devices.technology import DeviceTechnology, HETJTFET, SI_CMOS

#: Operation rate used for the Figure 2 curves; both implementations are
#: clocked at the HetCore frequency (the TFET ALU is pipelined deeper).
DEFAULT_OP_RATE_GHZ = 2.0


@dataclass(frozen=True)
class ActivityPowerModel:
    """Total power of one 32-bit ALU as a function of activity factor."""

    technology: DeviceTechnology
    op_rate_ghz: float = DEFAULT_OP_RATE_GHZ
    #: Multiplier on Table I leakage; 1.0 for TFET, ~0.42 for dual-Vt CMOS.
    leakage_fraction: float = 1.0

    def dynamic_power_uw(self, activity_factor: float) -> float:
        """Dynamic power in microwatts at the given activity factor."""
        if not 0.0 <= activity_factor <= 1.0:
            raise ValueError("activity factor must be in [0, 1]")
        energy_fj = self.technology.alu_dynamic_energy_fj
        # fJ * GHz = microwatts (1e-15 J * 1e9 /s = 1e-6 W).
        return activity_factor * energy_fj * self.op_rate_ghz

    def leakage_power_uw(self) -> float:
        """Leakage power in microwatts (activity-independent)."""
        return self.technology.alu_leakage_uw * self.leakage_fraction

    def total_power_uw(self, activity_factor: float) -> float:
        """Total (dynamic + leakage) power in microwatts."""
        return self.dynamic_power_uw(activity_factor) + self.leakage_power_uw()


def alu_power_curves(
    activity_factors: list[float] | None = None,
    op_rate_ghz: float = DEFAULT_OP_RATE_GHZ,
    dual_vt: DualVtLeakageModel | None = None,
) -> dict[str, list[float]]:
    """The Figure 2 data: CMOS power, TFET power, and their ratio.

    The CMOS ALU uses the dual-Vt leakage deflation; the TFET ALU uses its
    Table I leakage directly.
    """
    if activity_factors is None:
        activity_factors = [i / 20.0 for i in range(21)]
    dual_vt = dual_vt or DualVtLeakageModel()
    cmos = ActivityPowerModel(
        technology=SI_CMOS,
        op_rate_ghz=op_rate_ghz,
        leakage_fraction=dual_vt.effective_leakage_fraction(),
    )
    tfet = ActivityPowerModel(technology=HETJTFET, op_rate_ghz=op_rate_ghz)
    cmos_uw = [cmos.total_power_uw(af) for af in activity_factors]
    tfet_uw = [tfet.total_power_uw(af) for af in activity_factors]
    ratio = [c / t for c, t in zip(cmos_uw, tfet_uw)]
    return {
        "activity_factor": list(activity_factors),
        "cmos_uw": cmos_uw,
        "tfet_uw": tfet_uw,
        "ratio": ratio,
    }
