"""Voltage-scaling laws used across the power model.

Dynamic switching energy scales as C*V^2, so relative to a reference voltage
``dynamic_energy_scale(v, v0) = (v/v0)**2``.

Subthreshold leakage *power* is V * I_leak(V); I_leak grows with V through
DIBL, which over the small DVFS/guardband windows the paper explores is well
approximated by a linear term, giving an overall ~quadratic dependence.  We
use an exponent of 2.0 for both device families -- the paper's own DVFS
discussion only relies on energy moving in the right direction with the
voltage deltas, which this satisfies.
"""

from __future__ import annotations

#: Exponent for leakage-power scaling with supply voltage.
LEAKAGE_VOLTAGE_EXPONENT = 2.0


def dynamic_energy_scale(v: float, v0: float) -> float:
    """Dynamic energy at supply ``v`` relative to reference supply ``v0``."""
    if v <= 0.0 or v0 <= 0.0:
        raise ValueError("supply voltages must be positive")
    return (v / v0) ** 2


def leakage_power_scale(
    v: float, v0: float, exponent: float = LEAKAGE_VOLTAGE_EXPONENT
) -> float:
    """Leakage power at supply ``v`` relative to reference supply ``v0``."""
    if v <= 0.0 or v0 <= 0.0:
        raise ValueError("supply voltages must be positive")
    return (v / v0) ** exponent
