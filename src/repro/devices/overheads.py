"""Multi-Vdd substrate overheads (Section V).

HetCore pays for mixing voltage domains inside one core:

* dual Vdd rails cost ~5% core area;
* level-converting latches between TFET and CMOS stages add ~5% delay;
* deeper TFET pipelining cannot split stages evenly (~5% stretch) and TFET
  latches are slower (~10% of stage latency), adding up to a worst-case 15%
  TFET stage delay penalty (5% partitioning + 10% converter-or-latch);
* the extra latches add ~10% of stage power.

Rather than slow the clock, HetCore raises V_TFET by 40 mV (0.40 -> 0.44 V)
to recover the 15%, which costs ~24% TFET power and cuts the dynamic-power
advantage from ~8x to ~6.1x.  The evaluation then goes further and assumes
only a 4x advantage -- the "conservative factor" used everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.scaling import dynamic_energy_scale
from repro.devices.technology import HETJTFET, SI_CMOS
from repro.devices.vf import NOMINAL_V_TFET

#: Section V-B constants.
DUAL_RAIL_AREA_OVERHEAD = 0.05
LEVEL_CONVERTER_DELAY_OVERHEAD = 0.05
UNEQUAL_PARTITION_DELAY_OVERHEAD = 0.05
TFET_LATCH_DELAY_OVERHEAD = 0.10
EXTRA_LATCH_POWER_OVERHEAD = 0.10
V_TFET_TIMING_BUMP_V = 0.040

#: The factor the evaluation actually uses (Sections V-B and VI).
CONSERVATIVE_DYNAMIC_POWER_FACTOR = 4.0


@dataclass(frozen=True)
class MultiVddOverheads:
    """Derives the paper's 8x -> ~6.1x -> 4x dynamic-power chain."""

    v_tfet_nominal: float = NOMINAL_V_TFET
    v_tfet_bump: float = V_TFET_TIMING_BUMP_V
    power_increase_fraction: float = 0.24

    @property
    def v_tfet_operating(self) -> float:
        """The raised TFET supply that meets CMOS timing (0.44 V)."""
        return self.v_tfet_nominal + self.v_tfet_bump

    @property
    def worst_case_stage_delay_overhead(self) -> float:
        """Up to 15%: unequal partitioning plus converter *or* slow latch."""
        return UNEQUAL_PARTITION_DELAY_OVERHEAD + max(
            LEVEL_CONVERTER_DELAY_OVERHEAD, TFET_LATCH_DELAY_OVERHEAD
        )

    def ideal_dynamic_power_ratio(self) -> float:
        """CMOS/TFET ALU power ratio before overheads (~8x, Section III-B)."""
        return SI_CMOS.alu_power_ratio(HETJTFET)

    def voltage_bump_energy_increase(self) -> float:
        """Fractional TFET dynamic-energy increase from the +40 mV bump.

        (0.44/0.40)^2 - 1 = 21%; the paper quotes 24% including the extra
        latch power, which we expose via ``power_increase_fraction``.
        """
        return dynamic_energy_scale(self.v_tfet_operating, self.v_tfet_nominal) - 1.0

    def derated_dynamic_power_ratio(self) -> float:
        """The post-overhead power advantage (~6.1-6.3x in our model)."""
        return self.ideal_dynamic_power_ratio() / (1.0 + self.power_increase_fraction)

    def conservative_dynamic_power_ratio(self) -> float:
        """The strictly-guardbanded 4x factor the evaluation uses."""
        return CONSERVATIVE_DYNAMIC_POWER_FACTOR
