"""Durable content-addressed result store (the serving fast path).

``repro.store`` unifies the repo's three historical cache keyings --
the trace LRU, the checkpoint caches, and the serve/fabric result
caches -- behind one addressing scheme
(:func:`repro.store.address.content_address`) and adds the durable
tier: :class:`repro.store.cas.ResultStore`, a crash-consistent
on-disk store keyed by a content hash of (settings fingerprint,
run kind, config, workload, extras, seed, sim version).

:class:`~repro.experiments.runner.SweepRunner` (and through it
``SimService`` and the fabric coordinator) reads through the store: a
cell that any previous process anywhere already simulated is served
from disk without touching a cycle engine.  ``repro store fsck`` and
``repro store gc`` are the operator-facing maintenance commands.

Only :mod:`repro.store.address` is imported eagerly -- it is pure
hashing and safe everywhere (the trace cache keys through it at import
time).  :class:`ResultStore` pulls in the checkpoint codecs, so it is
exported lazily to keep low-level modules importable without dragging
in the simulation stack.
"""

from repro.store.address import content_address

__all__ = ["content_address", "ResultStore", "ENTRY_SCHEMA"]


def __getattr__(name):
    if name in ("ResultStore", "ENTRY_SCHEMA"):
        from repro.store import cas

        return getattr(cas, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
