"""The one content-addressing scheme for every cache and store keying.

Before this module each tier hashed (or tupled) its keys its own way:
the trace LRU used ad-hoc tuples, checkpoints a settings fingerprint,
the serve/fabric caches (config, workload, *extra) tuples.
:func:`content_address` replaces all of them: a sha256 over the
canonical JSON form of a namespaced part-dict.  Two call sites that
hash the same parts get the same address -- across processes, hosts,
and sessions -- which is what lets the durable result store serve a
cell computed by a different run entirely.

Dataclass parts (workload profiles, configs) are serialised field-wise
via :func:`dataclasses.asdict`, so an address changes exactly when a
field that feeds the simulation changes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json


def _jsonable(obj):
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return dataclasses.asdict(obj)
    raise TypeError(
        f"unhashable part of type {type(obj).__name__}: {obj!r}"
    )


def content_address(namespace: str, parts: dict) -> str:
    """sha256 hex digest of the canonical form of (namespace, parts)."""
    canon = json.dumps(
        {"namespace": namespace, "parts": parts},
        sort_keys=True,
        separators=(",", ":"),
        default=_jsonable,
    )
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()
