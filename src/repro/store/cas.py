"""Durable content-addressed result store.

One entry per simulated cell, addressed by
:func:`repro.store.address.content_address` over (settings fingerprint,
run kind, config, workload, extras, seed, sim version) and laid out as
``<root>/objects/<aa>/<address>.json`` -- the same two-level fan-out
git uses, so a store with millions of entries never puts millions of
files in one directory.

Entries are written through :mod:`repro.resilience.diskio`, so every
object is crash-consistent (fsynced temp + rename + directory fsync)
and checksum-enveloped; a torn or corrupted entry is quarantined on
read and simply misses.  The payload carries the encoded result (the
same codecs the checkpoint layer uses) plus enough provenance
(``cell``, ``sim_version``) for :meth:`ResultStore.fsck` to verify an
entry sits at the address its content demands and for
:meth:`ResultStore.gc` to drop entries from stale simulator versions.

The store is multi-process safe by construction: concurrent writers of
the same cell produce byte-identical content at the same address (the
simulators are deterministic), and distinct pids never collide on temp
names.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.resilience import diskio
from repro.resilience.checkpoint import _CODECS
from repro.store.address import content_address

#: Bump when the entry payload layout changes; mismatches read as misses.
ENTRY_SCHEMA = 1


def current_sim_version() -> str:
    from repro import __version__

    return __version__


class ResultStore:
    """Content-addressed, crash-consistent store of simulation results."""

    def __init__(self, root, *, sim_version: "str | None" = None):
        self.root = Path(root)
        self.sim_version = sim_version or current_sim_version()
        self.objects = self.root / "objects"
        self.objects.mkdir(parents=True, exist_ok=True)
        #: Per-process serving counters (hits/misses/puts/...).
        self.counters = {
            "hits": 0, "misses": 0, "puts": 0, "put_errors": 0,
            "quarantined": 0,
        }
        # Crashed writers leave *.tmp.<pid> droppings next to objects.
        swept = diskio.sweep_orphan_temps(self.objects, site="store")
        for shard in self._shards():
            swept += diskio.sweep_orphan_temps(shard, site="store")
        self.orphans_swept = swept

    # -- addressing ----------------------------------------------------
    def address(self, fingerprint: str, run_kind: str, config: str,
                workload: str, extra=(), seed: int = 0) -> str:
        """The content address of one (cell, sim version) result."""
        return content_address("result", {
            "fingerprint": fingerprint,
            "run_kind": run_kind,
            "config": config,
            "workload": workload,
            "extra": list(extra),
            "seed": seed,
            "sim_version": self.sim_version,
        })

    def _path(self, digest: str) -> Path:
        return self.objects / digest[:2] / f"{digest}.json"

    def _shards(self):
        try:
            names = sorted(os.listdir(self.objects))
        except OSError:
            return
        for name in names:
            shard = self.objects / name
            if shard.is_dir():
                yield shard

    def entries(self):
        """Every entry path, in deterministic (address) order."""
        for shard in self._shards():
            for name in sorted(os.listdir(shard)):
                if name.endswith(".json"):
                    yield shard / name

    # -- read/write ----------------------------------------------------
    def get(self, fingerprint: str, run_kind: str, config: str,
            workload: str, extra=(), seed: int = 0):
        """The decoded result for a cell, or None on miss/damage."""
        digest = self.address(fingerprint, run_kind, config, workload,
                              extra, seed)
        path = self._path(digest)
        payload = diskio.read_record(path, site="store")
        if payload is None:
            self.counters["misses"] += 1
            return None
        if (payload.get("schema") != ENTRY_SCHEMA
                or payload.get("run_kind") != run_kind):
            self.counters["misses"] += 1
            return None
        try:
            result = _CODECS[run_kind][1](payload["result"])
        except Exception:
            # Checksum held but the body is not a decodable result --
            # a foreign or stale-layout object squatting on the address.
            diskio.quarantine_file(path, site="store", reason="undecodable")
            self.counters["quarantined"] += 1
            self.counters["misses"] += 1
            return None
        self.counters["hits"] += 1
        return result

    def put(self, fingerprint: str, run_kind: str, config: str,
            workload: str, extra, result, seed: int = 0) -> str:
        """Durably store one cell result; returns its address.

        Raises ``OSError`` on write failure (callers degrade, they do
        not crash a sweep over a full disk).
        """
        digest = self.address(fingerprint, run_kind, config, workload,
                              extra, seed)
        payload = {
            "schema": ENTRY_SCHEMA,
            "run_kind": run_kind,
            "sim_version": self.sim_version,
            "cell": {
                "fingerprint": fingerprint,
                "config": config,
                "workload": workload,
                "extra": list(extra),
                "seed": seed,
            },
            "result": _CODECS[run_kind][0](result),
        }
        diskio.write_record(self._path(digest), payload, site="store")
        self.counters["puts"] += 1
        return digest

    # -- maintenance ---------------------------------------------------
    def fsck(self, *, quarantine: bool = True) -> dict:
        """Verify every entry; quarantine (or just report) the damaged.

        Checks three layers per entry: the diskio checksum envelope,
        the payload schema, and that the entry sits at the address its
        recorded cell provenance hashes to (a moved or renamed object
        is as wrong as a torn one).  Also sweeps orphaned temp files.
        """
        report = {
            "checked": 0, "ok": 0, "damaged": [], "quarantined": 0,
            "orphans_swept": diskio.sweep_orphan_temps(
                self.objects, site="store.fsck"
            ),
        }
        for shard in self._shards():
            report["orphans_swept"] += diskio.sweep_orphan_temps(
                shard, site="store.fsck"
            )
        for path in self.entries():
            report["checked"] += 1
            payload = diskio.read_record(
                path, site="store.fsck", quarantine=quarantine
            )
            reason = None
            if payload is None:
                reason = "checksum"  # already quarantined by read_record
            elif payload.get("schema") != ENTRY_SCHEMA:
                reason = "schema"
            else:
                cell = payload.get("cell", {})
                expect = self.address(
                    cell.get("fingerprint"), payload.get("run_kind"),
                    cell.get("config"), cell.get("workload"),
                    cell.get("extra", ()), cell.get("seed", 0),
                )
                if payload.get("sim_version") != self.sim_version:
                    # Stale version: valid, just not addressable by this
                    # store instance.  gc's problem, not fsck's.
                    expect = path.stem
                if expect != path.stem:
                    reason = "misplaced"
            if reason is None:
                report["ok"] += 1
                continue
            report["damaged"].append({"path": str(path), "reason": reason})
            if reason == "checksum":
                if quarantine:
                    report["quarantined"] += 1
            elif quarantine and diskio.quarantine_file(
                path, site="store.fsck", reason=reason
            ) is not None:
                report["quarantined"] += 1
        self.counters["quarantined"] += report["quarantined"]
        return report

    def gc(self, *, max_bytes: "int | None" = None,
           keep_sim_version: "str | None" = None) -> dict:
        """Drop stale-version entries and enforce a size budget.

        Entries whose ``sim_version`` differs from ``keep_sim_version``
        (default: this store's version) are removed first; if the
        survivors still exceed ``max_bytes``, the oldest (by mtime) go
        until the budget holds.
        """
        keep = keep_sim_version or self.sim_version
        report = {"removed_stale": 0, "removed_over_budget": 0,
                  "remaining": 0, "bytes": 0}
        survivors = []
        for path in self.entries():
            payload = diskio.read_record(path, site="store.gc")
            if payload is None:
                continue  # damaged: quarantined by the read
            if payload.get("sim_version") != keep:
                try:
                    path.unlink()
                except OSError:
                    continue
                report["removed_stale"] += 1
                continue
            try:
                stat = path.stat()
            except OSError:
                continue
            survivors.append((stat.st_mtime, stat.st_size, path))
        total = sum(size for _, size, _ in survivors)
        if max_bytes is not None:
            survivors.sort()  # oldest first
            while survivors and total > max_bytes:
                _, size, path = survivors.pop(0)
                try:
                    path.unlink()
                except OSError:
                    continue
                total -= size
                report["removed_over_budget"] += 1
        report["remaining"] = len(survivors)
        report["bytes"] = total
        return report

    def stats(self) -> dict:
        return {
            **self.counters,
            "sim_version": self.sim_version,
            "root": str(self.root),
            "orphans_swept": self.orphans_swept,
        }
