"""Wire protocol for the distributed sweep fabric.

Frames are length-prefixed JSON: a 4-byte big-endian payload length
followed by a UTF-8 JSON object with a ``"type"`` key.  The same frame
bytes are produced by the synchronous node side (:class:`FrameSocket`)
and the asyncio coordinator side (:func:`send_frame` /
:func:`read_frame`), so either end can talk to the other and a capture
of the stream replays identically.

Message vocabulary (all JSON objects)
-------------------------------------
node -> coordinator:

* ``hello``      -- ``{node, pid, proto}``: session open.
* ``heartbeat``  -- ``{epoch, seq, health, in_flight}``: liveness plus
  the node's :class:`~repro.serve.health.HealthSnapshot` dict, rolled
  into the fleet view.
* ``result``     -- ``{epoch, task_id, run_kind, config, workload,
  extra, ok, result | failure, wall_s}``: one terminal cell outcome.
* ``drained``    -- ``{epoch}``: checkpoint flushed, node is quiescent.

coordinator -> node:

* ``welcome``    -- ``{node, epoch, heartbeat_s, settings, policy}``:
  accepts the session and fences it with a fresh epoch.
* ``assign``     -- ``{epoch, task_id, attempt, run_kind, config,
  workload, extra}``: run one cell.
* ``drain``      -- flush checkpoint, finish in-flight, reply
  ``drained``.
* ``fenced``     -- the sender's session epoch is stale; reconnect.
* ``bye``        -- sweep complete; the node may exit.

Every *send* on either side routes through the seeded network fault
injector (:func:`repro.resilience.faults.active_network`) when one is
installed: frames may be dropped, delayed, duplicated, or caught in a
timed partition, keyed deterministically on (seed, site, frame seq).

The :class:`HashRing` at the bottom is the placement half of the
protocol: cells are consistent-hashed on (run_kind, config, workload)
so a cell keeps landing on the same node across sweeps -- circuit
breaker state and runner caches stay node-local -- and only ~1/N of
placements move when membership changes.
"""

from __future__ import annotations

import asyncio
import bisect
import json
import socket
import struct
import threading
import time
from typing import Callable

from repro.resilience import faults
from repro.resilience.guard import stable_seed

#: Protocol revision carried in ``hello`` / rejected if incompatible.
PROTOCOL_VERSION = 1

#: Hard cap on a single frame payload; anything larger is a protocol
#: error, not an allocation request.
MAX_FRAME_BYTES = 32 << 20

_HEADER = struct.Struct(">I")


class ProtocolError(ValueError):
    """A malformed or oversized frame (the connection is unusable)."""


class ConnectionClosed(ConnectionError):
    """The peer closed the connection (EOF mid-stream or at a boundary)."""


def encode_frame(message: dict) -> bytes:
    """Serialise one message to its length-prefixed wire form."""
    payload = json.dumps(message, sort_keys=True).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds cap")
    return _HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> dict:
    """Parse a frame payload; every message must be an object with a type."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError("frame is not an object with a 'type' key")
    return message


class FrameSocket:
    """Blocking-socket frame transport for the synchronous node side.

    Sends are thread-safe (one lock around the whole delivery schedule,
    so duplicated copies of a frame are never interleaved with another
    sender's bytes).  ``recv`` keeps an internal buffer across timeouts:
    a frame that arrives in pieces over several polls is reassembled,
    never lost.
    """

    def __init__(
        self,
        sock: socket.socket,
        *,
        site: str = "link",
        injector: "faults.NetFaultInjector | None" = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self._sock = sock
        self.site = site
        self._injector = injector
        self._sleep = sleep
        self._send_lock = threading.Lock()
        self._buf = b""

    def send(self, message: dict) -> None:
        """Send one frame, subject to the network fault schedule."""
        frame = encode_frame(message)
        fates = [0.0]
        if self._injector is not None:
            fates = self._injector.fates(self.site)
        with self._send_lock:
            for delay in fates:
                if delay > 0.0:
                    self._sleep(delay)
                self._sock.sendall(frame)

    def recv(self, timeout: "float | None" = None) -> "dict | None":
        """One message, or None on timeout; raises ConnectionClosed on EOF."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if len(self._buf) >= _HEADER.size:
                (length,) = _HEADER.unpack_from(self._buf)
                if length > MAX_FRAME_BYTES:
                    raise ProtocolError(f"frame of {length} bytes exceeds cap")
                if len(self._buf) >= _HEADER.size + length:
                    payload = self._buf[_HEADER.size:_HEADER.size + length]
                    self._buf = self._buf[_HEADER.size + length:]
                    return decode_payload(payload)
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
            try:
                self._sock.settimeout(remaining)
                chunk = self._sock.recv(65536)
            except socket.timeout:
                return None
            except OSError as exc:
                raise ConnectionClosed(f"recv failed: {exc}") from exc
            if not chunk:
                raise ConnectionClosed("peer closed the connection")
            self._buf += chunk

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


async def read_frame(reader: asyncio.StreamReader) -> dict:
    """Read one frame from an asyncio stream; ConnectionClosed on EOF."""
    try:
        header = await reader.readexactly(_HEADER.size)
        (length,) = _HEADER.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(f"frame of {length} bytes exceeds cap")
        payload = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError, OSError) as exc:
        raise ConnectionClosed(f"stream ended: {exc}") from exc
    return decode_payload(payload)


async def send_frame(
    writer: asyncio.StreamWriter,
    message: dict,
    *,
    site: str = "link",
    injector: "faults.NetFaultInjector | None" = None,
) -> None:
    """Send one frame on an asyncio stream through the fault schedule.

    A delayed fate sleeps *inline* before the write, which also delays
    every later frame queued behind it on this link -- exactly how a
    slow link behaves, and deterministic because asyncio writes on one
    (writer, coroutine) pair are already serialised.
    """
    frame = encode_frame(message)
    fates = [0.0]
    if injector is not None:
        fates = injector.fates(site)
    for delay in fates:
        if delay > 0.0:
            await asyncio.sleep(delay)
        writer.write(frame)
    if fates:
        try:
            await writer.drain()
        except (ConnectionError, OSError) as exc:
            raise ConnectionClosed(f"drain failed: {exc}") from exc


def route_key(run_kind: str, config: str, workload: str) -> str:
    """The placement key a cell hashes on (extras intentionally excluded
    so e.g. every DVFS point of one (config, app) shares a node and its
    warmed caches)."""
    return f"{run_kind}:{config}:{workload}"


class HashRing:
    """Consistent hash ring with virtual nodes.

    Each member contributes ``replicas`` points placed by the same
    process-independent :func:`stable_seed` hash the fault injectors
    use, so placement is identical in every process that builds the
    ring with the same membership -- no randomness, no PID leakage.
    """

    def __init__(self, *, replicas: int = 64):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._points: "list[tuple[int, str]]" = []
        self._hashes: "list[int]" = []
        self._members: "set[str]" = set()

    @property
    def members(self) -> "tuple[str, ...]":
        return tuple(sorted(self._members))

    def __len__(self) -> int:
        return len(self._members)

    def add(self, name: str) -> None:
        if name in self._members:
            return
        self._members.add(name)
        for i in range(self.replicas):
            self._points.append((stable_seed("ring", name, i), name))
        self._points.sort()
        self._hashes = [h for h, _ in self._points]

    def remove(self, name: str) -> None:
        if name not in self._members:
            return
        self._members.discard(name)
        self._points = [(h, n) for h, n in self._points if n != name]
        self._hashes = [h for h, _ in self._points]

    def lookup(self, key: str) -> "str | None":
        """The member owning ``key``, or None for an empty ring."""
        if not self._points:
            return None
        point = stable_seed("cell", key)
        idx = bisect.bisect_right(self._hashes, point)
        if idx == len(self._points):
            idx = 0
        return self._points[idx][1]
