"""``repro.fabric``: the distributed sweep tier.

One asyncio coordinator (:mod:`repro.fabric.coordinator`) owns a
sweep's cell list and its authoritative runner/checkpoint; N worker
nodes (:mod:`repro.fabric.node`) each run the existing
:class:`~repro.serve.service.SimService` machinery and stream results
back over a length-prefixed JSON protocol
(:mod:`repro.fabric.protocol`).  Cells are consistent-hashed on
(run_kind, config, workload) so breaker state and caches stay
node-local; node death (heartbeat timeout or connection loss) triggers
exactly-once resubmission fenced by session epochs; heartbeat health
snapshots roll up into a fleet view (:mod:`repro.fabric.fleet`) for
``repro top --fleet``.

Serial, single-node, and multi-node sweeps produce byte-identical
reports: simulation is deterministic and reports are assembled from the
runner caches in deterministic cell order, so the fabric only changes
*where* cells run, never what they produce.
"""

from repro.fabric.coordinator import FabricConfig, FabricCoordinator, NodeClient
from repro.fabric.fleet import (
    FleetRollup,
    FleetSnapshot,
    fleet_path,
    read_fleet,
    rollup,
    write_fleet,
)
from repro.fabric.node import FabricNode, NodeConfig
from repro.fabric.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ConnectionClosed,
    FrameSocket,
    HashRing,
    ProtocolError,
    encode_frame,
    route_key,
)

__all__ = [
    "FabricConfig",
    "FabricCoordinator",
    "FabricNode",
    "FleetRollup",
    "FleetSnapshot",
    "FrameSocket",
    "HashRing",
    "NodeClient",
    "NodeConfig",
    "ConnectionClosed",
    "ProtocolError",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "encode_frame",
    "fleet_path",
    "read_fleet",
    "rollup",
    "route_key",
    "write_fleet",
]
