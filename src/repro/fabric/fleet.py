"""Fleet-level health rollup for the distributed sweep fabric.

The coordinator relays every node heartbeat into a per-node health file
(``<fleet_dir>/<node>.health.json``, the same atomic-replace contract
as the single-service file) and periodically rolls the set up into one
``<fleet_dir>/fleet.json`` document.  ``repro top --fleet`` tails that
one file.

Staleness is judged per node with
:class:`~repro.serve.health.HealthWatcher` -- the reader's own
monotonic clock watching each node's ``seq`` advance -- so a node whose
heartbeats stop (killed, partitioned, wedged) degrades to ``dead``
within the staleness budget even if its last snapshot claimed perfect
health.  The fleet itself stays ``healthy`` while a quorum (majority by
default) of registered nodes is alive: one dead node is a degraded
fleet, not an outage.
"""

from __future__ import annotations

import dataclasses
import os
import time
from pathlib import Path
from typing import Callable

from repro.resilience import diskio
from repro.serve.health import HealthSnapshot, HealthWatcher

#: Default per-node staleness budget; fabric heartbeats are sub-second,
#: so a few missed beats plus file latency still fits comfortably.
DEFAULT_NODE_STALE_S = 5.0

#: The states a node can be in within a fleet snapshot.
NODE_STATES = ("alive", "draining", "dead", "missing")


def default_quorum(total: int) -> int:
    """Majority quorum: the smallest count that is more than half."""
    return total // 2 + 1 if total else 0


@dataclasses.dataclass
class FleetSnapshot:
    """One rolled-up view of every node in the fabric."""

    nodes: dict
    total: int
    alive: int
    quorum: int
    healthy: bool
    draining: bool = False
    seq: int = 0
    updated_at: float = dataclasses.field(default_factory=time.time)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FleetSnapshot":
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in names})

    def describe(self) -> str:
        """Human-readable multi-line dump (``repro top --fleet --once``)."""
        state = "draining" if self.draining else (
            "healthy" if self.healthy else "DEGRADED"
        )
        lines = [
            f"fleet:   {state}, {self.alive}/{self.total} nodes alive "
            f"(quorum {self.quorum}), seq {self.seq}",
        ]
        for name in sorted(self.nodes):
            node = self.nodes[name]
            extra = ""
            if node.get("state") == "alive":
                extra = (
                    f", {node.get('in_flight', 0)} in flight, "
                    f"queue {node.get('queue_depth', 0)}"
                )
            silent = node.get("silent_s")
            if silent is not None:
                extra += f", silent {silent:.1f}s"
            lines.append(f"  {name}: {node.get('state', '?')}{extra}")
        return "\n".join(lines)


def rollup(
    nodes: "dict[str, tuple[HealthSnapshot | None, float | None]]",
    *,
    quorum: "int | None" = None,
    draining: bool = False,
    seq: int = 0,
) -> FleetSnapshot:
    """Pure rollup of per-node (snapshot, silent_s) pairs.

    A missing snapshot is ``missing``; a snapshot whose liveness the
    watcher already revoked (seq stopped advancing) is ``dead``; a live
    snapshot carries its queue/in-flight numbers into the fleet doc.
    """
    total = len(nodes)
    need = default_quorum(total) if quorum is None else quorum
    node_docs: dict = {}
    alive = 0
    for name, (snapshot, silent_s) in sorted(nodes.items()):
        if snapshot is None:
            node_docs[name] = {"state": "missing", "silent_s": silent_s}
            continue
        if not snapshot.alive:
            state = "dead"
        elif snapshot.draining:
            state = "draining"
        else:
            state = "alive"
        if state != "dead":
            alive += 1
        node_docs[name] = {
            "state": state,
            "seq": snapshot.seq,
            "pid": snapshot.pid,
            "in_flight": snapshot.in_flight,
            "queue_depth": snapshot.queue_depth,
            "counters": dict(snapshot.counters),
            "silent_s": silent_s,
        }
    return FleetSnapshot(
        nodes=node_docs,
        total=total,
        alive=alive,
        quorum=need,
        healthy=total > 0 and alive >= need,
        draining=draining,
        seq=seq,
    )


class FleetRollup:
    """Watch a set of per-node health files and roll them up on demand."""

    def __init__(
        self,
        *,
        stale_after_s: float = DEFAULT_NODE_STALE_S,
        quorum: "int | None" = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.stale_after_s = stale_after_s
        self.quorum = quorum
        self._clock = clock
        self._watchers: "dict[str, HealthWatcher]" = {}
        self._seq = 0

    @property
    def names(self) -> "tuple[str, ...]":
        return tuple(sorted(self._watchers))

    def watch(self, name: str, health_file: "str | os.PathLike") -> None:
        """Register a node's health file (idempotent per name)."""
        if name not in self._watchers:
            self._watchers[name] = HealthWatcher(
                health_file,
                stale_after_s=self.stale_after_s,
                clock=self._clock,
            )

    def forget(self, name: str) -> None:
        self._watchers.pop(name, None)

    def poll(self, *, draining: bool = False) -> FleetSnapshot:
        """One rollup pass across every watched node."""
        self._seq += 1
        observed = {
            name: (watcher.poll(), watcher.silent_s())
            for name, watcher in self._watchers.items()
        }
        return rollup(
            observed, quorum=self.quorum, draining=draining, seq=self._seq
        )


def fleet_path(fleet_dir: "str | os.PathLike") -> Path:
    return Path(fleet_dir) / "fleet.json"


def node_health_path(fleet_dir: "str | os.PathLike", node: str) -> Path:
    safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in node)
    return Path(fleet_dir) / f"{safe}.health.json"


def write_fleet(fleet_dir: "str | os.PathLike", snapshot: FleetSnapshot) -> None:
    """Crash-consistently replace the fleet rollup document."""
    diskio.write_record(fleet_path(fleet_dir), snapshot.to_dict(), site="fleet")


def read_fleet(path: "str | os.PathLike") -> "FleetSnapshot | None":
    """Load a fleet document; None when missing or damaged."""
    doc = diskio.read_record(path, site="fleet")
    if doc is None:
        return None
    try:
        return FleetSnapshot.from_dict(doc)
    except (ValueError, TypeError, KeyError):
        return None
