"""The fabric coordinator: one asyncio process driving N worker nodes.

The coordinator owns the sweep: the full cell list, the authoritative
:class:`~repro.experiments.runner.SweepRunner` whose caches/checkpoint
collect every result, and the placement ring.  Nodes own execution:
each runs the :class:`~repro.serve.service.SimService` machinery and
streams terminal results back.  The coordinator is a pure merge point
-- it never simulates -- so its event loop stays responsive no matter
how slow the cells are.

Robustness invariants (see DESIGN.md for the walkthrough):

* **Exactly-once merge.**  A cell is merged into the runner at most
  once: the ``done`` set dedupes duplicated frames, resubmission races,
  and a zombie's late results.  A cell is merged at *least* once
  because every loss path (node death, dropped frame, task timeout,
  coordinator drain) either requeues the cell or records it as a
  ``shed`` gap in the checkpoint -- never silence.
* **Epoch fencing.**  Every accepted session gets a strictly
  increasing epoch, stamped on each assignment and echoed on each
  result.  A node marked dead (heartbeat timeout) whose socket still
  delivers frames is a *zombie*: its epoch no longer matches the
  live membership, so its results count as ``fenced`` and are
  discarded.  A reconnecting node gets a fresh epoch; results it
  re-sends from the old session are fenced too, and the resubmitted
  copies are deduped by ``done``.
* **Monotonic membership accounting.**  Node death is decided by
  heartbeat staleness on the coordinator's monotonic clock or by
  connection loss, whichever fires first; its in-flight cells are
  recorded as ``shed`` gaps (cleared if a resubmission later
  succeeds) and requeued in deterministic cell order.
* **Drain.**  SIGTERM broadcasts ``drain``; every node flushes its
  checkpoint, acks ``drained``, and the coordinator sheds whatever
  never completed before flushing its own checkpoint -- a rerun
  against the same checkpoint serves exactly the gaps.

Because simulation results are deterministic and the report is
assembled from the runner caches in deterministic cell order, serial,
single-node, and multi-node sweeps produce byte-identical reports.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from repro.fabric import fleet as fleet_mod
from repro.fabric.protocol import (
    PROTOCOL_VERSION,
    ConnectionClosed,
    HashRing,
    ProtocolError,
    read_frame,
    route_key,
    send_frame,
)
from repro.obs.events import get_event_log
from repro.resilience import diskio, faults
from repro.resilience.checkpoint import _CODECS
from repro.resilience.errors import RunFailure
from repro.resilience.guard import GuardOutcome
from repro.resilience.pool import CellTask
from repro.serve.health import HealthSnapshot, write_health


@dataclass
class FabricConfig:
    """Shape of one coordinator instance."""

    host: str = "127.0.0.1"
    port: int = 0
    #: Heartbeat cadence pushed to nodes in ``welcome``.
    heartbeat_s: float = 0.5
    #: A node silent longer than this is dead (monotonic, coordinator).
    heartbeat_timeout_s: float = 3.0
    #: An assignment unresolved longer than this is resubmitted (covers
    #: dropped ``assign``/``result`` frames without killing the node).
    task_timeout_s: float = 120.0
    #: Max outstanding assignments per node (pipelining window).
    window: int = 2
    #: Distribution starts once this many nodes have joined.
    min_nodes: int = 1
    #: Give up waiting for the first ``min_nodes`` nodes after this.
    join_timeout_s: float = 60.0
    #: With work pending and *zero* live nodes, wait this long for a
    #: rejoin before shedding the remainder.
    rejoin_grace_s: float = 10.0
    #: Budget for ``drained`` acks during a fleet-wide drain.
    drain_deadline_s: float = 10.0
    #: Directory for per-node health files + the fleet rollup (None =
    #: no fleet observability).
    fleet_dir: "str | None" = None
    #: Virtual nodes per member on the placement ring.
    replicas: int = 64
    #: Watchdog tick (staleness checks, fleet rollup cadence).
    tick_s: float = 0.1


@dataclass
class _Assignment:
    """One cell assigned to one node session."""

    task_id: str
    cell: tuple
    node: str
    epoch: int
    attempt: int
    assigned_at: float


class NodeClient:
    """Coordinator-side state of one node session."""

    def __init__(self, name: str, epoch: int, writer, *, workers: int = 1):
        self.name = name
        self.epoch = epoch
        self.writer = writer
        self.workers = max(workers, 1)
        self.alive = True
        self.draining = False
        self.drained = False
        self.last_heartbeat: "float | None" = None
        self.health: "dict | None" = None
        self.outstanding: "dict[str, _Assignment]" = {}
        self.site = f"coordinator->{name}"

    def snapshot(self) -> dict:
        return {
            "epoch": self.epoch,
            "alive": self.alive,
            "draining": self.draining,
            "outstanding": len(self.outstanding),
        }


class FabricCoordinator:
    """Distribute one sweep's cells across connected nodes."""

    def __init__(
        self,
        runner,
        cells: "list[tuple]",
        config: "FabricConfig | None" = None,
        *,
        clock=time.monotonic,
    ):
        self.runner = runner
        self.config = config or FabricConfig()
        self._clock = clock
        #: Deterministic order index for requeueing.
        self._order = {tuple(c): i for i, c in enumerate(cells)}
        self.cells = [tuple(c) for c in cells]
        #: Cells awaiting assignment, kept sorted by original order.
        self.pending: "list[tuple]" = []
        #: Cells not yet terminal (result merged or shed at exit).
        self.remaining: "set[tuple]" = set()
        #: Cells merged exactly once.
        self.done: "set[tuple]" = set()
        self.nodes: "dict[str, NodeClient]" = {}
        self.in_flight: "dict[str, _Assignment]" = {}
        self.ring = HashRing(replicas=self.config.replicas)
        self.counters = {
            "assigned": 0,
            "completed": 0,
            "failed": 0,
            "resubmitted": 0,
            "fenced": 0,
            "duplicates": 0,
            "task_timeouts": 0,
            "nodes_joined": 0,
            "nodes_dead": 0,
            "heartbeats": 0,
        }
        self._epoch = 0
        self._task_seq = 0
        self._started = False
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._done_event: "asyncio.Event | None" = None
        self._drain_event: "asyncio.Event | None" = None
        self._drain_requested = False
        self._draining = False
        self._no_nodes_since: "float | None" = None
        self._opened_at = clock()
        self._rollup = None
        if self.config.fleet_dir is not None:
            self._rollup = fleet_mod.FleetRollup(
                stale_after_s=max(self.config.heartbeat_timeout_s, 1.0)
            )
            # Writer-startup hygiene: a previous coordinator that died
            # mid-snapshot leaves *.tmp.<pid> droppings here.
            diskio.sweep_orphan_temps(self.config.fleet_dir, site="fleet")
        self.port: "int | None" = None

    # -- thread/signal-safe shutdown request ---------------------------
    def request_shutdown(self) -> None:
        """Begin a fleet-wide drain (safe from signal handlers/threads)."""
        self._drain_requested = True
        loop = self._loop
        if loop is not None:
            try:
                loop.call_soon_threadsafe(self._note_drain_request)
            except RuntimeError:
                pass  # loop already closed; serve() is returning anyway

    def _note_drain_request(self) -> None:
        if self._drain_event is not None:
            self._drain_event.set()

    # -- helpers -------------------------------------------------------
    def _injector(self):
        return faults.active_network()

    async def _send(self, node: NodeClient, message: dict) -> None:
        try:
            await send_frame(
                node.writer, message, site=node.site, injector=self._injector()
            )
        except (ConnectionClosed, ConnectionError, OSError):
            self._node_lost(node, "send failed")

    def _route(self, cell: tuple) -> "str | None":
        run_kind, config_name, workload = cell[0], cell[1], cell[2]
        return self.ring.lookup(route_key(run_kind, config_name, workload))

    def _sort_pending(self) -> None:
        self.pending.sort(key=lambda c: self._order.get(c, len(self._order)))

    def _shed_cell(self, cell: tuple, message: str) -> None:
        """Record one unfinished cell as a ``shed`` gap (kept unless a
        later resubmission succeeds and clears it)."""
        run_kind, config_name, workload = cell[0], cell[1], cell[2]
        self.runner.record_gap(
            RunFailure(
                run_kind=run_kind,
                config=config_name,
                workload=workload,
                kind="shed",
                attempts=0,
                message=message,
                extra=tuple(cell[3:]),
            )
        )

    def _check_done(self) -> None:
        if not self.remaining and self._done_event is not None:
            self._done_event.set()

    def _alive_nodes(self) -> "list[NodeClient]":
        return [n for n in self.nodes.values() if n.alive]

    # -- result merge (exactly-once) -----------------------------------
    def _apply_result(self, node: NodeClient, msg: dict) -> None:
        telemetry = self.runner.telemetry
        if not node.alive or msg.get("epoch") != node.epoch:
            # A zombie session (declared dead, or superseded by a
            # reconnect) is still talking: fence its results.
            self.counters["fenced"] += 1
            telemetry.record_fabric("fenced")
            get_event_log().emit(
                "fabric.fenced", node=node.name,
                epoch=msg.get("epoch"), expected=node.epoch,
            )
            return
        task_id = str(msg.get("task_id", ""))
        run_kind = msg["run_kind"]
        extra = tuple(msg.get("extra", ()))
        cell = (run_kind, msg["config"], msg["workload"], *extra)
        node.outstanding.pop(task_id, None)
        self.in_flight.pop(task_id, None)
        if cell in self.done:
            # Duplicated frame, or a resubmission race both copies of
            # which completed: merge only the first.
            self.counters["duplicates"] += 1
            telemetry.record_fabric("duplicate")
            return
        # Retire any *other* in-flight assignment of the same cell (the
        # resubmitted copy after a task timeout) so it is neither waited
        # on nor double-merged.
        for other_id, assignment in list(self.in_flight.items()):
            if assignment.cell == cell:
                self.in_flight.pop(other_id, None)
                other = self.nodes.get(assignment.node)
                if other is not None:
                    other.outstanding.pop(other_id, None)
        if cell in self.pending:
            self.pending.remove(cell)
        self.done.add(cell)
        self.remaining.discard(cell)
        task = CellTask(run_kind, msg["config"], msg["workload"], extra)
        if msg.get("ok"):
            _, decode = _CODECS[run_kind]
            outcome = GuardOutcome(
                result=decode(msg["result"]),
                failure=None,
                attempts=int(msg.get("attempts", 1)),
                wall_s=float(msg.get("wall_s", 0.0)),
            )
            self.counters["completed"] += 1
            telemetry.record_fabric("completed")
        else:
            outcome = GuardOutcome(
                result=None,
                failure=RunFailure.from_dict(msg["failure"]),
                attempts=int(msg.get("attempts", 0)),
                wall_s=float(msg.get("wall_s", 0.0)),
            )
            self.counters["failed"] += 1
            telemetry.record_fabric("failed")
        self.runner.merge_pool_outcome(run_kind, task, outcome)
        self._check_done()

    # -- assignment ----------------------------------------------------
    async def _pump(self, node: NodeClient) -> None:
        """Assign this node its routed share of the pending cells."""
        if not self._started or self._draining:
            return
        window = self.config.window * node.workers
        while (
            node.alive
            and not node.draining
            and len(node.outstanding) < window
        ):
            cell = next(
                (c for c in self.pending if self._route(c) == node.name),
                None,
            )
            if cell is None:
                return
            self.pending.remove(cell)
            self._task_seq += 1
            task_id = f"t{self._task_seq}"
            attempt = sum(
                1 for a in self.in_flight.values() if a.cell == cell
            ) + 1
            assignment = _Assignment(
                task_id=task_id,
                cell=cell,
                node=node.name,
                epoch=node.epoch,
                attempt=attempt,
                assigned_at=self._clock(),
            )
            self.in_flight[task_id] = assignment
            node.outstanding[task_id] = assignment
            self.counters["assigned"] += 1
            self.runner.telemetry.record_fabric("assigned")
            await self._send(node, {
                "type": "assign",
                "epoch": node.epoch,
                "task_id": task_id,
                "attempt": attempt,
                "run_kind": cell[0],
                "config": cell[1],
                "workload": cell[2],
                "extra": list(cell[3:]),
            })

    async def _pump_all(self) -> None:
        for node in list(self._alive_nodes()):
            await self._pump(node)

    def _requeue(self, assignment: _Assignment) -> None:
        self.in_flight.pop(assignment.task_id, None)
        node = self.nodes.get(assignment.node)
        if node is not None:
            node.outstanding.pop(assignment.task_id, None)
        cell = assignment.cell
        if cell in self.done or cell in self.pending:
            return
        self.pending.append(cell)
        self._sort_pending()
        self.counters["resubmitted"] += 1
        self.runner.telemetry.record_fabric("resubmitted")

    # -- membership ----------------------------------------------------
    def _node_lost(self, node: NodeClient, reason: str) -> None:
        """Declare one session dead and requeue its in-flight cells."""
        if not node.alive:
            return
        node.alive = False
        self.ring.remove(node.name)
        self.counters["nodes_dead"] += 1
        self.runner.telemetry.record_fabric("node_died")
        get_event_log().emit(
            "fabric.node_died", node=node.name, epoch=node.epoch,
            reason=reason, outstanding=len(node.outstanding),
        )
        lost = sorted(
            node.outstanding.values(),
            key=lambda a: self._order.get(a.cell, len(self._order)),
        )
        for assignment in lost:
            if assignment.cell not in self.done:
                # Record the loss as a shed gap *now*: if no survivor
                # ever completes the resubmission, the checkpoint still
                # carries an explicit gap instead of silence.  A later
                # success clears it.
                self._shed_cell(
                    assignment.cell,
                    f"node {node.name} lost ({reason}); resubmitted",
                )
            self._requeue(assignment)
        node.outstanding.clear()
        if not self._alive_nodes():
            self._no_nodes_since = self._clock()
        self._write_node_health(node)

    # -- fleet observability -------------------------------------------
    def _write_node_health(self, node: NodeClient) -> None:
        if self.config.fleet_dir is None:
            return
        path = fleet_mod.node_health_path(self.config.fleet_dir, node.name)
        try:
            if node.health is not None and node.alive:
                write_health(path, HealthSnapshot.from_dict(node.health))
            elif node.health is not None:
                doc = dict(node.health)
                doc["alive"] = False
                doc["ready"] = False
                write_health(path, HealthSnapshot.from_dict(doc))
            if self._rollup is not None:
                self._rollup.watch(node.name, path)
        except (OSError, TypeError, KeyError):
            pass  # observability must never take down the sweep

    def _write_fleet(self) -> None:
        if self._rollup is None or not self._rollup.names:
            return
        try:
            fleet_mod.write_fleet(
                self.config.fleet_dir,
                self._rollup.poll(draining=self._draining),
            )
        except OSError:
            pass

    # -- connection handler --------------------------------------------
    async def _on_connection(self, reader, writer) -> None:
        node: "NodeClient | None" = None
        try:
            hello = await asyncio.wait_for(read_frame(reader), timeout=10.0)
            if hello.get("type") != "hello":
                return
            if hello.get("proto") != PROTOCOL_VERSION:
                return
            name = str(hello.get("node") or f"node-{len(self.nodes) + 1}")
            previous = self.nodes.get(name)
            if previous is not None and previous.alive:
                # A reconnect under the same name supersedes the old
                # session: fence it and resubmit whatever it held.
                self._node_lost(previous, "superseded by reconnect")
            self._epoch += 1
            node = NodeClient(
                name, self._epoch, writer,
                workers=int(hello.get("workers", 1)),
            )
            node.last_heartbeat = self._clock()
            self.nodes[name] = node
            self.ring.add(name)
            self.counters["nodes_joined"] += 1
            self.runner.telemetry.record_fabric("node_joined")
            get_event_log().emit(
                "fabric.node_joined", node=name, epoch=node.epoch,
                workers=node.workers,
            )
            settings = self.runner.settings
            await self._send(node, {
                "type": "welcome",
                "node": name,
                "epoch": node.epoch,
                "heartbeat_s": self.config.heartbeat_s,
                "settings": {
                    "instructions": settings.instructions,
                    "warmup_fraction": settings.warmup_fraction,
                    "apps": list(settings.apps),
                    "kernels": list(settings.kernels),
                },
                "policy": {
                    "timeout_s": self.runner.policy.timeout_s,
                    "max_retries": self.runner.policy.max_retries,
                },
            })
            if (
                not self._started
                and len(self._alive_nodes()) >= self.config.min_nodes
            ):
                self._started = True
            self._no_nodes_since = None
            # Membership changed: cells already queued may now route to
            # the newcomer, and old members may shed part of their range
            # (their in-flight work is left to finish -- results merge
            # wherever they come from).
            await self._pump_all()
            self._check_done()
            while True:
                msg = await read_frame(reader)
                if not node.alive:
                    # Zombie session: tell it once, then hang up; its
                    # reconnect gets a fresh epoch.
                    self.counters["fenced"] += 1
                    self.runner.telemetry.record_fabric("fenced")
                    await self._send(node, {"type": "fenced"})
                    break
                kind = msg.get("type")
                if kind == "heartbeat":
                    if msg.get("epoch") != node.epoch:
                        self.counters["fenced"] += 1
                        self.runner.telemetry.record_fabric("fenced")
                        continue
                    node.last_heartbeat = self._clock()
                    self.counters["heartbeats"] += 1
                    health = msg.get("health")
                    if isinstance(health, dict):
                        node.health = health
                        self._write_node_health(node)
                elif kind == "result":
                    try:
                        self._apply_result(node, msg)
                    except (KeyError, TypeError, ValueError) as exc:
                        raise ProtocolError(
                            f"malformed result frame: {exc}"
                        ) from exc
                    await self._pump(node)
                elif kind == "drained":
                    if msg.get("epoch") == node.epoch:
                        node.drained = True
        except (ConnectionClosed, ProtocolError, asyncio.TimeoutError,
                ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            # The server is closing with this handler mid-read; absorb
            # the cancellation so teardown does not log a spurious
            # traceback (cleanup below is synchronous).
            pass
        finally:
            if node is not None and node.alive:
                if self._draining:
                    # A node hanging up after (or while) draining is an
                    # orderly exit, not a death to resubmit around.
                    node.alive = False
                    self.ring.remove(node.name)
                else:
                    self._node_lost(node, "connection lost")
                self._check_done()
            try:
                writer.close()
            except Exception:
                pass

    # -- watchdog ------------------------------------------------------
    async def _watchdog(self) -> None:
        cfg = self.config
        last_fleet = 0.0
        while True:
            await asyncio.sleep(cfg.tick_s)
            now = self._clock()
            # Heartbeat staleness -> node death.
            for node in list(self._alive_nodes()):
                if (
                    node.last_heartbeat is not None
                    and now - node.last_heartbeat > cfg.heartbeat_timeout_s
                ):
                    self._node_lost(node, "heartbeat timeout")
            # Per-assignment timeout -> resubmit (covers dropped frames).
            for assignment in list(self.in_flight.values()):
                if now - assignment.assigned_at > cfg.task_timeout_s:
                    self.counters["task_timeouts"] += 1
                    self.runner.telemetry.record_fabric("task_timeout")
                    self._requeue(assignment)
            await self._pump_all()
            # No survivors with work to do: wait out the rejoin grace,
            # then shed the remainder explicitly.
            if self.remaining and not self._alive_nodes():
                started_wait = (
                    self._no_nodes_since
                    if self._no_nodes_since is not None
                    else self._opened_at
                )
                budget = (
                    cfg.rejoin_grace_s if self._started else cfg.join_timeout_s
                )
                if now - started_wait > budget:
                    for cell in sorted(
                        self.remaining, key=lambda c: self._order.get(c, 0)
                    ):
                        self._shed_cell(
                            cell, "no live fabric nodes before the grace "
                            "deadline",
                        )
                        self.remaining.discard(cell)
                    self.remaining.clear()
                    self._started = True
                    self._check_done()
            if now - last_fleet >= max(cfg.heartbeat_s, cfg.tick_s):
                last_fleet = now
                self._write_fleet()
            self._check_done()

    async def _drain(self) -> None:
        """Fleet-wide graceful drain: every node flushes its checkpoint."""
        self._draining = True
        get_event_log().emit(
            "fabric.drain", nodes=len(self._alive_nodes()),
            remaining=len(self.remaining),
        )
        for node in list(self._alive_nodes()):
            node.draining = True
            await self._send(node, {"type": "drain", "epoch": node.epoch})
        deadline = self._clock() + self.config.drain_deadline_s
        while self._clock() < deadline:
            waiting = [
                n for n in self._alive_nodes() if not n.drained
            ]
            if not waiting:
                break
            await asyncio.sleep(self.config.tick_s)
        for cell in sorted(
            self.remaining, key=lambda c: self._order.get(c, 0)
        ):
            if cell not in self.done:
                self._shed_cell(cell, "fleet drain before completion")
        self.remaining.clear()
        if self._done_event is not None:
            self._done_event.set()

    async def _drain_on_request(self) -> None:
        await self._drain_event.wait()
        await self._drain()

    # -- main entry ----------------------------------------------------
    async def serve(self) -> dict:
        """Run the sweep to completion (or drain); returns a summary."""
        self._loop = asyncio.get_running_loop()
        self._done_event = asyncio.Event()
        self._drain_event = asyncio.Event()
        if self._drain_requested:
            self._drain_event.set()
        self._opened_at = self._clock()

        # Cells already satisfied by the runner's caches (a resumed
        # checkpoint) or by the durable result store are cache hits,
        # exactly as in a local sweep; the rest must be validated
        # before they travel.
        for cell in self.cells:
            run_kind, config_name, workload = cell[0], cell[1], cell[2]
            key = (config_name, workload, *cell[3:])
            cached = self.runner.lookup_cached(run_kind, key)
            if cached is not None:
                self.runner.telemetry.record_run(
                    run_kind, config_name, workload, 0.0,
                    self.runner._instructions_of(run_kind, cached),
                    cached=True,
                )
                self.done.add(cell)
                continue
            try:
                self.runner._validated(run_kind, config_name, workload)
            except KeyError:
                continue  # recorded as a config/workload gap
            self.remaining.add(cell)
            self.pending.append(cell)
        self._sort_pending()

        server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        self.port = server.sockets[0].getsockname()[1]
        get_event_log().emit(
            "fabric.listening", host=self.config.host, port=self.port,
            cells=len(self.remaining),
        )
        watchdog = asyncio.ensure_future(self._watchdog())
        drainer = asyncio.ensure_future(self._drain_on_request())
        try:
            self._check_done()
            await self._done_event.wait()
        finally:
            watchdog.cancel()
            drainer.cancel()
            for node in list(self._alive_nodes()):
                await self._send(node, {"type": "bye"})
                node.alive = False
            self._write_fleet()
            server.close()
            try:
                await server.wait_closed()
            except Exception:
                pass
            self.runner.save_checkpoint()
        return self.summary()

    def summary(self) -> dict:
        return {
            "counters": dict(self.counters),
            "nodes": {
                name: node.snapshot() for name, node in self.nodes.items()
            },
            "cells": len(self.cells),
            "completed": len(self.done),
            "gaps": len(self.runner.failures),
        }
