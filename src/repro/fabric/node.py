"""A fabric worker node: the existing job service behind a socket.

One node is one :class:`~repro.serve.service.SimService` (bounded
queue, circuit breakers, process pool, graceful drain) fronted by a
single-threaded protocol loop: receive ``assign`` frames, submit them
as jobs, watch the job records, and stream every terminal outcome back
as a ``result`` frame.  Heartbeats carrying the service's health
snapshot go out on the cadence the coordinator dictated in ``welcome``.

The loop is deliberately single-threaded (the service's dispatcher
threads do the actual work): receive with a short timeout, then do the
housekeeping -- job watching, heartbeat, result retry -- so there is no
cross-thread state beyond the service's own locks.

Reconnection: a lost connection (or a ``fenced`` notice from the
coordinator after a zombie episode) tears down the session but not the
service; the node reconnects with seeded exponential backoff, is
re-fenced under a fresh epoch, and re-sends any results the old session
never delivered -- the coordinator's ``done`` set makes the re-send
idempotent.  Results computed under the old epoch are re-stamped with
the new one at send time: they are real results from this same process,
not zombie echoes (the zombie case is a session the *coordinator*
declared dead, and it fences those by refusing the old epoch).

Drain: a ``drain`` frame runs the service's graceful shutdown (flushes
the runner checkpoint, records gaps for anything unfinished), sends the
remaining buffered results, acks ``drained``, and exits.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from dataclasses import dataclass

from repro.experiments.runner import SweepRunner, SweepSettings
from repro.fabric.protocol import (
    PROTOCOL_VERSION,
    ConnectionClosed,
    FrameSocket,
    ProtocolError,
)
from repro.obs.events import get_event_log
from repro.resilience import faults
from repro.resilience.checkpoint import _CODECS
from repro.resilience.errors import RunFailure
from repro.resilience.guard import GuardPolicy, stable_seed
from repro.serve.queue import Job
from repro.serve.service import TERMINAL_STATES, ServiceConfig, SimService


@dataclass
class NodeConfig:
    """Shape of one fabric node."""

    host: str = "127.0.0.1"
    port: int = 7077
    #: Stable node identity (ring placement + fleet files); defaults to
    #: ``node-<pid>``.
    name: "str | None" = None
    workers: int = 1
    isolation: str = "thread"
    queue_capacity: int = 256
    checkpoint: "str | None" = None
    resume: bool = False
    #: Durable result-store root (optional; ``REPRO_STORE`` otherwise).
    store: "str | None" = None
    #: Local health file (optional; the coordinator also republishes
    #: heartbeat snapshots into its fleet directory).
    health_file: "str | None" = None
    connect_timeout_s: float = 5.0
    #: Reconnect backoff: base * 2^attempt, capped, with seeded jitter.
    backoff_base_s: float = 0.2
    backoff_max_s: float = 5.0
    #: Protocol-loop receive quantum.
    poll_s: float = 0.05
    #: Fallback heartbeat cadence until ``welcome`` overrides it.
    heartbeat_s: float = 0.5


class FabricNode:
    """Connect to a coordinator and serve assigned cells until ``bye``."""

    def __init__(self, config: "NodeConfig | None" = None):
        self.config = config or NodeConfig()
        self.name = self.config.name or f"node-{os.getpid()}"
        self._stop = threading.Event()
        self._service: "SimService | None" = None
        self._fingerprint: "str | None" = None
        self._epoch: "int | None" = None
        self._transport: "FrameSocket | None" = None
        #: task_id -> {"job_id", "cell"} for assignments awaiting a
        #: terminal job state.
        self._outstanding: "dict[str, dict]" = {}
        #: Result messages built but not yet (confirmably) sent; re-sent
        #: after a reconnect under the new epoch.
        self._unsent: "list[dict]" = []
        self._hb_seq = 0
        self._last_hb = float("-inf")
        self.counters = {
            "connects": 0,
            "reconnects": 0,
            "assigned": 0,
            "results_sent": 0,
            "duplicate_assigns": 0,
            "heartbeats": 0,
            "fenced": 0,
        }

    # -- lifecycle ------------------------------------------------------
    def request_shutdown(self) -> None:
        """Stop after the current protocol iteration (signal-safe)."""
        self._stop.set()

    def _ensure_service(self, settings_doc: dict, policy_doc: dict) -> None:
        """(Re)build the runner + service for the coordinator's sweep."""
        settings = SweepSettings(
            instructions=int(settings_doc["instructions"]),
            warmup_fraction=float(settings_doc["warmup_fraction"]),
            apps=list(settings_doc["apps"]),
            kernels=list(settings_doc["kernels"]),
        )
        fingerprint = settings.fingerprint()
        if self._service is not None and self._fingerprint == fingerprint:
            return
        if self._service is not None:
            self._service.shutdown(drain_deadline_s=1.0)
        runner = SweepRunner(
            settings,
            policy=GuardPolicy(
                timeout_s=policy_doc.get("timeout_s"),
                max_retries=int(policy_doc.get("max_retries", 0)),
            ),
            checkpoint=self.config.checkpoint,
            resume=self.config.resume and self.config.checkpoint is not None,
            store=self.config.store,
        )
        self._service = SimService(
            runner,
            ServiceConfig(
                capacity=self.config.queue_capacity,
                workers=self.config.workers,
                isolation=self.config.isolation,
                health_file=self.config.health_file,
            ),
        ).start()
        self._fingerprint = fingerprint
        self._outstanding.clear()

    # -- outbound ------------------------------------------------------
    def _send(self, message: dict) -> None:
        self._transport.send(message)

    def _queue_result(self, message: dict) -> None:
        """Buffer a terminal result and try to deliver it now."""
        self._unsent.append(message)
        self._flush_results()

    def _flush_results(self) -> None:
        while self._unsent:
            message = dict(self._unsent[0])
            message["epoch"] = self._epoch
            self._send(message)
            # sendall() returned: the frame is on the wire (or the
            # injector dropped it, which the coordinator's task timeout
            # covers).  Either way this copy is spent.
            self._unsent.pop(0)
            self.counters["results_sent"] += 1

    def _heartbeat(self, force: bool = False) -> None:
        now = time.monotonic()
        if not force and now - self._last_hb < self.config.heartbeat_s:
            return
        self._last_hb = now
        self._hb_seq += 1
        snapshot = self._service.health_snapshot().to_dict()
        # The heartbeat sequence is the liveness marker the fleet
        # watcher tracks; the service only bumps its own seq when it
        # writes a local health file, so stamp ours instead.
        snapshot["seq"] = self._hb_seq
        self._send({
            "type": "heartbeat",
            "epoch": self._epoch,
            "seq": self._hb_seq,
            "health": snapshot,
            "in_flight": len(self._outstanding),
        })
        self.counters["heartbeats"] += 1

    # -- inbound -------------------------------------------------------
    def _handle_assign(self, msg: dict) -> None:
        task_id = str(msg["task_id"])
        if task_id in self._outstanding:
            self.counters["duplicate_assigns"] += 1
            return  # duplicated frame; one execution is plenty
        extra = tuple(msg.get("extra", ()))
        job = Job(
            job_id=f"{task_id}-a{msg.get('attempt', 1)}",
            run_kind=str(msg["run_kind"]),
            config=str(msg["config"]),
            workload=str(msg["workload"]),
            extra=extra,
        )
        self.counters["assigned"] += 1
        job_id, admission = self._service.submit(job)
        if not admission.admitted:
            # Shed at admission: report it immediately as a shed result
            # so the coordinator can reroute without a task timeout.
            self._queue_result(self._result_message(
                task_id, msg, ok=False,
                failure=RunFailure(
                    run_kind=job.run_kind,
                    config=job.config,
                    workload=job.workload,
                    kind="shed",
                    attempts=0,
                    message=f"{admission.reason}: {admission.detail}",
                    extra=extra,
                ),
            ))
            return
        self._outstanding[task_id] = {"job_id": job_id, "spec": msg}

    @staticmethod
    def _result_message(
        task_id: str, spec: dict, *, ok: bool,
        result: "dict | None" = None,
        failure: "RunFailure | None" = None,
        wall_s: float = 0.0,
    ) -> dict:
        return {
            "type": "result",
            "task_id": task_id,
            "run_kind": spec["run_kind"],
            "config": spec["config"],
            "workload": spec["workload"],
            "extra": list(spec.get("extra", ())),
            "ok": ok,
            "result": result,
            "failure": failure.to_dict() if failure is not None else None,
            "wall_s": wall_s,
        }

    def _watch_jobs(self) -> None:
        """Turn terminal job records into result frames."""
        for task_id, info in list(self._outstanding.items()):
            record = self._service.poll(info["job_id"])
            if record is None or record.status not in TERMINAL_STATES:
                continue
            spec = info["spec"]
            run_kind = spec["run_kind"]
            extra = tuple(spec.get("extra", ()))
            key = (spec["config"], spec["workload"], *extra)
            cached = self._service.runner._cache_for(run_kind).get(key)
            if record.status == "served" and cached is not None:
                encode, _ = _CODECS[run_kind]
                message = self._result_message(
                    task_id, spec, ok=True, result=encode(cached)
                )
            else:
                failure = record.failure
                if failure is None:
                    failure = RunFailure(
                        run_kind=run_kind,
                        config=spec["config"],
                        workload=spec["workload"],
                        kind="shed",
                        attempts=0,
                        message=f"job ended {record.status} without a "
                                f"recorded failure",
                        extra=extra,
                    )
                message = self._result_message(
                    task_id, spec, ok=False, failure=failure
                )
            self._outstanding.pop(task_id, None)
            self._queue_result(message)

    def _handle_drain(self) -> dict:
        """Graceful drain: flush everything, ack, and stop.

        The stop flag is set *before* the final sends: if the link dies
        mid-ack the node still exits (the coordinator's drain deadline
        sheds whatever the lost frames carried).
        """
        summary = self._service.shutdown()
        self._stop.set()
        self._watch_jobs()
        self._flush_results()
        self._send({"type": "drained", "epoch": self._epoch})
        return summary

    # -- session + reconnect loop --------------------------------------
    def _backoff_s(self, attempt: int) -> float:
        base = min(
            self.config.backoff_base_s * (2 ** attempt),
            self.config.backoff_max_s,
        )
        jitter = stable_seed(self.name, "backoff", attempt) % 1000 / 1000.0
        return base * (1.0 + 0.25 * jitter)

    def _connect(self) -> FrameSocket:
        sock = socket.create_connection(
            (self.config.host, self.config.port),
            timeout=self.config.connect_timeout_s,
        )
        sock.settimeout(None)
        return FrameSocket(
            sock,
            site=f"{self.name}->coordinator",
            injector=faults.active_network(),
        )

    def _session(self, transport: FrameSocket) -> None:
        """One connected session: handshake, then the protocol loop."""
        self._transport = transport
        transport.send({
            "type": "hello",
            "node": self.name,
            "pid": os.getpid(),
            "proto": PROTOCOL_VERSION,
            "workers": self.config.workers,
        })
        welcome = None
        deadline = time.monotonic() + 10.0
        while welcome is None and time.monotonic() < deadline:
            welcome = transport.recv(timeout=1.0)
        if welcome is None or welcome.get("type") != "welcome":
            raise ConnectionClosed("no welcome from coordinator")
        self._epoch = int(welcome["epoch"])
        self.config.heartbeat_s = float(
            welcome.get("heartbeat_s", self.config.heartbeat_s)
        )
        self._ensure_service(welcome["settings"], welcome.get("policy", {}))
        get_event_log().emit(
            "fabric.session", node=self.name, epoch=self._epoch,
        )
        # Anything the previous session left undelivered goes out first,
        # stamped with the new epoch (the coordinator dedupes).
        self._flush_results()
        self._heartbeat(force=True)
        while not self._stop.is_set():
            msg = transport.recv(timeout=self.config.poll_s)
            if msg is not None:
                kind = msg.get("type")
                if kind == "assign":
                    self._handle_assign(msg)
                elif kind == "drain":
                    self._handle_drain()
                    return
                elif kind == "fenced":
                    # The coordinator declared this session dead; any
                    # in-flight work keeps running and will be re-sent
                    # (and deduped) under the next epoch.
                    self.counters["fenced"] += 1
                    raise ConnectionClosed("session fenced by coordinator")
                elif kind == "bye":
                    self._stop.set()
                    return
            self._watch_jobs()
            self._flush_results()
            self._heartbeat()

    def run(self) -> dict:
        """Serve until ``bye``/``drain``/shutdown; returns a summary."""
        attempt = 0
        try:
            while not self._stop.is_set():
                try:
                    transport = self._connect()
                except OSError:
                    self._stop.wait(self._backoff_s(attempt))
                    attempt = min(attempt + 1, 16)
                    continue
                if self.counters["connects"]:
                    self.counters["reconnects"] += 1
                self.counters["connects"] += 1
                try:
                    self._session(transport)
                    attempt = 0
                except (ConnectionClosed, ProtocolError, OSError):
                    # Lost the coordinator: back off and rejoin; the
                    # service keeps finishing whatever it already holds.
                    self._stop.wait(self._backoff_s(attempt))
                    attempt = min(attempt + 1, 16)
                finally:
                    transport.close()
                    self._transport = None
        finally:
            if self._service is not None and not self._service._finished:
                self._service.shutdown(drain_deadline_s=2.0)
        return self.summary()

    def summary(self) -> dict:
        doc = {
            "node": self.name,
            "counters": dict(self.counters),
            "epoch": self._epoch,
        }
        if self._service is not None:
            doc["service"] = self._service.counters
        return doc
