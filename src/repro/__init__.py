"""HetCore reproduction: TFET-CMOS hetero-device CPUs and GPUs (ISCA 2018).

A from-scratch Python implementation of the systems behind Gopireddy,
Skarlatos, Zhu, and Torrellas, *HetCore: TFET-CMOS Hetero-Device
Architecture for CPUs and GPUs*:

* device-technology models for Si-CMOS and HetJTFET (and the InAs-CMOS /
  HomJTFET points of Table I), including I-V curves, Vdd-frequency curves,
  dual-Vt leakage, multi-Vdd overheads, and process-variation guardbands
  (:mod:`repro.devices`);
* a trace-driven, cycle-level out-of-order CPU simulator with tournament
  branch prediction, ROB/IQ/LSQ, per-device functional-unit latencies, the
  dual-speed ALU cluster, and a full cache hierarchy including the AdvHet
  asymmetric DL1 (:mod:`repro.cpu`, :mod:`repro.mem`);
* a wavefront-level Southern-Islands-like GPU compute-unit simulator with
  the AdvHet register-file cache (:mod:`repro.gpu`);
* McPAT/GPUWattch-class analytic power models with the paper's
  conservative TFET factors (:mod:`repro.power`);
* synthetic workload profiles for SPLASH-2 + PARSEC and AMD-SDK-APP
  (:mod:`repro.workloads`);
* the HetCore architecture layer -- the Table IV configurations, DVFS,
  and fixed-power-budget analysis (:mod:`repro.core`);
* a harness regenerating every table and figure of the evaluation
  (:mod:`repro.experiments`).

Quick start::

    from repro import simulate_cpu, cpu_config
    result = simulate_cpu(cpu_config("AdvHet"), "barnes")
    print(result.time_s, result.energy_j, result.ed2)
"""

from repro.core import (
    CPU_CONFIGS,
    GPU_CONFIGS,
    CpuDesign,
    CpuRunResult,
    GpuDesign,
    GpuRunResult,
    HetCoreDvfs,
    PowerBudgetAnalysis,
    cpu_config,
    gpu_config,
    simulate_cpu,
    simulate_gpu,
)
from repro.workloads import CPU_APPS, GPU_KERNELS, cpu_app, gpu_kernel

__version__ = "1.0.0"

__all__ = [
    "CPU_CONFIGS",
    "GPU_CONFIGS",
    "CpuDesign",
    "GpuDesign",
    "CpuRunResult",
    "GpuRunResult",
    "HetCoreDvfs",
    "PowerBudgetAnalysis",
    "cpu_config",
    "gpu_config",
    "simulate_cpu",
    "simulate_gpu",
    "CPU_APPS",
    "GPU_KERNELS",
    "cpu_app",
    "gpu_kernel",
    "__version__",
]
