"""Analytic power/energy models standing in for McPAT and GPUWattch.

The paper obtains per-unit power numbers from McPAT (HP process, CPU) and
GPUWattch (GPU) and then applies its device factors: TFET units consume 4x
less dynamic energy per operation (the conservative factor of Section V-B)
and 10x less leakage than the dual-Vt CMOS baseline (Section VI).  This
package reproduces that role:

* :mod:`repro.power.unitdb` -- per-unit nominal per-access dynamic energies
  and leakage powers (CMOS at 0.73 V / 2 GHz), McPAT/GPUWattch-class values.
* :mod:`repro.power.model` -- energy accounting: activity counts x per-op
  energy x device/voltage scaling, plus leakage x time, grouped core/L2/L3
  the way Figure 8 reports it.
* :mod:`repro.power.metrics` -- energy, ED, ED^2, and figure-style
  normalisation helpers.
"""

from repro.power.unitdb import (
    CPU_UNIT_DB,
    GPU_UNIT_DB,
    UnitPower,
    CONSERVATIVE_TFET_DYNAMIC_FACTOR,
    CONSERVATIVE_TFET_LEAKAGE_FACTOR,
)
from repro.power.model import (
    DeviceKind,
    EnergyBreakdown,
    cpu_energy,
    gpu_energy,
)
from repro.power.metrics import (
    ed_product,
    ed2_product,
    geometric_mean,
    normalize_to,
)

__all__ = [
    "CPU_UNIT_DB",
    "GPU_UNIT_DB",
    "UnitPower",
    "CONSERVATIVE_TFET_DYNAMIC_FACTOR",
    "CONSERVATIVE_TFET_LEAKAGE_FACTOR",
    "DeviceKind",
    "EnergyBreakdown",
    "cpu_energy",
    "gpu_energy",
    "ed_product",
    "ed2_product",
    "geometric_mean",
    "normalize_to",
]
