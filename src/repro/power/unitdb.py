"""Per-unit nominal energies and leakage powers (McPAT/GPUWattch-class).

Values are for the Si-CMOS implementation at its 0.73 V / 2 GHz (CPU) or
1 GHz (GPU) operating point.  Dynamic energies are per *event* (an access,
an op, a lookup); leakage powers are per unit instance.  The baseline CMOS
design already uses the commercial dual-Vt mix (60% high-Vt in core logic,
all-high-Vt caches), so these leakage numbers are the realistic ones the
paper normalises against -- TFET's conservative advantage is a further 10x
below them.

Absolute values are McPAT-class estimates at a 22/15 nm HP process; as with
the paper itself, the evaluation only consumes *relative* energies across
configurations, which depend on the unit shares rather than the absolute
scale.  The shares are calibrated so the all-CMOS CPU core splits roughly
evenly between dynamic and leakage energy at IPC ~1 -- the operating point
implied by the paper's BaseTFET result (-76% energy, which requires
dynamic ~/4 and leakage ~/5 contributions to average to ~3/4 savings).
"""

from __future__ import annotations

from dataclasses import dataclass

#: The evaluation's conservative device factors (Sections V-B and VI).
CONSERVATIVE_TFET_DYNAMIC_FACTOR = 4.0
CONSERVATIVE_TFET_LEAKAGE_FACTOR = 10.0

#: An all-high-Vt FPU/ALU leaks 10x less than in BaseCMOS (Section VI-A).
#: BaseHighVt still loses because these units are a small share of total
#: leakage (the caches dominate), so the saved leakage does not compensate
#: for the longer execution's leakage everywhere else (Section VII-C).
HIGHVT_LEAKAGE_FACTOR = 10.0

#: An all-TFET core at its native operating point keeps the full ~8x
#: dynamic-power = ~4x energy-per-op advantage without HetCore's multi-Vdd
#: overheads, but runs at half frequency (Section VI: "BaseTFET ...
#: consumes 8x less dynamic power than BaseCMOS").
NATIVE_TFET_DYNAMIC_FACTOR = 3.92  # Table I: 170.1 fJ / 43.4 fJ


@dataclass(frozen=True)
class UnitPower:
    """Nominal CMOS power numbers for one micro-architectural unit."""

    name: str
    #: Energy per event in picojoules.
    dynamic_pj: float
    #: Leakage power in milliwatts (dual-Vt baseline).
    leakage_mw: float
    #: Reporting group: "core", "l2", or "l3" (Figure 8's breakdown).
    group: str = "core"

    def __post_init__(self) -> None:
        if self.dynamic_pj < 0 or self.leakage_mw < 0:
            raise ValueError(f"{self.name}: power values cannot be negative")


#: CPU units.  Event meanings: frontend/decode/rename/rob/iq are per
#: dispatched uop; regfile entries are per read/write port use; function
#: units per executed op; caches per access.
CPU_UNIT_DB: dict[str, UnitPower] = {
    u.name: u
    for u in [
        UnitPower("fetch", dynamic_pj=100.0, leakage_mw=35.0),
        UnitPower("decode_rename", dynamic_pj=110.0, leakage_mw=28.0),
        UnitPower("bpred", dynamic_pj=20.0, leakage_mw=10.0),
        UnitPower("rob", dynamic_pj=60.0, leakage_mw=33.0),
        UnitPower("iq", dynamic_pj=70.0, leakage_mw=38.0),
        UnitPower("int_rf_read", dynamic_pj=36.0, leakage_mw=30.0),
        UnitPower("int_rf_write", dynamic_pj=48.0, leakage_mw=0.0),
        UnitPower("fp_rf_read", dynamic_pj=60.0, leakage_mw=38.0),
        UnitPower("fp_rf_write", dynamic_pj=72.0, leakage_mw=0.0),
        UnitPower("alu", dynamic_pj=150.0, leakage_mw=55.0),
        UnitPower("muldiv", dynamic_pj=300.0, leakage_mw=18.0),
        UnitPower("fpu", dynamic_pj=520.0, leakage_mw=69.0),
        UnitPower("lsu", dynamic_pj=66.0, leakage_mw=23.0),
        UnitPower("bypass_clock", dynamic_pj=120.0, leakage_mw=88.0),
        UnitPower("il1", dynamic_pj=144.0, leakage_mw=44.0),
        UnitPower("dl1", dynamic_pj=200.0, leakage_mw=50.0),
        UnitPower("dl1_fast", dynamic_pj=20.0, leakage_mw=8.0),
        UnitPower("dl1_move", dynamic_pj=60.0, leakage_mw=0.0),
        UnitPower("l2", dynamic_pj=450.0, leakage_mw=150.0, group="l2"),
        UnitPower("l3", dynamic_pj=1300.0, leakage_mw=525.0, group="l3"),
    ]
}

#: GPU units, per compute unit.  Vector events are per wavefront
#: instruction (64 threads wide), which is why they dwarf the CPU numbers.
GPU_UNIT_DB: dict[str, UnitPower] = {
    u.name: u
    for u in [
        UnitPower("gpu_frontend", dynamic_pj=100.0, leakage_mw=40.0),
        UnitPower("simd_fma", dynamic_pj=210.0, leakage_mw=180.0),
        UnitPower("vector_rf_read", dynamic_pj=70.0, leakage_mw=110.0),
        UnitPower("vector_rf_write", dynamic_pj=85.0, leakage_mw=0.0),
        UnitPower("rf_cache_read", dynamic_pj=6.0, leakage_mw=4.0),
        UnitPower("rf_cache_write", dynamic_pj=8.0, leakage_mw=0.0),
        UnitPower("lds_mem", dynamic_pj=640.0, leakage_mw=100.0),
        UnitPower("gpu_other", dynamic_pj=85.0, leakage_mw=160.0),
    ]
}


def total_cpu_leakage_mw() -> float:
    """Aggregate nominal CPU leakage (one core + its cache slices)."""
    return sum(u.leakage_mw for u in CPU_UNIT_DB.values())


def total_gpu_cu_leakage_mw() -> float:
    """Aggregate nominal per-CU leakage."""
    return sum(u.leakage_mw for u in GPU_UNIT_DB.values())
