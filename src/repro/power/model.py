"""Energy accounting for CPU cores and GPU compute units.

``energy = sum(events_u * E_u * device_scale_u * voltage_scale) +
           sum(P_leak_u * device_scale_u * voltage_scale) * time``

Device scaling follows the paper's conservative factors: a TFET unit
consumes 4x less dynamic energy per event and 10x less leakage than the
dual-Vt CMOS baseline; an all-high-Vt CMOS unit keeps CMOS dynamic energy
and leaks ~4.2x less than the dual-Vt baseline (Section VII-C's
BaseHighVt).  Voltage
multipliers (from DVFS or process-variation guardbands) apply on top, per
device family.

Results are grouped core / L2 / L3, matching Figure 8's breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.cpu.core import ActivityCounts
from repro.gpu.cu import CUResult
from repro.power.unitdb import (
    CPU_UNIT_DB,
    GPU_UNIT_DB,
    CONSERVATIVE_TFET_DYNAMIC_FACTOR,
    CONSERVATIVE_TFET_LEAKAGE_FACTOR,
    HIGHVT_LEAKAGE_FACTOR,
    NATIVE_TFET_DYNAMIC_FACTOR,
)


class DeviceKind(str, Enum):
    """Implementation device of a unit."""

    CMOS = "cmos"
    TFET = "tfet"
    HIGHVT = "highvt"
    #: TFET at its native operating point (all-TFET cores, no multi-Vdd
    #: overheads): full ~4x energy-per-op advantage per Table I.
    TFET_NATIVE = "tfet-native"


@dataclass
class ScalingKnobs:
    """Multipliers applied during accounting."""

    #: Dynamic-energy multipliers per device family (DVFS / guardbands).
    cmos_energy: float = 1.0
    tfet_energy: float = 1.0
    #: Leakage-power multipliers per device family.
    cmos_leakage: float = 1.0
    tfet_leakage: float = 1.0
    #: Size scaling of the enlarged structures (Table IV's AdvHet).
    rob_scale: float = 1.0
    fp_rf_scale: float = 1.0
    #: Dynamic energy is multiplied by this (total work / measured work).
    work_scale: float = 1.0
    #: Leakage is multiplied by this (core or CU count).
    leakage_instances: float = 1.0


@dataclass
class EnergyBreakdown:
    """Joules by group and kind."""

    dynamic_j: dict = field(default_factory=dict)
    leakage_j: dict = field(default_factory=dict)

    def add_dynamic(self, group: str, joules: float) -> None:
        self.dynamic_j[group] = self.dynamic_j.get(group, 0.0) + joules

    def add_leakage(self, group: str, joules: float) -> None:
        self.leakage_j[group] = self.leakage_j.get(group, 0.0) + joules

    @property
    def total_dynamic(self) -> float:
        return sum(self.dynamic_j.values())

    @property
    def total_leakage(self) -> float:
        return sum(self.leakage_j.values())

    @property
    def total(self) -> float:
        return self.total_dynamic + self.total_leakage

    def group_total(self, group: str) -> float:
        return self.dynamic_j.get(group, 0.0) + self.leakage_j.get(group, 0.0)


def _dynamic_scale(device: DeviceKind, knobs: ScalingKnobs) -> float:
    if device == DeviceKind.TFET:
        return knobs.tfet_energy / CONSERVATIVE_TFET_DYNAMIC_FACTOR
    if device == DeviceKind.TFET_NATIVE:
        return knobs.tfet_energy / NATIVE_TFET_DYNAMIC_FACTOR
    return knobs.cmos_energy  # CMOS and high-Vt: same dynamic energy


def _leakage_scale(device: DeviceKind, knobs: ScalingKnobs) -> float:
    if device in (DeviceKind.TFET, DeviceKind.TFET_NATIVE):
        return knobs.tfet_leakage / CONSERVATIVE_TFET_LEAKAGE_FACTOR
    if device == DeviceKind.HIGHVT:
        # Relative to the dual-Vt baseline, going all-high-Vt only buys
        # ~4.2x (the baseline is already 60% high-Vt) -- Section VII-C.
        return knobs.cmos_leakage / HIGHVT_LEAKAGE_FACTOR
    return knobs.cmos_leakage


def cpu_energy(
    activity: ActivityCounts,
    time_s: float,
    device_map: dict[str, DeviceKind] | None = None,
    asym_dl1: bool = False,
    knobs: ScalingKnobs | None = None,
) -> EnergyBreakdown:
    """Energy of one CPU run.

    ``device_map`` assigns devices to the configurable units (``alu``,
    ``muldiv``, ``fpu``, ``dl1``, ``l2``, ``l3``); unlisted units are CMOS.
    With ``asym_dl1`` the DL1 activity splits into CMOS fast-way hits,
    TFET slow-path accesses, and inter-partition line moves.
    """
    devices = device_map or {}
    knobs = knobs or ScalingKnobs()
    out = EnergyBreakdown()
    db = CPU_UNIT_DB

    def device_of(unit: str) -> DeviceKind:
        return devices.get(unit, DeviceKind.CMOS)

    def charge(unit: str, events: float, device: DeviceKind, size_scale: float = 1.0):
        u = db[unit]
        joules = events * u.dynamic_pj * 1e-12 * size_scale
        out.add_dynamic(u.group, joules * _dynamic_scale(device, knobs) * knobs.work_scale)

    others = device_of("others")
    a = activity
    charge("fetch", a.fetched, others)
    charge("decode_rename", a.dispatched, others)
    charge("bpred", a.bpred_lookups, others)
    charge("rob", a.dispatched, others, knobs.rob_scale)
    charge("iq", a.dispatched + a.issued, others)
    charge("int_rf_read", a.int_reg_reads, others)
    charge("int_rf_write", a.int_reg_writes, others)
    charge("fp_rf_read", a.fp_reg_reads, others, knobs.fp_rf_scale)
    charge("fp_rf_write", a.fp_reg_writes, others, knobs.fp_rf_scale)
    # Dual-speed cluster: ops on the fast ALU burn CMOS energy.
    charge("alu", a.alu_fast_ops, DeviceKind.CMOS)
    charge("alu", a.alu_slow_ops, device_of("alu"))
    charge("muldiv", a.muldiv_ops, device_of("muldiv"))
    charge("fpu", a.fpu_ops, device_of("fpu"))
    charge("lsu", a.lsu_ops, others)
    charge("bypass_clock", a.issued, others)
    charge("il1", a.il1_accesses, others)
    if asym_dl1:
        charge("dl1_fast", a.dl1_accesses, DeviceKind.CMOS)  # every probe
        charge("dl1", a.dl1_slow_accesses, device_of("dl1"))
        charge("dl1_move", a.dl1_line_moves, device_of("dl1"))
    else:
        charge("dl1", a.dl1_accesses, device_of("dl1"))
    charge("l2", a.l2_accesses, device_of("l2"))
    charge("l3", a.l3_accesses, device_of("l3"))

    # ---- leakage ----
    fixed_cmos = [
        "fetch", "decode_rename", "bpred", "iq",
        "int_rf_read", "fp_rf_read", "lsu", "bypass_clock", "il1",
    ]
    for unit in fixed_cmos:
        scale = knobs.fp_rf_scale if unit == "fp_rf_read" else 1.0
        _leak(out, db[unit], others, time_s, knobs, scale)
    _leak(out, db["rob"], others, time_s, knobs, knobs.rob_scale)
    _leak(out, db["alu"], device_of("alu"), time_s, knobs,
          extra=_split_alu_leakage(a, device_of("alu"), knobs))
    _leak(out, db["muldiv"], device_of("muldiv"), time_s, knobs)
    _leak(out, db["fpu"], device_of("fpu"), time_s, knobs)
    if asym_dl1:
        _leak(out, db["dl1_fast"], DeviceKind.CMOS, time_s, knobs)
        _leak(out, db["dl1"], device_of("dl1"), time_s, knobs, 7.0 / 8.0)
    else:
        _leak(out, db["dl1"], device_of("dl1"), time_s, knobs)
    _leak(out, db["l2"], device_of("l2"), time_s, knobs)
    _leak(out, db["l3"], device_of("l3"), time_s, knobs)
    return out


def _split_alu_leakage(
    activity: ActivityCounts, alu_device: DeviceKind, knobs: ScalingKnobs
) -> float | None:
    """Leakage multiplier for a dual-speed ALU cluster (1 CMOS + 3 TFET).

    Returns None for homogeneous clusters (handled by the normal path).
    """
    if alu_device == DeviceKind.CMOS or activity.alu_fast_ops == 0:
        return None
    cmos_share = 0.25 * _leakage_scale(DeviceKind.CMOS, knobs)
    slow_share = 0.75 * _leakage_scale(alu_device, knobs)
    # Express as a multiplier relative to the device path applied later.
    return (cmos_share + slow_share) / _leakage_scale(alu_device, knobs)


def _leak(
    out: EnergyBreakdown,
    unit,
    device: DeviceKind,
    time_s: float,
    knobs: ScalingKnobs,
    size_scale: float = 1.0,
    extra: float | None = None,
) -> None:
    joules = unit.leakage_mw * 1e-3 * time_s * size_scale
    joules *= _leakage_scale(device, knobs)
    if extra is not None:
        joules *= extra
    out.add_leakage(unit.group, joules * knobs.leakage_instances)


def gpu_energy(
    cu: CUResult,
    time_s: float,
    device_map: dict[str, DeviceKind] | None = None,
    rf_cache_enabled: bool = False,
    knobs: ScalingKnobs | None = None,
) -> EnergyBreakdown:
    """Energy of one GPU run (per-CU activity scaled by work/instances).

    ``device_map`` assigns devices to ``fma`` and ``rf``; the register-file
    cache and everything else stay CMOS.
    """
    devices = device_map or {}
    knobs = knobs or ScalingKnobs()
    out = EnergyBreakdown()
    db = GPU_UNIT_DB

    def device_of(unit: str) -> DeviceKind:
        return devices.get(unit, DeviceKind.CMOS)

    def charge(unit: str, events: float, device: DeviceKind):
        u = db[unit]
        joules = events * u.dynamic_pj * 1e-12
        out.add_dynamic(u.group, joules * _dynamic_scale(device, knobs) * knobs.work_scale)

    others = device_of("others")
    charge("gpu_frontend", cu.instructions, others)
    charge("simd_fma", cu.fma_ops, device_of("fma"))
    charge("vector_rf_read", cu.rf_reads, device_of("rf"))
    charge("vector_rf_write", cu.rf_writes, device_of("rf"))
    if rf_cache_enabled:
        charge("rf_cache_read", cu.rf_cache_read_hits + cu.rf_cache_read_misses,
               DeviceKind.CMOS)
        charge("rf_cache_write", cu.rf_cache_writes, DeviceKind.CMOS)
    charge("lds_mem", cu.mem_ops, others)
    charge("gpu_other", cu.instructions, others)

    for unit_name in ("gpu_frontend", "lds_mem", "gpu_other"):
        _leak(out, db[unit_name], others, time_s, knobs)
    _leak(out, db["simd_fma"], device_of("fma"), time_s, knobs)
    _leak(out, db["vector_rf_read"], device_of("rf"), time_s, knobs)
    if rf_cache_enabled:
        _leak(out, db["rf_cache_read"], DeviceKind.CMOS, time_s, knobs)
    return out
