"""Evaluation metrics: energy, ED, ED^2, and figure-style aggregation.

The paper compares configurations by execution time, energy, energy-delay
product (ED), and energy-delay-squared (ED^2), normalised per application
to BaseCMOS, with a final arithmetic-mean bar.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping


def ed_product(energy_j: float, time_s: float) -> float:
    """Energy-delay product."""
    _check(energy_j, time_s)
    return energy_j * time_s


def ed2_product(energy_j: float, time_s: float) -> float:
    """Energy-delay-squared product."""
    _check(energy_j, time_s)
    return energy_j * time_s * time_s


def _check(energy_j: float, time_s: float) -> None:
    if energy_j < 0.0 or time_s < 0.0:
        raise ValueError("energy and time must be non-negative")


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of nothing")
    if any(v <= 0.0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def arithmetic_mean(values: Iterable[float]) -> float:
    """Arithmetic mean (the paper's 'average' bars)."""
    values = list(values)
    if not values:
        raise ValueError("mean of nothing")
    return sum(values) / len(values)


def normalize_to(
    values: Mapping[str, float], baseline_key: str
) -> dict[str, float]:
    """Normalise a {config: value} row to one config (the paper's bars)."""
    base = values[baseline_key]
    if base <= 0.0:
        raise ValueError(f"baseline {baseline_key!r} must be positive")
    return {k: v / base for k, v in values.items()}
