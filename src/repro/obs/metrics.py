"""Hierarchical metrics registry (counters, gauges, histograms, probes).

Metrics live under dotted names (``cpu.core0.dl1.fast_way_hits``).  A
registry can hand out *scoped children* (:meth:`MetricsRegistry.child`)
that prefix every name, optionally tagging them with labels rendered as
``name{key=value}``, and whole registries can be *mounted* under a prefix
so a per-core registry shows up inside the global one.

Two access patterns coexist:

* **Push**: ``registry.counter("sweep.cpu.cache_hits").inc()`` for code
  that runs at most a few thousand times per process (runners, exporters).
* **Pull (probes)**: ``registry.probe("dl1.hits", lambda: stats.hits)``
  for hot simulation loops -- the loop keeps its plain integer attribute
  and the registry reads it only at :meth:`MetricsRegistry.snapshot` time,
  so instrumentation adds nothing to the per-cycle path.

``snapshot()`` returns a flat ``{name: value}`` dict; ``delta(since)``
subtracts an earlier snapshot, which is exactly the measurement-window
rebasing the CPU core needs between warm-up and the measured slice.

When observability is globally disabled (:func:`repro.obs.enabled`), a
registry created without ``enabled=True`` returns the shared
:data:`NULL_METRIC` from every factory and records nothing; explicitly
enabled registries (the CPU core's private one, whose counters feed the
simulation *result*, not just diagnostics) keep working regardless.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable

from repro import obs

#: Default histogram bucket upper bounds (powers of two, seconds-friendly).
DEFAULT_BOUNDS = (0.001, 0.01, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0)


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A point-in-time value metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0.0


class Histogram:
    """A bucketed distribution metric with explicit upper bounds."""

    __slots__ = ("name", "bounds", "counts", "total", "sum")

    def __init__(self, name: str, bounds: "tuple[float, ...]" = DEFAULT_BOUNDS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be non-empty and sorted")
        self.name = name
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(bounds) + 1)  # last bucket = +inf
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.bounds, value)] += 1
        self.total += 1
        self.sum += value

    def reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def snapshot_into(self, out: "dict[str, float]") -> None:
        out[f"{self.name}.count"] = self.total
        out[f"{self.name}.sum"] = self.sum
        for bound, count in zip(self.bounds, self.counts):
            out[f"{self.name}.le_{bound:g}"] = count
        out[f"{self.name}.le_inf"] = self.counts[-1]


class _NullMetric:
    """Shared do-nothing stand-in handed out while observability is off."""

    __slots__ = ()

    name = "null"
    value = 0
    total = 0
    sum = 0.0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def reset(self) -> None:
        pass


NULL_METRIC = _NullMetric()


def _labeled(name: str, labels: "dict[str, object]") -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """A named collection of metrics, probes, and mounted sub-registries."""

    def __init__(self, name: str = "", enabled: "bool | None" = None):
        """``enabled=None`` defers to the global :func:`repro.obs.enabled`
        flag on every factory call; ``True``/``False`` pin it."""
        self.name = name
        self._enabled = enabled
        self._metrics: "dict[str, object]" = {}
        self._probes: "dict[str, Callable[[], float]]" = {}
        self._mounts: "dict[str, MetricsRegistry]" = {}
        #: Highest merge order seen per gauge / mount prefix (see
        #: ``merge_exported``).
        self._gauge_order: "dict[str, int]" = {}
        self._mount_order: "dict[str, int]" = {}

    # -- state ---------------------------------------------------------
    @property
    def active(self) -> bool:
        return obs.enabled() if self._enabled is None else self._enabled

    def __len__(self) -> int:
        return len(self._metrics) + len(self._probes)

    # -- factories -----------------------------------------------------
    def _lookup(self, cls, full: str, **kwargs):
        """Find-or-create by already-rendered (labeled) name."""
        metric = self._metrics.get(full)
        if metric is None:
            metric = cls(full, **kwargs)
            self._metrics[full] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {full!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def _get(self, cls, name: str, labels: "dict[str, object]", **kwargs):
        if not self.active:
            return NULL_METRIC
        return self._lookup(cls, _labeled(name, labels), **kwargs)

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, bounds: "tuple[float, ...]" = DEFAULT_BOUNDS, **labels
    ) -> Histogram:
        return self._get(Histogram, name, labels, bounds=bounds)

    def probe(self, name: str, fn: "Callable[[], float]", **labels) -> None:
        """Bind ``name`` to a zero-argument callable read at snapshot time."""
        if self.active:
            self._probes[_labeled(name, labels)] = fn

    def child(self, prefix: str, **labels) -> "ScopedRegistry":
        """A view that prefixes every metric name with ``prefix.`` and tags
        it with ``labels`` (the registry's *labeled children*)."""
        return ScopedRegistry(self, prefix, labels)

    # -- composition ---------------------------------------------------
    def mount(self, prefix: str, registry: "MetricsRegistry") -> None:
        """Expose another registry's metrics under ``prefix.`` in snapshots.

        Re-mounting the same prefix replaces the previous registry (each
        simulation run publishes a fresh per-core registry).
        """
        if registry is self:
            raise ValueError("cannot mount a registry into itself")
        self._mounts[prefix] = registry

    def unmount(self, prefix: str) -> None:
        self._mounts.pop(prefix, None)

    # -- reading -------------------------------------------------------
    def snapshot(self) -> "dict[str, float]":
        """Flat ``{dotted.name: value}`` view of everything reachable."""
        out: "dict[str, float]" = {}
        for name, metric in self._metrics.items():
            if isinstance(metric, Histogram):
                metric.snapshot_into(out)
            else:
                out[name] = metric.value
        for name, fn in self._probes.items():
            out[name] = fn()
        for prefix, registry in self._mounts.items():
            for name, value in registry.snapshot().items():
                out[f"{prefix}.{name}"] = value
        return out

    def delta(self, since: "dict[str, float]") -> "dict[str, float]":
        """Current snapshot minus an earlier one (missing keys count as 0)."""
        return {
            name: value - since.get(name, 0)
            for name, value in self.snapshot().items()
        }

    # -- cross-process transport ---------------------------------------
    def export_state(self, since: "dict | None" = None) -> dict:
        """A *typed* snapshot suitable for :meth:`merge_exported`.

        Unlike :meth:`snapshot` (which flattens everything to floats),
        this keeps counters, gauges, and histograms distinguishable so
        the receiving side can merge each with the right semantics.
        Probes flatten to gauges.  Mounted registries export as whole
        flat snapshots under ``"mounts"``: re-mounting *replaces* a
        prefix in serial sweeps (keys from earlier runs vanish), so the
        receiver must replace the prefix wholesale too -- flattening
        mounts into gauges would union keys across runs instead.

        ``since`` is an earlier ``export_state`` result: counters and
        histogram buckets export as deltas (zero deltas dropped), and
        gauges whose value is unchanged since ``since`` are dropped.
        A forked worker passes its start-of-life state here so values
        inherited from the parent process are never re-shipped.
        """
        counters: "dict[str, float]" = {}
        gauges: "dict[str, float]" = {}
        histograms: "dict[str, dict]" = {}
        for name, metric in self._metrics.items():
            if isinstance(metric, Histogram):
                histograms[name] = {
                    "bounds": list(metric.bounds),
                    "counts": list(metric.counts),
                    "sum": metric.sum,
                }
            elif isinstance(metric, Counter):
                counters[name] = metric.value
            else:
                gauges[name] = metric.value
        for name, fn in self._probes.items():
            gauges[name] = fn()
        mounts = {
            prefix: dict(registry.snapshot())
            for prefix, registry in self._mounts.items()
        }
        if since is not None:
            base_c = since.get("counters", {})
            counters = {
                name: value - base_c.get(name, 0)
                for name, value in counters.items()
                if value - base_c.get(name, 0) != 0
            }
            base_g = since.get("gauges", {})
            gauges = {
                name: value for name, value in gauges.items()
                if base_g.get(name) != value
            }
            base_h = since.get("histograms", {})
            rebased: "dict[str, dict]" = {}
            for name, hist in histograms.items():
                base = base_h.get(name)
                if base is not None and base.get("bounds") == hist["bounds"]:
                    counts = [
                        c - b for c, b in zip(hist["counts"], base["counts"])
                    ]
                    hist = {
                        "bounds": hist["bounds"],
                        "counts": counts,
                        "sum": hist["sum"] - base.get("sum", 0.0),
                    }
                if any(hist["counts"]):
                    rebased[name] = hist
            histograms = rebased
            base_m = since.get("mounts", {})
            mounts = {
                prefix: snap for prefix, snap in mounts.items()
                if base_m.get(prefix) != snap
            }
        return {
            "schema": 1,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "mounts": mounts,
        }

    def merge_exported(self, payload: "dict | None", order: int = 0) -> int:
        """Merge a worker's :meth:`export_state` payload into this registry.

        Counters *add* (order-independent), histograms add bucket
        counts and sums, and gauges and mounts *set last-wins keyed on
        ``order``*: the pool passes its task index, which is the serial
        iteration order, so a parallel sweep converges to the same gauge
        values and mounted-engine snapshots a serial sweep would have
        left behind regardless of completion order.  Shipped mounts are
        re-mounted as frozen snapshots replacing the whole prefix --
        the same wholesale replacement a serial re-mount performs.
        Returns the number of metrics touched.
        """
        if not payload or not self.active:
            return 0
        touched = 0
        for name, value in payload.get("counters", {}).items():
            self._lookup(Counter, name).inc(value)
            touched += 1
        for name, value in payload.get("gauges", {}).items():
            if order >= self._gauge_order.get(name, -1):
                self._lookup(Gauge, name).set(value)
                self._gauge_order[name] = order
                touched += 1
        for name, hist in payload.get("histograms", {}).items():
            bounds = tuple(hist.get("bounds", DEFAULT_BOUNDS))
            try:
                metric = self._lookup(Histogram, name, bounds=bounds)
            except TypeError:
                continue
            counts = hist.get("counts", [])
            if metric.bounds != bounds or len(counts) != len(metric.counts):
                continue
            for idx, count in enumerate(counts):
                metric.counts[idx] += count
            added = sum(counts)
            metric.total += added
            metric.sum += hist.get("sum", 0.0)
            touched += 1
        for prefix, snap in payload.get("mounts", {}).items():
            if order >= self._mount_order.get(prefix, -1):
                self._mounts[prefix] = FrozenSnapshot(prefix, snap)
                self._mount_order[prefix] = order
                touched += 1
        return touched

    # -- lifecycle -----------------------------------------------------
    def reset(self) -> None:
        """Zero every owned metric (registrations and mounts are kept)."""
        for metric in self._metrics.values():
            metric.reset()

    def clear(self) -> None:
        """Drop every metric, probe, and mount."""
        self._metrics.clear()
        self._probes.clear()
        self._mounts.clear()
        self._gauge_order.clear()
        self._mount_order.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsRegistry({self.name!r}, metrics={len(self._metrics)}, "
            f"probes={len(self._probes)}, mounts={len(self._mounts)})"
        )


class FrozenSnapshot:
    """An immutable mount: a shipped worker-registry snapshot.

    Quacks like a registry for :meth:`MetricsRegistry.snapshot` /
    :meth:`MetricsRegistry.export_state` purposes (it only needs
    ``snapshot()``), so the supervisor can mount a worker's engine
    counters at the same prefix a serial run would have used.
    """

    __slots__ = ("name", "_snapshot")

    def __init__(self, name: str, snapshot: "dict[str, float]"):
        self.name = name
        self._snapshot = dict(snapshot)

    def snapshot(self) -> "dict[str, float]":
        return dict(self._snapshot)


class ScopedRegistry:
    """A prefix+labels view over a parent registry (see ``child``)."""

    __slots__ = ("_parent", "_prefix", "_labels")

    def __init__(
        self, parent: MetricsRegistry, prefix: str, labels: "dict[str, object]"
    ):
        self._parent = parent
        self._prefix = prefix
        self._labels = labels

    def _full(self, name: str) -> str:
        return f"{self._prefix}.{name}" if self._prefix else name

    def counter(self, name: str, **labels) -> Counter:
        return self._parent.counter(self._full(name), **{**self._labels, **labels})

    def gauge(self, name: str, **labels) -> Gauge:
        return self._parent.gauge(self._full(name), **{**self._labels, **labels})

    def histogram(
        self, name: str, bounds: "tuple[float, ...]" = DEFAULT_BOUNDS, **labels
    ) -> Histogram:
        return self._parent.histogram(
            self._full(name), bounds=bounds, **{**self._labels, **labels}
        )

    def probe(self, name: str, fn: "Callable[[], float]", **labels) -> None:
        self._parent.probe(self._full(name), fn, **{**self._labels, **labels})

    def child(self, prefix: str, **labels) -> "ScopedRegistry":
        return ScopedRegistry(
            self._parent, self._full(prefix), {**self._labels, **labels}
        )


#: The process-wide registry (created eagerly; cheap when disabled).
_REGISTRY = MetricsRegistry("global")


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _REGISTRY
