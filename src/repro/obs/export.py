"""Metrics export: Prometheus text format and snapshot files.

Three consumers pull from the metrics registry through this module:

* ``repro stats --prom`` renders the registry in the Prometheus text
  exposition format (v0.0.4): dotted names become underscore families
  (``sweep.cpu.runs`` -> ``repro_sweep_cpu_runs``), the registry's
  ``name{k=v}`` labeled-children syntax becomes real Prometheus labels,
  and histograms expand to ``_bucket{le=...}``/``_sum``/``_count`` with
  cumulative bucket counts.  :func:`parse_prometheus` is the matching
  strict parser -- CI and tests validate the output by round-tripping
  it rather than eyeballing strings.
* The serve tier writes a **periodic metrics snapshot** (a JSON file
  next to the health file, same atomic-replace discipline) that
  ``repro top`` tails; the document wraps
  :meth:`~repro.obs.metrics.MetricsRegistry.export_state` with a
  schema version, a monotonically increasing ``seq``, and a wall-clock
  ``written_at`` so readers can age-check it.
* Determinism tests compare :func:`deterministic_snapshot` views:
  the flat snapshot minus every name that legitimately differs
  between serial and parallel execution (wall-clock timings, pool
  lifecycle, cross-process cache hit ratios, ...).  What remains --
  engine counters, sweep run/retry/failure counts, per-unit activity
  -- must be byte-identical between ``--workers 1`` and ``--workers N``,
  and that invariant is enforced in CI.
"""

from __future__ import annotations

import os
import re
import time

from repro.obs.metrics import MetricsRegistry, get_registry


def _diskio():
    # Imported lazily: ``repro.obs`` loads during core-engine init,
    # while ``repro.resilience`` pulls the engines back in -- a cycle
    # at import time, harmless at call time.
    from repro.resilience import diskio

    return diskio

#: Version of the metrics-snapshot file format.
SNAPSHOT_SCHEMA = 1

#: Default metric-name prefix for Prometheus families.
PROM_PREFIX = "repro"

#: Substrings that mark a metric as legitimately nondeterministic
#: across serial-vs-parallel execution (timings, transport internals,
#: pool/service lifecycle).  See :func:`deterministic_snapshot`.
NONDETERMINISTIC_MARKERS = (
    "wall",          # wall-clock histograms and derived stats
    "per_s",         # throughput gauges
    "throughput",
    "utilization",
    "trace_cache",   # per-process cache hit/miss split differs
    "shm",           # shared-memory transport is parallel-only
    "checkpoint",    # flush timing/count depends on completion order
    "pool.",         # worker lifecycle (spawns, heartbeats, requeues)
    "batch.",        # batch composition depends on worker chunking
    "serve.",        # service-side accounting
    "fabric.",       # node membership / resubmission depends on timing
    "store.",        # durable-store hit/miss split is cross-run state
    "diskio",        # write/fsync counts depend on flush scheduling
    "zombie",
    "duration",
    "age",
)

_FAMILY_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_RE = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"]*)"$')


# -- name mangling -----------------------------------------------------
def _split_labels(raw: str) -> "tuple[str, dict[str, str]]":
    """Split the registry's ``name{k=v,...}`` syntax into parts."""
    if raw.endswith("}") and "{" in raw:
        base, inner = raw[:-1].split("{", 1)
        labels: "dict[str, str]" = {}
        for pair in inner.split(","):
            if "=" in pair:
                key, value = pair.split("=", 1)
                labels[key.strip()] = value.strip()
        return base, labels
    return raw, {}


def _sanitize(name: str, prefix: str = PROM_PREFIX) -> str:
    """Dotted registry name -> Prometheus family name."""
    flat = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    family = f"{prefix}_{flat}" if prefix else flat
    if not _FAMILY_RE.match(family):
        family = "_" + family
    return family


def _sanitize_label(key: str) -> str:
    key = re.sub(r"[^a-zA-Z0-9_]", "_", key)
    if not re.match(r"^[a-zA-Z_]", key):
        key = "_" + key
    return key


def _fmt(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int) or (
        isinstance(value, float) and value.is_integer()
    ):
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: object) -> str:
    text = str(value)
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(labels: "dict[str, str]") -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_sanitize_label(k)}="{_escape_label_value(v)}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


# -- rendering ---------------------------------------------------------
def prometheus_text(
    state: "dict | None" = None,
    *,
    registry: "MetricsRegistry | None" = None,
    prefix: str = PROM_PREFIX,
) -> str:
    """Render a typed ``export_state`` payload as Prometheus text.

    Pass either a pre-captured ``state`` (from
    :meth:`MetricsRegistry.export_state`) or a ``registry`` to export
    now; with neither, the process-wide registry is used.
    """
    if state is None:
        state = (registry or get_registry()).export_state()
    families: "dict[str, dict]" = {}

    def family(name: str, kind: str, source: str) -> dict:
        entry = families.get(name)
        if entry is None:
            entry = {"type": kind, "source": source, "samples": []}
            families[name] = entry
        return entry

    gauges = dict(state.get("gauges", {}))
    # Mounted engine registries export as flat snapshots per prefix;
    # for exposition they are plain gauges under dotted names.
    for mount_prefix, snap in state.get("mounts", {}).items():
        for name, value in snap.items():
            gauges[f"{mount_prefix}.{name}"] = value
    for kind, entries in (
        ("counter", state.get("counters", {})), ("gauge", gauges)
    ):
        for raw, value in entries.items():
            base, labels = _split_labels(raw)
            fam = family(_sanitize(base, prefix), kind, base)
            fam["samples"].append((
                _sanitize(base, prefix), labels, value,
            ))
    for raw, hist in state.get("histograms", {}).items():
        base, labels = _split_labels(raw)
        name = _sanitize(base, prefix)
        fam = family(name, "histogram", base)
        bounds = hist.get("bounds", [])
        counts = hist.get("counts", [])
        cumulative = 0
        for bound, count in zip(bounds, counts):
            cumulative += count
            fam["samples"].append((
                f"{name}_bucket", {**labels, "le": f"{bound:g}"}, cumulative,
            ))
        total = cumulative + (counts[-1] if len(counts) > len(bounds) else 0)
        fam["samples"].append((f"{name}_bucket", {**labels, "le": "+Inf"},
                               total))
        fam["samples"].append((f"{name}_sum", labels, hist.get("sum", 0.0)))
        fam["samples"].append((f"{name}_count", labels, total))

    lines: "list[str]" = []
    for name in sorted(families):
        fam = families[name]
        lines.append(f"# HELP {name} repro metric {fam['source']}")
        lines.append(f"# TYPE {name} {fam['type']}")
        for sample_name, labels, value in fam["samples"]:
            lines.append(
                f"{sample_name}{_render_labels(labels)} {_fmt(value)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


# -- parsing / validation ----------------------------------------------
def parse_prometheus(text: str) -> "dict[str, dict]":
    """Strictly parse Prometheus text format (the validation side).

    Returns ``{family: {"type": str, "samples": [(name, labels, value)]}}``
    and raises :class:`ValueError` on any malformed line -- CI pipes
    the exporter output through this to keep the format honest.
    """
    families: "dict[str, dict]" = {}
    current: "str | None" = None
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped"
            ):
                raise ValueError(f"line {lineno}: malformed TYPE: {line!r}")
            name = parts[2]
            if not _FAMILY_RE.match(name):
                raise ValueError(f"line {lineno}: bad family name {name!r}")
            if name in families:
                raise ValueError(f"line {lineno}: duplicate TYPE for {name}")
            families[name] = {"type": parts[3], "samples": []}
            current = name
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        name = match.group("name")
        labels: "dict[str, str]" = {}
        raw_labels = match.group("labels")
        if raw_labels:
            for pair in raw_labels.split(","):
                pair = pair.strip()
                if not pair:
                    continue
                lm = _LABEL_RE.match(pair)
                if not lm:
                    raise ValueError(
                        f"line {lineno}: malformed label {pair!r}"
                    )
                labels[lm.group("key")] = lm.group("value")
        raw_value = match.group("value")
        try:
            value = float(raw_value)
        except ValueError:
            raise ValueError(
                f"line {lineno}: non-numeric value {raw_value!r}"
            )
        if current is None or not (
            name == current or name.startswith(current + "_")
        ):
            # Allow samples for a family that had no TYPE line? No:
            # the exporter always writes TYPE first, so enforce it.
            raise ValueError(
                f"line {lineno}: sample {name!r} outside its TYPE block"
            )
        families[current]["samples"].append((name, labels, value))
    return families


# -- determinism filter ------------------------------------------------
def deterministic_snapshot(
    snapshot: "dict[str, float]",
    *,
    extra_markers: "tuple[str, ...]" = (),
) -> "dict[str, float]":
    """Filter a flat snapshot down to execution-order-invariant names.

    The result must be byte-identical (after ``json.dumps(...,
    sort_keys=True)``) between a serial sweep and a ``--workers N``
    sweep over the same cells; tests and CI enforce exactly that.
    """
    markers = NONDETERMINISTIC_MARKERS + tuple(extra_markers)
    return {
        name: value
        for name, value in sorted(snapshot.items())
        if not any(marker in name for marker in markers)
    }


def snapshot_from_state(state: dict) -> "dict[str, float]":
    """Flatten a typed ``export_state`` payload like ``snapshot()`` would."""
    out: "dict[str, float]" = {}
    out.update(state.get("counters", {}))
    out.update(state.get("gauges", {}))
    for prefix, snap in state.get("mounts", {}).items():
        for name, value in snap.items():
            out[f"{prefix}.{name}"] = value
    for name, hist in state.get("histograms", {}).items():
        counts = hist.get("counts", [])
        out[f"{name}.count"] = sum(counts)
        out[f"{name}.sum"] = hist.get("sum", 0.0)
        for bound, count in zip(hist.get("bounds", []), counts):
            out[f"{name}.le_{bound:g}"] = count
        if len(counts) > len(hist.get("bounds", [])):
            out[f"{name}.le_inf"] = counts[-1]
    return out


# -- metrics snapshot file ---------------------------------------------
def write_metrics_snapshot(
    path: "str | os.PathLike",
    *,
    registry: "MetricsRegistry | None" = None,
    seq: int = 0,
    extra: "dict | None" = None,
) -> dict:
    """Crash-consistently write the periodic metrics snapshot document."""
    doc = {
        "schema": SNAPSHOT_SCHEMA,
        "seq": seq,
        "written_at": time.time(),
        "pid": os.getpid(),
        "state": (registry or get_registry()).export_state(),
    }
    if extra:
        doc.update(extra)
    _diskio().write_record(path, doc, site="metrics")
    return doc


def read_metrics_snapshot(path: "str | os.PathLike") -> "dict | None":
    """Load a metrics snapshot document; ``None`` if missing/damaged.

    A torn or checksum-failed snapshot is quarantined by the diskio
    layer and reads as missing -- ``repro top`` shows a gap, not junk.
    """
    doc = _diskio().read_record(path, site="metrics")
    if not isinstance(doc, dict) or doc.get("schema") != SNAPSHOT_SCHEMA:
        return None
    return doc


def metrics_snapshot_path(health_file: "str | os.PathLike") -> str:
    """The metrics-snapshot path derived from a health-file path.

    ``foo.health.json`` -> ``foo.metrics.json``; anything else gets a
    ``.metrics.json`` suffix appended, so the two files always sit in
    the same directory and ``repro top`` can find one from the other.
    """
    text = str(health_file)
    if text.endswith(".health.json"):
        return text[: -len(".health.json")] + ".metrics.json"
    return text + ".metrics.json"
