"""Sweep telemetry: per-run wall time, throughput, and cache accounting.

The :class:`repro.experiments.runner.SweepRunner` memoises every
(configuration, workload) simulation.  This module gives that cache and
the runs behind it a visible shape:

* every executed (non-cached) run becomes a :class:`RunRecord` with wall
  time and simulated-instructions-per-second;
* every lookup bumps ``sweep.<kind>.cache_hits`` / ``cache_misses``
  counters in the global metrics registry (no-ops while observability is
  off -- the telemetry object keeps its own authoritative plain-int
  counts either way);
* registered progress callbacks fire after each lookup so long sweeps can
  report live instead of going dark for minutes -- a callback that raises
  is counted (``sweep.progress_callback_errors``) and skipped, never
  allowed to abort the sweep mid-run;
* the resilience layer reports into the same object: retries
  (``sweep.<kind>.retries``), failed cells (``sweep.<kind>.failures`` plus
  a per-taxonomy-kind breakdown), and checkpoint activity
  (``sweep.checkpoint.<event>``);
* the process-isolated executor (:mod:`repro.resilience.pool`) reports
  its worker lifecycle here too: ``sweep.pool.spawned`` / ``killed`` /
  ``crashed`` / ``heartbeat_lost`` / ``requeued`` / ``completed``
  counters plus a ``sweep.pool.utilization`` gauge (busy worker-seconds
  over ``workers x elapsed``), and the thread guard's abandoned-thread
  leak is surfaced as the ``sweep.guard.zombie_threads`` gauge;
* the job service (:mod:`repro.serve`) reports its admission and
  lifecycle decisions: ``sweep.serve.submitted`` / ``admitted`` /
  ``served`` / ``failed`` / ``cancelled`` / ``drained`` / ``degraded``
  counters, structured load shedding per reason
  (``sweep.serve.shed.<reason>`` plus the ``sweep.serve.shed``
  aggregate), breaker transitions (``sweep.serve.breaker.<state>``),
  and a ``sweep.serve.queue_depth`` gauge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.obs.metrics import MetricsRegistry, get_registry

#: Run kinds the SweepRunner distinguishes.
KINDS = ("cpu", "gpu", "dvfs")

#: Wall-time histogram buckets (seconds).
_WALL_BOUNDS = (0.05, 0.2, 0.5, 1.0, 2.0, 5.0, 15.0, 60.0)

#: HTTP request latency buckets (seconds) -- an API tier lives three
#: orders of magnitude below simulation wall times.
_HTTP_LATENCY_BOUNDS = (0.001, 0.005, 0.02, 0.05, 0.1, 0.25, 1.0, 5.0)


@dataclass(frozen=True)
class RunRecord:
    """One executed (not cache-served) simulation."""

    kind: str  # "cpu" | "gpu" | "dvfs"
    config: str
    workload: str
    wall_s: float
    instructions: int

    @property
    def ips(self) -> float:
        """Simulated instructions per wall-clock second."""
        return self.instructions / self.wall_s if self.wall_s > 0 else 0.0


class SweepTelemetry:
    """Collects run records and cache statistics for one SweepRunner."""

    def __init__(self, registry: "MetricsRegistry | None" = None):
        # NB: explicit None check -- an empty MetricsRegistry is falsy
        # (it defines __len__), so `registry or get_registry()` would
        # silently swap a fresh registry for the global one.
        if registry is None:
            registry = get_registry()
        self._scope = registry.child("sweep")
        self.records: "list[RunRecord]" = []
        self._hits = dict.fromkeys(KINDS, 0)
        self._misses = dict.fromkeys(KINDS, 0)
        self._retries = dict.fromkeys(KINDS, 0)
        self._failures = dict.fromkeys(KINDS, 0)
        self._failure_kinds: "dict[str, int]" = {}
        self._checkpoint: "dict[str, int]" = {}
        self._pool: "dict[str, int]" = {}
        self._serve: "dict[str, int]" = {}
        self._shed: "dict[str, int]" = {}
        self._fabric: "dict[str, int]" = {}
        self._store: "dict[str, int]" = {}
        self._http: "dict[str, int]" = {}
        self._batch: "dict[str, float]" = {}
        self.pool_utilization = 0.0
        self.zombie_threads = 0
        self.callback_errors = 0
        self._callbacks: "list[Callable[[dict], None]]" = []
        # Pull-model mirrors of the process-wide workload trace cache
        # (lazy import: workloads must not become an obs dependency).
        from repro.workloads.trace_cache import shared_cache

        for stat in ("hits", "misses", "evictions"):
            self._scope.probe(
                f"trace_cache.{stat}",
                lambda s=stat: getattr(shared_cache(), s),
            )
        self._scope.probe("trace_cache.entries", lambda: len(shared_cache()))
        # Same pull-model mirror for the shm trace transport (its plain
        # int counters live in repro.resilience.shm; reads stay lazy).
        from repro.resilience.shm import transport_stats

        for stat in sorted(transport_stats()):
            self._scope.probe(
                f"shm.{stat}",
                lambda s=stat: transport_stats()[s],
            )
        # And for the durable-I/O layer (writes, quarantines, orphan
        # sweeps): plain ints in repro.resilience.diskio.
        from repro.resilience.diskio import stats as diskio_stats

        for stat in sorted(diskio_stats()):
            self._scope.probe(
                f"diskio.{stat}",
                lambda s=stat: diskio_stats()[s],
            )

    def trace_cache_counts(self) -> "dict[str, int]":
        """Point-in-time stats of the shared workload trace cache."""
        from repro.workloads.trace_cache import shared_cache

        return shared_cache().stats()

    def shm_transport_counts(self) -> "dict[str, int]":
        """Point-in-time counters of the shm trace transport."""
        from repro.resilience.shm import transport_stats

        return transport_stats()

    # -- hooks ---------------------------------------------------------
    def on_progress(self, callback: "Callable[[dict], None]") -> None:
        """Register a callback fired (with an event dict) after each run."""
        self._callbacks.append(callback)

    def record_run(
        self,
        kind: str,
        config: str,
        workload: str,
        wall_s: float,
        instructions: int,
        cached: bool,
    ) -> None:
        """Account one SweepRunner lookup (``cached`` = served from memo)."""
        if kind not in self._hits:
            raise ValueError(f"unknown run kind {kind!r} (expected {KINDS})")
        scope = self._scope
        if cached:
            self._hits[kind] += 1
            scope.counter(f"{kind}.cache_hits").inc()
        else:
            self._misses[kind] += 1
            scope.counter(f"{kind}.cache_misses").inc()
            scope.counter(f"{kind}.runs").inc()
            # Cumulative simulated instructions: ``repro top`` derives
            # its live instr/s rate from successive snapshots of this.
            scope.counter(f"{kind}.instructions_total").inc(instructions)
            scope.gauge(f"{kind}.last_wall_s").set(wall_s)
            scope.histogram(f"{kind}.wall_s", bounds=_WALL_BOUNDS).observe(wall_s)
            self.records.append(
                RunRecord(kind, config, workload, wall_s, instructions)
            )
        event = {
            "kind": kind,
            "config": config,
            "workload": workload,
            "cached": cached,
            "wall_s": wall_s,
            "instructions": instructions,
            "completed_runs": len(self.records),
        }
        self._fire(event)

    def _fire(self, event: dict) -> None:
        """Invoke progress callbacks; a raising callback is counted and
        skipped so user code can never abort a sweep mid-run."""
        for callback in list(self._callbacks):
            try:
                callback(event)
            except Exception:
                self.callback_errors += 1
                self._scope.counter("progress_callback_errors").inc()

    def record_batch(
        self,
        kind: str,
        *,
        cells: int,
        vectorized: int,
        wall_s: float,
        instructions: int,
        cycles: int = 0,
        skipped_cycles: int = 0,
    ) -> None:
        """Account one batched-engine invocation.

        A batch is one :func:`~repro.core.simulate.simulate_gpu_batch` /
        ``simulate_cpu_batch`` call covering many sweep cells -- either
        the in-process batched sweep path or one pool worker's cell
        batch.  ``vectorized`` counts the cells the lockstep engine
        produced (batch occupancy = vectorized / cells);
        ``skipped_cycles`` are the idle cycles the engines' event-driven
        skip jumped over (skip rate = skipped / (cycles + skipped)).
        ``repro top`` derives its engine row from these counters.
        """
        if kind not in self._hits:
            raise ValueError(f"unknown run kind {kind!r} (expected {KINDS})")
        b = self._batch
        for stat, value in (
            ("batches", 1),
            ("cells", cells),
            ("vectorized_cells", vectorized),
            ("instructions", instructions),
            ("engine_cycles", cycles),
            ("skipped_cycles", skipped_cycles),
        ):
            b[stat] = b.get(stat, 0) + value
            self._scope.counter(f"batch.{stat}").inc(value)
        b["wall_s"] = b.get("wall_s", 0.0) + wall_s
        scope = self._scope
        scope.gauge("batch.last_wall_s").set(wall_s)
        scope.gauge("batch.last_cells").set(cells)
        scope.gauge("batch.last_occupancy").set(
            vectorized / cells if cells else 0.0
        )
        scope.gauge("batch.last_ips").set(
            instructions / wall_s if wall_s > 0 else 0.0
        )
        self._fire(
            {
                "kind": kind,
                "event": "batch",
                "cells": cells,
                "vectorized": vectorized,
                "wall_s": wall_s,
                "instructions": instructions,
            }
        )

    def batch_counts(self) -> "dict[str, float]":
        """Cumulative batched-engine stats (batches/cells/vectorized_cells
        /instructions/engine_cycles/skipped_cycles/wall_s) so far."""
        return dict(self._batch)

    # -- resilience accounting -----------------------------------------
    def record_retry(self, kind: str, failure_kind: str = "crash") -> None:
        """Account one retry of a guarded run (before its backoff sleep)."""
        if kind not in self._retries:
            raise ValueError(f"unknown run kind {kind!r} (expected {KINDS})")
        self._retries[kind] += 1
        self._scope.counter(f"{kind}.retries").inc()
        self._fire({"kind": kind, "event": "retry", "failure_kind": failure_kind})

    def record_failure(self, failure) -> None:
        """Account one cell that exhausted its guard budget
        (``failure`` is a :class:`repro.resilience.errors.RunFailure`)."""
        if failure.run_kind not in self._failures:
            raise ValueError(
                f"unknown run kind {failure.run_kind!r} (expected {KINDS})"
            )
        self._failures[failure.run_kind] += 1
        self._failure_kinds[failure.kind] = (
            self._failure_kinds.get(failure.kind, 0) + 1
        )
        self._scope.counter(f"{failure.run_kind}.failures").inc()
        self._scope.counter(f"failures.{failure.kind}").inc()
        self._fire(
            {
                "kind": failure.run_kind,
                "event": "failure",
                "config": failure.config,
                "workload": failure.workload,
                "failure_kind": failure.kind,
                "attempts": failure.attempts,
            }
        )

    def record_pool(self, event: str, count: int = 1) -> None:
        """Account one worker-lifecycle event from the process pool
        (``spawned``/``completed``/``killed``/``crashed``/
        ``heartbeat_lost``/``requeued``)."""
        self._pool[event] = self._pool.get(event, 0) + count
        self._scope.counter(f"pool.{event}").inc(count)

    def record_pool_utilization(self, value: float) -> None:
        """Record the pool's aggregate worker utilization (0..1)."""
        self.pool_utilization = value
        self._scope.gauge("pool.utilization").set(value)

    def record_zombie_threads(self, count: int) -> None:
        """Record abandoned (unkillable) guard threads still running."""
        self.zombie_threads = count
        self._scope.gauge("guard.zombie_threads").set(count)

    def record_serve(self, event: str, count: int = 1) -> None:
        """Account one job-service lifecycle event (``submitted`` /
        ``admitted`` / ``served`` / ``failed`` / ``cancelled`` /
        ``drained`` / ``degraded`` / ``intake_malformed`` /
        ``breaker.opened`` / ``breaker.half_open`` / ``breaker.closed``)."""
        self._serve[event] = self._serve.get(event, 0) + count
        self._scope.counter(f"serve.{event}").inc(count)

    def record_shed(self, reason: str, count: int = 1) -> None:
        """Account one structurally shed job by its admission-control
        reason (``queue_full`` / ``past_deadline`` / ``breaker_open`` /
        ``draining`` / ``duplicate_id`` / ``cancelled``)."""
        self._shed[reason] = self._shed.get(reason, 0) + count
        self._serve["shed"] = self._serve.get("shed", 0) + count
        self._scope.counter("serve.shed").inc(count)
        self._scope.counter(f"serve.shed.{reason}").inc(count)

    def record_fabric(self, event: str, count: int = 1) -> None:
        """Account one distributed-fabric lifecycle event
        (``node_joined`` / ``node_died`` / ``assigned`` / ``completed``
        / ``failed`` / ``resubmitted`` / ``fenced`` / ``duplicate`` /
        ``task_timeout`` / ``heartbeat``)."""
        self._fabric[event] = self._fabric.get(event, 0) + count
        self._scope.counter(f"fabric.{event}").inc(count)

    def record_store(self, event: str, count: int = 1) -> None:
        """Account one durable result-store event (``hits`` / ``misses``
        / ``puts`` / ``errors``)."""
        self._store[event] = self._store.get(event, 0) + count
        self._scope.counter(f"store.{event}").inc(count)

    def record_http(self, event: str, count: int = 1) -> None:
        """Account one HTTP front-door event (``requests`` /
        ``status.<code>`` / ``accept_dropped`` / ``over_capacity`` /
        ``rate_limited`` / ``malformed`` / ``timeouts`` /
        ``disconnects`` / ``internal_error`` / ``write_dropped``)."""
        self._http[event] = self._http.get(event, 0) + count
        self._scope.counter(f"serve.http.{event}").inc(count)

    def record_http_latency(self, seconds: float) -> None:
        """Observe one request's wall time in the latency histogram
        (``sweep.serve.http.latency_s``; ``repro top`` derives p50/p99
        from its buckets)."""
        self._scope.histogram(
            "serve.http.latency_s", bounds=_HTTP_LATENCY_BOUNDS
        ).observe(seconds)

    def record_http_in_flight(self, count: int) -> None:
        """Record the number of HTTP requests currently being handled."""
        self._scope.gauge("serve.http.in_flight").set(count)

    def record_queue_depth(self, depth: int) -> None:
        """Record the service's current admitted-but-unstarted backlog."""
        self._scope.gauge("serve.queue_depth").set(depth)

    def record_checkpoint(self, event: str, count: int = 1) -> None:
        """Account checkpoint activity (``load``/``save``/``invalid``/
        ``entries_loaded``/``entries_saved``)."""
        self._checkpoint[event] = self._checkpoint.get(event, 0) + count
        self._scope.counter(f"checkpoint.{event}").inc(count)

    # -- aggregate views ----------------------------------------------
    def cache_counts(self) -> "dict[str, tuple[int, int]]":
        """Per kind: (cache_hits, cache_misses)."""
        return {k: (self._hits[k], self._misses[k]) for k in KINDS}

    def retry_counts(self) -> "dict[str, int]":
        """Per run kind: retries performed."""
        return dict(self._retries)

    def failure_counts(self) -> "dict[str, int]":
        """Per run kind: cells that exhausted their guard budget."""
        return dict(self._failures)

    def failure_kind_counts(self) -> "dict[str, int]":
        """Per taxonomy kind (timeout/config/workload/crash/corrupt)."""
        return dict(self._failure_kinds)

    def checkpoint_counts(self) -> "dict[str, int]":
        """Checkpoint events (load/save/invalid/entries_*) so far."""
        return dict(self._checkpoint)

    def pool_counts(self) -> "dict[str, int]":
        """Worker-lifecycle events (spawned/killed/crashed/...) so far."""
        return dict(self._pool)

    def serve_counts(self) -> "dict[str, int]":
        """Job-service lifecycle events (submitted/served/shed/...) so far."""
        return dict(self._serve)

    def shed_counts(self) -> "dict[str, int]":
        """Shed jobs per structured admission-control reason."""
        return dict(self._shed)

    def fabric_counts(self) -> "dict[str, int]":
        """Distributed-fabric lifecycle events so far."""
        return dict(self._fabric)

    def store_counts(self) -> "dict[str, int]":
        """Durable result-store events (hits/misses/puts/errors) so far."""
        return dict(self._store)

    def http_counts(self) -> "dict[str, int]":
        """HTTP front-door events (requests/status.<code>/...) so far."""
        return dict(self._http)

    @property
    def total_wall_s(self) -> float:
        return sum(r.wall_s for r in self.records)

    @property
    def total_instructions(self) -> int:
        return sum(r.instructions for r in self.records)

    @property
    def mean_ips(self) -> float:
        wall = self.total_wall_s
        return self.total_instructions / wall if wall > 0 else 0.0

    def summary(self) -> dict:
        """Machine-readable rollup of the sweep so far."""
        return {
            "runs": len(self.records),
            "wall_s": round(self.total_wall_s, 3),
            "instructions": self.total_instructions,
            "instructions_per_s": round(self.mean_ips, 1),
            "cache": {
                kind: {"hits": h, "misses": m}
                for kind, (h, m) in self.cache_counts().items()
            },
            "retries": dict(self._retries),
            "failures": dict(self._failures),
            "failure_kinds": dict(self._failure_kinds),
            "checkpoint": dict(self._checkpoint),
            "pool": dict(self._pool),
            "serve": dict(self._serve),
            "shed_reasons": dict(self._shed),
            "fabric": dict(self._fabric),
            "store": dict(self._store),
            "http": dict(self._http),
            "batch": dict(self._batch),
            "pool_utilization": round(self.pool_utilization, 4),
            "zombie_threads": self.zombie_threads,
            "callback_errors": self.callback_errors,
        }

    def cache_summary(self) -> str:
        """One-line human-readable cache + throughput summary."""
        parts = [
            f"{kind} {self._hits[kind]}h/{self._misses[kind]}m"
            for kind in KINDS
            if self._hits[kind] or self._misses[kind]
        ]
        cache = " ".join(parts) if parts else "empty"
        line = (
            f"sweep cache: {cache} | {len(self.records)} runs, "
            f"{self.total_wall_s:.1f}s wall, {self.mean_ips / 1e3:.1f}k instr/s"
        )
        retries = sum(self._retries.values())
        failures = sum(self._failures.values())
        if retries or failures:
            line += f" | {retries} retries, {failures} failed cells"
        return line
