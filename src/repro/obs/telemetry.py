"""Sweep telemetry: per-run wall time, throughput, and cache accounting.

The :class:`repro.experiments.runner.SweepRunner` memoises every
(configuration, workload) simulation.  This module gives that cache and
the runs behind it a visible shape:

* every executed (non-cached) run becomes a :class:`RunRecord` with wall
  time and simulated-instructions-per-second;
* every lookup bumps ``sweep.<kind>.cache_hits`` / ``cache_misses``
  counters in the global metrics registry (no-ops while observability is
  off -- the telemetry object keeps its own authoritative plain-int
  counts either way);
* registered progress callbacks fire after each lookup so long sweeps can
  report live instead of going dark for minutes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.obs.metrics import MetricsRegistry, get_registry

#: Run kinds the SweepRunner distinguishes.
KINDS = ("cpu", "gpu", "dvfs")

#: Wall-time histogram buckets (seconds).
_WALL_BOUNDS = (0.05, 0.2, 0.5, 1.0, 2.0, 5.0, 15.0, 60.0)


@dataclass(frozen=True)
class RunRecord:
    """One executed (not cache-served) simulation."""

    kind: str  # "cpu" | "gpu" | "dvfs"
    config: str
    workload: str
    wall_s: float
    instructions: int

    @property
    def ips(self) -> float:
        """Simulated instructions per wall-clock second."""
        return self.instructions / self.wall_s if self.wall_s > 0 else 0.0


class SweepTelemetry:
    """Collects run records and cache statistics for one SweepRunner."""

    def __init__(self, registry: "MetricsRegistry | None" = None):
        # NB: explicit None check -- an empty MetricsRegistry is falsy
        # (it defines __len__), so `registry or get_registry()` would
        # silently swap a fresh registry for the global one.
        if registry is None:
            registry = get_registry()
        self._scope = registry.child("sweep")
        self.records: "list[RunRecord]" = []
        self._hits = dict.fromkeys(KINDS, 0)
        self._misses = dict.fromkeys(KINDS, 0)
        self._callbacks: "list[Callable[[dict], None]]" = []

    # -- hooks ---------------------------------------------------------
    def on_progress(self, callback: "Callable[[dict], None]") -> None:
        """Register a callback fired (with an event dict) after each run."""
        self._callbacks.append(callback)

    def record_run(
        self,
        kind: str,
        config: str,
        workload: str,
        wall_s: float,
        instructions: int,
        cached: bool,
    ) -> None:
        """Account one SweepRunner lookup (``cached`` = served from memo)."""
        if kind not in self._hits:
            raise ValueError(f"unknown run kind {kind!r} (expected {KINDS})")
        scope = self._scope
        if cached:
            self._hits[kind] += 1
            scope.counter(f"{kind}.cache_hits").inc()
        else:
            self._misses[kind] += 1
            scope.counter(f"{kind}.cache_misses").inc()
            scope.counter(f"{kind}.runs").inc()
            scope.gauge(f"{kind}.last_wall_s").set(wall_s)
            scope.histogram(f"{kind}.wall_s", bounds=_WALL_BOUNDS).observe(wall_s)
            self.records.append(
                RunRecord(kind, config, workload, wall_s, instructions)
            )
        event = {
            "kind": kind,
            "config": config,
            "workload": workload,
            "cached": cached,
            "wall_s": wall_s,
            "instructions": instructions,
            "completed_runs": len(self.records),
        }
        for callback in self._callbacks:
            callback(event)

    # -- aggregate views ----------------------------------------------
    def cache_counts(self) -> "dict[str, tuple[int, int]]":
        """Per kind: (cache_hits, cache_misses)."""
        return {k: (self._hits[k], self._misses[k]) for k in KINDS}

    @property
    def total_wall_s(self) -> float:
        return sum(r.wall_s for r in self.records)

    @property
    def total_instructions(self) -> int:
        return sum(r.instructions for r in self.records)

    @property
    def mean_ips(self) -> float:
        wall = self.total_wall_s
        return self.total_instructions / wall if wall > 0 else 0.0

    def summary(self) -> dict:
        """Machine-readable rollup of the sweep so far."""
        return {
            "runs": len(self.records),
            "wall_s": round(self.total_wall_s, 3),
            "instructions": self.total_instructions,
            "instructions_per_s": round(self.mean_ips, 1),
            "cache": {
                kind: {"hits": h, "misses": m}
                for kind, (h, m) in self.cache_counts().items()
            },
        }

    def cache_summary(self) -> str:
        """One-line human-readable cache + throughput summary."""
        parts = [
            f"{kind} {self._hits[kind]}h/{self._misses[kind]}m"
            for kind in KINDS
            if self._hits[kind] or self._misses[kind]
        ]
        cache = " ".join(parts) if parts else "empty"
        return (
            f"sweep cache: {cache} | {len(self.records)} runs, "
            f"{self.total_wall_s:.1f}s wall, {self.mean_ips / 1e3:.1f}k instr/s"
        )
