"""Structured event log with span-based tracing across processes.

This is the *telemetry spine*: every interesting lifecycle moment — a
serve job, a cell attempt, a guard retry, a breaker transition, a
checkpoint flush, an engine run — becomes an **event** (a flat JSON
dict) or a **span** (a start/end event pair sharing a ``span_id``).
Spans carry a ``trace_id`` that is minted once at the outermost edge
(job submission, or the first cell attempt of a sweep) and *propagated*
down through every layer, including across the worker-pool pipe
protocol into child processes, so one ``trace_id`` stitches a
coordinator-side job span to the worker-side engine span it caused.

Design points:

* **Schema-versioned.** Every export envelope and spill line carries
  :data:`SCHEMA_VERSION`; readers skip lines they cannot parse, which
  is what makes the sidecar usable as a flight recorder (a SIGKILLed
  writer leaves at worst one torn final line).
* **Bounded ring in memory.** Events append to a ``deque(maxlen=...)``;
  ``emitted``/``dropped`` counters surface loss instead of hiding it.
* **Spillable to disk.** An :class:`EventLog` constructed with
  ``spill_path`` appends each event as one JSON line *at emit time*
  and flushes, so the file is current even if the process is killed
  mid-run.  Workers use this as their crash sidecar; the supervisor
  reads it back with :func:`read_events` when the result pipe dies.
* **Zero overhead when off.** Like the metrics registry, an event log
  created without ``enabled=True`` defers to :func:`repro.obs.enabled`
  on every emit and returns immediately while observability is off.
  Span context managers become no-ops that still propagate ``None``
  context, so instrumented call sites need no conditional code.

Context propagation uses a per-thread stack (``threading.local``): the
serve dispatcher thread that opens a job span implicitly parents every
cell/engine span opened below it on the same thread, and
:func:`current_context` packages (trace_id, span_id) for shipping
across a process boundary where :meth:`EventLog.activate` adopts it.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Iterable, Optional

from repro import obs

#: Version stamped on export envelopes and spill headers.  Bump on any
#: incompatible change to the per-event field set.
SCHEMA_VERSION = 1

#: Default in-memory ring capacity (events, not bytes).
DEFAULT_CAPACITY = 8192

#: Envelope keys :meth:`EventLog.emit` stamps on every event; payload
#: fields with these names are stored under an ``f_`` prefix instead.
_ENVELOPE_KEYS = frozenset({"seq", "ts", "proc", "pid", "name"})


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id."""
    return uuid.uuid4().hex[:16]


def new_span_id() -> str:
    """A fresh 8-hex-digit span id."""
    return uuid.uuid4().hex[:8]


class _Context(threading.local):
    """Per-thread span stack: list of (trace_id, span_id) tuples."""

    def __init__(self):
        self.stack: "list[tuple[str, str]]" = []


class EventLog:
    """A bounded, optionally disk-spilling structured event log.

    ``proc`` names the emitting process role ("coordinator",
    "worker-3", "serve") and is stamped on every event so merged logs
    remain attributable.  ``enabled=None`` defers to the global
    observability flag per emit; ``True`` pins the log always-on
    (used by tests and by workers that were told obs is on).
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        *,
        proc: str = "coordinator",
        spill_path: "str | os.PathLike | None" = None,
        clock: "Callable[[], float]" = time.time,
        enabled: "bool | None" = None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.proc = proc
        self.spill_path = str(spill_path) if spill_path is not None else None
        self._clock = clock
        self._enabled = enabled
        self._ring: "deque[dict]" = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._ctx = _Context()
        self._spill_fh = None
        self._seq = 0
        self.emitted = 0
        self.dropped = 0

    # -- state ---------------------------------------------------------
    @property
    def active(self) -> bool:
        return obs.enabled() if self._enabled is None else self._enabled

    def __len__(self) -> int:
        return len(self._ring)

    # -- emission ------------------------------------------------------
    def emit(self, name: str, /, **fields) -> "dict | None":
        """Record one event; returns the event dict, or None when off.

        ``name`` is positional-only so callers may attach a payload field
        that happens to be called ``name`` (e.g. a shared-memory segment
        name); payload fields colliding with envelope keys are prefixed
        with ``f_`` rather than silently clobbering the envelope.
        """
        if not self.active:
            return None
        with self._lock:
            self._seq += 1
            event = {
                "seq": self._seq,
                "ts": self._clock(),
                "proc": self.proc,
                "pid": os.getpid(),
                "name": name,
            }
            for key, value in fields.items():
                event[f"f_{key}" if key in _ENVELOPE_KEYS else key] = value
            if len(self._ring) == self.capacity:
                self.dropped += 1
            self._ring.append(event)
            self.emitted += 1
            if self.spill_path is not None:
                self._spill(event)
        return event

    def _spill(self, event: dict) -> None:
        """Append one JSON line and flush (flight-recorder semantics)."""
        try:
            if self._spill_fh is None:
                Path(self.spill_path).parent.mkdir(parents=True, exist_ok=True)
                self._spill_fh = open(self.spill_path, "a", encoding="utf-8")
                header = {"schema": SCHEMA_VERSION, "proc": self.proc,
                          "pid": os.getpid(), "name": "log_open",
                          "ts": self._clock(), "seq": 0}
                self._spill_fh.write(json.dumps(header, sort_keys=True) + "\n")
            self._spill_fh.write(
                json.dumps(event, sort_keys=True, default=str) + "\n"
            )
            self._spill_fh.flush()
        except OSError:
            # Best-effort: a full/unwritable disk must never fail a run.
            self._spill_fh = None
            self.spill_path = None

    # -- spans ---------------------------------------------------------
    def current_context(self) -> "tuple[str | None, str | None]":
        """The innermost (trace_id, span_id) on this thread, or Nones."""
        stack = self._ctx.stack
        if stack:
            return stack[-1]
        return (None, None)

    @contextmanager
    def span(
        self,
        name: str,
        *,
        trace_id: "str | None" = None,
        parent_id: "str | None" = None,
        **fields,
    ):
        """A timed span: emits ``<name>`` start/end events.

        Yields the ``(trace_id, span_id)`` context (Nones when the log
        is inactive) so callers can propagate it across processes.
        Explicit ``trace_id``/``parent_id`` override the thread-local
        context; otherwise the innermost open span on this thread is
        the parent.
        """
        if not self.active:
            yield (None, None)
            return
        cur_trace, cur_span = self.current_context()
        trace = trace_id or cur_trace or new_trace_id()
        parent = parent_id if parent_id is not None else cur_span
        span_id = new_span_id()
        self.emit(
            name, phase="start", trace_id=trace, span_id=span_id,
            parent_id=parent, **fields,
        )
        self._ctx.stack.append((trace, span_id))
        start = time.perf_counter()
        error: "str | None" = None
        try:
            yield (trace, span_id)
        except BaseException as exc:
            error = type(exc).__name__
            raise
        finally:
            self._ctx.stack.pop()
            end_fields = dict(fields)
            if error is not None:
                end_fields["error"] = error
            self.emit(
                name, phase="end", trace_id=trace, span_id=span_id,
                parent_id=parent, dur_s=time.perf_counter() - start,
                **end_fields,
            )

    @contextmanager
    def activate(self, trace_id: "str | None", span_id: "str | None"):
        """Adopt a remote (trace_id, span_id) as this thread's context.

        Workers call this with the context shipped in their spec so
        their spans parent correctly under the coordinator's span.
        """
        if not self.active or trace_id is None:
            yield
            return
        self._ctx.stack.append((trace_id, span_id or ""))
        try:
            yield
        finally:
            self._ctx.stack.pop()

    # -- reading / merging ---------------------------------------------
    def events(self) -> "list[dict]":
        with self._lock:
            return list(self._ring)

    def export(self) -> dict:
        """Schema-versioned envelope for shipping over the result pipe."""
        with self._lock:
            return {
                "schema": SCHEMA_VERSION,
                "proc": self.proc,
                "emitted": self.emitted,
                "dropped": self.dropped,
                "events": list(self._ring),
            }

    def absorb(self, events: "Iterable[dict]") -> int:
        """Merge foreign events (a worker's export) into this log.

        Events keep their own ``proc``/``pid``/``ts`` attribution; only
        the ring occupancy accounting is local.  Returns the count.
        """
        count = 0
        with self._lock:
            for event in events:
                if not isinstance(event, dict):
                    continue
                if len(self._ring) == self.capacity:
                    self.dropped += 1
                self._ring.append(event)
                self.emitted += 1
                count += 1
        return count

    def counts_by_name(self) -> "dict[str, int]":
        out: "dict[str, int]" = {}
        for event in self.events():
            name = event.get("name", "?")
            out[name] = out.get(name, 0) + 1
        return out

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self.emitted = 0
            self.dropped = 0
            self._seq = 0

    def close(self) -> None:
        with self._lock:
            if self._spill_fh is not None:
                try:
                    self._spill_fh.close()
                except OSError:
                    pass
                self._spill_fh = None

    # -- export formats ------------------------------------------------
    def write_jsonl(self, path: "str | os.PathLike") -> int:
        """Dump the in-memory ring as JSONL (one event per line)."""
        events = self.events()
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with open(target, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(
                {"schema": SCHEMA_VERSION, "proc": self.proc,
                 "name": "log_open", "seq": 0, "ts": 0.0,
                 "pid": os.getpid()}, sort_keys=True) + "\n")
            for event in events:
                fh.write(json.dumps(event, sort_keys=True, default=str) + "\n")
        return len(events)

    def chrome_trace(self) -> dict:
        return chrome_trace(self.events())


def read_events(path: "str | os.PathLike") -> "list[dict]":
    """Read a JSONL event file, skipping torn/foreign lines.

    This is the flight-recorder read path: the writer may have been
    SIGKILLed mid-line, so any line that fails to parse (or is not a
    dict) is silently dropped rather than failing the recovery.
    """
    events: "list[dict]" = []
    try:
        text = Path(path).read_text(encoding="utf-8", errors="replace")
    except OSError:
        return events
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except ValueError:
            continue
        if isinstance(event, dict) and event.get("name") != "log_open":
            events.append(event)
    return events


def chrome_trace(events: "Iterable[dict]") -> dict:
    """Convert merged span events into a Chrome ``trace_event`` doc.

    Span start/end pairs (matched on ``span_id``) become complete "X"
    events; unmatched starts (the worker died inside the span) and
    plain events become instant "i" events, so a flight-recorder tail
    still renders.  Processes map to Chrome pids via their real OS pid,
    with "M" metadata rows naming each ``proc``; timestamps are wall
    clock in microseconds, so coordinator and worker rows line up on
    one shared axis.
    """
    opens: "dict[str, dict]" = {}
    rows: "list[dict]" = []
    procs: "dict[int, str]" = {}
    for event in events:
        pid = int(event.get("pid", 0))
        procs.setdefault(pid, str(event.get("proc", "?")))
        phase = event.get("phase")
        span_id = event.get("span_id")
        if phase == "start" and span_id is not None:
            opens[span_id] = event
            continue
        if phase == "end" and span_id is not None:
            start = opens.pop(span_id, None)
            begin_ts = (start or event)["ts"]
            dur_s = event.get("dur_s", 0.0) or 0.0
            rows.append({
                "name": event.get("name", "?"),
                "ph": "X",
                "pid": pid,
                "tid": 0,
                "ts": begin_ts * 1e6,
                "dur": max(dur_s * 1e6, 1.0),
                "args": {
                    k: v for k, v in event.items()
                    if k not in ("name", "ts", "proc", "pid", "phase", "dur_s")
                },
            })
            continue
        rows.append({
            "name": event.get("name", "?"),
            "ph": "i",
            "s": "t",
            "pid": pid,
            "tid": 0,
            "ts": event.get("ts", 0.0) * 1e6,
            "args": {
                k: v for k, v in event.items()
                if k not in ("name", "ts", "proc", "pid", "phase")
            },
        })
    # Unmatched starts: the span never closed (crash) -- instant marker.
    for start in opens.values():
        rows.append({
            "name": start.get("name", "?") + ":unclosed",
            "ph": "i",
            "s": "t",
            "pid": int(start.get("pid", 0)),
            "tid": 0,
            "ts": start.get("ts", 0.0) * 1e6,
            "args": {"span_id": start.get("span_id"),
                     "trace_id": start.get("trace_id")},
        })
    meta = [
        {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
         "args": {"name": proc}}
        for pid, proc in sorted(procs.items())
    ]
    return {
        "traceEvents": meta + sorted(rows, key=lambda r: r["ts"]),
        "displayTimeUnit": "ms",
        "metadata": {"schema": SCHEMA_VERSION},
    }


#: The process-wide event log (cheap while observability is off).
_EVENT_LOG = EventLog()


def get_event_log() -> EventLog:
    """The process-wide structured event log."""
    return _EVENT_LOG
