"""Structured counter dumps for single runs (the ``repro stats`` command).

Turns a finished :class:`~repro.core.simulate.CpuRunResult` /
:class:`~repro.core.simulate.GpuRunResult` into a nested, JSON-ready dict
of counters and rates -- the per-unit views the paper's analysis leans on
(DL1 fast-way hit rate, slow/fast ALU dispatch split, stall breakdown,
register-file-cache hit rate) -- plus whatever the global metrics registry
currently exposes when observability is enabled.

This module is deliberately *not* imported from :mod:`repro.obs`'s
``__init__`` -- it depends on the simulation layer, which itself imports
the observability primitives.
"""

from __future__ import annotations

from repro import obs
from repro.obs.metrics import get_registry


def _round(value: float, digits: int = 4) -> float:
    return round(float(value), digits)


def collect_cpu_stats(run) -> dict:
    """Nested counter dump for one CPU run (``CpuRunResult``)."""
    core = run.core
    act = core.activity
    total_alu = act.alu_fast_ops + act.alu_slow_ops
    stats = {
        "kind": "cpu",
        "config": run.config,
        "workload": run.app,
        "summary": {
            "cycles": core.cycles,
            "committed": core.committed,
            "ipc": _round(core.ipc),
            "time_s": run.time_s,
            "energy_j": run.energy_j,
            "power_w": _round(run.power_w),
            "ed": run.ed,
            "ed2": run.ed2,
        },
        "frontend": {
            "fetched": act.fetched,
            "il1_accesses": act.il1_accesses,
            "bpred_lookups": act.bpred_lookups,
            "bpred_miss_rate": _round(core.branch_mispredict_rate),
        },
        "alu": {
            "fast_dispatches": act.alu_fast_ops,
            "slow_dispatches": act.alu_slow_ops,
            "fast_fraction": _round(core.alu_fast_fraction),
            "muldiv_ops": act.muldiv_ops,
            "fpu_ops": act.fpu_ops,
            "lsu_ops": act.lsu_ops,
        },
        "dl1": {
            "accesses": act.dl1_accesses,
            "hit_rate": _round(core.dl1_hit_rate),
            "fast_way_hits": act.dl1_fast_hits,
            "fast_way_hit_rate": _round(core.dl1_fast_hit_rate),
            "slow_accesses": act.dl1_slow_accesses,
            "line_moves": act.dl1_line_moves,
        },
        "l2": {"accesses": act.l2_accesses, "hit_rate": _round(core.l2_hit_rate)},
        "l3": {"accesses": act.l3_accesses, "hit_rate": _round(core.l3_hit_rate)},
        "dram": {"accesses": act.dram_accesses},
        "stalls": {
            "frontend_cycles": act.stall_frontend_cycles,
            "dep_cycles": act.stall_dep_cycles,
            "mem_cycles": act.stall_mem_cycles,
            "structural_cycles": act.stall_structural_cycles,
            **{
                f"{k}_fraction": _round(v)
                for k, v in act.stall_breakdown(core.cycles).items()
            },
        },
        "occupancy": {"rob_peak": core.rob_peak, "iq_peak": core.iq_peak},
    }
    _attach_registry(stats)
    return stats


def collect_gpu_stats(run) -> dict:
    """Nested counter dump for one GPU run (``GpuRunResult``)."""
    cu = run.gpu.cu_result
    stats = {
        "kind": "gpu",
        "config": run.config,
        "workload": run.kernel,
        "summary": {
            "cycles": cu.cycles,
            "instructions": cu.instructions,
            "ipc": _round(cu.ipc),
            "time_s": run.time_s,
            "energy_j": run.energy_j,
            "power_w": _round(run.power_w),
            "ed": run.ed,
            "ed2": run.ed2,
        },
        "cu": {
            "n_cus": run.gpu.n_cus,
            "fma_ops": cu.fma_ops,
            "mem_ops": cu.mem_ops,
        },
        "rf": {"reads": cu.rf_reads, "writes": cu.rf_writes},
        "rfc": {
            "hits": cu.rf_cache_read_hits,
            "misses": cu.rf_cache_read_misses,
            "writes": cu.rf_cache_writes,
            "hit_rate": _round(cu.rf_cache_hit_rate),
        },
    }
    _attach_registry(stats)
    return stats


def _attach_registry(stats: dict) -> None:
    """Add the global registry snapshot when observability is on."""
    if obs.enabled():
        snapshot = get_registry().snapshot()
        if snapshot:
            stats["registry"] = {k: snapshot[k] for k in sorted(snapshot)}
    stats["runtime"] = collect_runtime_stats()


def collect_runtime_stats() -> dict:
    """Process-wide runtime counters: trace cache and shm transport.

    These used to be pull-model probes only (visible solely through a
    SweepTelemetry-owned registry), so single-run ``repro stats`` never
    showed them; they are cheap plain-int reads, so they are attached
    unconditionally.
    """
    from repro.resilience.shm import transport_enabled, transport_stats
    from repro.workloads.trace_cache import shared_cache

    return {
        "trace_cache": shared_cache().stats(),
        "shm_transport": {
            "enabled": transport_enabled(),
            **transport_stats(),
        },
    }


def flatten_stats(stats: dict, prefix: str = "") -> "dict[str, object]":
    """``{"dl1": {"hit_rate": x}}`` -> ``{"dl1.hit_rate": x}``."""
    out: "dict[str, object]" = {}
    for key, value in stats.items():
        name = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            out.update(flatten_stats(value, name))
        else:
            out[name] = value
    return out


def format_stats(stats: dict) -> str:
    """Aligned ``name  value`` text dump of a nested stats dict."""
    flat = flatten_stats(stats)
    width = max(len(name) for name in flat)
    lines = []
    for name, value in flat.items():
        if isinstance(value, float):
            rendered = f"{value:.6g}"
        else:
            rendered = str(value)
        lines.append(f"{name:<{width}}  {rendered}")
    return "\n".join(lines)
