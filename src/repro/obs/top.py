"""``repro top``: a live terminal view of a running simulation service.

Pure tailing, no RPC: the serve tier already writes two small JSON files
(the health snapshot and, with observability on, the metrics snapshot
next to it) with atomic replaces; ``repro top`` polls both and renders
queue depth, breaker states, worker utilisation, throughput, and
shed/retry rates.  Rates come from successive metrics snapshots: the
counters are cumulative, so ``(now - prev) / dt`` over the snapshot
``written_at`` stamps gives instructions/s and events/s without the
writer keeping any windowed state.

Staleness is judged with :class:`repro.serve.health.HealthWatcher` --
the reader's own monotonic clock watching the ``seq`` advance -- so a
stepped wall clock on either side never fakes a dead (or alive)
service.

Everything is injectable (clock, output) and the renderer is a pure
function of its inputs, so the dashboard is testable without a terminal
or a sleeping loop (``repro top --once``).
"""

from __future__ import annotations

import time
from typing import Callable

from repro.obs.export import (
    metrics_snapshot_path,
    read_metrics_snapshot,
    snapshot_from_state,
)
from repro.serve.health import HealthSnapshot, HealthWatcher

#: Counter names (flat snapshot keys) whose per-second rates headline
#: the dashboard, as (label, key-list) rows; keys are summed.
RATE_ROWS = (
    ("instr/s", (
        "sweep.cpu.instructions_total",
        "sweep.gpu.instructions_total",
        "sweep.dvfs.instructions_total",
    )),
    ("runs/s", (
        "sweep.cpu.runs", "sweep.gpu.runs", "sweep.dvfs.runs",
    )),
    ("retry/s", (
        "sweep.cpu.retries", "sweep.gpu.retries", "sweep.dvfs.retries",
    )),
    ("shed/s", ("sweep.serve.shed",)),
)

#: HTTP front-door rate rows, rendered on their own ``http:`` line so
#: the classic ``rates:`` line stays byte-stable for services that never
#: started a front door.
HTTP_RATE_ROWS = (
    ("req/s", ("sweep.serve.http.requests",)),
    ("429/s", ("sweep.serve.http.status.429",)),
    ("503/s", ("sweep.serve.http.status.503",)),
)

#: Batched-engine rate rows, rendered on their own ``engine:`` line (only
#: once a batched sweep has run, so classic dashboards stay byte-stable).
ENGINE_RATE_ROWS = (
    ("engine instr/s", ("sweep.batch.instructions",)),
)

#: Flat-key prefix of the HTTP latency histogram buckets.
_HTTP_LATENCY = "sweep.serve.http.latency_s"


def _histogram_quantile(flat: dict, name: str, q: float) -> "float | None":
    """A quantile estimate from a flat cumulative-bucket histogram.

    ``flat`` holds ``<name>.le_<bound>`` cumulative counts plus
    ``<name>.le_inf`` and ``<name>.count`` (the export layer's flat
    encoding).  Returns the upper bound of the first bucket whose
    cumulative count reaches the target rank -- None when the histogram
    is absent or empty (a server that never started must render ``--``,
    not raise).
    """
    total = flat.get(f"{name}.count")
    if not total:
        return None
    prefix = f"{name}.le_"
    buckets: "list[tuple[float, float]]" = []
    for key, value in flat.items():
        if not key.startswith(prefix):
            continue
        raw = key[len(prefix):]
        bound = float("inf") if raw == "inf" else float(raw)
        buckets.append((bound, float(value)))
    if not buckets:
        return None
    buckets.sort()
    rank = q * float(total)
    for bound, cumulative in buckets:
        if cumulative >= rank:
            return bound
    return buckets[-1][0]


def _fmt_latency(value: "float | None") -> str:
    if value is None:
        return "--"
    if value == float("inf"):
        return ">5s"
    if value >= 1.0:
        return f"{value:.1f}s"
    return f"{value * 1000:.0f}ms"


def _fmt_rate(value: "float | None") -> str:
    if value is None:
        return "--"
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e3:
        return f"{value / 1e3:.2f}k"
    if value >= 10:
        return f"{value:.1f}"
    return f"{value:.2f}"


def _bar(fraction: float, width: int = 20) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    return "[" + "#" * filled + "." * (width - filled) + "]"


class TopSession:
    """Stateful poller: remembers the previous sample to compute rates."""

    def __init__(
        self,
        health_file: str,
        *,
        stale_after_s: float = 10.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.health_file = health_file
        self.metrics_file = metrics_snapshot_path(health_file)
        self.watcher = HealthWatcher(
            health_file, stale_after_s=stale_after_s, clock=clock
        )
        self._prev: "tuple[float, dict] | None" = None  # (written_at, flat)

    def sample(self) -> "tuple[HealthSnapshot | None, dict | None, dict]":
        """One poll: (health, metrics doc, {label: rate-or-None})."""
        health = self.watcher.poll()
        doc = read_metrics_snapshot(self.metrics_file)
        rates: "dict[str, float | None]" = {
            label: None
            for label, _keys in RATE_ROWS + HTTP_RATE_ROWS + ENGINE_RATE_ROWS
        }
        if doc is not None:
            flat = snapshot_from_state(doc.get("state", {}))
            written_at = float(doc.get("written_at", 0.0))
            if self._prev is not None:
                prev_at, prev_flat = self._prev
                dt = written_at - prev_at
                if dt > 0:
                    for label, keys in (
                        RATE_ROWS + HTTP_RATE_ROWS + ENGINE_RATE_ROWS
                    ):
                        # Clamp each counter's delta individually: a
                        # restarted writer resets its cumulative
                        # counters to zero, and that one negative delta
                        # must read as "no progress observed", not
                        # cancel the positive deltas of its siblings
                        # (or render as a negative rate).
                        delta = sum(
                            max(flat.get(k, 0.0) - prev_flat.get(k, 0.0), 0.0)
                            for k in keys
                        )
                        rates[label] = delta / dt
            if self._prev is None or written_at != self._prev[0]:
                self._prev = (written_at, flat)
        return health, doc, rates


def render_dashboard(
    health: "HealthSnapshot | None",
    metrics_doc: "dict | None",
    rates: "dict[str, float | None]",
    *,
    silent_s: "float | None" = None,
) -> str:
    """Render one dashboard frame as plain multi-line text."""
    lines: "list[str]" = ["repro top"]
    if health is None:
        lines.append("health:  (no health file yet)")
    else:
        state = "draining" if health.draining else (
            "ready" if health.ready else "not-ready"
        )
        silent = f", silent {silent_s:.1f}s" if silent_s is not None else ""
        lines.append(
            f"service: {'alive' if health.alive else 'DOWN'} ({state}), "
            f"pid {health.pid}, seq {health.seq}{silent}"
        )
        cap = max(health.queue_capacity, 1)
        lines.append(
            f"queue:   {_bar(health.queue_depth / cap)} "
            f"{health.queue_depth}/{health.queue_capacity}"
        )
        lines.append(
            f"workers: {_bar(health.utilization())} "
            f"{health.in_flight}/{health.workers} in flight "
            f"({health.isolation}{', DEGRADED' if health.degraded else ''})"
        )
        if health.counters:
            lines.append(
                "jobs:    " + ", ".join(
                    f"{k}={v}" for k, v in sorted(health.counters.items())
                )
            )
        if health.breakers:
            not_closed = health.breakers_open
            parts = [
                f"{key}:{snap['state']}"
                for key, snap in sorted(health.breakers.items())
                if snap.get("state") != "closed"
            ]
            lines.append(
                f"breakers: {not_closed} not closed"
                + (" -- " + ", ".join(parts) if parts else "")
            )
    if metrics_doc is None:
        lines.append("metrics: (no metrics snapshot -- is obs enabled?)")
    else:
        lines.append(
            "rates:   " + "  ".join(
                f"{label} {_fmt_rate(rates.get(label))}"
                for label, _keys in RATE_ROWS
            )
        )
        flat = snapshot_from_state(metrics_doc.get("state", {}))
        in_flight = flat.get("sweep.serve.http.in_flight")
        lines.append(
            "http:    " + "  ".join(
                f"{label} {_fmt_rate(rates.get(label))}"
                for label, _keys in HTTP_RATE_ROWS
            )
            + f"  in-flight {int(in_flight) if in_flight is not None else '--'}"
            + f"  p50 {_fmt_latency(_histogram_quantile(flat, _HTTP_LATENCY, 0.5))}"
            + f"  p99 {_fmt_latency(_histogram_quantile(flat, _HTTP_LATENCY, 0.99))}"
        )
        batch_cells = flat.get("sweep.batch.cells", 0.0)
        if batch_cells:
            vectorized = flat.get("sweep.batch.vectorized_cells", 0.0)
            cycles = flat.get("sweep.batch.engine_cycles", 0.0)
            skipped = flat.get("sweep.batch.skipped_cycles", 0.0)
            occupancy = vectorized / batch_cells
            skip_rate = skipped / (cycles + skipped) if cycles + skipped else 0.0
            lines.append(
                f"engine:  instr/s {_fmt_rate(rates.get('engine instr/s'))}"
                f"  batch occupancy {occupancy * 100:.0f}%"
                f"  skip rate {skip_rate * 100:.0f}%"
            )
        store_hits = int(flat.get("sweep.store.hits", 0))
        store_misses = int(flat.get("sweep.store.misses", 0))
        quarantined = int(flat.get("sweep.diskio.quarantined", 0))
        if store_hits or store_misses or quarantined:
            lines.append(
                f"store:   {store_hits} hits, {store_misses} misses, "
                f"{quarantined} quarantined"
            )
        age = None
        if health is not None and health.metrics_age_s is not None:
            age = health.metrics_age_s
        lines.append(
            f"metrics: seq {metrics_doc.get('seq', '?')}"
            + (f", written {age:.1f}s before health" if age is not None else "")
        )
    return "\n".join(lines)


def render_fleet(snapshot) -> str:
    """Render one fleet-rollup frame (``repro top --fleet``)."""
    lines = ["repro top (fleet)"]
    if snapshot is None:
        lines.append("fleet:   (no fleet file yet)")
    else:
        lines.append(snapshot.describe())
    return "\n".join(lines)


def run_top(
    health_file: str,
    *,
    interval_s: float = 1.0,
    iterations: "int | None" = None,
    out: Callable[[str], None] = print,
    clear: bool = True,
    sleep: Callable[[float], None] = time.sleep,
    fleet: bool = False,
) -> int:
    """The ``repro top`` loop; returns the number of frames rendered.

    ``iterations=1`` is the ``--once`` mode (no clearing, no sleep) that
    scripts and tests use; ``None`` loops until KeyboardInterrupt.
    With ``fleet=True``, ``health_file`` is a fabric ``fleet.json``
    rollup and each frame renders the whole node fleet instead.
    """
    session = None if fleet else TopSession(health_file)
    frames = 0
    try:
        while iterations is None or frames < iterations:
            if fleet:
                from repro.fabric.fleet import read_fleet

                frame = render_fleet(read_fleet(health_file))
            else:
                health, doc, rates = session.sample()
                frame = render_dashboard(
                    health, doc, rates, silent_s=session.watcher.silent_s()
                )
            if clear and iterations != 1:
                out("\x1b[2J\x1b[H" + frame)
            else:
                out(frame)
            frames += 1
            if iterations is not None and frames >= iterations:
                break
            sleep(interval_s)
    except KeyboardInterrupt:
        pass
    return frames
