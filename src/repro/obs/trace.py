"""Bounded ring-buffer pipeline tracer with Chrome trace-event export.

The tracer records per-cycle pipeline events -- fetch redirects, steering
choices, issues, commits, cache misses, wavefront stalls -- into a
``deque(maxlen=capacity)``: when full, the oldest events fall off, so a
long run keeps its *tail* (usually what you want when a run misbehaves at
the end) and memory stays bounded no matter the trace length.

Export follows the Chrome ``trace_event`` JSON-array format understood by
``chrome://tracing`` and Perfetto: one simulated cycle maps to one
microsecond of trace time, pipeline stages map to named threads, duration
events (``ph: "X"``) carry operation latencies, and everything else is an
instant event (``ph: "i"``).

Hot-path contract: simulation loops hold the tracer in a local and guard
every emission with ``if tracer is not None`` -- when tracing is off the
cost is a single local truth test and no call is made into this module.
"""

from __future__ import annotations

import json
from collections import deque

#: Stage -> virtual thread id for the Chrome export.
STAGE_FETCH = 0
STAGE_DISPATCH = 1
STAGE_ISSUE = 2
STAGE_COMMIT = 3
STAGE_MEM = 4
STAGE_STALL = 5
STAGE_STEER = 6

STAGE_NAMES = {
    STAGE_FETCH: "fetch",
    STAGE_DISPATCH: "dispatch",
    STAGE_ISSUE: "issue",
    STAGE_COMMIT: "commit",
    STAGE_MEM: "memory",
    STAGE_STALL: "stall",
    STAGE_STEER: "steer",
}


class PipelineTracer:
    """Bounded event recorder for one simulation run."""

    def __init__(self, capacity: int = 65536, process_name: str = "repro"):
        if capacity <= 0:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self.process_name = process_name
        self.emitted = 0
        self._buf: "deque[tuple]" = deque(maxlen=capacity)

    # -- recording -----------------------------------------------------
    def emit(
        self,
        cycle: int,
        name: str,
        stage: int = STAGE_ISSUE,
        dur: int = 0,
        **args,
    ) -> None:
        """Record one event at ``cycle``.

        ``dur > 0`` makes it a duration ("X") event of that many cycles;
        otherwise it is an instant ("i") event.  ``args`` become the
        event's ``args`` payload in the export.
        """
        self.emitted += 1
        self._buf.append((cycle, name, stage, dur, args))

    def clear(self) -> None:
        self._buf.clear()
        self.emitted = 0

    # -- inspection ----------------------------------------------------
    def __len__(self) -> int:
        return len(self._buf)

    @property
    def dropped(self) -> int:
        """Events pushed out of the ring by newer ones."""
        return self.emitted - len(self._buf)

    def events(self) -> "list[tuple]":
        """Raw ``(cycle, name, stage, dur, args)`` tuples, oldest first."""
        return list(self._buf)

    def counts_by_name(self) -> "dict[str, int]":
        out: "dict[str, int]" = {}
        for _, name, _, _, _ in self._buf:
            out[name] = out.get(name, 0) + 1
        return out

    # -- export --------------------------------------------------------
    def chrome_trace(self) -> dict:
        """The run as a Chrome trace-event document (JSON-serialisable)."""
        events: "list[dict]" = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": {"name": self.process_name},
            }
        ]
        used_stages = {stage for _, _, stage, _, _ in self._buf}
        for stage in sorted(used_stages):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": stage,
                    "args": {"name": STAGE_NAMES.get(stage, f"stage{stage}")},
                }
            )
        for cycle, name, stage, dur, args in self._buf:
            event = {
                "name": name,
                "cat": STAGE_NAMES.get(stage, f"stage{stage}"),
                "pid": 0,
                "tid": stage,
                "ts": cycle,  # 1 cycle == 1 us of trace time
            }
            if dur > 0:
                event["ph"] = "X"
                event["dur"] = dur
            else:
                event["ph"] = "i"
                event["s"] = "t"
            if args:
                event["args"] = dict(args)
            events.append(event)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "metadata": {
                "tool": "repro.obs.trace",
                "capacity": self.capacity,
                "emitted": self.emitted,
                "dropped": self.dropped,
            },
        }

    def write(self, path: str) -> None:
        """Write the Chrome trace JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.chrome_trace(), fh)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PipelineTracer(capacity={self.capacity}, "
            f"recorded={len(self._buf)}, dropped={self.dropped})"
        )
