"""Observability: metrics, tracing, telemetry, and the telemetry spine.

The subsystem's legs:

* :mod:`repro.obs.metrics` -- a hierarchical metrics registry.  Counters,
  gauges, and histograms live under dotted names
  (``cpu.core0.dl1.fast_way_hits``); *probes* bind a name to a zero-argument
  callable so hot simulation loops keep their plain integer counters and the
  registry reads them lazily at snapshot time.  ``snapshot()`` / ``delta()``
  replace the hand-rolled measurement-window bookkeeping the CPU core used
  to carry.  ``export_state()`` / ``merge_exported()`` are the cross-process
  transport: workers ship typed deltas back over the result pipe and the
  supervisor merges them so serial and parallel snapshots agree.
* :mod:`repro.obs.trace` -- a bounded ring-buffer pipeline tracer whose
  contents export as Chrome ``trace_event`` JSON (open the file in
  ``chrome://tracing`` or Perfetto).
* :mod:`repro.obs.events` -- the structured, schema-versioned event log
  with span-based distributed tracing: serve jobs, cell attempts, guard
  retries, breaker transitions, checkpoint flushes, and engine runs all
  become events/spans carrying a ``trace_id`` that flows from the
  coordinator through the worker pool's pipe protocol into the engines;
  a per-worker disk spill doubles as a SIGKILL flight recorder.
* :mod:`repro.obs.export` -- Prometheus text exposition (with a strict
  parser for CI validation), the periodic metrics-snapshot file the
  serve tier writes next to its health file, and the determinism filter
  that CI compares byte-for-byte between serial and parallel sweeps.
* :mod:`repro.obs.top` -- the ``repro top`` live dashboard tailing the
  health + metrics snapshot files.
* :mod:`repro.obs.telemetry` -- per-(config, workload) wall-time and
  throughput records for sweep runs, including the SweepRunner's own
  result-cache hit/miss accounting and a live progress callback.

Zero overhead when off
----------------------
Observability is gated by a module-level flag (:func:`enabled`, initialised
from the ``REPRO_OBS`` environment variable, default off).  Hot paths never
call into this package per event: they test a *local* reference
(``if tracer is not None: ...``) that is only non-None when tracing was
explicitly requested, and all registry reads happen through probes at
snapshot boundaries.  With the flag off, the global registry hands out a
shared null metric whose mutators are no-ops, so stray ``inc()`` calls cost
one dynamic dispatch and touch no state.
"""

from __future__ import annotations

import os


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in {"1", "true", "yes", "on"}


#: Module-level observability switch (see module docstring).
_enabled = _env_flag("REPRO_OBS")


def enabled() -> bool:
    """Is observability globally enabled?"""
    return _enabled


def set_enabled(flag: bool) -> None:
    """Flip the global observability switch (returns nothing)."""
    global _enabled
    _enabled = bool(flag)


def cycle_skip_disabled() -> bool:
    """``REPRO_NO_CYCLE_SKIP`` escape hatch for both cycle engines.

    When set, :class:`repro.cpu.core.OutOfOrderCore` and
    :class:`repro.gpu.cu.ComputeUnit` force the reference per-cycle walk
    instead of the event-driven fast path.  Read per ``run()`` call (not
    cached at import) so tests and the bench harness can toggle it.
    """
    return _env_flag("REPRO_NO_CYCLE_SKIP")


def batch_disabled() -> bool:
    """``REPRO_NO_BATCH`` escape hatch for batched/SoA execution.

    When set, the sweep tier runs one cell at a time through the scalar
    engines (no multi-cell lockstep batches) and
    :class:`repro.cpu.core.OutOfOrderCore` rebuilds its per-run hot lists
    instead of consuming the cached structure-of-arrays trace decode --
    i.e. it restores the PR 5 single-cell fast path exactly.  Read per
    call (not cached at import) so tests and the bench harness can
    toggle it.
    """
    return _env_flag("REPRO_NO_BATCH")


from repro.obs.metrics import (  # noqa: E402  (flag must exist first)
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRIC,
    get_registry,
)
from repro.obs.trace import PipelineTracer  # noqa: E402
from repro.obs.telemetry import RunRecord, SweepTelemetry  # noqa: E402
from repro.obs.events import (  # noqa: E402
    EventLog,
    chrome_trace,
    get_event_log,
    new_trace_id,
    read_events,
)
from repro.obs.export import (  # noqa: E402
    deterministic_snapshot,
    parse_prometheus,
    prometheus_text,
    read_metrics_snapshot,
    write_metrics_snapshot,
)

__all__ = [
    "enabled",
    "set_enabled",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRIC",
    "get_registry",
    "PipelineTracer",
    "RunRecord",
    "SweepTelemetry",
    "EventLog",
    "chrome_trace",
    "get_event_log",
    "new_trace_id",
    "read_events",
    "deterministic_snapshot",
    "parse_prometheus",
    "prometheus_text",
    "read_metrics_snapshot",
    "write_metrics_snapshot",
]
