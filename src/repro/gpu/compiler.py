"""Compiler-style wavefront rescheduling (the paper's future-work item).

Section IV-C4: "One could also customize the GPU compiler to hide some of
the additional FPU latency. We leave the analysis of these techniques to
future work."  This module implements that analysis: a list scheduler that
reorders each wavefront's instruction stream -- preserving all register
dependencies -- to *increase* producer-consumer distances, so the deeper
TFET FMA pipeline and slower register file have more independent work to
overlap with.

The algorithm is classic latency-aware list scheduling: walk the stream,
keep a ready window of instructions whose producers have been placed at
least ``target_gap`` slots earlier, and prefer the ready instruction whose
consumers are farthest away.  Dependencies are expressed as distances, so
after reordering every distance is recomputed from the permutation.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.gpu_generator import KernelTrace


def _reschedule_row(
    op: list, dep: list, s1: list, s2: list, dst: list,
    target_gap: int, window: int,
) -> list:
    """Return a placement order (list of original indices) for one stream."""
    n = len(op)
    placed_at = [-1] * n  # slot each original instruction was placed in
    order: list[int] = []
    next_unready = 0  # instructions enter the candidate pool in order
    pool: list[int] = []
    while len(order) < n:
        # Refill the pool up to the lookahead window.
        while next_unready < n and len(pool) < window:
            pool.append(next_unready)
            next_unready += 1
        slot = len(order)
        best = None
        for idx in pool:
            d = dep[idx]
            if d:
                p_slot = placed_at[idx - d]
                if p_slot < 0:
                    continue  # producer not placed yet
                if slot - p_slot < target_gap:
                    continue  # too close to its producer; defer
            best = idx
            break
        if best is None:
            # Everything in the pool is waiting on its gap; take the oldest
            # (the schedule cannot stretch further without stalling).
            best = pool[0]
        pool.remove(best)
        placed_at[best] = slot
        order.append(best)
    return order


def reschedule_kernel(
    trace: KernelTrace, target_gap: int = 4, window: int = 8
) -> KernelTrace:
    """Reorder every wavefront stream to stretch dependency distances.

    Returns a new :class:`KernelTrace`; the original is untouched.  All
    dependencies are preserved (a consumer is never placed before its
    producer) and distances are recomputed for the new order.
    """
    if target_gap < 1 or window < 1:
        raise ValueError("target_gap and window must be positive")
    n_wf, n_ins = trace.op.shape
    new_op = np.empty_like(trace.op)
    new_dep = np.zeros_like(trace.dep_dist)
    new_s1 = np.empty_like(trace.src1_reg)
    new_s2 = np.empty_like(trace.src2_reg)
    new_dst = np.empty_like(trace.dst_reg)

    for wf in range(n_wf):
        op = trace.op[wf].tolist()
        dep = trace.dep_dist[wf].tolist()
        s1 = trace.src1_reg[wf].tolist()
        s2 = trace.src2_reg[wf].tolist()
        dst = trace.dst_reg[wf].tolist()
        order = _reschedule_row(op, dep, s1, s2, dst, target_gap, window)
        position = {orig: slot for slot, orig in enumerate(order)}
        for slot, orig in enumerate(order):
            new_op[wf, slot] = op[orig]
            new_s1[wf, slot] = s1[orig]
            new_s2[wf, slot] = s2[orig]
            new_dst[wf, slot] = dst[orig]
            d = dep[orig]
            if d:
                producer_slot = position[orig - d]
                assert producer_slot < slot, "scheduler broke a dependency"
                new_dep[wf, slot] = slot - producer_slot
            else:
                new_dep[wf, slot] = 0

    out = KernelTrace(
        profile=trace.profile,
        op=new_op, dep_dist=new_dep,
        src1_reg=new_s1, src2_reg=new_s2, dst_reg=new_dst,
    )
    out.validate()
    return out


def mean_dependency_distance(trace: KernelTrace) -> float:
    """Average non-zero dependency distance (the scheduler's objective)."""
    deps = trace.dep_dist[trace.dep_dist > 0]
    return float(deps.mean()) if deps.size else 0.0
