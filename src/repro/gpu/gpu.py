"""Whole-GPU runs and compute-unit-count scaling.

The modelled GPU has ``n_cus`` identical compute units executing identical
(statistically) wavefront populations, so one detailed CU run gives the
machine's per-CU throughput.  Total execution time for a fixed amount of
work is then

``T(n) = serial + (work / n) * per-unit-time(contention(n))``

where contention raises the effective memory latency as more CUs share the
memory system -- the paper's AdvHet-2X GPU (16 CUs in the 8-CU power
budget) gains 30% rather than the ideal ~42% for exactly this reason.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.cu import ComputeUnit, CUConfig, CUResult
from repro.workloads.gpu_generator import KernelTrace

#: Per-sharer memory-latency uplift coefficient for CU scaling (relative to
#: the 8-CU reference machine).
GPU_CONTENTION_ALPHA = 0.50

#: The paper's reference machine: 8 compute units.
REFERENCE_CUS = 8


@dataclass(frozen=True)
class GpuConfig:
    """A whole-GPU configuration: per-CU device choices plus CU count."""

    cu: CUConfig
    n_cus: int = REFERENCE_CUS

    def __post_init__(self) -> None:
        if self.n_cus <= 0:
            raise ValueError("need at least one compute unit")


@dataclass
class GpuResult:
    """Aggregate of one whole-GPU run at fixed total work."""

    n_cus: int
    cu_result: CUResult
    #: Effective execution cycles for the reference total work.
    effective_cycles: float
    freq_ghz: float

    @property
    def time_s(self) -> float:
        return self.effective_cycles / (self.freq_ghz * 1e9)


def memory_contention_scale(n_cus: int, mem_intensity: float) -> float:
    """Memory-latency multiplier relative to the 8-CU reference."""
    if n_cus <= REFERENCE_CUS:
        return 1.0
    extra = (n_cus - REFERENCE_CUS) / REFERENCE_CUS
    return 1.0 + GPU_CONTENTION_ALPHA * extra * mem_intensity


@dataclass
class GpuBatchOutcome:
    """One cell's outcome from :func:`run_gpu_batch`.

    Exactly one of ``result``/``error`` is set; a failing cell never
    takes its batch siblings down with it.
    """

    result: "GpuResult | None"
    error: "Exception | None"
    #: Whether the lockstep engine produced this cell (telemetry only).
    vectorized: bool = False
    #: Idle cycles the event-driven skip jumped over (telemetry only).
    skipped_cycles: int = 0
    skip_events: int = 0


def run_gpu_batch(
    cells: "list[tuple[GpuConfig, KernelTrace]]",
) -> "list[GpuBatchOutcome]":
    """Run many GPU cells through one batched engine invocation.

    Per-cell results are byte-identical to :func:`run_gpu`: the same
    contention-scaled per-CU config is built per cell, the batched
    engine is exact by construction, and the CU-count scaling applied
    here is plain per-cell arithmetic.
    """
    from repro.gpu.cu_batch import run_cu_batch

    cu_cells: "list[tuple[CUConfig, KernelTrace]]" = []
    for config, trace in cells:
        profile = trace.profile
        scale = memory_contention_scale(config.n_cus, profile.mem_intensity)
        cu_cells.append(
            (
                CUConfig(
                    freq_ghz=config.cu.freq_ghz,
                    fma_depth=config.cu.fma_depth,
                    rf_cycles=config.cu.rf_cycles,
                    rf_cache_enabled=config.cu.rf_cache_enabled,
                    rf_cache_entries=config.cu.rf_cache_entries,
                    mem_latency_scale=config.cu.mem_latency_scale * scale,
                ),
                trace,
            )
        )
    outcomes: "list[GpuBatchOutcome]" = []
    for (config, trace), cu_out in zip(cells, run_cu_batch(cu_cells)):
        if cu_out.error is not None:
            outcomes.append(
                GpuBatchOutcome(
                    result=None,
                    error=cu_out.error,
                    vectorized=cu_out.vectorized,
                    skipped_cycles=cu_out.skipped_cycles,
                    skip_events=cu_out.skip_events,
                )
            )
            continue
        cu_result = cu_out.result
        serial = trace.profile.serial_fraction
        parallel_cycles = cu_result.cycles * (REFERENCE_CUS / config.n_cus)
        effective = (
            cu_result.cycles * serial + parallel_cycles * (1.0 - serial)
        )
        outcomes.append(
            GpuBatchOutcome(
                result=GpuResult(
                    n_cus=config.n_cus,
                    cu_result=cu_result,
                    effective_cycles=effective,
                    freq_ghz=config.cu.freq_ghz,
                ),
                error=None,
                vectorized=cu_out.vectorized,
                skipped_cycles=cu_out.skipped_cycles,
                skip_events=cu_out.skip_events,
            )
        )
    return outcomes


def run_gpu(config: GpuConfig, trace: KernelTrace, tracer=None) -> GpuResult:
    """Run ``trace``'s kernel on the configured GPU at fixed total work.

    The kernel trace describes the work one CU receives on the reference
    8-CU machine; machines with more CUs split the same total work more
    ways but see higher memory contention.
    """
    profile = trace.profile
    scale = memory_contention_scale(config.n_cus, profile.mem_intensity)
    cu_cfg = CUConfig(
        freq_ghz=config.cu.freq_ghz,
        fma_depth=config.cu.fma_depth,
        rf_cycles=config.cu.rf_cycles,
        rf_cache_enabled=config.cu.rf_cache_enabled,
        rf_cache_entries=config.cu.rf_cache_entries,
        mem_latency_scale=config.cu.mem_latency_scale * scale,
    )
    cu_result = ComputeUnit(cu_cfg, tracer=tracer).run(trace)
    serial = profile.serial_fraction
    parallel_cycles = cu_result.cycles * (REFERENCE_CUS / config.n_cus)
    effective = cu_result.cycles * serial + parallel_cycles * (1.0 - serial)
    return GpuResult(
        n_cus=config.n_cus,
        cu_result=cu_result,
        effective_cycles=effective,
        freq_ghz=config.cu.freq_ghz,
    )
