"""Compute-unit cycle model (Southern-Islands-like, Table III).

Structure follows the AMD Southern Islands CU that Multi2Sim models: the
resident wavefronts are partitioned across **four SIMD units** (16 lanes
each -- the paper's "16 EUs"); each SIMD issues at most one vector (FMA)
instruction per cycle from its wavefront pool, and the CU issues at most
one global-memory operation per cycle through a shared memory port.

Two serialisation rules make the model latency-sensitive in the same way
the paper's simulator is:

* wavefronts issue in order and stall on register dependencies (the
  scoreboard/s_waitcnt discipline): tight FMA chains run at one op per
  vector latency, so the deeper TFET pipeline and slower register file
  directly throttle dependency-bound wavefronts;
* memory operations are non-blocking -- they issue in order but later
  instructions proceed until a register dependency forces a wait.

Vector instruction latency is ``operand reads + pipeline depth``; operand
reads serialise through the register-file port and cost 1 cycle each on a
register-file-cache hit, else the vector-RF access latency (1 CMOS /
2 TFET); the FMA pipeline is 3 stages in CMOS and 6 in TFET, pipelined
issue every cycle either way.  A CU therefore loses
performance under TFET only where its SIMD pools are too shallow to cover
the longer latency -- the exact mechanism Section VII-B discusses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.gpu.partitioned_rf import PartitionedRegisterFile
from repro.gpu.regfile import RegisterFileCache, VectorRegisterFile
from repro.obs import cycle_skip_disabled
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import STAGE_ISSUE, STAGE_MEM, STAGE_STALL, PipelineTracer
from repro.workloads.gpu_generator import OP_FMA, KernelTrace

#: SIMD units per compute unit (AMD Southern Islands).
SIMDS_PER_CU = 4

_INF = 1 << 60


@dataclass(frozen=True)
class CUConfig:
    """Device-dependent compute-unit parameters."""

    freq_ghz: float = 1.0
    #: FMA pipeline depth: 3 (CMOS) or 6 (TFET), issue every cycle.
    fma_depth: int = 3
    #: Vector RF access: 1 (CMOS) or 2 (TFET) cycles.
    rf_cycles: int = 1
    #: AdvHet register-file cache (1-cycle operand reads on hit).
    rf_cache_enabled: bool = False
    rf_cache_entries: int = 6
    #: Pilot-RF style alternative (Section VIII): a static set of hot
    #: registers implemented in a fast CMOS partition.  Mutually exclusive
    #: with the register-file cache.
    partitioned_fast_regs: "frozenset | None" = None
    #: Global memory latency multiplier from multi-CU contention.
    mem_latency_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.fma_depth <= 0 or self.rf_cycles <= 0:
            raise ValueError("latencies must be positive")
        if self.mem_latency_scale < 1.0:
            raise ValueError("contention cannot accelerate memory")
        if self.rf_cache_enabled and self.partitioned_fast_regs is not None:
            raise ValueError(
                "register-file cache and partitioned RF are alternatives"
            )


@dataclass
class CUResult:
    """Outcome of executing one kernel's wavefronts on one CU."""

    cycles: int
    instructions: int
    fma_ops: int
    mem_ops: int
    rf_reads: int
    rf_writes: int
    rf_cache_read_hits: int
    rf_cache_read_misses: int
    rf_cache_writes: int
    freq_ghz: float

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def rf_cache_hit_rate(self) -> float:
        total = self.rf_cache_read_hits + self.rf_cache_read_misses
        return self.rf_cache_read_hits / total if total else 0.0

    @property
    def time_s(self) -> float:
        return self.cycles / (self.freq_ghz * 1e9)


class ComputeUnit:
    """One compute unit bound to a config; run a kernel trace through it."""

    def __init__(self, config: CUConfig, tracer: "PipelineTracer | None" = None):
        self.config = config
        self.tracer = tracer
        #: Per-run metrics registry (rebuilt by :meth:`run`).
        self.metrics: "MetricsRegistry | None" = None
        #: Idle cycles the event-driven skip jumped over in the last run
        #: (and how many distinct jumps) -- observability only, never part
        #: of :class:`CUResult`.
        self.skipped_cycles = 0
        self.skip_events = 0

    def run(self, trace: KernelTrace) -> CUResult:
        cfg = self.config
        tracer = self.tracer
        # Tracer-attached runs skip too: the jump below emits a synthetic
        # ``skip`` event covering the jumped cycles, so only the
        # REPRO_NO_CYCLE_SKIP hatch pins the per-cycle walk.
        skip_on = not cycle_skip_disabled()
        self.skipped_cycles = 0
        self.skip_events = 0
        n_wf = trace.n_wavefronts
        n_ins = trace.stream_len

        rf = VectorRegisterFile(
            n_regs=trace.profile.n_regs, access_cycles=cfg.rf_cycles
        )
        rf_cache = (
            RegisterFileCache(n_wf, cfg.rf_cache_entries)
            if cfg.rf_cache_enabled
            else None
        )
        partition = (
            PartitionedRegisterFile(
                cfg.partitioned_fast_regs,
                fast_cycles=1,
                slow_cycles=cfg.rf_cycles,
            )
            if cfg.partitioned_fast_regs is not None
            else None
        )
        mem_latency = max(1, round(trace.profile.mem_latency * cfg.mem_latency_scale))

        op_list = [row.tolist() for row in trace.op]
        dep_list = [row.tolist() for row in trace.dep_dist]
        s1_list = [row.tolist() for row in trace.src1_reg]
        s2_list = [row.tolist() for row in trace.src2_reg]
        d_list = [row.tolist() for row in trace.dst_reg]

        ip = [0] * n_wf
        done = [[0] * n_ins for _ in range(n_wf)]
        groups = [
            [wf for wf in range(n_wf) if wf % SIMDS_PER_CU == s]
            for s in range(SIMDS_PER_CU)
        ]
        rr = [0] * SIMDS_PER_CU
        mem_rr = 0
        remaining = n_wf
        cycle = 0
        fma_ops = 0
        mem_ops = 0
        worst = (cfg.rf_cycles + cfg.fma_depth + mem_latency) * n_wf * n_ins + 64

        def operand_latency(wf: int, i: int) -> int:
            # Operand collection is serialised through the RF read port
            # (Southern Islands reads a wavefront's operands over several
            # cycles), so source latencies add.
            latency = 0
            for reg in (s1_list[wf][i], s2_list[wf][i]):
                if rf_cache is not None and rf_cache.read_hit(wf, reg):
                    latency += 1  # served by the cache; big RF untouched
                elif partition is not None:
                    latency += partition.read(reg)
                else:
                    latency += rf.read(reg)
            return latency

        while remaining > 0:
            progress = False
            # ---- vector issue: one per SIMD unit ----
            for s in range(SIMDS_PER_CU):
                pool = groups[s]
                if not pool:
                    continue
                saw_dep = False
                for k in range(len(pool)):
                    wf = pool[(rr[s] + k) % len(pool)]
                    i = ip[wf]
                    if i >= n_ins or op_list[wf][i] != OP_FMA:
                        continue
                    d = dep_list[wf][i]
                    if d and done[wf][i - d] > cycle:
                        if tracer is not None:
                            saw_dep = True
                        continue
                    latency = operand_latency(wf, i) + cfg.fma_depth
                    done[wf][i] = cycle + latency
                    wr = d_list[wf][i]
                    rf.write(wr)
                    if rf_cache is not None:
                        rf_cache.write(wf, wr)
                    if partition is not None:
                        partition.write(wr)
                    fma_ops += 1
                    progress = True
                    ip[wf] = i + 1
                    if ip[wf] == n_ins:
                        remaining -= 1
                    if tracer is not None:
                        tracer.emit(
                            cycle, "fma", STAGE_ISSUE, dur=latency, simd=s, wf=wf
                        )
                    break
                else:
                    # No wavefront on this SIMD could issue this cycle.
                    if tracer is not None:
                        tracer.emit(
                            cycle, "wf_stall", STAGE_STALL, simd=s,
                            reason="dep" if saw_dep else "drained",
                        )
                rr[s] = (rr[s] + 1) % len(pool)

            # ---- memory issue: one per CU ----
            for k in range(n_wf):
                wf = (mem_rr + k) % n_wf
                i = ip[wf]
                if i >= n_ins or op_list[wf][i] == OP_FMA:
                    continue
                d = dep_list[wf][i]
                if d and done[wf][i - d] > cycle:
                    continue
                done[wf][i] = cycle + operand_latency(wf, i) + mem_latency
                mem_ops += 1
                progress = True
                ip[wf] = i + 1
                if ip[wf] == n_ins:
                    remaining -= 1
                if tracer is not None:
                    tracer.emit(
                        cycle, "gmem", STAGE_MEM, dur=mem_latency, wf=wf
                    )
                break
            mem_rr = (mem_rr + 1) % n_wf

            # ---- event-driven idle-cycle skip ----
            # Zero progress means every unfinished wavefront head is
            # scoreboard-blocked (a ready head would have issued on its
            # SIMD or through the memory port), so nothing can change
            # before the earliest blocking ``done`` time.  Jump straight
            # there, advancing the round-robin pointers exactly as the
            # skipped cycles would have (they rotate every cycle).
            if skip_on and not progress:
                wake = _INF
                for wf in range(n_wf):
                    i = ip[wf]
                    if i >= n_ins:
                        continue
                    d = dep_list[wf][i]
                    w = done[wf][i - d] if d else cycle + 1
                    if w < wake:
                        wake = w
                extra = wake - cycle - 1
                if extra > 0 and wake < _INF:
                    self.skipped_cycles += extra
                    self.skip_events += 1
                    if tracer is not None:
                        # Stands in for the per-cycle wf_stall events the
                        # jumped stretch would have produced.
                        tracer.emit(
                            cycle, "skip", STAGE_STALL, dur=extra,
                            reason="dep",
                        )
                    for s in range(SIMDS_PER_CU):
                        pool_len = len(groups[s])
                        if pool_len:
                            rr[s] = (rr[s] + extra) % pool_len
                    mem_rr = (mem_rr + extra) % n_wf
                    cycle = wake - 1  # the increment below lands on wake

            cycle += 1
            if cycle > worst:
                raise RuntimeError("CU simulation failed to make progress")

        end = max(max(row) for row in done) if n_wf else 0
        total_cycles = max(cycle, end)
        reg = MetricsRegistry("cu", enabled=True)
        rf.publish(reg, "rf")
        if rf_cache is not None:
            rf_cache.publish(reg, "rfc")
        reg.gauge("cycles").set(total_cycles)
        reg.gauge("fma_ops").set(fma_ops)
        reg.gauge("mem_ops").set(mem_ops)
        reg.gauge("wavefronts").set(n_wf)
        reg.gauge("engine.skipped_cycles").set(self.skipped_cycles)
        reg.gauge("engine.skip_events").set(self.skip_events)
        self.metrics = reg
        if obs.enabled():
            get_registry().mount("gpu.cu", reg)
        return CUResult(
            cycles=total_cycles,
            instructions=n_wf * n_ins,
            fma_ops=fma_ops,
            mem_ops=mem_ops,
            rf_reads=rf.reads,
            rf_writes=rf.writes,
            rf_cache_read_hits=rf_cache.read_hits if rf_cache else 0,
            rf_cache_read_misses=rf_cache.read_misses if rf_cache else 0,
            rf_cache_writes=rf_cache.writes if rf_cache else 0,
            freq_ghz=cfg.freq_ghz,
        )
