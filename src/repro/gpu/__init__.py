"""Wavefront-level cycle simulator of a Southern-Islands-like GPU.

This package stands in for Multi2Sim's Southern Islands timing model.  Each
compute unit (CU) holds a set of resident wavefronts executing in-order
instruction streams; a scheduler issues one vector instruction per cycle to
the SIMD FMA pipeline and one memory operation per cycle to the memory
unit.  Operand reads go through the vector register file (1 cycle CMOS,
2 cycles TFET) or the AdvHet register-file cache (1 cycle); the FMA
pipeline is 3 stages in CMOS and 6 in TFET, pipelined either way.  Latency
hiding across wavefronts -- the mechanism that makes the HetCore GPU viable
-- is therefore mechanistic, not assumed.

* :mod:`repro.gpu.regfile` -- vector RF and the 6-entry register-file cache.
* :mod:`repro.gpu.cu` -- the compute-unit cycle model.
* :mod:`repro.gpu.gpu` -- whole-GPU runs and CU-count scaling.
"""

from repro.gpu.regfile import RegisterFileCache, VectorRegisterFile
from repro.gpu.cu import ComputeUnit, CUConfig, CUResult
from repro.gpu.gpu import GpuConfig, GpuResult, run_gpu
from repro.gpu.compiler import mean_dependency_distance, reschedule_kernel
from repro.gpu.partitioned_rf import (
    PartitionedRegisterFile,
    partitioned_operand_model,
    profile_hot_registers,
)

__all__ = [
    "RegisterFileCache",
    "VectorRegisterFile",
    "ComputeUnit",
    "CUConfig",
    "CUResult",
    "GpuConfig",
    "GpuResult",
    "run_gpu",
    "reschedule_kernel",
    "mean_dependency_distance",
    "PartitionedRegisterFile",
    "partitioned_operand_model",
    "profile_hot_registers",
]
