"""Batched compute-unit engine: many (config, kernel) cells in lockstep.

One sweep figure runs the *same* scoreboard loop tens of times with
different latency parameters; interpreted per-cell execution pays the
Python dispatch cost for every cycle of every cell.  This engine stacks
the cells along a leading axis and advances all of them through one
vectorized step function -- SIMT-style: each numpy operation touches
every live cell, finished or failed cells are masked out, and per-cell
``cycle`` counters advance independently (the event-driven idle skip
jumps different cells by different amounts, so lockstep is over *steps*,
not cycles).

Exactness is the contract: every cell's :class:`~repro.gpu.cu.CUResult`
is byte-identical to what :meth:`repro.gpu.cu.ComputeUnit.run` produces
for that (config, trace) alone.  Three structural facts make an exact
vectorization affordable:

* **Register-file-cache behaviour is timing-independent.**  The cache is
  per-wavefront and every wavefront executes its stream strictly in
  order, so the sequence of cache operations -- read src1, read src2,
  write dst on FMAs -- is a pure function of the instruction stream.
  Per-instruction operand latencies, hit/miss totals, and eviction
  counts are precomputed once per (trace, cache geometry)
  (:func:`rf_cache_stats`, memoised on the shared trace object) and
  shared by every cell and every batch that runs the trace.  The hot
  loop then never touches cache state at all: issue latency is one
  gather from a precomputed table.
* **Round-robin arbitration is an argmin.**  The scalar engine's scan
  "first issuable wavefront starting at ``rr``" picks the candidate
  minimising ``(k - rr) mod pool_len``; ranks are distinct within a
  pool, so a masked argmin over a ``(cells, K, 4)`` view of the
  wavefront axis reproduces the scan exactly.  The memory-port scan is
  the same argmin over the whole wavefront axis -- run *after* FMA
  issues (the scalar loop lets one wavefront issue an FMA and a memory
  op in the same cycle), with issued wavefronts' head state patched
  in between.
* **Dependencies never cross wavefronts**, so each issue only
  invalidates the issuing wavefront's own head -- head state
  (op class, readiness time) lives in persistent per-wavefront arrays
  refreshed for the few issued rows instead of re-gathered full-width.

A cell that trips the progress guard fails *alone*: it is masked out,
its outcome records the same ``RuntimeError`` the scalar engine raises,
and the rest of the batch completes (the sweep tier maps the error onto
its usual failure taxonomy).

Because lockstep cost is per *step* while scalar cost is per *cell*,
the vector loop hands the last few straggler cells (the batch's longest
kernels) to a scalar continuation (:func:`_finish_scalar`) that resumes
each cell from its lockstep state -- same loop semantics, same results,
without burning a full-width step per straggler cycle.  Small batches
fall back to the scalar engine entirely, as do cells the vector path
does not model (partitioned register files) and every cell when
``REPRO_NO_CYCLE_SKIP=1`` or ``REPRO_NO_BATCH=1`` is set.  Fallbacks
are pure performance decisions; results are identical either way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.gpu.cu import SIMDS_PER_CU, ComputeUnit, CUConfig, CUResult
from repro.obs import batch_disabled, cycle_skip_disabled
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.workloads.gpu_generator import OP_FMA, OP_MEM, KernelTrace

_INF = 1 << 60

#: Below this many vector-eligible cells the scalar engine wins (the
#: per-step numpy dispatch overhead is ~constant; the vector width is
#: what amortises it).
MIN_VECTOR_CELLS = 4

#: When at most this fraction of the batch is still live, the lockstep
#: loop hands the stragglers to the scalar continuation (a full-width
#: vector step has near-constant cost, so the last few long cells are
#: cheaper one at a time).
TAIL_FRACTION = 0.4


@dataclass
class RFCacheStats:
    """Timing-independent register-file-cache behaviour of one trace.

    ``hits`` holds the per-instruction count of source operands served
    by the cache (0..2); totals are whole-trace sums.  Valid for any
    cell running this trace with this cache geometry -- see the module
    docstring for why timing cannot change any of it.
    """

    entries: int
    hits: np.ndarray  # (n_wavefronts, stream_len) uint8
    total_hits: int
    total_evictions: int


def rf_cache_stats(trace: KernelTrace, entries: int) -> RFCacheStats:
    """Per-instruction cache hits for ``trace`` (memoised on the trace).

    Replays each wavefront's in-order stream through the exact
    :class:`repro.gpu.regfile.RegisterFileCache` discipline: probe src1,
    probe src2 (read hits refresh recency), write-allocate dst on FMA
    ops.  The memo rides the shared trace-cache entry, so one replay
    serves every batch, sweep, and process-pool worker sharing the
    trace buffers.
    """
    memo = getattr(trace, "_rf_cache_stats", None)
    if memo is None:
        memo = {}
        try:
            trace._rf_cache_stats = memo
        except AttributeError:  # exotic trace object; recompute per call
            pass
    stats = memo.get(entries)
    if stats is not None:
        return stats
    n_wf, n_ins = trace.n_wavefronts, trace.stream_len
    hits = np.zeros((n_wf, n_ins), dtype=np.uint8)
    total_hits = 0
    evictions = 0
    op_rows = [row.tolist() for row in trace.op]
    s1_rows = [row.tolist() for row in trace.src1_reg]
    s2_rows = [row.tolist() for row in trace.src2_reg]
    d_rows = [row.tolist() for row in trace.dst_reg]
    for wf in range(n_wf):
        lru: "list[int]" = []
        ops, s1s, s2s, ds = op_rows[wf], s1_rows[wf], s2_rows[wf], d_rows[wf]
        row = hits[wf]
        for i in range(n_ins):
            h = 0
            for reg in (s1s[i], s2s[i]):
                if reg in lru:
                    h += 1
                    if lru[0] != reg:
                        lru.remove(reg)
                        lru.insert(0, reg)
            if h:
                row[i] = h
                total_hits += h
            if ops[i] == OP_FMA:
                reg = ds[i]
                if reg in lru:
                    lru.remove(reg)
                elif len(lru) >= entries:
                    lru.pop()
                    evictions += 1
                lru.insert(0, reg)
    stats = RFCacheStats(
        entries=entries,
        hits=hits,
        total_hits=total_hits,
        total_evictions=evictions,
    )
    memo[entries] = stats
    return stats


def _fma_count(trace: KernelTrace) -> int:
    count = getattr(trace, "_fma_count", None)
    if count is None:
        count = int((trace.op == OP_FMA).sum())
        try:
            trace._fma_count = count
        except AttributeError:
            pass
    return count


@dataclass
class CUBatchOutcome:
    """One cell's outcome from a batched run.

    Exactly one of ``result``/``error`` is set.  ``skipped_cycles`` and
    ``skip_events`` mirror the :class:`~repro.gpu.cu.ComputeUnit`
    attributes of the same names; ``metrics`` is the per-run registry
    the scalar engine would have built (None for failed cells).
    """

    result: "CUResult | None"
    error: "Exception | None"
    skipped_cycles: int = 0
    skip_events: int = 0
    metrics: "MetricsRegistry | None" = None
    #: Whether the lockstep path produced this cell (observability
    #: only -- results are identical either way).
    vectorized: bool = False


def _scalar_outcome(config: CUConfig, trace: KernelTrace) -> CUBatchOutcome:
    """Run one cell through the scalar engine, capturing failure."""
    cu = ComputeUnit(config)
    try:
        result = cu.run(trace)
    except Exception as exc:  # progress guard, bad geometry, ...
        return CUBatchOutcome(result=None, error=exc)
    return CUBatchOutcome(
        result=result,
        error=None,
        skipped_cycles=cu.skipped_cycles,
        skip_events=cu.skip_events,
        metrics=cu.metrics,
    )


def _vector_eligible(config: CUConfig, trace: KernelTrace) -> bool:
    """Can the vectorized scoreboard model this cell?"""
    return (
        config.partitioned_fast_regs is None
        and trace.n_wavefronts > 0
        and trace.stream_len > 0
    )


def run_cu_batch(
    cells: "list[tuple[CUConfig, KernelTrace]]",
) -> "list[CUBatchOutcome]":
    """Run many (config, trace) cells; outcomes in input order.

    Byte-identical to running :meth:`ComputeUnit.run` per cell.  Cells
    the vector engine cannot model (or entire batches too small to win)
    run through the scalar engine; a failing cell yields an outcome with
    ``error`` set while the rest of the batch completes.
    """
    outcomes: "list[CUBatchOutcome | None]" = [None] * len(cells)
    vector_idx = [
        i for i, (cfg, tr) in enumerate(cells) if _vector_eligible(cfg, tr)
    ]
    use_vector = (
        len(vector_idx) >= MIN_VECTOR_CELLS
        and not cycle_skip_disabled()
        and not batch_disabled()
    )
    if use_vector:
        vec_outcomes = _run_vectorized([cells[i] for i in vector_idx])
        for i, outcome in zip(vector_idx, vec_outcomes):
            outcomes[i] = outcome
    for i, (cfg, tr) in enumerate(cells):
        if outcomes[i] is None:
            outcomes[i] = _scalar_outcome(cfg, tr)
    # Scalar runs mount their per-run registry as they go; vectorized
    # cells mount here, in cell order, so the final mounted state
    # matches a serial sweep (last cell wins in both).
    if obs.enabled():
        for outcome in outcomes:
            if outcome.vectorized and outcome.metrics is not None:
                get_registry().mount("gpu.cu", outcome.metrics)
    return outcomes


def _finish_scalar(
    cfg: CUConfig,
    trace: KernelTrace,
    op_lat_rows: "list[list[int]]",
    mem_latency: int,
    worst: int,
    ip: "list[int]",
    done: "list[list[int]]",
    rr: "list[int]",
    mem_rr: int,
    cycle: int,
    remaining: int,
    skipped: int,
    skip_events: int,
) -> "tuple[int, int, int, int]":
    """Scalar continuation of one cell from mid-lockstep state.

    Semantically the tail of :meth:`ComputeUnit.run`'s loop with operand
    latencies read from the precomputed table.  Returns
    ``(final_cycle, max_done, skipped, skip_events)`` or raises the
    progress-guard ``RuntimeError``.
    """
    n_wf = trace.n_wavefronts
    n_ins = trace.stream_len
    op_list = [row.tolist() for row in trace.op]
    dep_list = [row.tolist() for row in trace.dep_dist]
    groups = [
        [wf for wf in range(n_wf) if wf % SIMDS_PER_CU == s]
        for s in range(SIMDS_PER_CU)
    ]
    fma_depth = cfg.fma_depth
    while remaining > 0:
        progress = False
        for s in range(SIMDS_PER_CU):
            pool = groups[s]
            if not pool:
                continue
            for k in range(len(pool)):
                wf = pool[(rr[s] + k) % len(pool)]
                i = ip[wf]
                if i >= n_ins or op_list[wf][i] != OP_FMA:
                    continue
                d = dep_list[wf][i]
                if d and done[wf][i - d] > cycle:
                    continue
                done[wf][i] = cycle + op_lat_rows[wf][i] + fma_depth
                progress = True
                ip[wf] = i + 1
                if ip[wf] == n_ins:
                    remaining -= 1
                break
            rr[s] = (rr[s] + 1) % len(pool)
        for k in range(n_wf):
            wf = (mem_rr + k) % n_wf
            i = ip[wf]
            if i >= n_ins or op_list[wf][i] == OP_FMA:
                continue
            d = dep_list[wf][i]
            if d and done[wf][i - d] > cycle:
                continue
            done[wf][i] = cycle + op_lat_rows[wf][i] + mem_latency
            progress = True
            ip[wf] = i + 1
            if ip[wf] == n_ins:
                remaining -= 1
            break
        mem_rr = (mem_rr + 1) % n_wf
        if not progress:
            wake = _INF
            for wf in range(n_wf):
                i = ip[wf]
                if i >= n_ins:
                    continue
                d = dep_list[wf][i]
                w = done[wf][i - d] if d else cycle + 1
                if w < wake:
                    wake = w
            extra = wake - cycle - 1
            if extra > 0 and wake < _INF:
                skipped += extra
                skip_events += 1
                for s in range(SIMDS_PER_CU):
                    pool_len = len(groups[s])
                    if pool_len:
                        rr[s] = (rr[s] + extra) % pool_len
                mem_rr = (mem_rr + extra) % n_wf
                cycle = wake - 1
        cycle += 1
        if cycle > worst:
            raise RuntimeError("CU simulation failed to make progress")
    return cycle, max(max(row) for row in done), skipped, skip_events


def _run_vectorized(
    cells: "list[tuple[CUConfig, KernelTrace]]",
) -> "list[CUBatchOutcome]":
    """The lockstep engine proper; every cell here is vector-eligible."""
    C = len(cells)
    configs = [cfg for cfg, _tr in cells]
    traces = [tr for _cfg, tr in cells]

    n_wf = np.array([t.n_wavefronts for t in traces], dtype=np.int64)
    n_ins = np.array([t.stream_len for t in traces], dtype=np.int64)
    W = int(n_wf.max())
    I = int(n_ins.max())
    # Pad the wavefront axis to a SIMD multiple so it reshapes to
    # (C, K, 4) with wavefront ``w = 4k + s`` -- exactly the scalar
    # engine's pool layout (pool ``s`` holds wavefronts ``s, s+4, ...``).
    Wp = max(
        ((W + SIMDS_PER_CU - 1) // SIMDS_PER_CU) * SIMDS_PER_CU,
        SIMDS_PER_CU,
    )
    K = Wp // SIMDS_PER_CU

    rf_cycles = np.array([cfg.rf_cycles for cfg in configs], dtype=np.int64)
    fma_depth = np.array([cfg.fma_depth for cfg in configs], dtype=np.int64)
    cache_on = [cfg.rf_cache_enabled for cfg in configs]
    mem_latency = np.array(
        [
            max(1, round(t.profile.mem_latency * cfg.mem_latency_scale))
            for cfg, t in cells
        ],
        dtype=np.int64,
    )
    worst = (rf_cycles + fma_depth + mem_latency) * n_wf * n_ins + 64

    # One sentinel column past the longest stream: a drained wavefront's
    # issue pointer lands on it, where ``op`` is -1 and ``dep``/``done``
    # are 0, so head-state refreshes need no end-of-stream clamp.
    Ip = I + 1
    op = np.full((C, Wp, Ip), -1, dtype=np.int64)
    dep = np.zeros((C, Wp, Ip), dtype=np.int64)
    done = np.zeros((C, Wp, Ip), dtype=np.int64)
    # Precomputed per-instruction operand latency: 2 source reads, each
    # 1 cycle on a cache hit else the RF access time (see module
    # docstring -- hit patterns are timing-independent).
    op_lat = np.zeros((C, Wp, Ip), dtype=np.int64)
    stats: "list[RFCacheStats | None]" = [None] * C
    for c, (cfg, t) in enumerate(cells):
        w, i = t.n_wavefronts, t.stream_len
        op[c, :w, :i] = t.op
        dep[c, :w, :i] = t.dep_dist
        rc = cfg.rf_cycles
        if cfg.rf_cache_enabled:
            st = rf_cache_stats(t, cfg.rf_cache_entries)
            stats[c] = st
            op_lat[c, :w, :i] = 2 * rc - (rc - 1) * st.hits.astype(np.int64)
        else:
            op_lat[c, :w, :i] = 2 * rc

    wcols = np.arange(Wp, dtype=np.int64)[None, :]
    # Padded wavefronts start "already finished" so no mask ever admits
    # them; real wavefronts start at instruction 0.
    ip = np.where(wcols < n_wf[:, None], 0, n_ins[:, None])

    simds = np.arange(SIMDS_PER_CU, dtype=np.int64)
    pool_len = np.maximum(
        (n_wf[:, None] - simds[None, :] + SIMDS_PER_CU - 1) // SIMDS_PER_CU,
        0,
    )
    pool_len_safe = np.maximum(pool_len, 1)
    n_wf_safe = np.maximum(n_wf, 1)
    rr = np.zeros((C, SIMDS_PER_CU), dtype=np.int64)
    mem_rr = np.zeros(C, dtype=np.int64)
    cycle = np.zeros(C, dtype=np.int64)
    skipped = np.zeros(C, dtype=np.int64)
    skip_events = np.zeros(C, dtype=np.int64)
    # The scalar engine's ``remaining`` counter: wavefronts whose issue
    # pointer has not yet reached the end of the stream.
    remaining = n_wf.copy()
    live = remaining > 0
    failed = np.zeros(C, dtype=bool)
    tail: "dict[int, tuple]" = {}  # cell -> scalar continuation state

    op_r = op.reshape(-1)
    dep_r = dep.reshape(-1)
    done_r = done.reshape(-1)
    op_lat_r = op_lat.reshape(-1)
    rowbase = (
        np.arange(C, dtype=np.int64)[:, None] * Wp + wcols
    ) * Ip  # flat index of (c, w, 0)

    # Persistent head state, refreshed only for issued rows: class of
    # the head instruction (the sentinel's -1 classifies drained rows as
    # neither) and the cycle its dependency clears.  ``done`` is written
    # exactly once, at issue, so an unissued head's dep-free gather
    # (``dep == 0`` -> its own slot) reads 0 = "no dependency".
    f0 = rowbase + ip
    ho = op_r[f0]
    head_fma = ho == OP_FMA
    head_mem = ho == OP_MEM
    wait_at = done_r[f0 - dep_r[f0]]

    kidx = np.arange(K, dtype=np.int64)[None, :, None]
    pl3_safe = pool_len_safe[:, None, :]
    nwf2_safe = n_wf_safe[:, None]
    BIG_RANK = np.int64(1 << 30)
    no_cells = np.zeros(C, dtype=bool)

    def refresh(cc, wf, rb, i_new):
        """Re-derive head state for just-issued rows.

        The issue scatter into ``done`` runs first, so a new head
        depending on its just-issued predecessor gathers the fresh
        completion time; drained rows land on the sentinel column and
        classify as neither FMA nor MEM.
        """
        fb = rb + i_new
        ho_n = op_r[fb]
        head_fma[cc, wf] = ho_n == OP_FMA
        head_mem[cc, wf] = ho_n == OP_MEM
        wait_at[cc, wf] = done_r[fb - dep_r[fb]]

    step = 0
    n_live = int(live.sum())
    while True:
        if n_live == 0:
            break
        if n_live <= max(8, int(C * TAIL_FRACTION)):
            # Hand stragglers to the scalar continuation: one full-width
            # vector step costs ~16 scalar cell-cycles, so the batch's
            # longest kernels finish faster one at a time.
            for c in np.nonzero(live)[0]:
                c = int(c)
                w = int(n_wf[c])
                tail[c] = (
                    ip[c, :w].tolist(),
                    [done[c, wf, : int(n_ins[c])].tolist() for wf in range(w)],
                    (rr[c] % pool_len_safe[c]).tolist(),
                    int(mem_rr[c] % n_wf_safe[c]),
                    int(cycle[c]),
                    int(remaining[c]),
                    int(skipped[c]),
                    int(skip_events[c]),
                )
            break

        cyc2 = cycle[:, None]
        # ---- vector issue: one per SIMD, masked argmin over RR rank ----
        cand4 = (head_fma & (wait_at <= cyc2)).reshape(C, K, SIMDS_PER_CU)
        # Real wavefronts always have k < pool_len, so a single modulo
        # equals the old conditional wrap on every unmasked lane.
        rank = np.where(cand4, (kidx - rr[:, None, :]) % pl3_safe, BIG_RANK)
        k_sel = rank.argmin(axis=1)
        has_fma = cand4.any(axis=1)
        cc, ss = np.nonzero(has_fma)
        if cc.size:
            wf = k_sel[cc, ss] * SIMDS_PER_CU + ss
            i = ip[cc, wf]
            rb = rowbase[cc, wf]
            fb = rb + i
            dval = cycle[cc] + op_lat_r[fb] + fma_depth[cc]
            done_r[fb] = dval
            i1 = i + 1
            ip[cc, wf] = i1
            fin = i1 == n_ins[cc]
            finished = bool(fin.any())
            if finished:
                remaining -= np.bincount(cc[fin], minlength=C)
            refresh(cc, wf, rb, i1)
            any_fma = has_fma.any(axis=1)
        else:
            finished = False
            any_fma = no_cells
        # Round-robin counters advance unreduced; the rank modulo above
        # and the export reduction below keep them exact.
        rr += 1

        # ---- memory issue: one per CU, after FMA head updates ----
        mem_cand = head_mem & (wait_at <= cyc2)
        rank_m = np.where(
            mem_cand, (wcols - mem_rr[:, None]) % nwf2_safe, BIG_RANK
        )
        wf_all = rank_m.argmin(axis=1)
        has_mem = mem_cand.any(axis=1)
        ccm = np.nonzero(has_mem)[0]
        if ccm.size:
            wfm = wf_all[ccm]
            im = ip[ccm, wfm]
            rbm = rowbase[ccm, wfm]
            fbm = rbm + im
            dvalm = cycle[ccm] + op_lat_r[fbm] + mem_latency[ccm]
            done_r[fbm] = dvalm
            im1 = im + 1
            ip[ccm, wfm] = im1
            finm = im1 == n_ins[ccm]
            if finm.any():
                finished = True
                remaining -= np.bincount(ccm[finm], minlength=C)
            refresh(ccm, wfm, rbm, im1)
        mem_rr += 1

        # ---- event-driven idle-cycle skip, per cell ----
        progress = any_fma | has_mem
        stuck = live & ~progress
        if stuck.any():
            # Under zero progress every unfinished head is
            # dependency-blocked (a ready head would have issued on its
            # port), matching the scalar engine's wake scan.
            alive_head = head_fma | head_mem
            w_cand = np.where(wait_at > 0, wait_at, cyc2 + 1)
            w_cand = np.where(alive_head, w_cand, _INF)
            wake = w_cand.min(axis=1)
            extra = wake - cycle - 1
            do_skip = stuck & (extra > 0) & (wake < _INF)
            bump = np.where(do_skip, extra, 0)
            skipped += bump
            skip_events += do_skip
            # Unreduced RR counters make the skip advance a plain add.
            rr += bump[:, None]
            mem_rr += bump
            cycle += bump

        cycle += live
        step += 1
        # The progress guard is a safety net for pathological cells, so
        # amortise it: checking every 64th step delays a trip by at most
        # 63 cycles and changes nothing for cells that never trip.
        if (step & 63) == 0:
            trip = live & (cycle > worst)
            if trip.any():
                failed |= trip
                # Dead rows must never look issuable again.
                head_fma[trip] = False
                head_mem[trip] = False
                live &= ~failed
                finished = True
        # ``live`` can only shrink when a wavefront drained or a cell
        # tripped; skip the recount on the (hot) steps where neither
        # happened.
        if finished:
            live &= remaining > 0
            n_live = int(live.sum())

    outcomes: "list[CUBatchOutcome]" = []
    for c in range(C):
        cfg = configs[c]
        trace = traces[c]
        sk = int(skipped[c])
        se = int(skip_events[c])
        if c in tail and not failed[c]:
            t_ip, t_done, t_rr, t_mrr, t_cyc, t_rem, sk, se = tail[c]
            w = int(n_wf[c])
            lat_rows = [
                op_lat[c, wf, : int(n_ins[c])].tolist() for wf in range(w)
            ]
            try:
                end_cycle, end_done, sk, se = _finish_scalar(
                    cfg,
                    trace,
                    lat_rows,
                    int(mem_latency[c]),
                    int(worst[c]),
                    t_ip,
                    t_done,
                    t_rr,
                    t_mrr,
                    t_cyc,
                    t_rem,
                    sk,
                    se,
                )
            except RuntimeError as exc:
                outcomes.append(
                    CUBatchOutcome(result=None, error=exc, vectorized=True)
                )
                continue
            total = max(end_cycle, end_done)
        elif failed[c]:
            outcomes.append(
                CUBatchOutcome(
                    result=None,
                    error=RuntimeError(
                        "CU simulation failed to make progress"
                    ),
                    vectorized=True,
                )
            )
            continue
        else:
            total = int(max(cycle[c], done[c].max()))
        instructions = int(n_wf[c] * n_ins[c])
        fma = _fma_count(trace)
        st = stats[c]
        hits = st.total_hits if cache_on[c] else 0
        result = CUResult(
            cycles=int(total),
            instructions=instructions,
            fma_ops=fma,
            mem_ops=instructions - fma,
            rf_reads=2 * instructions - hits,
            rf_writes=fma,
            rf_cache_read_hits=hits,
            rf_cache_read_misses=(2 * instructions - hits) if cache_on[c] else 0,
            rf_cache_writes=fma if cache_on[c] else 0,
            freq_ghz=cfg.freq_ghz,
        )
        reg = MetricsRegistry("cu", enabled=True)
        reg.probe("rf.reads", lambda v=result.rf_reads: v)
        reg.probe("rf.writes", lambda v=result.rf_writes: v)
        if cache_on[c]:
            reg.probe("rfc.hits", lambda v=result.rf_cache_read_hits: v)
            reg.probe("rfc.misses", lambda v=result.rf_cache_read_misses: v)
            reg.probe("rfc.writes", lambda v=result.rf_cache_writes: v)
            reg.probe(
                "rfc.evictions", lambda v=st.total_evictions: v
            )
        reg.gauge("cycles").set(result.cycles)
        reg.gauge("fma_ops").set(result.fma_ops)
        reg.gauge("mem_ops").set(result.mem_ops)
        reg.gauge("wavefronts").set(int(n_wf[c]))
        reg.gauge("engine.skipped_cycles").set(sk)
        reg.gauge("engine.skip_events").set(se)
        outcomes.append(
            CUBatchOutcome(
                result=result,
                error=None,
                skipped_cycles=sk,
                skip_events=se,
                metrics=reg,
                vectorized=True,
            )
        )
    return outcomes
