"""The GPU vector register file and the AdvHet register-file cache.

Table III: 256 vector registers per thread, 1-cycle access in CMOS and
2-cycle in TFET.  The AdvHet register-file cache (Section IV-C3, after
Gebhart et al.) holds 6 entries per thread, is written-register-allocate
only (caching writes captures the ~40% of values consumed within a few
instructions while avoiding thrash from streaming reads), and serves hits
in 1 cycle.

Registers are uniform across a wavefront's threads, so the model tracks one
entry set per wavefront.
"""

from __future__ import annotations


class VectorRegisterFile:
    """Access counting + latency for the main vector RF."""

    def __init__(self, n_regs: int = 256, access_cycles: int = 1):
        if n_regs <= 0 or access_cycles <= 0:
            raise ValueError("register file geometry must be positive")
        self.n_regs = n_regs
        self.access_cycles = access_cycles
        self.reads = 0
        self.writes = 0

    def read(self, reg: int) -> int:
        """Read latency for ``reg`` (counts the access)."""
        self._check(reg)
        self.reads += 1
        return self.access_cycles

    def write(self, reg: int) -> None:
        self._check(reg)
        self.writes += 1

    def _check(self, reg: int) -> None:
        if not 0 <= reg < self.n_regs:
            raise ValueError(f"register {reg} out of range 0..{self.n_regs - 1}")

    def publish(self, registry, prefix: str = "rf") -> None:
        """Register lazy probes for the RF access counters."""
        registry.probe(f"{prefix}.reads", lambda: self.reads)
        registry.probe(f"{prefix}.writes", lambda: self.writes)


class RegisterFileCache:
    """Per-wavefront 6-entry LRU cache over *written* registers."""

    def __init__(self, n_wavefronts: int, entries_per_thread: int = 6):
        if entries_per_thread <= 0 or n_wavefronts <= 0:
            raise ValueError("cache geometry must be positive")
        self.entries = entries_per_thread
        # MRU-first list of register ids per wavefront.
        self._sets: list[list[int]] = [[] for _ in range(n_wavefronts)]
        self.read_hits = 0
        self.read_misses = 0
        self.writes = 0
        self.evictions = 0

    def read_hit(self, wavefront: int, reg: int) -> bool:
        """Probe for a read; hits refresh recency."""
        entries = self._sets[wavefront]
        if reg in entries:
            self.read_hits += 1
            if entries[0] != reg:
                entries.remove(reg)
                entries.insert(0, reg)
            return True
        self.read_misses += 1
        return False

    def write(self, wavefront: int, reg: int) -> None:
        """Allocate the written register (write-allocate-only policy)."""
        self.writes += 1
        entries = self._sets[wavefront]
        if reg in entries:
            entries.remove(reg)
        elif len(entries) >= self.entries:
            entries.pop()
            self.evictions += 1
        entries.insert(0, reg)

    @property
    def read_hit_rate(self) -> float:
        total = self.read_hits + self.read_misses
        return self.read_hits / total if total else 0.0

    def occupancy(self, wavefront: int) -> int:
        return len(self._sets[wavefront])

    def publish(self, registry, prefix: str = "rfc") -> None:
        """Register lazy probes for the register-file-cache counters
        (``gpu.cu.rfc.hits`` et al. once mounted under ``gpu.cu``)."""
        registry.probe(f"{prefix}.hits", lambda: self.read_hits)
        registry.probe(f"{prefix}.misses", lambda: self.read_misses)
        registry.probe(f"{prefix}.writes", lambda: self.writes)
        registry.probe(f"{prefix}.evictions", lambda: self.evictions)
