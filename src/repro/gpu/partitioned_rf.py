"""Partitioned register file: the Pilot-RF alternative to the RF cache.

Section VIII: "a partitioned register file for GPUs is proposed in [Pilot
Register File, HPCA 2017].  It consists of a fast partition operating at
nominal voltage and a slow partition operating at near-threshold voltage.
Such a design can readily be adapted to AdvHet, by implementing the slow
partition in TFET and the fast one in CMOS."

This module does that adaptation: a small CMOS partition holds the hottest
architectural registers (selected by profiling each kernel's register-use
frequency, the Pilot-RF approach), and the remaining registers live in a
TFET partition with the usual doubled access latency.  Unlike the RF
*cache*, the assignment is static per kernel -- no tags, no eviction --
trading adaptivity for simplicity.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.gpu_generator import KernelTrace


class PartitionedRegisterFile:
    """Static fast/slow register partition with access accounting."""

    def __init__(
        self,
        fast_registers: frozenset,
        fast_cycles: int = 1,
        slow_cycles: int = 2,
    ):
        if fast_cycles <= 0 or slow_cycles <= 0:
            raise ValueError("latencies must be positive")
        if slow_cycles < fast_cycles:
            raise ValueError("the slow partition cannot be faster")
        self.fast_registers = frozenset(fast_registers)
        self.fast_cycles = fast_cycles
        self.slow_cycles = slow_cycles
        self.fast_reads = 0
        self.slow_reads = 0
        self.fast_writes = 0
        self.slow_writes = 0

    def read(self, reg: int) -> int:
        if reg in self.fast_registers:
            self.fast_reads += 1
            return self.fast_cycles
        self.slow_reads += 1
        return self.slow_cycles

    def write(self, reg: int) -> None:
        if reg in self.fast_registers:
            self.fast_writes += 1
        else:
            self.slow_writes += 1

    @property
    def fast_read_fraction(self) -> float:
        total = self.fast_reads + self.slow_reads
        return self.fast_reads / total if total else 0.0


def profile_hot_registers(trace: KernelTrace, fast_count: int) -> frozenset:
    """The ``fast_count`` most frequently accessed registers of a kernel.

    This is the compile-time profiling pass of the Pilot-RF scheme: static
    per-kernel assignment from read+write frequencies.
    """
    if fast_count < 0:
        raise ValueError("fast_count cannot be negative")
    counts = np.zeros(trace.profile.n_regs, dtype=np.int64)
    for arr in (trace.src1_reg, trace.src2_reg, trace.dst_reg):
        np.add.at(counts, arr.ravel(), 1)
    hottest = np.argsort(counts)[::-1][:fast_count]
    return frozenset(int(r) for r in hottest if counts[r] > 0)


def partitioned_operand_model(
    trace: KernelTrace, fast_count: int = 8
) -> PartitionedRegisterFile:
    """Build the partition for a kernel (profiling + construction)."""
    hot = profile_hot_registers(trace, fast_count)
    return PartitionedRegisterFile(hot)
