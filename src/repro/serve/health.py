"""Liveness/readiness snapshots for the simulation job service.

No network is required (or wanted) in this environment, so health is a
*file* contract: the running service atomically rewrites a small JSON
document (``<checkpoint>.health.json`` by default, or ``--health-file``)
on every state change plus a periodic heartbeat, and ``repro serve
--health`` dumps it.  An orchestrator gets the two standard probes:

* **liveness** -- the writer stamps ``updated_at`` (wall clock) on every
  write; a reader treats a snapshot older than ``stale_after_s`` as a
  dead service (the PID is included so a supervisor can double-check);
* **readiness** -- ``ready`` is true only while the service is accepting
  admissions: started, not draining, and the queue below capacity.

The body carries the numbers the ISSUE's robustness story turns on:
queue depth vs capacity, per-key breaker states, pool utilisation
(in-flight workers over dispatcher slots), and the served / failed /
shed-by-reason counters, so "is it shedding and why" is one file read.
"""

from __future__ import annotations

import dataclasses
import os
import time

from repro.resilience import diskio

#: A snapshot older than this is reported as not alive by readers.
DEFAULT_STALE_AFTER_S = 30.0


@dataclasses.dataclass
class HealthSnapshot:
    """One point-in-time health document for a running service."""

    alive: bool
    ready: bool
    draining: bool
    queue_depth: int
    queue_capacity: int
    workers: int
    in_flight: int
    isolation: str
    degraded: bool
    breakers: dict
    breakers_open: int
    counters: dict
    shed_reasons: dict
    pid: int = dataclasses.field(default_factory=os.getpid)
    updated_at: float = dataclasses.field(default_factory=time.time)
    #: Monotonically increasing write counter.  Readers that poll (the
    #: ``repro top`` watcher) detect liveness from *seq advancing* under
    #: their own monotonic clock instead of trusting cross-process wall
    #: clocks, which may step.
    seq: int = 0
    #: Age of the companion metrics snapshot at write time (seconds on
    #: the writer's monotonic clock); None when metrics export is off.
    metrics_age_s: "float | None" = None

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "HealthSnapshot":
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in names})

    def utilization(self) -> float:
        """In-flight dispatcher slots as a 0..1 fraction."""
        return self.in_flight / self.workers if self.workers else 0.0

    def describe(self) -> str:
        """Human-readable multi-line dump (the ``--health`` text mode)."""
        state = "draining" if self.draining else (
            "ready" if self.ready else "not-ready"
        )
        age = max(time.time() - self.updated_at, 0.0)
        lines = [
            f"service: {'alive' if self.alive else 'DOWN'} ({state}), "
            f"pid {self.pid}, updated {age:.1f}s ago (seq {self.seq})",
            f"queue:   {self.queue_depth}/{self.queue_capacity} queued, "
            f"{self.in_flight}/{self.workers} in flight "
            f"({self.isolation} isolation"
            f"{', DEGRADED' if self.degraded else ''})",
            f"jobs:    " + ", ".join(
                f"{k}={v}" for k, v in sorted(self.counters.items())
            ),
        ]
        if self.shed_reasons:
            lines.append(
                "shed:    " + ", ".join(
                    f"{k}={v}" for k, v in sorted(self.shed_reasons.items())
                )
            )
        if self.breakers:
            lines.append(f"breakers ({self.breakers_open} not closed):")
            for key, snap in sorted(self.breakers.items()):
                extra = (
                    f", {snap['consecutive_failures']} consecutive failures"
                    if snap["consecutive_failures"]
                    else ""
                )
                lines.append(
                    f"  {key}: {snap['state']} "
                    f"(trips {snap['trips']}{extra})"
                )
        return "\n".join(lines)


def write_health(path: "str | os.PathLike", snapshot: HealthSnapshot) -> None:
    """Crash-consistently replace the health file (never a torn doc)."""
    diskio.write_record(path, snapshot.to_dict(), site="health")


def _load_snapshot(path) -> "HealthSnapshot | None":
    doc = diskio.read_record(path, site="health")
    if doc is None:
        return None
    try:
        return HealthSnapshot.from_dict(doc)
    except (ValueError, TypeError, KeyError):
        return None


def read_health(
    path: "str | os.PathLike",
    *,
    stale_after_s: float = DEFAULT_STALE_AFTER_S,
) -> "HealthSnapshot | None":
    """Load and staleness-check a health file; ``None`` if missing/bad.

    A stale snapshot (writer stopped heartbeating without a clean
    shutdown) is returned with ``alive``/``ready`` forced false rather
    than hidden -- the counters are still the best available evidence.
    """
    snapshot = _load_snapshot(path)
    if snapshot is None:
        return None
    # Clamp negative ages: the writer's wall clock may be ahead of ours
    # (NTP step, container clock skew); a snapshot from "the future" is
    # fresh, not stale, and must never trip the liveness probe.
    if max(time.time() - snapshot.updated_at, 0.0) > stale_after_s:
        snapshot.alive = False
        snapshot.ready = False
    return snapshot


class HealthWatcher:
    """Poll a health file with *reader-side monotonic* staleness.

    One-shot readers (``read_health``) can only compare wall clocks
    across processes, which break under clock steps.  A polling reader
    (``repro top``) can do better: it remembers the last ``seq`` it saw
    and the monotonic instant it changed, and declares the writer dead
    only when the sequence stops advancing for ``stale_after_s`` of the
    *reader's own* monotonic time -- immune to either side's wall clock.
    """

    def __init__(
        self,
        path: "str | os.PathLike",
        *,
        stale_after_s: float = DEFAULT_STALE_AFTER_S,
        clock=time.monotonic,
    ):
        self.path = path
        self.stale_after_s = stale_after_s
        self._clock = clock
        self._last_marker: "tuple | None" = None
        self._last_advance: "float | None" = None

    def poll(self) -> "HealthSnapshot | None":
        """The current snapshot, staleness-checked monotonically."""
        snapshot = _load_snapshot(self.path)
        if snapshot is None:
            return None
        now = self._clock()
        marker = (snapshot.seq, snapshot.updated_at)
        if self._last_marker != marker:
            self._last_marker = marker
            self._last_advance = now
        elif (
            self._last_advance is not None
            and now - self._last_advance > self.stale_after_s
        ):
            snapshot.alive = False
            snapshot.ready = False
        return snapshot

    def silent_s(self) -> "float | None":
        """Seconds since the snapshot last advanced (reader-monotonic)."""
        if self._last_advance is None:
            return None
        return max(self._clock() - self._last_advance, 0.0)
