"""Per-(run_kind, config) circuit breakers for the simulation job service.

A configuration whose runs keep crashing or timing out burns a full
guard budget (timeout x retries x backoff) on *every* job that touches
it.  Retries handle transient faults; they are exactly wrong for
persistent ones.  The breaker adds the missing memory across jobs:

* **closed** -- normal operation; consecutive trip-kind failures
  (``crash`` / ``timeout`` by default) are counted, any success resets
  the count.  Reaching ``policy.failure_threshold`` trips the breaker.
* **open** -- jobs for the keyed cell are shed immediately (reason
  ``breaker_open``) without executing, until ``recovery_s`` has passed.
  Repeated trips escalate the recovery window exponentially, capped at
  ``max_recovery_s``, so a permanently broken config converges to one
  probe per cap interval instead of a retry storm.
* **half-open** -- after recovery, exactly one *probe* job is allowed
  through; concurrent jobs keep shedding while the probe is in flight.
  ``probe_successes`` consecutive probe successes close the breaker
  (and clear the escalation); a probe failure reopens it.

The breaker keys on (run_kind, config) -- not the full cell -- because
the observed persistent-failure modes (broken device model, bad power
table, miscompiled config) poison every workload under that
configuration equally; keying narrower would pay one full trip budget
per workload before converging.  See DESIGN.md.

Time is an injected monotonic ``clock``; the state machine is fully
deterministic under a fake clock (tested without sleeping).  All state
transitions are serialised under an internal lock and reported through
``on_transition`` so the service can count them in telemetry; the
callback itself is delivered *after* the lock is released, so handlers
may snapshot any breaker (the health file snapshots all of them)
without lock-ordering deadlocks.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

#: Breaker states.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"


class BreakerOpen(RuntimeError):
    """A job was refused because its (run_kind, config) breaker is open."""


@dataclass(frozen=True)
class BreakerPolicy:
    """When to trip, how long to back off, and what counts as a trip."""

    #: Consecutive trip-kind failures that open the breaker.
    failure_threshold: int = 3
    #: Base open interval before the first probe is allowed.
    recovery_s: float = 30.0
    #: Open-interval cap under repeated trips (exponential escalation).
    max_recovery_s: float = 300.0
    #: Consecutive half-open probe successes required to close.
    probe_successes: int = 1
    #: Failure kinds that count toward tripping.  Validation failures
    #: (``config``/``workload``) are deterministic rejections -- they
    #: never reach execution, so they must not poison the breaker.
    trip_kinds: tuple = ("crash", "timeout")

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.recovery_s < 0 or self.max_recovery_s < self.recovery_s:
            raise ValueError("need 0 <= recovery_s <= max_recovery_s")
        if self.probe_successes < 1:
            raise ValueError("probe_successes must be >= 1")


class CircuitBreaker:
    """One breaker instance for one (run_kind, config) key."""

    def __init__(
        self,
        key: tuple,
        policy: "BreakerPolicy | None" = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        on_transition: "Callable[[tuple, str, str], None] | None" = None,
    ):
        self.key = tuple(key)
        self.policy = policy or BreakerPolicy()
        self._clock = clock
        self._on_transition = on_transition
        # ``on_transition`` is never fired with this lock held: transitions
        # are queued under the lock and delivered after release, so a
        # handler may snapshot this breaker -- or every breaker in the
        # registry -- without self-deadlock or cross-breaker lock-ordering
        # deadlocks (two breakers transitioning concurrently while the
        # handler acquires all breaker locks for a health snapshot).
        self._lock = threading.RLock()
        self._pending_transitions: "list[tuple[tuple, str, str]]" = []
        self._state = CLOSED
        self._consecutive_failures = 0
        self._probe_streak = 0
        self._probe_in_flight = False
        self._opened_at = 0.0
        self._trips = 0  # lifetime trip count (drives escalation)

    # -- internals (lock held) -----------------------------------------
    def _transition(self, new_state: str) -> None:
        old, self._state = self._state, new_state
        if old != new_state and self._on_transition is not None:
            self._pending_transitions.append((self.key, old, new_state))

    def _deliver_transitions(self) -> None:
        """Fire queued ``on_transition`` callbacks (lock NOT held)."""
        while True:
            with self._lock:
                if not self._pending_transitions:
                    return
                pending = self._pending_transitions
                self._pending_transitions = []
            for args in pending:
                self._on_transition(*args)

    def _open_interval_s(self) -> float:
        scale = 2 ** max(0, self._trips - 1)
        return min(self.policy.recovery_s * scale, self.policy.max_recovery_s)

    def _trip(self) -> None:
        self._trips += 1
        self._opened_at = self._clock()
        self._probe_in_flight = False
        self._probe_streak = 0
        self._transition(OPEN)

    # -- the dispatch-side API -----------------------------------------
    def allow(self) -> bool:
        """May a job for this key execute right now?

        In ``half_open`` this *claims* the single probe slot: a ``True``
        return obliges the caller to report the attempt's outcome via
        :meth:`record_success` / :meth:`record_failure` (the service's
        dispatch loop always does).
        """
        try:
            with self._lock:
                if self._state == CLOSED:
                    return True
                if self._state == OPEN:
                    if (
                        self._clock() - self._opened_at
                        < self._open_interval_s()
                    ):
                        return False
                    self._transition(HALF_OPEN)
                    # fall through to claim the probe
                if self._probe_in_flight:
                    return False
                self._probe_in_flight = True
                return True
        finally:
            self._deliver_transitions()

    def probe_eta_s(self) -> "float | None":
        """Seconds until a hard-open breaker would admit a probe, else None.

        A *non-mutating* admission peek for the HTTP front door: unlike
        :meth:`allow` it never transitions state or claims the probe
        slot, so a submit-time rejection costs the breaker nothing.
        ``None`` means dispatch may proceed (closed, recovery elapsed,
        or half-open -- the dispatch-side :meth:`allow` still arbitrates
        the single probe slot).
        """
        with self._lock:
            if self._state != OPEN:
                return None
            remaining = self._open_interval_s() - (
                self._clock() - self._opened_at
            )
            return remaining if remaining > 0 else None

    def reject_detail(self) -> str:
        """Human-readable detail for a shed (state + probe ETA)."""
        with self._lock:
            if self._state == OPEN:
                remaining = self._open_interval_s() - (
                    self._clock() - self._opened_at
                )
                return (
                    f"breaker open for {self.key} "
                    f"(probe in {max(remaining, 0.0):.1f}s)"
                )
            if self._state == HALF_OPEN:
                return f"breaker half-open for {self.key} (probe in flight)"
            return f"breaker closed for {self.key}"

    # -- the outcome-side API ------------------------------------------
    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            if self._state == HALF_OPEN:
                self._probe_in_flight = False
                self._probe_streak += 1
                if self._probe_streak >= self.policy.probe_successes:
                    self._trips = 0  # recovered: clear the escalation
                    self._probe_streak = 0
                    self._transition(CLOSED)
            elif self._state == OPEN:  # late success from a pre-trip job
                pass
        self._deliver_transitions()

    def record_failure(self, kind: str) -> None:
        """Account one finished-but-failed execution of this key."""
        with self._lock:
            if kind not in self.policy.trip_kinds:
                # Non-trip outcome: releases a probe slot but neither
                # advances nor resets the trip counter.
                if self._state == HALF_OPEN:
                    self._probe_in_flight = False
            elif self._state == HALF_OPEN:
                self._trip()
            elif self._state == OPEN:
                pass
            else:
                self._consecutive_failures += 1
                if (
                    self._consecutive_failures
                    >= self.policy.failure_threshold
                ):
                    self._trip()
        self._deliver_transitions()

    # -- introspection -------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "trips": self._trips,
                "open_interval_s": (
                    self._open_interval_s() if self._trips else 0.0
                ),
                "probe_in_flight": self._probe_in_flight,
            }


class BreakerRegistry:
    """Lazily built breakers, one per (run_kind, config) key."""

    def __init__(
        self,
        policy: "BreakerPolicy | None" = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        on_transition: "Callable[[tuple, str, str], None] | None" = None,
    ):
        self.policy = policy or BreakerPolicy()
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._breakers: "dict[tuple, CircuitBreaker]" = {}

    def breaker_for(self, run_kind: str, config: str) -> CircuitBreaker:
        key = (run_kind, config)
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(
                    key,
                    self.policy,
                    clock=self._clock,
                    on_transition=self._on_transition,
                )
                self._breakers[key] = breaker
            return breaker

    def states(self) -> "dict[str, dict]":
        """Per-key snapshots for the health endpoint (stable string keys)."""
        with self._lock:
            breakers = dict(self._breakers)
        return {
            f"{kind}/{config}": breaker.snapshot()
            for (kind, config), breaker in sorted(breakers.items())
        }

    def open_count(self) -> int:
        with self._lock:
            breakers = list(self._breakers.values())
        return sum(1 for b in breakers if b.state != CLOSED)
