"""Admission-controlled simulation job service.

The sweep stack (PRs 1-3) made one *batch* invocation survive bad cells:
guards, checkpoints, fault injection, process isolation.  This package
adds the missing shape for a long-lived fleet: a service that accepts a
*stream* of simulation jobs and stays predictable under overload,
repeated faults, and termination:

* :mod:`repro.serve.queue` -- a bounded priority queue with per-job
  deadlines and structured load shedding: a job that cannot be admitted
  (queue full, past its deadline, duplicate id, service draining) is
  rejected with a machine-readable reason, never dropped silently;
* :mod:`repro.serve.breaker` -- per-(run_kind, config) circuit breakers
  (closed / open / half-open with a single probe) that stop hammering a
  configuration whose runs keep crashing or timing out; rejected jobs
  are shed onto the existing failure taxonomy (kind ``shed``);
* :mod:`repro.serve.service` -- :class:`~repro.serve.service.SimService`:
  submit / poll / cancel, batch intake from a JSONL job file (with a
  ``follow`` tail mode -- no network required), degraded-mode fallback
  from process to thread isolation when worker spawn keeps failing, and
  graceful shutdown: SIGTERM/SIGINT stops admissions, drains in-flight
  workers within a deadline, flushes the checkpoint, and reports
  unfinished jobs as gaps;
* :mod:`repro.serve.health` -- liveness/readiness snapshots (queue
  depth, breaker states, shed/served counters) written atomically to a
  health file and dumped by ``repro serve --health``;
* :mod:`repro.serve.http` -- an overload-hardened asyncio HTTP/1.1
  front door (``POST /v1/jobs`` with idempotency keys, poll/cancel,
  healthz/readyz/metrics) that maps every admission outcome to a
  structured 429/503 with ``Retry-After``, bounds header/body sizes and
  read deadlines, rate-limits per client
  (:mod:`repro.serve.ratelimit`), and drains gracefully on SIGTERM;
* :mod:`repro.serve.client` -- the matching retrying client: seeded
  jittered backoff honoring ``Retry-After``, idempotency-key
  resubmission, and a client-side circuit breaker.

Everything executes through the existing
:class:`~repro.experiments.runner.SweepRunner`, so served jobs share the
result caches, checkpoint persistence, telemetry counters, and failure
taxonomy with batch sweeps -- a job service restart resumes from the
same checkpoint a sweep would.
"""

from repro.serve.breaker import (
    BreakerOpen,
    BreakerPolicy,
    BreakerRegistry,
    CircuitBreaker,
)
from repro.serve.client import (
    ClientBreakerOpen,
    ClientConfig,
    ServeClient,
    ServeError,
    ServeRejected,
    ServeUnavailable,
)
from repro.serve.health import HealthSnapshot, read_health, write_health
from repro.serve.http import (
    DEFAULT_RETRY_AFTER,
    SHED_STATUS,
    HttpConfig,
    HttpFrontDoor,
    serve_front_door,
)
from repro.serve.queue import (
    SHED_REASONS,
    Admission,
    Job,
    JobQueue,
)
from repro.serve.ratelimit import RateLimiter, TokenBucket
from repro.serve.service import JobRecord, ServiceConfig, SimService

__all__ = [
    "Admission",
    "BreakerOpen",
    "BreakerPolicy",
    "BreakerRegistry",
    "CircuitBreaker",
    "ClientBreakerOpen",
    "ClientConfig",
    "DEFAULT_RETRY_AFTER",
    "HealthSnapshot",
    "HttpConfig",
    "HttpFrontDoor",
    "Job",
    "JobQueue",
    "JobRecord",
    "RateLimiter",
    "SHED_REASONS",
    "SHED_STATUS",
    "ServeClient",
    "ServeError",
    "ServeRejected",
    "ServeUnavailable",
    "ServiceConfig",
    "SimService",
    "TokenBucket",
    "read_health",
    "serve_front_door",
    "write_health",
]
