"""Admission-controlled simulation job service.

The sweep stack (PRs 1-3) made one *batch* invocation survive bad cells:
guards, checkpoints, fault injection, process isolation.  This package
adds the missing shape for a long-lived fleet: a service that accepts a
*stream* of simulation jobs and stays predictable under overload,
repeated faults, and termination:

* :mod:`repro.serve.queue` -- a bounded priority queue with per-job
  deadlines and structured load shedding: a job that cannot be admitted
  (queue full, past its deadline, duplicate id, service draining) is
  rejected with a machine-readable reason, never dropped silently;
* :mod:`repro.serve.breaker` -- per-(run_kind, config) circuit breakers
  (closed / open / half-open with a single probe) that stop hammering a
  configuration whose runs keep crashing or timing out; rejected jobs
  are shed onto the existing failure taxonomy (kind ``shed``);
* :mod:`repro.serve.service` -- :class:`~repro.serve.service.SimService`:
  submit / poll / cancel, batch intake from a JSONL job file (with a
  ``follow`` tail mode -- no network required), degraded-mode fallback
  from process to thread isolation when worker spawn keeps failing, and
  graceful shutdown: SIGTERM/SIGINT stops admissions, drains in-flight
  workers within a deadline, flushes the checkpoint, and reports
  unfinished jobs as gaps;
* :mod:`repro.serve.health` -- liveness/readiness snapshots (queue
  depth, breaker states, shed/served counters) written atomically to a
  health file and dumped by ``repro serve --health``.

Everything executes through the existing
:class:`~repro.experiments.runner.SweepRunner`, so served jobs share the
result caches, checkpoint persistence, telemetry counters, and failure
taxonomy with batch sweeps -- a job service restart resumes from the
same checkpoint a sweep would.
"""

from repro.serve.breaker import (
    BreakerOpen,
    BreakerPolicy,
    BreakerRegistry,
    CircuitBreaker,
)
from repro.serve.health import HealthSnapshot, read_health, write_health
from repro.serve.queue import (
    SHED_REASONS,
    Admission,
    Job,
    JobQueue,
)
from repro.serve.service import JobRecord, ServiceConfig, SimService

__all__ = [
    "Admission",
    "BreakerOpen",
    "BreakerPolicy",
    "BreakerRegistry",
    "CircuitBreaker",
    "HealthSnapshot",
    "Job",
    "JobQueue",
    "JobRecord",
    "SHED_REASONS",
    "ServiceConfig",
    "SimService",
    "read_health",
    "write_health",
]
