"""Bounded priority job queue with deadlines and structured load shedding.

Admission control happens at :meth:`JobQueue.offer` time, against a fixed
capacity: a service that is saturated says *no* immediately (reason
``queue_full``) instead of buffering unbounded work it will never finish.
Every rejection is an :class:`Admission` record with a machine-readable
reason from :data:`SHED_REASONS` -- the queue never drops a job silently,
which is the property the whole service's accounting rests on
(``submitted == served + failed + shed + cancelled + pending``).

Per-job deadlines are *latest useful start* times: a job whose deadline
passes while queued is shed (reason ``past_deadline``) at the moment it
would have been popped, via the ``on_shed`` callback, so a stale
simulation request never occupies a worker.  Deadlines are measured on
the injected monotonic ``clock`` -- tests drive the queue with a fake
clock and assert shedding without sleeping.

Ordering is strict priority (lower number = more urgent), FIFO within a
priority class (a submission sequence number breaks ties), which keeps
the pop order deterministic for identical submission sequences.
"""

from __future__ import annotations

import heapq
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

#: Every structured reason an :class:`Admission` may be shed with.
SHED_REASONS = (
    "queue_full",      # admission: the bounded queue is at capacity
    "past_deadline",   # admission or pop: the job's deadline has passed
    "breaker_open",    # dispatch: the (run_kind, config) breaker is open
    "draining",        # admission/drain: the service is shutting down
    "duplicate_id",    # admission: a live job already carries this id
    "cancelled",       # explicit cancel before the job started
)


@dataclass(frozen=True)
class Admission:
    """The outcome of one admission-control decision."""

    admitted: bool
    reason: "str | None" = None
    detail: str = ""
    #: Suggested client wait before resubmitting (seconds); carried to
    #: the HTTP tier as a ``Retry-After`` header.  ``None`` means the
    #: decider had no better hint than the reason's default.
    retry_after_s: "float | None" = None

    @classmethod
    def ok(cls) -> "Admission":
        return cls(admitted=True)

    @classmethod
    def shed(
        cls,
        reason: str,
        detail: str = "",
        retry_after_s: "float | None" = None,
    ) -> "Admission":
        if reason not in SHED_REASONS:
            raise ValueError(
                f"unknown shed reason {reason!r} (expected {SHED_REASONS})"
            )
        return cls(
            admitted=False, reason=reason, detail=detail,
            retry_after_s=retry_after_s,
        )


@dataclass
class Job:
    """One simulation request: a sweep cell plus service metadata.

    ``priority`` orders the queue (lower = more urgent, default 10);
    ``deadline_s`` is an optional *latest useful start* budget relative
    to submission.  ``extra`` carries the cell coordinates beyond
    (config, workload) -- the DVFS runs add (freq_ghz, variation).
    """

    job_id: str
    run_kind: str  # "cpu" | "gpu" | "dvfs"
    config: str
    workload: str
    extra: tuple = ()
    priority: int = 10
    deadline_s: "float | None" = None
    #: Absolute monotonic deadline, stamped by the queue at admission.
    deadline: "float | None" = field(default=None, compare=False)
    #: Monotonic admission timestamp, stamped by the queue.
    submitted_at: float = field(default=0.0, compare=False)

    @property
    def cell(self) -> tuple:
        """The failure-taxonomy cell coordinate this job occupies."""
        return (self.run_kind, self.config, self.workload, *self.extra)

    def describe(self) -> str:
        extra = "".join(f" @{e}" for e in self.extra)
        return f"{self.job_id}: {self.run_kind} {self.config}/{self.workload}{extra}"


class JobQueue:
    """Bounded, deadline-aware priority queue (thread-safe).

    ``on_shed(job, reason, detail)`` observes every job the queue sheds
    *after* admission (deadline expiry at pop time, cancellation, drain
    leftovers); admission-time rejections are returned to the submitter
    as :class:`Admission` records instead, since the job never entered.
    """

    def __init__(
        self,
        capacity: int,
        *,
        clock: Callable[[], float] = time.monotonic,
        on_shed: "Callable[[Job, str, str], None] | None" = None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._clock = clock
        self._on_shed = on_shed
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._heap: "list[tuple[int, int, Job]]" = []
        self._seq = 0
        #: Ids admitted and not yet popped/shed (duplicate detection).
        self._queued_ids: "set[str]" = set()
        self._cancelled: "set[str]" = set()
        self._closed = False

    # -- internals -----------------------------------------------------
    def _shed(self, job: Job, reason: str, detail: str) -> None:
        if self._on_shed is not None:
            self._on_shed(job, reason, detail)

    # -- admission -----------------------------------------------------
    def offer(self, job: Job) -> Admission:
        """Admit ``job`` or reject it with a structured reason."""
        now = self._clock()
        with self._lock:
            if self._closed:
                return Admission.shed(
                    "draining", "service is shutting down; admissions stopped"
                )
            if job.job_id in self._queued_ids:
                return Admission.shed(
                    "duplicate_id", f"job id {job.job_id!r} is already queued"
                )
            if job.deadline_s is not None and job.deadline_s <= 0:
                return Admission.shed(
                    "past_deadline",
                    f"deadline_s={job.deadline_s:g} expired before admission",
                )
            if len(self._heap) >= self.capacity:
                return Admission.shed(
                    "queue_full",
                    f"queue at capacity ({self.capacity}); retry later "
                    f"or raise --queue-capacity",
                    retry_after_s=1.0,
                )
            job.submitted_at = now
            job.deadline = (
                now + job.deadline_s if job.deadline_s is not None else None
            )
            self._seq += 1
            heapq.heappush(self._heap, (job.priority, self._seq, job))
            self._queued_ids.add(job.job_id)
            self._not_empty.notify()
        return Admission.ok()

    # -- consumption ---------------------------------------------------
    def pop(self, timeout: "float | None" = 0.0) -> "Optional[Job]":
        """The most urgent admitted job, or ``None`` after ``timeout``.

        Cancelled jobs are discarded (shed with reason ``cancelled``),
        jobs whose deadline passed while queued are shed with reason
        ``past_deadline`` -- both through ``on_shed``, never silently.

        A closed queue returns ``None`` immediately even while jobs
        remain queued: drain semantics start no new work after shutdown
        -- the leftovers are collected by :meth:`drain_remaining` and
        reported as gaps instead.

        ``on_shed`` fires with the queue lock *released*: callbacks may
        freely call back into the queue (``depth``, ``offer``, ...)
        without deadlocking, matching :meth:`drain_remaining`.
        """
        deadline = self._clock() + timeout if timeout else None
        while True:
            shed: "list[tuple[Job, str, str]]" = []
            job: "Optional[Job]" = None
            done = False
            with self._not_empty:
                while True:
                    if self._closed:
                        done = True
                        break
                    while self._heap:
                        _, _, candidate = heapq.heappop(self._heap)
                        self._queued_ids.discard(candidate.job_id)
                        if candidate.job_id in self._cancelled:
                            self._cancelled.discard(candidate.job_id)
                            shed.append(
                                (candidate, "cancelled",
                                 "cancelled while queued")
                            )
                            continue
                        now = self._clock()
                        if (
                            candidate.deadline is not None
                            and now > candidate.deadline
                        ):
                            shed.append((
                                candidate,
                                "past_deadline",
                                f"deadline exceeded by "
                                f"{now - candidate.deadline:.3f}s while queued",
                            ))
                            continue
                        job = candidate
                        break
                    if job is not None or self._closed:
                        done = done or self._closed
                        break
                    if shed:
                        # Release the lock to fire the callbacks before
                        # blocking; the outer loop resumes the wait.
                        break
                    if timeout is None:
                        self._not_empty.wait()
                    else:
                        remaining = (
                            deadline - self._clock() if deadline else 0.0
                        )
                        if remaining <= 0 or not self._not_empty.wait(
                            remaining
                        ):
                            done = True
                            break
            for shed_job, reason, detail in shed:
                self._shed(shed_job, reason, detail)
            if job is not None or done:
                return job

    def cancel(self, job_id: str) -> bool:
        """Mark a queued job cancelled; True if it was still queued."""
        with self._lock:
            if job_id in self._queued_ids and job_id not in self._cancelled:
                self._cancelled.add(job_id)
                return True
        return False

    # -- shutdown ------------------------------------------------------
    def close(self) -> None:
        """Stop admissions (subsequent offers shed with ``draining``)."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    def drain_remaining(self) -> "list[Job]":
        """Remove and return every still-queued job (drain accounting).

        Cancelled leftovers are shed via ``on_shed``; live leftovers are
        returned for the service to record as gaps.
        """
        leftovers: "list[Job]" = []
        with self._lock:
            heap, self._heap = self._heap, []
            self._queued_ids.clear()
        for _, _, job in sorted(heap):
            if job.job_id in self._cancelled:
                self._cancelled.discard(job.job_id)
                self._shed(job, "cancelled", "cancelled while queued")
                continue
            leftovers.append(job)
        return leftovers

    # -- introspection -------------------------------------------------
    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._heap)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed
