"""`SimService`: the admission-controlled simulation job service.

Lifecycle
---------
::

    runner = SweepRunner(policy=..., checkpoint=..., resume=True)
    service = SimService(runner, ServiceConfig(workers=2, isolation="process"))
    service.start()
    job_id, admission = service.submit({"run_kind": "cpu",
                                        "config": "AdvHet", "workload": "lu"})
    ...
    service.poll(job_id)          # JobRecord: pending/running/served/...
    summary = service.shutdown()  # graceful drain; see below

Dispatch is pull-based: ``config.workers`` daemon dispatcher threads pop
admitted jobs in priority order and execute them through the *shared*
:class:`~repro.experiments.runner.SweepRunner` -- so served jobs land in
the same result caches, checkpoint, telemetry, and failure taxonomy as
batch sweeps.  Under ``isolation="process"`` each attempt runs in a
SIGKILL-supervised worker process (:mod:`repro.resilience.pool`); under
``"thread"`` in the in-process guard.

Robustness shapes
-----------------
* **Admission control / load shedding** -- the bounded queue rejects
  with a structured reason (``queue_full``, ``past_deadline``, ...)
  instead of buffering unbounded work; see :mod:`repro.serve.queue`.
* **Circuit breaking** -- consecutive crash/timeout failures of one
  (run_kind, config) open its breaker; further jobs for that key shed
  immediately with reason ``breaker_open`` (recorded as ``shed`` gaps in
  the failure taxonomy) until a half-open probe succeeds; see
  :mod:`repro.serve.breaker`.
* **Degraded mode** -- when *worker spawn itself* keeps failing (fork
  EAGAIN, fd exhaustion: ``OSError`` out of the pool,
  ``config.spawn_failure_threshold`` times consecutively), the service
  permanently falls back from process to thread isolation and says so
  (``serve.degraded`` counter, health flag).  Reduced isolation beats
  serving nothing.
* **Graceful drain** -- :meth:`request_shutdown` (wired to SIGTERM and
  SIGINT by the CLI) stops admissions and stops *starting* queued jobs;
  :meth:`shutdown` then waits up to ``drain_deadline_s`` for in-flight
  jobs, aborts still-running worker pools past the deadline
  (:meth:`~repro.experiments.runner.SweepRunner.abort_active_pools`),
  records every unfinished job as a ``shed`` gap, flushes the
  checkpoint, and writes a final health snapshot.  A re-run against the
  same checkpoint serves only the gaps.

Accounting invariant: every submitted job reaches exactly one terminal
state (``served`` / ``failed`` / ``shed`` / ``cancelled``), and every
non-served admitted job leaves a :class:`RunFailure` gap or an explicit
cancellation -- nothing is ever dropped silently.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from threading import Event, RLock, Thread
from typing import Callable

from repro import obs
from repro.experiments.runner import SweepRunner
from repro.obs.events import get_event_log
from repro.obs.export import metrics_snapshot_path, write_metrics_snapshot
from repro.resilience import diskio
from repro.resilience.errors import RunFailure
from repro.resilience.pool import PoolAborted
from repro.serve.breaker import BreakerPolicy, BreakerRegistry
from repro.serve.health import HealthSnapshot, write_health
from repro.serve.queue import Admission, Job, JobQueue
from repro.store.address import content_address

#: Run kinds a job may carry (the runner's cache/figure kinds).
RUN_KINDS = ("cpu", "gpu", "dvfs")

#: Terminal job states.
TERMINAL_STATES = ("served", "failed", "shed", "cancelled")


@dataclass
class ServiceConfig:
    """Shape of one :class:`SimService` instance."""

    #: Bounded queue capacity (admissions beyond it shed ``queue_full``).
    capacity: int = 64
    #: Concurrent dispatcher threads (= max in-flight jobs).
    workers: int = 1
    #: "thread" (in-process guard) or "process" (supervised workers).
    isolation: str = "thread"
    #: Graceful-drain budget for in-flight jobs at shutdown (seconds).
    drain_deadline_s: float = 10.0
    #: Circuit-breaker policy, shared by every (run_kind, config) key.
    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)
    #: Health-file path (None = no health file).
    health_file: "str | None" = None
    #: Minimum seconds between health-file rewrites (state changes in
    #: between are coalesced; shutdown always forces a final write).
    health_interval_s: float = 0.5
    #: Dispatcher idle poll quantum (seconds).
    poll_s: float = 0.05
    #: Consecutive worker-spawn ``OSError``s before degrading to threads.
    spawn_failure_threshold: int = 3

    def __post_init__(self) -> None:
        if self.isolation not in ("thread", "process"):
            raise ValueError(
                f"unknown isolation {self.isolation!r} "
                f"(expected 'thread' or 'process')"
            )
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.spawn_failure_threshold < 1:
            raise ValueError("spawn_failure_threshold must be >= 1")


@dataclass
class JobRecord:
    """The service-side state of one admitted job."""

    job: Job
    status: str = "pending"  # pending/running + TERMINAL_STATES
    failure: "RunFailure | None" = None
    shed_reason: "str | None" = None
    detail: str = ""
    #: Headline measurement for a served job (time_s/energy_j/ed2).
    result: "dict | None" = None

    def to_dict(self) -> dict:
        return {
            "job_id": self.job.job_id,
            "run_kind": self.job.run_kind,
            "config": self.job.config,
            "workload": self.job.workload,
            "extra": list(self.job.extra),
            "priority": self.job.priority,
            "status": self.status,
            "shed_reason": self.shed_reason,
            "detail": self.detail,
            "result": self.result,
            "failure": self.failure.to_dict() if self.failure else None,
        }


class SimService:
    """Long-running, admission-controlled simulation job service."""

    def __init__(
        self,
        runner: "SweepRunner | None" = None,
        config: "ServiceConfig | None" = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.runner = runner or SweepRunner()
        self.config = config or ServiceConfig()
        self._clock = clock
        self.queue = JobQueue(
            self.config.capacity, clock=clock, on_shed=self._on_queue_shed
        )
        self.breakers = BreakerRegistry(
            self.config.breaker,
            clock=clock,
            on_transition=self._on_breaker_transition,
        )
        self._lock = RLock()
        self._records: "dict[str, JobRecord]" = {}
        self._counters = {
            "submitted": 0,
            "admitted": 0,
            "served": 0,
            "failed": 0,
            "shed": 0,
            "cancelled": 0,
            "drained": 0,
            "deduplicated": 0,
            "intake_malformed": 0,
            "intake_rotated": 0,
        }
        #: idempotency key -> job id, shared by every intake path (JSONL
        #: and HTTP), so a resubmitted request finds its original job.
        self._idempotency: "dict[str, str]" = {}
        self._in_flight = 0
        self._threads: "list[Thread]" = []
        self._stop = Event()
        self._started = False
        self._finished = False
        self._degraded = False
        self._spawn_failures = 0
        self._auto_ids = itertools.count(1)
        self._last_health_write = float("-inf")
        self._health_seq = 0
        self._last_metrics_write: "float | None" = None

    # -- small helpers -------------------------------------------------
    @property
    def telemetry(self):
        return self.runner.telemetry

    def _count(self, key: str, n: int = 1) -> None:
        with self._lock:
            self._counters[key] += n

    def _on_breaker_transition(self, key: tuple, old: str, new: str) -> None:
        label = {"open": "opened", "half_open": "half_open", "closed": "closed"}
        self.telemetry.record_serve(f"breaker.{label[new]}")
        get_event_log().emit(
            "breaker.transition", key=list(key), old=old, new=new,
        )
        self._write_health(force=True)

    def _shed_gap(self, job: Job, reason: str, detail: str) -> RunFailure:
        """Record one admitted-but-never-served job as a taxonomy gap."""
        failure = RunFailure(
            run_kind=job.run_kind,
            config=job.config,
            workload=job.workload,
            kind="shed",
            attempts=0,
            message=f"{reason}: {detail}" if detail else reason,
            extra=tuple(job.extra),
        )
        self.runner.record_gap(failure)
        return failure

    def _mark_shed(
        self, job: Job, reason: str, detail: str, *, gap: bool = True
    ) -> bool:
        """Move a job's record to ``shed``; False if already terminal.

        The claim check keeps the accounting invariant under races:
        shutdown closing out an abandoned in-flight job and its
        dispatcher finishing late must settle on exactly one terminal
        state and one counter increment.
        """
        with self._lock:
            record = self._records.get(job.job_id)
            if record is not None and record.status in TERMINAL_STATES:
                return False
            if record is not None:
                record.status = "shed"
                record.shed_reason = reason
                record.detail = detail
        failure = self._shed_gap(job, reason, detail) if gap else None
        if record is not None and failure is not None:
            with self._lock:
                record.failure = failure
        self._count("shed")
        self.telemetry.record_shed(reason)
        self._write_health()
        return True

    def _on_queue_shed(self, job: Job, reason: str, detail: str) -> None:
        """Jobs the queue discarded after admission (pop-time decisions)."""
        if reason == "cancelled":
            # Already accounted at cancel() time; the queue is merely
            # confirming the discard.
            return
        self._mark_shed(job, reason, detail)

    # -- submission-side API -------------------------------------------
    def submit(self, job: "Job | dict") -> "tuple[str, Admission]":
        """Admit one job; returns (job_id, admission decision).

        Rejections are synchronous and structured (the caller learns the
        reason immediately); admitted jobs get a poll-able
        :class:`JobRecord`.  Raises ``ValueError`` for a malformed job
        (unknown run kind) -- that is a caller bug, not load.
        """
        if isinstance(job, dict):
            job = self.job_from_spec(job)
        if job.run_kind not in RUN_KINDS:
            raise ValueError(
                f"unknown run kind {job.run_kind!r} (expected {RUN_KINDS})"
            )
        self._count("submitted")
        self.telemetry.record_serve("submitted")
        # Register the record *before* offering so a dispatcher that pops
        # the job immediately always finds it; roll back on rejection
        # (restoring any finished record a re-submission replaced).
        with self._lock:
            previous = self._records.get(job.job_id)
            if previous is not None and previous.status not in TERMINAL_STATES:
                admission = Admission.shed(
                    "duplicate_id",
                    f"job id {job.job_id!r} is still pending or running",
                )
            else:
                self._records[job.job_id] = JobRecord(job=job)
                admission = None
        if admission is None:
            admission = self.queue.offer(job)
        if not admission.admitted:
            with self._lock:
                if (
                    self._records.get(job.job_id) is not None
                    and self._records[job.job_id].job is job
                ):
                    if previous is not None:
                        self._records[job.job_id] = previous
                    else:
                        self._records.pop(job.job_id, None)
            self._count("shed")
            self.telemetry.record_shed(admission.reason)
            self._write_health()
            return job.job_id, admission
        self._count("admitted")
        self.telemetry.record_serve("admitted")
        self.telemetry.record_queue_depth(self.queue.depth)
        self._write_health()
        return job.job_id, admission

    @staticmethod
    def idempotency_key_for(spec: dict) -> str:
        """The content-addressed idempotency key of one job spec.

        A pure function of the request's meaningful fields (explicit id,
        cell coordinates, priority, deadline), via the same
        :func:`~repro.store.address.content_address` scheme the result
        store keys with -- so identical requests collide across
        processes, reconnects, and intake paths, and different requests
        never do.  Auto-assigned ids are *not* part of the key (the
        caller never saw them), which is why the key is computed from
        the spec, not the built :class:`Job`.
        """
        return content_address("serve.job", {
            "id": spec.get("id"),
            "run_kind": str(spec.get("run_kind", spec.get("kind", "cpu"))),
            "config": spec.get("config"),
            "workload": spec.get("workload"),
            "extra": list(spec.get("extra", ())),
            "priority": int(spec.get("priority", 10)),
            "deadline_s": spec.get("deadline_s"),
        })

    def submit_idempotent(
        self,
        spec: "Job | dict",
        *,
        idempotency_key: "str | None" = None,
        admission_breaker: bool = False,
    ) -> "tuple[str, Admission, str]":
        """Admit one job with duplicate suppression and store read-through.

        Returns ``(job_id, admission, outcome)`` where ``outcome`` is

        * ``"deduplicated"`` -- the idempotency key already maps to a
          live or served job; its original id is returned and nothing
          is enqueued (re-POSTing after a reconnect cannot double-run);
        * ``"cached"`` -- the result store / memo cache already holds
          this cell; the job is recorded as served immediately, without
          ever occupying a queue slot or a worker;
        * ``"admitted"`` / ``"shed"`` -- the normal :meth:`submit`
          decision.

        A key mapped to a *failed* terminal job (failed / shed /
        cancelled) is dropped and the job resubmitted fresh: idempotency
        protects against duplicate execution, not against retrying a
        failure.  With ``admission_breaker=True`` a hard-open
        (run_kind, config) breaker sheds at admission time (reason
        ``breaker_open``, ``retry_after_s`` = the probe ETA) instead of
        after queueing -- the HTTP tier's backpressure shape.
        """
        if isinstance(spec, dict):
            key = idempotency_key or self.idempotency_key_for(spec)
            job = self.job_from_spec(spec)
        else:
            key = idempotency_key
            job = spec
        if job.run_kind not in RUN_KINDS:
            raise ValueError(
                f"unknown run kind {job.run_kind!r} (expected {RUN_KINDS})"
            )
        if key is not None:
            with self._lock:
                existing = self._idempotency.get(key)
                record = (
                    self._records.get(existing)
                    if existing is not None else None
                )
                if record is not None and record.status in (
                    "pending", "running", "served"
                ):
                    self._counters["deduplicated"] += 1
                else:
                    # Stale mapping (failure terminal, or record gone):
                    # forget it and admit the resubmission fresh.
                    record = None
                    self._idempotency.pop(key, None)
            if record is not None:
                self.telemetry.record_serve("deduplicated")
                return existing, Admission.ok(), "deduplicated"
        if admission_breaker:
            breaker = self.breakers.breaker_for(job.run_kind, job.config)
            eta = breaker.probe_eta_s()
            if eta is not None:
                self._count("submitted")
                self.telemetry.record_serve("submitted")
                self._count("shed")
                self.telemetry.record_shed("breaker_open")
                self._write_health()
                return job.job_id, Admission.shed(
                    "breaker_open", breaker.reject_detail(),
                    retry_after_s=eta,
                ), "shed"
        cached = self.runner.lookup_cached(
            job.run_kind, (job.config, job.workload, *job.extra)
        )
        if cached is not None:
            with self._lock:
                previous = self._records.get(job.job_id)
                live = (
                    previous is not None
                    and previous.status not in TERMINAL_STATES
                )
                if not live:
                    self._records[job.job_id] = JobRecord(
                        job=job,
                        status="served",
                        result=self._result_summary(cached),
                        detail="served from result cache",
                    )
                    if key is not None:
                        self._idempotency[key] = job.job_id
            if live:
                # Same duplicate-id contract as submit(), without
                # touching the queue.
                job_id, admission = self.submit(job)
                return job_id, admission, "shed"
            self._count("submitted")
            self.telemetry.record_serve("submitted")
            self._count("served")
            self.telemetry.record_serve("served")
            self.telemetry.record_serve("served_from_cache")
            # The same cache-hit accounting run_cell would have done had
            # the job been dispatched -- resume flows assert on it.
            self.telemetry.record_run(
                job.run_kind, job.config, job.workload, 0.0, 0, cached=True
            )
            self._write_health()
            return job.job_id, Admission.ok(), "cached"
        job_id, admission = self.submit(job)
        if admission.admitted and key is not None:
            with self._lock:
                self._idempotency[key] = job_id
        return job_id, admission, (
            "admitted" if admission.admitted else "shed"
        )

    def job_from_spec(self, spec: dict) -> Job:
        """Build a :class:`Job` from a JSONL-style dict (auto id)."""
        job_id = str(spec.get("id") or f"job-{next(self._auto_ids)}")
        return Job(
            job_id=job_id,
            run_kind=str(spec.get("run_kind", spec.get("kind", "cpu"))),
            config=str(spec["config"]),
            workload=str(spec["workload"]),
            extra=tuple(spec.get("extra", ())),
            priority=int(spec.get("priority", 10)),
            deadline_s=(
                float(spec["deadline_s"])
                if spec.get("deadline_s") is not None
                else None
            ),
        )

    def poll(self, job_id: str) -> "JobRecord | None":
        with self._lock:
            return self._records.get(job_id)

    def cancel(self, job_id: str) -> bool:
        """Cancel a still-queued job; False once it started (or unknown)."""
        if not self.queue.cancel(job_id):
            return False
        with self._lock:
            record = self._records.get(job_id)
            if record is not None:
                record.status = "cancelled"
                record.shed_reason = "cancelled"
        self._count("cancelled")
        self.telemetry.record_serve("cancelled")
        self._write_health()
        return True

    # -- JSONL intake --------------------------------------------------
    def intake(
        self,
        path: str,
        *,
        follow: bool = False,
        poll_s: float = 0.2,
        on_line: "Callable[[str, Admission | None], None] | None" = None,
    ) -> "tuple[int, int]":
        """Submit jobs from a JSONL file; returns (submitted, malformed).

        Each line is one job spec (see :meth:`job_from_spec`; blank lines
        and ``#`` comments are skipped).  With ``follow=True`` the file
        is tailed -- new complete lines are submitted as they appear --
        until :meth:`request_shutdown`.  Malformed lines are counted
        (``serve.intake_malformed``) and reported through ``on_line``,
        never silently swallowed and never fatal to the intake loop.

        The tail survives log rotation: when the file's inode changes
        (rotated and recreated) or its size shrinks below the read
        position (truncated in place), the loop reopens from offset 0
        instead of silently stalling at a seek position past EOF.  Each
        such event is counted (``serve.intake_rotated``) and reported
        through ``on_line``.
        """
        pos = 0
        inode: "int | None" = None
        submitted = malformed = 0
        while True:
            try:
                with open(path, "r") as handle:
                    stat = os.fstat(handle.fileno())
                    if inode is not None and (
                        stat.st_ino != inode or stat.st_size < pos
                    ):
                        # Rotation (new inode) or truncation (shrunk):
                        # the old offset points into a file that no
                        # longer exists; start over at the top.
                        pos = 0
                        self._count("intake_rotated")
                        self.telemetry.record_serve("intake_rotated")
                        if on_line is not None:
                            on_line(
                                "jobs file rotated or truncated; "
                                "re-reading from offset 0",
                                None,
                            )
                    inode = stat.st_ino
                    handle.seek(pos)
                    chunk = handle.read()
            except OSError:
                chunk = ""  # not-yet-created file under --follow
            buffered = 0
            if chunk:
                lines = chunk.splitlines(keepends=True)
                if follow and lines and not lines[-1].endswith("\n"):
                    buffered = len(lines[-1])  # partial tail; re-read later
                    lines = lines[:-1]
                pos += len(chunk) - buffered
                for raw in lines:
                    line = raw.strip()
                    if not line or line.startswith("#"):
                        continue
                    try:
                        spec = json.loads(line)
                        job = self.job_from_spec(spec)
                        if job.run_kind not in RUN_KINDS:
                            raise ValueError(
                                f"unknown run kind {job.run_kind!r}"
                            )
                    except (ValueError, KeyError, TypeError) as exc:
                        malformed += 1
                        self._count("intake_malformed")
                        self.telemetry.record_serve("intake_malformed")
                        if on_line is not None:
                            on_line(f"malformed job line skipped: {exc}", None)
                        continue
                    _, admission, outcome = self.submit_idempotent(
                        job, idempotency_key=self.idempotency_key_for(spec)
                    )
                    submitted += 1
                    if on_line is not None:
                        line = job.describe()
                        if outcome == "deduplicated":
                            line += " (deduplicated)"
                        on_line(line, admission)
            if not follow or self._stop.is_set():
                return submitted, malformed
            self._stop.wait(poll_s)

    # -- dispatch ------------------------------------------------------
    def start(self) -> "SimService":
        if self._started:
            raise RuntimeError("service already started")
        self._started = True
        if self.config.health_file is not None:
            # Writer-startup hygiene: a predecessor that died mid-write
            # leaves *.tmp.<pid> droppings next to the health/metrics
            # files.
            diskio.sweep_orphan_temps(
                Path(self.config.health_file).parent, site="health"
            )
        for i in range(self.config.workers):
            thread = Thread(
                target=self._dispatch_loop,
                name=f"repro-serve-{i}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        self._write_health(force=True)
        return self

    def _dispatch_loop(self) -> None:
        while True:
            job = self.queue.pop(timeout=self.config.poll_s)
            if job is None:
                if self._stop.is_set():
                    return
                continue
            with self._lock:
                record = self._records.get(job.job_id)
                if record is None:  # pragma: no cover - defensive
                    record = self._records[job.job_id] = JobRecord(job=job)
                record.status = "running"
                self._in_flight += 1
            try:
                self._execute(job, record)
            finally:
                with self._lock:
                    self._in_flight -= 1
                self.telemetry.record_queue_depth(self.queue.depth)
                self._write_health()

    def _effective_isolation(self) -> str:
        if self.config.isolation == "process" and not self._degraded:
            return "process"
        return "thread"

    def _run_cell(self, job: Job):
        """One job through the runner, with spawn-failure degradation."""
        isolation = self._effective_isolation()
        if isolation == "process":
            try:
                result = self.runner.run_cell(
                    job.run_kind, job.config, job.workload, job.extra,
                    isolation="process",
                )
                with self._lock:
                    self._spawn_failures = 0
                return result
            except PoolAborted:
                raise
            except OSError as exc:
                # Worker spawn (or its pipe plumbing) failed -- the host
                # is refusing processes, not the simulation refusing to
                # run.  Fall back to thread isolation for this job, and
                # permanently once it keeps happening.  The counter and
                # the degradation flip are read-modify-write from every
                # dispatcher thread, so they stay under the service lock.
                with self._lock:
                    self._spawn_failures += 1
                    degrade = (
                        not self._degraded
                        and self._spawn_failures
                        >= self.config.spawn_failure_threshold
                    )
                    if degrade:
                        self._degraded = True
                if degrade:
                    self.telemetry.record_serve("degraded")
                    self._write_health(force=True)
                self.telemetry.record_serve("spawn_failure")
                self.runner.telemetry.record_pool("spawn_failed")
                _ = exc
        return self.runner.run_cell(
            job.run_kind, job.config, job.workload, job.extra,
            isolation="thread",
        )

    @staticmethod
    def _result_summary(result) -> dict:
        return {
            "time_s": result.time_s,
            "energy_j": result.energy_j,
            "ed2": result.ed2,
        }

    def _execute(self, job: Job, record: JobRecord) -> None:
        # The job span opens on the dispatcher thread, so the span
        # context it pushes is exactly what the worker pool captures and
        # propagates into worker processes: one trace_id from job
        # admission down to the engine run.
        with get_event_log().span(
            "serve.job",
            job_id=job.job_id,
            run_kind=job.run_kind,
            config=job.config,
            workload=job.workload,
        ):
            self._execute_inner(job, record)

    def _execute_inner(self, job: Job, record: JobRecord) -> None:
        breaker = self.breakers.breaker_for(job.run_kind, job.config)
        if not breaker.allow():
            self._mark_shed(job, "breaker_open", breaker.reject_detail())
            return
        try:
            result = self._run_cell(job)
        except PoolAborted:
            # Drain deadline: the supervisor killed this job's workers.
            breaker.record_failure("shed")  # releases a claimed probe
            if self._mark_shed(
                job, "draining",
                "in-flight workers aborted at the drain deadline",
            ):
                self._count("drained")
                self.telemetry.record_serve("drained")
            return
        except Exception as exc:
            # The gap-tolerant runner path should never raise; contain a
            # surprise (fail_fast policies, future refactors) as a
            # failed job rather than a dead dispatcher thread.
            breaker.record_failure("crash")
            failure = self.runner.failures.get(job.cell) or RunFailure(
                run_kind=job.run_kind,
                config=job.config,
                workload=job.workload,
                kind="crash",
                attempts=1,
                message=f"{type(exc).__name__}: {exc}",
                extra=tuple(job.extra),
            )
            with self._lock:
                if record.status in TERMINAL_STATES:
                    return  # shutdown already closed this job out
                record.status = "failed"
                record.failure = failure
                record.detail = failure.summary()
            self._count("failed")
            self.telemetry.record_serve("failed")
            return
        if result is not None:
            breaker.record_success()
            with self._lock:
                if record.status in TERMINAL_STATES:
                    # Shutdown reported this abandoned thread-isolation
                    # job as a drained gap; a late finish must not count
                    # the same job in a second terminal state.
                    return
                record.status = "served"
                record.result = self._result_summary(result)
            self._count("served")
            self.telemetry.record_serve("served")
            return
        failure = self.runner.failures.get(job.cell)
        kind = failure.kind if failure is not None else "crash"
        breaker.record_failure(kind)
        with self._lock:
            if record.status in TERMINAL_STATES:
                return  # shutdown already closed this job out
            record.status = "failed"
            record.failure = failure
            record.detail = failure.summary() if failure else "unrecorded gap"
        self._count("failed")
        self.telemetry.record_serve("failed")

    # -- idle / shutdown -----------------------------------------------
    def wait_idle(
        self, timeout: "float | None" = None, poll_s: float = 0.05
    ) -> bool:
        """Block until no job is pending or running (batch-mode helper).

        Returns False on timeout or if shutdown was requested first.
        """
        deadline = self._clock() + timeout if timeout is not None else None
        while not self._stop.is_set():
            with self._lock:
                active = any(
                    r.status not in TERMINAL_STATES
                    for r in self._records.values()
                )
            if not active:
                return True
            if deadline is not None and self._clock() >= deadline:
                return False
            time.sleep(poll_s)
        return False

    def request_shutdown(self) -> None:
        """Stop admissions and stop starting queued jobs (signal-safe)."""
        self._stop.set()
        self.queue.close()

    def shutdown(self, drain_deadline_s: "float | None" = None) -> dict:
        """Graceful drain; returns the final summary dict.

        Admissions stop; queued-but-unstarted jobs become ``shed`` gaps
        (reason ``draining``); in-flight jobs get ``drain_deadline_s``
        to finish, after which their worker pools are aborted (SIGKILL +
        reap) and they too become gaps.  The checkpoint is flushed and a
        final health snapshot written before returning, so a subsequent
        run against the same checkpoint serves exactly the gaps.
        """
        deadline_s = (
            drain_deadline_s
            if drain_deadline_s is not None
            else self.config.drain_deadline_s
        )
        self.request_shutdown()
        deadline = self._clock() + deadline_s
        for thread in self._threads:
            thread.join(max(deadline - self._clock(), 0.0))
        if any(t.is_alive() for t in self._threads):
            # Past the drain deadline: kill in-flight worker processes.
            # Their dispatchers observe PoolAborted and record the gaps.
            self.runner.abort_active_pools()
            for thread in self._threads:
                thread.join(2.0)
        # Queued leftovers (never started) are gaps too.
        for job in self.queue.drain_remaining():
            if self._mark_shed(
                job, "draining", "queued but never started before shutdown"
            ):
                self._count("drained")
                self.telemetry.record_serve("drained")
        # Thread-isolation stragglers cannot be killed from Python; their
        # records stay "running" -- report them as drained gaps so the
        # accounting closes (the daemon threads die with the process).
        with self._lock:
            stuck = [
                r.job for r in self._records.values()
                if r.status not in TERMINAL_STATES
            ]
        for job in stuck:
            if self._mark_shed(
                job, "draining",
                "in-flight past the drain deadline (thread isolation "
                "cannot be killed; worker abandoned)",
            ):
                self._count("drained")
                self.telemetry.record_serve("drained")
        self.runner.save_checkpoint()
        self._finished = True
        self._write_health(force=True)
        return self.summary()

    # -- introspection -------------------------------------------------
    @property
    def counters(self) -> dict:
        with self._lock:
            return dict(self._counters)

    @property
    def degraded(self) -> bool:
        return self._degraded

    def gap_count(self) -> int:
        """Jobs that ended as gaps (failed or shed) -- drives exit code 3."""
        with self._lock:
            return self._counters["failed"] + self._counters["shed"]

    def records(self) -> "list[JobRecord]":
        with self._lock:
            return list(self._records.values())

    def health_snapshot(self) -> HealthSnapshot:
        with self._lock:
            counters = dict(self._counters)
            in_flight = self._in_flight
        depth = self.queue.depth
        draining = self._stop.is_set()
        metrics_age = None
        if self._last_metrics_write is not None:
            metrics_age = max(self._clock() - self._last_metrics_write, 0.0)
        return HealthSnapshot(
            seq=self._health_seq,
            metrics_age_s=metrics_age,
            alive=self._started and not self._finished,
            ready=(
                self._started
                and not draining
                and depth < self.config.capacity
            ),
            draining=draining,
            queue_depth=depth,
            queue_capacity=self.config.capacity,
            workers=self.config.workers,
            in_flight=in_flight,
            isolation=self._effective_isolation(),
            degraded=self._degraded,
            breakers=self.breakers.states(),
            breakers_open=self.breakers.open_count(),
            counters=counters,
            shed_reasons=self.telemetry.shed_counts(),
        )

    def _write_health(self, force: bool = False) -> None:
        if self.config.health_file is None:
            return
        now = self._clock()
        with self._lock:
            if (
                not force
                and now - self._last_health_write
                < self.config.health_interval_s
            ):
                return
            self._last_health_write = now
            self._health_seq += 1
            seq = self._health_seq
        # Periodic metrics snapshot for `repro top` / scrapers: written
        # with the same cadence (and atomic-replace discipline) as the
        # health file, in the same directory.  Best-effort -- a full
        # disk must never take down the service.
        if obs.enabled():
            try:
                write_metrics_snapshot(
                    metrics_snapshot_path(self.config.health_file), seq=seq
                )
                with self._lock:
                    self._last_metrics_write = self._clock()
            except OSError:
                pass
        try:
            write_health(self.config.health_file, self.health_snapshot())
        except OSError:
            # Same contract as the metrics snapshot: a full or faulty
            # disk costs one heartbeat, never the service.
            pass

    def summary(self) -> dict:
        """Machine-readable final report (the CLI's ``--json`` payload)."""
        return {
            "counters": self.counters,
            "degraded": self._degraded,
            "breakers": self.breakers.states(),
            "jobs": [r.to_dict() for r in self.records()],
            "telemetry": self.telemetry.summary(),
        }
