"""``repro.serve.client``: a retrying, breaker-guarded HTTP job client.

The front door (:mod:`repro.serve.http`) promises that every overload
outcome is a *structured* 429/503 with a ``Retry-After`` hint.  This
client is the other half of that contract:

* **Idempotent resubmission** -- every submit carries an
  ``Idempotency-Key`` header (caller-supplied, or content-addressed from
  the spec exactly as the server would compute it), and the *same* key
  is reused across every retry of that submit.  A 202 whose response
  bytes were lost on the wire is therefore safe to resend: the server
  answers with the original job id instead of queueing a duplicate.
* **Seeded, jittered exponential backoff** -- retry delays are
  ``min(cap, base * 2^attempt)`` scaled by a deterministic uniform draw
  from :func:`repro.resilience.guard.stable_seed`, so two clients with
  different seeds never thundering-herd in lockstep and a test with a
  fixed seed replays the exact same schedule.  A server ``Retry-After``
  overrides the computed backoff (capped at ``backoff_cap_s``): the
  server knows its own recovery horizon better than the client does.
* **Client-side circuit breaker** -- ``breaker_threshold`` consecutive
  *transport* failures (connection refused/reset, malformed response --
  not structured 4xx/5xx, which prove the server is alive) open the
  breaker for ``breaker_reset_s``; calls in that window fail fast with
  :class:`ClientBreakerOpen` instead of hammering a dead endpoint.  The
  first call after the window is the probe; its success closes the
  breaker.

Requests propagate trace context (``X-Trace-Id``/``X-Span-Id``) from the
ambient event log, so a client-side span and the server's
``http.request`` span stitch into one trace.

Transport is injectable (``transport=`` callable) so the retry/breaker
logic is tested against scripted fake servers without sockets.
"""

from __future__ import annotations

import http.client
import json
import time
from dataclasses import dataclass
from typing import Callable, Optional
from urllib.parse import urlsplit

from repro.obs.events import get_event_log
from repro.resilience.guard import stable_seed
from repro.serve.service import SimService


class ServeError(RuntimeError):
    """Base class for client-visible service errors."""


class ServeUnavailable(ServeError):
    """Retries exhausted against 429/503/transport failures.

    ``last_status`` / ``last_body`` carry the final structured answer
    (None when the last failure was transport-level).
    """

    def __init__(self, detail, last_status=None, last_body=None):
        super().__init__(detail)
        self.last_status = last_status
        self.last_body = last_body


class ServeRejected(ServeError):
    """The server answered with a non-retryable error (400/404/409)."""

    def __init__(self, status, body):
        detail = body.get("detail") or body.get("error") if isinstance(
            body, dict
        ) else str(body)
        super().__init__(f"HTTP {status}: {detail}")
        self.status = status
        self.body = body


class ClientBreakerOpen(ServeError):
    """The client-side breaker is open; the endpoint looks dead."""


#: Structured statuses worth retrying: overload (429), not-ready /
#: draining / breaker (503), slow-read timeout (408).  Contained
#: internal errors (500) are retried too -- the server promised they
#: are counted, not fatal.
RETRYABLE_STATUSES = (408, 429, 500, 503)


@dataclass(frozen=True)
class ClientConfig:
    """Retry, backoff, and breaker policy for one :class:`ServeClient`."""

    max_attempts: int = 6
    backoff_base_s: float = 0.25
    backoff_cap_s: float = 10.0
    #: Per-request socket timeout.
    timeout_s: float = 10.0
    #: Seed for the deterministic jitter draws.
    seed: int = 0
    #: Consecutive transport failures that open the client breaker.
    breaker_threshold: int = 5
    #: How long the breaker stays open before the next probe call.
    breaker_reset_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_cap_s < self.backoff_base_s:
            raise ValueError("need 0 <= backoff_base_s <= backoff_cap_s")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")


class ServeClient:
    """One front-door endpoint plus retry/breaker state.

    ``transport(method, path, body_bytes, headers) -> (status,
    headers_dict, body_bytes)`` may be injected for tests; transport
    failures must surface as ``OSError`` or
    ``http.client.HTTPException``.
    """

    def __init__(
        self,
        url: str,
        config: "ClientConfig | None" = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        transport=None,
    ):
        self.config = config or ClientConfig()
        self._clock = clock
        self._sleep = sleep
        parsed = urlsplit(url if "//" in url else f"http://{url}")
        if parsed.scheme not in ("", "http"):
            raise ValueError(f"only http:// endpoints supported, got {url!r}")
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 80
        self._transport = transport or self._http_transport
        # -- client breaker state --
        self._consecutive_transport_failures = 0
        self._breaker_opened_at: "float | None" = None
        #: Plain-int counters for tests and the chaos harness.
        self.counters = {
            "attempts": 0,
            "retries": 0,
            "transport_errors": 0,
            "retryable_statuses": 0,
            "breaker_fast_fails": 0,
        }

    # -- transport -----------------------------------------------------
    def _http_transport(self, method, path, body, headers):
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.config.timeout_s
        )
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = response.read()
            return (
                response.status,
                {k.lower(): v for k, v in response.getheaders()},
                data,
            )
        finally:
            conn.close()

    # -- breaker -------------------------------------------------------
    def _breaker_check(self) -> None:
        if self._breaker_opened_at is None:
            return
        elapsed = self._clock() - self._breaker_opened_at
        if elapsed < self.config.breaker_reset_s:
            self.counters["breaker_fast_fails"] += 1
            raise ClientBreakerOpen(
                f"client breaker open for endpoint {self.host}:{self.port} "
                f"(probe in {self.config.breaker_reset_s - elapsed:.1f}s)"
            )
        # Window elapsed: this call is the probe; breaker half-resets so
        # one more transport failure re-opens it immediately.
        self._breaker_opened_at = None
        self._consecutive_transport_failures = (
            self.config.breaker_threshold - 1
        )

    def _record_transport_failure(self) -> None:
        self.counters["transport_errors"] += 1
        self._consecutive_transport_failures += 1
        if (
            self._consecutive_transport_failures
            >= self.config.breaker_threshold
        ):
            self._breaker_opened_at = self._clock()

    def _record_transport_success(self) -> None:
        self._consecutive_transport_failures = 0
        self._breaker_opened_at = None

    @property
    def breaker_open(self) -> bool:
        return (
            self._breaker_opened_at is not None
            and self._clock() - self._breaker_opened_at
            < self.config.breaker_reset_s
        )

    # -- backoff -------------------------------------------------------
    def _backoff_s(self, key: str, attempt: int) -> float:
        """Deterministic full-jitter backoff for retry ``attempt``."""
        ceiling = min(
            self.config.backoff_cap_s,
            self.config.backoff_base_s * (2 ** attempt),
        )
        draw = stable_seed(
            self.config.seed, "client", key, attempt
        ) / float(1 << 64)
        return ceiling * draw

    @staticmethod
    def _retry_after_from(headers: dict, body) -> "float | None":
        value = headers.get("retry-after")
        if value is None and isinstance(body, dict):
            value = body.get("retry_after_s")
        if value is None:
            return None
        try:
            return max(float(value), 0.0)
        except (TypeError, ValueError):
            return None

    # -- the request loop ----------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        doc: "dict | None" = None,
        *,
        headers: "dict | None" = None,
        retry_key: str = "",
    ):
        """One logical request with retries; returns (status, body).

        ``retry_key`` keys the jitter draws (submits use the
        idempotency key so each job gets an independent schedule).
        """
        base_headers = dict(headers or {})
        payload = None
        if doc is not None:
            payload = json.dumps(doc, sort_keys=True).encode("utf-8")
            base_headers["content-type"] = "application/json"
        last_status, last_body, last_error = None, None, None
        elog = get_event_log()
        for attempt in range(self.config.max_attempts):
            self._breaker_check()
            self.counters["attempts"] += 1
            delay = None
            with elog.span(
                "http.client.request",
                method=method, path=path, attempt=attempt,
            ) as (trace_id, span_id):
                send_headers = dict(base_headers)
                if trace_id is not None:
                    send_headers["x-trace-id"] = trace_id
                    send_headers["x-span-id"] = span_id
                try:
                    status, resp_headers, raw = self._transport(
                        method, path, payload, send_headers
                    )
                except (OSError, http.client.HTTPException) as exc:
                    self._record_transport_failure()
                    last_error = f"{type(exc).__name__}: {exc}"
                    last_status, last_body = None, None
                else:
                    self._record_transport_success()
                    body = self._decode(raw)
                    if status not in RETRYABLE_STATUSES:
                        return status, body
                    self.counters["retryable_statuses"] += 1
                    last_status, last_body = status, body
                    last_error = None
                    delay = self._retry_after_from(resp_headers, body)
            if attempt + 1 >= self.config.max_attempts:
                break
            if delay is None:
                delay = self._backoff_s(retry_key or path, attempt)
            self.counters["retries"] += 1
            self._sleep(min(delay, self.config.backoff_cap_s))
        raise ServeUnavailable(
            f"{method} {path} failed after {self.config.max_attempts} "
            f"attempts (last: "
            f"{last_error or f'HTTP {last_status}'})",
            last_status=last_status,
            last_body=last_body,
        )

    @staticmethod
    def _decode(raw: bytes):
        if not raw:
            return {}
        try:
            return json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return raw.decode("utf-8", "replace")

    # -- the API -------------------------------------------------------
    def submit(
        self,
        spec: dict,
        *,
        idempotency_key: "str | None" = None,
    ) -> dict:
        """Submit one job spec; returns the structured response body.

        The idempotency key (content-addressed from the spec unless
        supplied) rides every retry, so lost 202s never double-submit.
        """
        key = idempotency_key or SimService.idempotency_key_for(spec)
        status, body = self._request(
            "POST", "/v1/jobs", spec,
            headers={"idempotency-key": key},
            retry_key=key,
        )
        if status in (200, 202):
            return body if isinstance(body, dict) else {"raw": body}
        raise ServeRejected(status, body)

    def poll(self, job_id: str) -> "Optional[dict]":
        """The job record, or None for an unknown id."""
        status, body = self._request("GET", f"/v1/jobs/{job_id}")
        if status == 200:
            return body
        if status == 404:
            return None
        raise ServeRejected(status, body)

    def wait(
        self,
        job_id: str,
        *,
        timeout_s: float = 60.0,
        poll_interval_s: float = 0.2,
    ) -> dict:
        """Poll until the job reaches a terminal state."""
        deadline = self._clock() + timeout_s
        while True:
            record = self.poll(job_id)
            if record is None:
                raise ServeRejected(404, {"error": "unknown_job",
                                          "detail": job_id})
            if record.get("status") in ("served", "failed", "shed",
                                        "cancelled"):
                return record
            if self._clock() >= deadline:
                raise ServeUnavailable(
                    f"job {job_id} not terminal after {timeout_s:g}s "
                    f"(status {record.get('status')!r})"
                )
            self._sleep(poll_interval_s)

    def cancel(self, job_id: str) -> dict:
        status, body = self._request("DELETE", f"/v1/jobs/{job_id}")
        if status in (200, 409):
            return body
        raise ServeRejected(status, body)

    def health(self, *, ready: bool = False) -> dict:
        """The /healthz (or /readyz) document regardless of status.

        A 503 here is an *answer* (not ready), not an outage -- so an
        unhealthy body from the retry loop's last attempt is returned
        rather than raised.
        """
        try:
            status, body = self._request(
                "GET", "/readyz" if ready else "/healthz"
            )
        except ServeUnavailable as exc:
            if exc.last_status is None:
                raise
            status, body = exc.last_status, exc.last_body
        doc = body if isinstance(body, dict) else {"raw": body}
        doc["http_status"] = status
        return doc

    def metrics(self) -> str:
        status, body = self._request("GET", "/metrics")
        if status != 200:
            raise ServeRejected(status, body)
        return body if isinstance(body, str) else json.dumps(body)
