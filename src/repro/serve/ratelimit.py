"""Per-client token-bucket rate limiting for the HTTP front door.

One :class:`TokenBucket` is one client's budget: ``rate_per_s`` tokens
refill continuously up to a ``burst`` ceiling, and each request spends
one token.  A spent bucket answers *when* the next token lands, so the
front door can turn every rejection into a structured 429 with an
honest ``Retry-After`` instead of a silent drop -- the same
never-silent contract the job queue's :class:`~repro.serve.queue.Admission`
records established.

:class:`RateLimiter` keys buckets by client identity (the peer address
at the HTTP tier) with a bounded table: least-recently-seen clients are
evicted once ``max_clients`` is exceeded, so an address-spraying client
cannot grow server memory without bound.  Eviction forgets at most one
idle client's partial debt -- a fresh bucket starts full -- which is
the safe direction: overload protection degrades toward admitting, not
toward starving well-behaved clients.

Time is an injected monotonic ``clock`` throughout, so tests drive
refill deterministically without sleeping.  The limiter is used from a
single event loop; it takes no locks.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable


class TokenBucket:
    """One client's refillable request budget."""

    def __init__(
        self,
        rate_per_s: float,
        burst: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._updated = clock()

    def _refill(self, now: float) -> None:
        elapsed = max(now - self._updated, 0.0)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate_per_s)
        self._updated = now

    def allow(self, cost: float = 1.0) -> "tuple[bool, float]":
        """Spend ``cost`` tokens; returns (allowed, retry_after_s).

        ``retry_after_s`` is 0 on success, otherwise the time until the
        missing tokens will have refilled -- the honest wait, not a
        guess.
        """
        now = self._clock()
        self._refill(now)
        if self._tokens >= cost:
            self._tokens -= cost
            return True, 0.0
        return False, (cost - self._tokens) / self.rate_per_s

    @property
    def tokens(self) -> float:
        self._refill(self._clock())
        return self._tokens


class RateLimiter:
    """Per-client token buckets with a bounded, LRU-evicted table."""

    def __init__(
        self,
        rate_per_s: float,
        burst: float,
        *,
        max_clients: int = 1024,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_clients < 1:
            raise ValueError("max_clients must be >= 1")
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self.max_clients = max_clients
        self._clock = clock
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()
        self.evicted = 0

    def allow(self, client: str, cost: float = 1.0) -> "tuple[bool, float]":
        """Spend one request from ``client``'s bucket (created on first use)."""
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = TokenBucket(self.rate_per_s, self.burst, clock=self._clock)
            self._buckets[client] = bucket
            while len(self._buckets) > self.max_clients:
                self._buckets.popitem(last=False)
                self.evicted += 1
        else:
            self._buckets.move_to_end(client)
        return bucket.allow(cost)

    def __len__(self) -> int:
        return len(self._buckets)
