"""``repro.serve.http``: the overload-hardened asyncio HTTP/1.1 front door.

The service tier so far speaks JSONL files and framed sockets -- nothing
an untrusted client could reach.  This module is the missing API tier in
front of :class:`~repro.serve.service.SimService`, stdlib only:

====================  ==================================================
``POST /v1/jobs``     submit one job spec; idempotency key from the
                      ``Idempotency-Key`` header or content-addressed
                      from the spec.  A duplicate returns the original
                      job id (200); a result-store hit returns the
                      result without queueing (200); a fresh admission
                      is 202; every shed is a structured 429/503 with
                      ``Retry-After``.
``GET /v1/jobs/{id}`` poll one job record (404 when unknown).
``DELETE /v1/jobs/{id}``  cancel a still-queued job (409 once started).
``GET /healthz``      liveness from the live :class:`HealthSnapshot`.
``GET /readyz``       readiness (503 + ``Retry-After`` while not ready).
``GET /metrics``      Prometheus text from :mod:`repro.obs.export`.
====================  ==================================================

Robustness is the headline, not the routes:

* **Backpressure end to end** -- every
  :data:`~repro.serve.queue.SHED_REASONS` admission outcome maps to a
  structured 429/503 JSON body with a ``Retry-After`` header
  (:data:`SHED_STATUS` / :data:`DEFAULT_RETRY_AFTER`); a hard-open
  circuit breaker is consulted *at admission* (non-mutating
  :meth:`~repro.serve.breaker.CircuitBreaker.probe_eta_s`), so clients
  back off before the queue ever sees the job.  Nothing is dropped
  silently and no traceback ever reaches a socket: an unexpected
  handler error becomes a structured 500 and a counter.
* **Slow-loris containment** -- headers and body are size-bounded
  (431/413), reads carry deadlines (408), and each connection serves
  exactly one request (``Connection: close``), so a dribbling client
  holds one socket for at most ``read_timeout_s``.
* **Bounded accept backlog** -- at ``max_connections`` concurrent
  connections the server answers an immediate structured 503 instead of
  queueing unbounded sockets; per-client token buckets
  (:mod:`repro.serve.ratelimit`) shed request floods with 429.
* **Deterministic fault injection** -- accept/read/write each route
  through :func:`repro.resilience.faults.active_network` sites
  (``http.accept`` / ``http.read`` / ``http.write``), so dropped
  connections, delayed requests, and vanished responses replay
  byte-identically under a seed.
* **Graceful drain** -- :meth:`HttpFrontDoor.request_shutdown` (wired
  to SIGTERM by the CLI) stops accepting, in-flight responses finish
  within ``drain_deadline_s``, and the service's own shutdown then
  records unfinished jobs as resumable ``shed`` gaps -- the PR 4 drain
  path, unchanged.

Observability: every request is a ``http.request`` span (remote trace
context adopted from ``X-Trace-Id``/``X-Span-Id`` headers), counted
under ``sweep.serve.http.*`` with a latency histogram that feeds the
``repro top`` HTTP row.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from dataclasses import dataclass
from http.client import responses as _REASONS
from typing import Callable, Optional

from repro.obs.events import get_event_log
from repro.obs.export import prometheus_text
from repro.resilience.faults import active_network
from repro.serve.ratelimit import RateLimiter

#: HTTP status for each structured shed reason.  429 = the client can
#: help by slowing down; 503 = the server is the bottleneck; 409 = the
#: request conflicts with existing state (not load at all).
SHED_STATUS = {
    "queue_full": 429,
    "past_deadline": 429,
    "breaker_open": 503,
    "draining": 503,
    "duplicate_id": 409,
    "cancelled": 409,
}

#: Fallback ``Retry-After`` seconds per shed reason, used when the
#: admission decision carried no sharper hint (``Admission.retry_after_s``).
DEFAULT_RETRY_AFTER = {
    "queue_full": 1.0,
    "past_deadline": 1.0,
    "breaker_open": 5.0,
    "draining": 10.0,
}

_JSON = "application/json"
_MAX_HEADERS = 64


@dataclass
class HttpConfig:
    """Shape of one :class:`HttpFrontDoor` instance."""

    host: str = "127.0.0.1"
    #: 0 = ephemeral; the bound port lands in :attr:`HttpFrontDoor.port`.
    port: int = 0
    #: Request line + headers budget; beyond it the request is a 431.
    max_header_bytes: int = 8192
    #: Body budget; a larger declared Content-Length is a 413.
    max_body_bytes: int = 64 * 1024
    #: Deadline for reading the header block and the body (seconds
    #: each); a dribbling client gets a 408, never an idle worker.
    read_timeout_s: float = 5.0
    #: Concurrent-connection ceiling; beyond it new connections get an
    #: immediate structured 503 (bounded accept backlog).
    max_connections: int = 64
    #: Per-client token-bucket rate (requests/second); 0 disables.
    rate_per_s: float = 0.0
    #: Bucket burst ceiling (max requests absorbed at once).
    rate_burst: float = 10.0
    #: Max distinct client buckets kept (LRU-evicted beyond this).
    rate_max_clients: int = 1024
    #: How long drain waits for in-flight responses before force-closing.
    drain_deadline_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_connections < 1:
            raise ValueError("max_connections must be >= 1")
        if self.max_header_bytes < 256 or self.max_body_bytes < 1:
            raise ValueError("header/body size bounds too small")
        if self.read_timeout_s <= 0:
            raise ValueError("read_timeout_s must be positive")


class RequestError(Exception):
    """A malformed or over-budget request, answered structurally."""

    def __init__(self, status: int, code: str, detail: str = ""):
        super().__init__(f"{status} {code}: {detail}")
        self.status = status
        self.code = code
        self.detail = detail


class _ConnectionAbort(Exception):
    """Tear the connection down without a response (injected net fault
    or a peer that vanished mid-read) -- counted, never raised past the
    connection handler."""


def retry_after_for(reason: "str | None", hint: "float | None") -> "float | None":
    """The ``Retry-After`` value for one shed decision."""
    if hint is not None:
        return hint
    if reason is None:
        return None
    return DEFAULT_RETRY_AFTER.get(reason)


class HttpFrontDoor:
    """The asyncio HTTP/1.1 API tier over one :class:`SimService`.

    ``service=None`` mounts a *status-only* front (healthz / readyz /
    metrics plus ``GET /v1/fleet`` from ``status_provider``) -- the
    shape the fabric coordinator exposes; job routes then answer a
    structured 503.
    """

    def __init__(
        self,
        service,
        config: "HttpConfig | None" = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        status_provider: "Callable[[], dict] | None" = None,
        telemetry=None,
    ):
        self.service = service
        self.config = config or HttpConfig()
        self._clock = clock
        self._status_provider = status_provider
        self._telemetry = telemetry
        if self._telemetry is None and service is not None:
            self._telemetry = service.telemetry
        self._limiter: "RateLimiter | None" = None
        if self.config.rate_per_s > 0:
            self._limiter = RateLimiter(
                self.config.rate_per_s,
                self.config.rate_burst,
                max_clients=self.config.rate_max_clients,
                clock=clock,
            )
        self._server: "asyncio.base_events.Server | None" = None
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._stop_event: "asyncio.Event | None" = None
        self._draining = False
        self._open = 0
        self._in_flight = 0
        self._writers: "set" = set()
        self.host: "str | None" = None
        self.port: "int | None" = None

    # -- telemetry plumbing (None-tolerant) ----------------------------
    def _record(self, event: str, count: int = 1) -> None:
        if self._telemetry is not None:
            self._telemetry.record_http(event, count)

    def _record_latency(self, seconds: float) -> None:
        if self._telemetry is not None:
            self._telemetry.record_http_latency(seconds)

    def _record_in_flight(self) -> None:
        if self._telemetry is not None:
            self._telemetry.record_http_in_flight(self._in_flight)

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> "HttpFrontDoor":
        if self._server is not None:
            raise RuntimeError("front door already started")
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        if self._draining:
            # A shutdown signal raced ahead of start(): honor it.
            self._stop_event.set()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=self.config.max_header_bytes,
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self

    def request_shutdown(self) -> None:
        """Stop accepting and wake :meth:`wait_shutdown` (thread-safe:
        callable from a signal handler while the loop runs)."""
        self._draining = True
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)

    async def wait_shutdown(self) -> None:
        await self._stop_event.wait()

    async def drain(self) -> None:
        """Stop accepting, finish in-flight responses, close stragglers."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = self._clock() + self.config.drain_deadline_s
        while self._open and self._clock() < deadline:
            await asyncio.sleep(0.02)
        for writer in list(self._writers):
            try:
                writer.close()
            except Exception:
                pass
        self._server = None

    @property
    def open_connections(self) -> int:
        return self._open

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- the wire ------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        """One accepted socket: at most one request, never an escape.

        Every exception class is contained here -- a handler bug
        becomes a structured 500 inside :meth:`_serve_one`, and wire
        trouble (peer gone, injected fault) is counted and closed.
        """
        injector = active_network()
        if injector is not None:
            fates = injector.fates("http.accept")
            if not fates:
                # Injected accept drop: the TCP handshake succeeded but
                # the server "loses" the connection -- the client sees
                # a reset and retries.
                self._record("accept_dropped")
                self._close(writer)
                return
            if fates[0] > 0:
                await asyncio.sleep(fates[0])
        if self._draining or self._open >= self.config.max_connections:
            code = "draining" if self._draining else "over_capacity"
            self._record(code)
            # Consume the request head (briefly) before answering:
            # closing a socket with unread received data makes the
            # kernel RST the connection and discard our 503 -- the one
            # response this branch exists to deliver.
            try:
                await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"),
                    min(1.0, self.config.read_timeout_s),
                )
            except Exception:
                pass
            await self._try_respond(
                writer, 503,
                {"error": code, "retry_after_s": 1.0},
                retry_after=1.0,
            )
            self._close(writer)
            return
        self._open += 1
        self._writers.add(writer)
        try:
            await self._serve_one(reader, writer)
        except _ConnectionAbort:
            pass
        except Exception:
            # Truly unexpected wire-handling failure: counted, contained.
            self._record("connection_error")
        finally:
            self._writers.discard(writer)
            self._open -= 1
            self._close(writer)

    async def _serve_one(self, reader, writer) -> None:
        started = self._clock()
        self._in_flight += 1
        self._record_in_flight()
        status = None
        try:
            try:
                method, target, headers, body = await self._read_request(
                    reader
                )
            except RequestError as exc:
                self._record("malformed")
                status = exc.status
                await self._try_respond(
                    writer, exc.status,
                    {"error": exc.code, "detail": exc.detail},
                )
                return
            client = self._client_id(writer)
            elog = get_event_log()
            with elog.span(
                "http.request",
                trace_id=headers.get("x-trace-id"),
                parent_id=headers.get("x-span-id"),
                method=method,
                path=target,
                client=client,
            ):
                try:
                    status, doc, retry_after, content = self._route(
                        method, target, headers, body, client
                    )
                except RequestError as exc:
                    status, doc, retry_after, content = (
                        exc.status,
                        {"error": exc.code, "detail": exc.detail},
                        None,
                        _JSON,
                    )
                except Exception as exc:
                    # Never a traceback down the socket: structured 500.
                    self._record("internal_error")
                    elog.emit(
                        "http.internal_error",
                        method=method, path=target,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                    status, doc, retry_after, content = (
                        500,
                        {"error": "internal", "detail": type(exc).__name__},
                        None,
                        _JSON,
                    )
            await self._respond(
                writer, status, doc,
                retry_after=retry_after, content_type=content,
            )
        finally:
            self._in_flight -= 1
            self._record_in_flight()
            if status is not None:
                self._record("requests")
                self._record(f"status.{status}")
                self._record_latency(max(self._clock() - started, 0.0))

    async def _read_request(self, reader):
        """Parse one size-bounded, deadline-bounded HTTP/1.1 request."""
        injector = active_network()
        if injector is not None:
            fates = injector.fates("http.read")
            if not fates:
                # Injected read drop: the request never "arrives".
                self._record("read_dropped")
                raise _ConnectionAbort()
            if fates[0] > 0:
                await asyncio.sleep(fates[0])
        timeout = self.config.read_timeout_s
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout
            )
        except asyncio.TimeoutError:
            self._record("timeouts")
            raise RequestError(
                408, "request_timeout",
                f"header block not received within {timeout:g}s",
            )
        except asyncio.LimitOverrunError:
            raise RequestError(
                431, "headers_too_large",
                f"header block exceeds {self.config.max_header_bytes} bytes",
            )
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                # Clean disconnect before any bytes: not an error.
                self._record("disconnects")
                raise _ConnectionAbort()
            raise RequestError(
                400, "truncated_request",
                "connection closed mid-header",
            )
        except ConnectionError:
            self._record("disconnects")
            raise _ConnectionAbort()
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise RequestError(
                400, "bad_request_line", f"unparseable: {lines[0][:120]!r}"
            )
        method, target = parts[0].upper(), parts[1]
        if len(lines) - 1 > _MAX_HEADERS:
            raise RequestError(
                431, "too_many_headers", f"more than {_MAX_HEADERS} headers"
            )
        headers: "dict[str, str]" = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep or not name.strip():
                raise RequestError(
                    400, "bad_header", f"unparseable header {line[:80]!r}"
                )
            headers[name.strip().lower()] = value.strip()
        body = b""
        length_raw = headers.get("content-length")
        if length_raw is not None:
            try:
                length = int(length_raw)
            except ValueError:
                raise RequestError(
                    400, "bad_content_length",
                    f"not an integer: {length_raw[:40]!r}",
                )
            if length < 0:
                raise RequestError(
                    400, "bad_content_length", "negative length"
                )
            if length > self.config.max_body_bytes:
                raise RequestError(
                    413, "body_too_large",
                    f"{length} bytes > limit {self.config.max_body_bytes}",
                )
            if length:
                try:
                    body = await asyncio.wait_for(
                        reader.readexactly(length), timeout
                    )
                except asyncio.TimeoutError:
                    self._record("timeouts")
                    raise RequestError(
                        408, "request_timeout",
                        f"body not received within {timeout:g}s",
                    )
                except (asyncio.IncompleteReadError, ConnectionError):
                    self._record("disconnects")
                    raise _ConnectionAbort()
        elif method in ("POST", "PUT"):
            raise RequestError(
                411, "length_required", "POST requires Content-Length"
            )
        return method, target, headers, body

    # -- routing -------------------------------------------------------
    def _route(self, method, target, headers, body, client):
        """Dispatch one parsed request; returns
        (status, doc, retry_after_s, content_type)."""
        path = target.split("?", 1)[0]
        if path == "/healthz":
            return self._status_route(method, ready_check=False)
        if path == "/readyz":
            return self._status_route(method, ready_check=True)
        if path == "/metrics":
            if method != "GET":
                raise RequestError(405, "method_not_allowed", "GET only")
            return (
                200, prometheus_text(), None,
                "text/plain; version=0.0.4; charset=utf-8",
            )
        if path == "/v1/fleet":
            if method != "GET":
                raise RequestError(405, "method_not_allowed", "GET only")
            if self._status_provider is None:
                raise RequestError(404, "not_found", "no fleet mounted")
            return 200, dict(self._status_provider()), None, _JSON
        if path == "/v1/jobs":
            if method != "POST":
                raise RequestError(
                    405, "method_not_allowed", "POST to submit"
                )
            return self._submit_route(headers, body, client)
        if path.startswith("/v1/jobs/"):
            job_id = path[len("/v1/jobs/"):]
            if not job_id or "/" in job_id:
                raise RequestError(404, "not_found", f"no route {path!r}")
            if method == "GET":
                return self._poll_route(job_id)
            if method == "DELETE":
                return self._cancel_route(job_id)
            raise RequestError(
                405, "method_not_allowed", "GET to poll, DELETE to cancel"
            )
        raise RequestError(404, "not_found", f"no route {path!r}")

    def _status_route(self, method, *, ready_check):
        if method != "GET":
            raise RequestError(405, "method_not_allowed", "GET only")
        if self.service is not None:
            snap = self.service.health_snapshot()
            ok = snap.ready if ready_check else snap.alive
            doc = snap.to_dict()
        elif self._status_provider is not None:
            doc = dict(self._status_provider())
            ok = bool(doc.get("ready" if ready_check else "alive", True))
        else:
            doc, ok = {"alive": True, "ready": True}, True
        if self._draining:
            doc["draining"] = True
            ok = ok and not ready_check
        return (200 if ok else 503), doc, (None if ok else 2.0), _JSON

    def _submit_route(self, headers, body, client):
        if self.service is None:
            return (
                503,
                {"error": "no_job_service",
                 "detail": "this endpoint is status-only"},
                None, _JSON,
            )
        if self._limiter is not None:
            allowed, retry_after = self._limiter.allow(client)
            if not allowed:
                self._record("rate_limited")
                return (
                    429,
                    {"error": "rate_limited",
                     "detail": f"client {client} over "
                               f"{self.config.rate_per_s:g} req/s",
                     "retry_after_s": retry_after},
                    retry_after, _JSON,
                )
        try:
            doc = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise RequestError(400, "bad_json", str(exc)[:200])
        if not isinstance(doc, dict):
            raise RequestError(
                400, "bad_job", "job spec must be a JSON object"
            )
        key = headers.get("idempotency-key")
        if not key:
            key = self.service.idempotency_key_for(doc)
        try:
            job_id, admission, outcome = self.service.submit_idempotent(
                doc, idempotency_key=key, admission_breaker=True
            )
        except (ValueError, KeyError, TypeError) as exc:
            raise RequestError(400, "bad_job", str(exc)[:200])
        if outcome in ("deduplicated", "cached"):
            record = self.service.poll(job_id)
            payload = {
                "job_id": job_id,
                "status": record.status if record else "served",
                "idempotency_key": key,
            }
            if outcome == "deduplicated":
                payload["deduplicated"] = True
            else:
                payload["served_from"] = "cache"
            if record is not None and record.result is not None:
                payload["result"] = record.result
            return 200, payload, None, _JSON
        if admission.admitted:
            return (
                202,
                {"job_id": job_id, "status": "pending",
                 "idempotency_key": key},
                None, _JSON,
            )
        retry_after = retry_after_for(
            admission.reason, admission.retry_after_s
        )
        status = SHED_STATUS.get(admission.reason, 503)
        return (
            status,
            {"error": "shed", "reason": admission.reason,
             "detail": admission.detail, "job_id": job_id,
             "retry_after_s": retry_after},
            retry_after, _JSON,
        )

    def _poll_route(self, job_id):
        if self.service is None:
            return 503, {"error": "no_job_service"}, None, _JSON
        record = self.service.poll(job_id)
        if record is None:
            raise RequestError(404, "unknown_job", f"no job {job_id!r}")
        return 200, record.to_dict(), None, _JSON

    def _cancel_route(self, job_id):
        if self.service is None:
            return 503, {"error": "no_job_service"}, None, _JSON
        if self.service.cancel(job_id):
            return (
                200, {"job_id": job_id, "status": "cancelled"}, None, _JSON
            )
        record = self.service.poll(job_id)
        if record is None:
            raise RequestError(404, "unknown_job", f"no job {job_id!r}")
        return (
            409,
            {"error": "too_late", "job_id": job_id,
             "status": record.status,
             "detail": "job already started or finished"},
            None, _JSON,
        )

    # -- response writing ----------------------------------------------
    @staticmethod
    def _client_id(writer) -> str:
        peer = writer.get_extra_info("peername")
        return str(peer[0]) if isinstance(peer, tuple) else "unknown"

    @staticmethod
    def _encode(status, doc, *, retry_after=None, content_type=_JSON):
        if isinstance(doc, (bytes, str)):
            payload = doc.encode("utf-8") if isinstance(doc, str) else doc
        else:
            payload = json.dumps(doc, sort_keys=True).encode("utf-8")
        reason = _REASONS.get(status, "")
        headers = [
            f"HTTP/1.1 {status} {reason}",
            "server: repro-serve",
            f"content-type: {content_type}",
            f"content-length: {len(payload)}",
            "connection: close",
        ]
        if retry_after is not None:
            headers.append(
                f"retry-after: {max(int(math.ceil(retry_after)), 1)}"
            )
        return "\r\n".join(headers).encode("latin-1") + b"\r\n\r\n" + payload

    async def _respond(
        self, writer, status, doc, *, retry_after=None, content_type=_JSON
    ) -> None:
        """Write one response through the ``http.write`` fault site."""
        injector = active_network()
        if injector is not None:
            fates = injector.fates("http.write")
            if not fates:
                # Injected write drop: the job may well be admitted but
                # the 202 vanishes -- exactly the case idempotency keys
                # exist for (the client's retry finds the original id).
                self._record("write_dropped")
                raise _ConnectionAbort()
            if fates[0] > 0:
                await asyncio.sleep(fates[0])
        data = self._encode(
            status, doc, retry_after=retry_after, content_type=content_type
        )
        try:
            writer.write(data)
            await writer.drain()
        except (ConnectionError, OSError):
            self._record("disconnects")
            raise _ConnectionAbort()

    async def _try_respond(self, writer, status, doc, *, retry_after=None):
        """Best-effort response on an error path (peer may be gone)."""
        try:
            await self._respond(writer, status, doc, retry_after=retry_after)
        except _ConnectionAbort:
            pass

    @staticmethod
    def _close(writer) -> None:
        try:
            writer.close()
        except Exception:
            pass


async def serve_front_door(
    front: HttpFrontDoor,
    *,
    on_ready: "Callable[[HttpFrontDoor], None] | None" = None,
) -> None:
    """Start ``front``, run until :meth:`request_shutdown`, then drain."""
    await front.start()
    if on_ready is not None:
        on_ready(front)
    try:
        await front.wait_shutdown()
    finally:
        await front.drain()
