"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show available exhibits, CPU/GPU configurations, apps, and kernels.
``exhibit NAME [NAME...]``
    Regenerate paper exhibits (e.g. ``table1``, ``figure7``) and print
    their tables plus paper-vs-measured comparisons.  Each exhibit is
    followed by a one-line sweep-cache/telemetry summary.
``run CONFIG WORKLOAD [--json]``
    Run one configuration on one workload (CPU app or GPU kernel) and
    print the measurement; ``--json`` emits a machine-readable record.
``stats CONFIG WORKLOAD [--json]``
    Run one pair with observability enabled and dump the structured
    counter tree (DL1 fast-way hit rate, ALU steering split, stall
    breakdown, ...).
``trace CONFIG WORKLOAD --out FILE [--capacity N]``
    Run one pair with pipeline tracing enabled and write a Chrome
    trace-event JSON file (open in ``chrome://tracing`` or Perfetto).
``sweep CONFIGS... [--gpu] [--checkpoint PATH] [--resume] [--timeout S]
[--max-retries N] [--fail-fast] [--workers N] [--isolation
{thread,process}] [--json]``
    Run a resilient (configuration x workload) sweep: failed cells
    degrade to recorded gaps (retried up to ``--max-retries`` times with
    backoff, killed after ``--timeout`` seconds each), the result caches
    persist to ``--checkpoint`` after every executed run, and
    ``--resume`` preloads a matching checkpoint so only missing cells
    execute.  ``--workers N`` with ``--isolation process`` (implied for
    N > 1) runs cells in parallel supervised worker processes: hung
    attempts are SIGKILLed at the timeout and a crashing worker costs
    one cell, not the sweep; the report is byte-identical to a serial
    run.  Exit status: 0 = complete, 3 = completed with gaps.

Sweep sizing obeys ``REPRO_INSTRUCTIONS`` / ``REPRO_APPS`` /
``REPRO_KERNELS``, as everywhere else; fault injection (for exercising
the resilience path) obeys ``REPRO_FAULTS`` and friends
(:mod:`repro.resilience.faults`).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import obs
from repro.core.configs import CPU_CONFIGS, GPU_CONFIGS, cpu_config, gpu_config
from repro.core.simulate import simulate_cpu, simulate_gpu
from repro.experiments.figures import ALL_EXHIBITS
from repro.experiments.report import (
    failure_table,
    paper_vs_measured,
    stall_breakdown_table,
)
from repro.experiments.runner import SweepRunner, SweepSettings
from repro.resilience import GuardPolicy, SweepError
from repro.obs.stats import collect_cpu_stats, collect_gpu_stats, format_stats
from repro.obs.trace import PipelineTracer
from repro.workloads import CPU_APPS, GPU_KERNELS

#: Exhibits that consume the shared sweep runner.
_SWEEP_EXHIBITS = {
    "figure7", "figure8", "figure9", "figure10", "figure11",
    "figure12", "figure13", "figure14",
}


def _cmd_list(_args: argparse.Namespace) -> int:
    print("exhibits:   ", " ".join(ALL_EXHIBITS))
    print("cpu configs:", " ".join(CPU_CONFIGS))
    print("gpu configs:", " ".join(GPU_CONFIGS))
    print("cpu apps:   ", " ".join(CPU_APPS))
    print("gpu kernels:", " ".join(GPU_KERNELS))
    return 0


def _cmd_exhibit(args: argparse.Namespace) -> int:
    unknown = [n for n in args.names if n not in ALL_EXHIBITS]
    if unknown:
        print(f"unknown exhibits: {unknown}", file=sys.stderr)
        return 2
    runner = SweepRunner()
    for name in args.names:
        fn = ALL_EXHIBITS[name]
        result = fn(runner) if name in _SWEEP_EXHIBITS else fn()
        print(f"\n== {result.exhibit}: {result.title} ==")
        print(result.table)
        print("\npaper vs measured (means):")
        print(paper_vs_measured(result))
        print(runner.telemetry.cache_summary())
    return 0


def _classify(config: str, workload: str) -> "str | None":
    """"cpu" / "gpu" for a valid (config, workload) pair, else None."""
    if config in CPU_CONFIGS and workload in CPU_APPS:
        return "cpu"
    if config in GPU_CONFIGS and workload in GPU_KERNELS:
        return "gpu"
    return None


def _no_pair(config: str, workload: str) -> int:
    print(
        f"no matching (config, workload) pair for "
        f"({config!r}, {workload!r}); see `python -m repro list`",
        file=sys.stderr,
    )
    return 2


def _single_run(config: str, workload: str, kind: str, tracer=None):
    """One simulation at the env-controlled sweep sizing."""
    settings = SweepSettings()
    if kind == "cpu":
        return simulate_cpu(
            cpu_config(config),
            workload,
            instructions=settings.instructions,
            warmup=settings.warmup,
            tracer=tracer,
        )
    return simulate_gpu(gpu_config(config), workload, tracer=tracer)


def _run_record(run, kind: str) -> dict:
    """The machine-readable ``run --json`` payload."""
    record = {
        "kind": kind,
        "config": run.config,
        "workload": run.app if kind == "cpu" else run.kernel,
        "time_s": run.time_s,
        "energy_j": run.energy_j,
        "power_w": run.power_w,
        "ed": run.ed,
        "ed2": run.ed2,
    }
    if kind == "cpu":
        core = run.core
        record.update(
            cycles=core.cycles,
            committed=core.committed,
            ipc=core.ipc,
            bpred_miss_rate=core.branch_mispredict_rate,
            dl1_hit_rate=core.dl1_hit_rate,
            dl1_fast_way_hit_rate=core.dl1_fast_hit_rate,
        )
    else:
        cu = run.gpu.cu_result
        record.update(
            cycles=cu.cycles,
            instructions=cu.instructions,
            ipc=cu.ipc,
            rf_cache_hit_rate=cu.rf_cache_hit_rate,
        )
    return record


def _cmd_run(args: argparse.Namespace) -> int:
    kind = _classify(args.config, args.workload)
    if kind is None:
        return _no_pair(args.config, args.workload)
    run = _single_run(args.config, args.workload, kind)
    if args.json:
        print(json.dumps(_run_record(run, kind), indent=2))
        return 0
    if kind == "cpu":
        core = run.core
        print(f"{args.config} on {args.workload} (CPU):")
        print(f"  time    {run.time_s * 1e6:.2f} us   energy {run.energy_j * 1e3:.3f} mJ")
        print(f"  ED      {run.ed:.3e}   ED^2  {run.ed2:.3e}")
        print(
            f"  ipc {core.ipc:.2f}  bpred-miss {core.branch_mispredict_rate:.3f}  "
            f"dl1-hit {core.dl1_hit_rate:.3f}  fast-way {core.dl1_fast_hit_rate:.3f}"
        )
    else:
        cu = run.gpu.cu_result
        print(f"{args.config} on {args.workload} (GPU):")
        print(f"  time    {run.time_s * 1e6:.2f} us   energy {run.energy_j * 1e3:.3f} mJ")
        print(f"  ED      {run.ed:.3e}   ED^2  {run.ed2:.3e}")
        print(f"  cu-ipc {cu.ipc:.2f}  rf-cache-hit {cu.rf_cache_hit_rate:.2f}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    kind = _classify(args.config, args.workload)
    if kind is None:
        return _no_pair(args.config, args.workload)
    obs.set_enabled(True)
    try:
        run = _single_run(args.config, args.workload, kind)
        if kind == "cpu":
            stats = collect_cpu_stats(run)
        else:
            stats = collect_gpu_stats(run)
    finally:
        obs.set_enabled(False)
    if args.json:
        print(json.dumps(stats, indent=2))
    else:
        print(format_stats(stats))
        if kind == "cpu":
            print("\nstall breakdown:")
            print(stall_breakdown_table([run]))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    kind = _classify(args.config, args.workload)
    if kind is None:
        return _no_pair(args.config, args.workload)
    if args.capacity <= 0:
        print("--capacity must be positive", file=sys.stderr)
        return 2
    tracer = PipelineTracer(
        capacity=args.capacity, process_name=f"{args.config}/{args.workload}"
    )
    obs.set_enabled(True)
    try:
        _single_run(args.config, args.workload, kind, tracer=tracer)
    finally:
        obs.set_enabled(False)
    tracer.write(args.out)
    print(
        f"wrote {len(tracer)} events to {args.out} "
        f"({tracer.emitted} emitted, {tracer.dropped} dropped; "
        f"open in chrome://tracing or Perfetto)"
    )
    return 0


def _sweep_status_table(results: dict, workloads: "list[str]") -> str:
    """ok / `--` status matrix for a finished sweep."""
    name_w = max(len(w) for w in workloads) + 2
    configs = list(results)
    header = " " * name_w + "".join(f"{c:>{len(c) + 2}}" for c in configs)
    lines = [header]
    for workload in workloads:
        row = "".join(
            f"{'ok' if results[c][workload] is not None else '--':>{len(c) + 2}}"
            for c in configs
        )
        lines.append(f"{workload:<{name_w}}" + row)
    return "\n".join(lines)


def _cmd_sweep(args: argparse.Namespace) -> int:
    known = GPU_CONFIGS if args.gpu else CPU_CONFIGS
    unknown = [n for n in args.configs if n not in known]
    if unknown:
        kind = "GPU" if args.gpu else "CPU"
        print(
            f"unknown {kind} configs: {unknown}; choose from {sorted(known)}",
            file=sys.stderr,
        )
        return 2
    if args.resume and not args.checkpoint:
        print("--resume requires --checkpoint PATH", file=sys.stderr)
        return 2
    if args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2
    if args.workers > 1 and args.isolation == "thread":
        print(
            "--workers > 1 requires --isolation process "
            "(threads cannot parallelise CPU-bound sweeps)",
            file=sys.stderr,
        )
        return 2
    policy = GuardPolicy(
        timeout_s=args.timeout,
        max_retries=args.max_retries,
        fail_fast=args.fail_fast,
    )
    runner = SweepRunner(
        policy=policy, checkpoint=args.checkpoint, resume=args.resume
    )
    workloads = runner.settings.kernels if args.gpu else runner.settings.apps
    interrupted = False
    try:
        if args.gpu:
            results = runner.gpu_sweep(
                args.configs, workers=args.workers, isolation=args.isolation
            )
        else:
            results = runner.cpu_sweep(
                args.configs, workers=args.workers, isolation=args.isolation
            )
    except SweepError as exc:
        runner.save_checkpoint()
        print(f"sweep aborted (--fail-fast): {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        runner.save_checkpoint()
        interrupted = True
        results = {}
    saved = runner.save_checkpoint()
    failures = list(runner.failures.values())
    if interrupted:
        hint = (
            f"; rerun with --checkpoint {args.checkpoint} --resume to continue"
            if args.checkpoint
            else ""
        )
        print(f"\nsweep interrupted{hint}", file=sys.stderr)
        return 130
    if args.json:
        cells = {
            config: {
                workload: (
                    None if run is None else {
                        "time_s": run.time_s,
                        "energy_j": run.energy_j,
                        "ed2": run.ed2,
                    }
                )
                for workload, run in row.items()
            }
            for config, row in results.items()
        }
        print(
            json.dumps(
                {
                    "kind": "gpu" if args.gpu else "cpu",
                    "configs": args.configs,
                    "workloads": workloads,
                    "cells": cells,
                    "failures": [f.to_dict() for f in failures],
                    "telemetry": runner.telemetry.summary(),
                },
                indent=2,
            )
        )
    else:
        total = len(args.configs) * len(workloads)
        done = sum(
            1 for row in results.values() for run in row.values() if run is not None
        )
        print(_sweep_status_table(results, workloads))
        print(f"\n{done}/{total} cells ok, {len(failures)} failed")
        if failures:
            print(failure_table(failures))
        print(runner.telemetry.cache_summary())
        if args.checkpoint:
            print(f"checkpoint: {args.checkpoint} ({saved} entries)")
    return 3 if failures else 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show exhibits, configs, and workloads")

    p_exhibit = sub.add_parser("exhibit", help="regenerate paper exhibits")
    p_exhibit.add_argument("names", nargs="+", metavar="NAME")

    p_run = sub.add_parser("run", help="run one configuration on one workload")
    p_run.add_argument("config")
    p_run.add_argument("workload")
    p_run.add_argument(
        "--json", action="store_true", help="emit a machine-readable JSON record"
    )

    p_stats = sub.add_parser(
        "stats", help="run one pair and dump the structured counter tree"
    )
    p_stats.add_argument("config")
    p_stats.add_argument("workload")
    p_stats.add_argument(
        "--json", action="store_true", help="emit the counter tree as JSON"
    )

    p_trace = sub.add_parser(
        "trace", help="run one pair and write a Chrome trace-event file"
    )
    p_trace.add_argument("config")
    p_trace.add_argument("workload")
    p_trace.add_argument("--out", required=True, metavar="FILE")
    p_trace.add_argument(
        "--capacity",
        type=int,
        default=65536,
        help="ring-buffer size (oldest events drop beyond this)",
    )

    p_sweep = sub.add_parser(
        "sweep",
        help="run a resilient (config x workload) sweep with recorded gaps",
    )
    p_sweep.add_argument("configs", nargs="+", metavar="CONFIG")
    p_sweep.add_argument(
        "--gpu", action="store_true", help="sweep GPU configs over kernels"
    )
    p_sweep.add_argument(
        "--checkpoint", metavar="PATH",
        help="persist result caches here after every executed run",
    )
    p_sweep.add_argument(
        "--resume", action="store_true",
        help="preload a matching checkpoint; only missing cells execute",
    )
    p_sweep.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="wall-clock budget per run attempt (seconds)",
    )
    p_sweep.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="retries per cell with exponential backoff (default 2)",
    )
    p_sweep.add_argument(
        "--fail-fast", action="store_true",
        help="abort the sweep on the first failed cell",
    )
    p_sweep.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="parallel worker processes (N > 1 implies --isolation process)",
    )
    p_sweep.add_argument(
        "--isolation", choices=("thread", "process"), default=None,
        help="run attempts in-process under the thread guard (default for "
        "--workers 1) or in SIGKILL-supervised worker processes",
    )
    p_sweep.add_argument(
        "--json", action="store_true",
        help="emit cells, failures, and telemetry as JSON",
    )

    args = parser.parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "exhibit": _cmd_exhibit,
        "run": _cmd_run,
        "stats": _cmd_stats,
        "trace": _cmd_trace,
        "sweep": _cmd_sweep,
    }
    return handlers[args.command](args)
