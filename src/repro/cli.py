"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show available exhibits, CPU/GPU configurations, apps, and kernels.
``exhibit NAME [NAME...]``
    Regenerate paper exhibits (e.g. ``table1``, ``figure7``) and print
    their tables plus paper-vs-measured comparisons.  Each exhibit is
    followed by a one-line sweep-cache/telemetry summary.
``run CONFIG WORKLOAD [--json]``
    Run one configuration on one workload (CPU app or GPU kernel) and
    print the measurement; ``--json`` emits a machine-readable record.
``stats CONFIG WORKLOAD [--json]``
    Run one pair with observability enabled and dump the structured
    counter tree (DL1 fast-way hit rate, ALU steering split, stall
    breakdown, ...).
``trace CONFIG WORKLOAD --out FILE [--capacity N]``
    Run one pair with pipeline tracing enabled and write a Chrome
    trace-event JSON file (open in ``chrome://tracing`` or Perfetto).
``sweep CONFIGS... [--gpu] [--checkpoint PATH] [--resume] [--store DIR]
[--timeout S] [--max-retries N] [--fail-fast] [--workers N]
[--isolation {thread,process}] [--json]``
    Run a resilient (configuration x workload) sweep: failed cells
    degrade to recorded gaps (retried up to ``--max-retries`` times with
    backoff, killed after ``--timeout`` seconds each), the result caches
    persist to ``--checkpoint`` after every executed run, and
    ``--resume`` preloads a matching checkpoint so only missing cells
    execute.  ``--workers N`` with ``--isolation process`` (implied for
    N > 1) runs cells in parallel supervised worker processes: hung
    attempts are SIGKILLed at the timeout and a crashing worker costs
    one cell, not the sweep; the report is byte-identical to a serial
    run.  Exit status: 0 = complete, 3 = completed with gaps.
    SIGTERM (and SIGINT) flush the checkpoint before exiting: SIGTERM
    exits 3 (gaps), matching a sweep that completed with missing cells,
    SIGINT exits 130.  ``--store DIR`` (or ``$REPRO_STORE``) reads
    cache misses through a durable content-addressed result store and
    writes executed cells back: identical cells across runs, machines,
    and entry points never touch a cycle engine twice.
``serve --jobs FILE [--follow] [--workers N] [--isolation {thread,process}]
[--queue-capacity N] [--breaker-threshold N] [--breaker-recovery S]
[--drain-deadline S] [--checkpoint PATH] [--resume] [--timeout S]
[--max-retries N] [--health-file PATH] [--json]``
    Run the admission-controlled simulation job service over a JSONL job
    file (one job per line: ``{"run_kind": "cpu", "config": "AdvHet",
    "workload": "lu", "priority": 5, "deadline_s": 30}``).  ``--follow``
    tails the file for new jobs until SIGTERM/SIGINT; otherwise the
    service drains the file and exits.  Saturation, per-job deadlines,
    and open circuit breakers shed jobs with structured reasons (never
    silent drops); SIGTERM stops admissions, drains in-flight workers
    within ``--drain-deadline``, flushes the checkpoint, and records
    unfinished jobs as gaps.  Exit status: 0 = everything served,
    3 = gaps (failed or shed jobs).
``serve --health [--health-file PATH]``
    Dump the service's latest liveness/readiness snapshot (queue depth,
    breaker states, served/shed counters) from its health file.
``fabric coordinator CONFIGS... [--gpu] [--listen HOST:PORT] [--nodes N]
[--checkpoint PATH] [--resume] [--heartbeat S] [--heartbeat-timeout S]
[--task-timeout S] [--grace S] [--drain-deadline S] [--fleet-dir DIR]
[--json]``
    Run a sweep distributed across connected fabric nodes: cells are
    consistent-hashed onto nodes, dead nodes (heartbeat timeout or
    connection loss) have their in-flight cells resubmitted to
    survivors exactly once (epoch fencing rejects zombie results), and
    SIGTERM drains the whole fleet through every node's checkpoint.
    The report is byte-identical to a serial ``sweep`` of the same
    cells.  Exit status matches ``sweep``: 0 = complete, 3 = gaps.
``fabric node --connect HOST:PORT [--name NAME] [--workers N]
[--isolation {thread,process}] [--checkpoint PATH] [--resume]
[--queue-capacity N] [--health-file PATH] [--json]``
    Run one worker node: the existing job service (queue, breakers,
    process pool) fed by coordinator assignments.  Reconnects with
    seeded exponential backoff after a lost coordinator; exits on the
    coordinator's ``bye``/``drain``.
``top --fleet PATH``
    Render the fabric's fleet rollup (``<fleet-dir>/fleet.json``)
    instead of a single service's health file.
``store fsck DIR [--no-quarantine] [--json]``
    Verify every entry of a durable result store (``--store DIR`` /
    ``$REPRO_STORE``): checksum, schema, and content address must all
    match.  Damaged entries are quarantined (renamed aside) so the
    store heals in place; exit 1 when damage was found this run, so an
    immediately rerun fsck exits 0.
``store gc DIR [--max-bytes N] [--keep-version V] [--json]``
    Drop store entries written by stale simulator versions, then
    enforce a total size budget oldest-first.
``bench [--json] [--baseline PATH] [--tolerance T] [--update-baseline]
[--instructions N] [--repeats N]``
    Run the cycle-engine perf microbenchmarks (fast path vs
    ``REPRO_NO_CYCLE_SKIP=1`` on the reference cells, trace-cache
    amortization, cached-sweep latency) and gate the machine-independent
    speedup ratios against the committed baseline
    (``benchmarks/perf/BENCH_cycle_engine.json``) with a one-sided
    tolerance.  Every run also rechecks cycle exactness: a fast-path
    result that differs from the escape hatch fails regardless of
    timing.  Exit status: 0 = ok, 1 = regression or exactness mismatch.

Sweep sizing obeys ``REPRO_INSTRUCTIONS`` / ``REPRO_APPS`` /
``REPRO_KERNELS``, as everywhere else; fault injection (for exercising
the resilience path) obeys ``REPRO_FAULTS`` and friends
(:mod:`repro.resilience.faults`).
"""

from __future__ import annotations

import argparse
import json
import signal
import sys

from repro import obs
from repro.core.configs import CPU_CONFIGS, GPU_CONFIGS, cpu_config, gpu_config
from repro.core.simulate import simulate_cpu, simulate_gpu
from repro.experiments.figures import ALL_EXHIBITS
from repro.experiments.report import (
    failure_table,
    paper_vs_measured,
    stall_breakdown_table,
)
from repro.experiments.runner import SweepRunner, SweepSettings
from repro.resilience import GuardPolicy, SweepError
from repro.obs.stats import collect_cpu_stats, collect_gpu_stats, format_stats
from repro.obs.trace import PipelineTracer
from repro.workloads import CPU_APPS, GPU_KERNELS

#: Exhibits that consume the shared sweep runner.
_SWEEP_EXHIBITS = {
    "figure7", "figure8", "figure9", "figure10", "figure11",
    "figure12", "figure13", "figure14",
}


def _cmd_list(_args: argparse.Namespace) -> int:
    print("exhibits:   ", " ".join(ALL_EXHIBITS))
    print("cpu configs:", " ".join(CPU_CONFIGS))
    print("gpu configs:", " ".join(GPU_CONFIGS))
    print("cpu apps:   ", " ".join(CPU_APPS))
    print("gpu kernels:", " ".join(GPU_KERNELS))
    return 0


def _cmd_exhibit(args: argparse.Namespace) -> int:
    unknown = [n for n in args.names if n not in ALL_EXHIBITS]
    if unknown:
        print(f"unknown exhibits: {unknown}", file=sys.stderr)
        return 2
    runner = SweepRunner()
    for name in args.names:
        fn = ALL_EXHIBITS[name]
        result = fn(runner) if name in _SWEEP_EXHIBITS else fn()
        print(f"\n== {result.exhibit}: {result.title} ==")
        print(result.table)
        print("\npaper vs measured (means):")
        print(paper_vs_measured(result))
        print(runner.telemetry.cache_summary())
    return 0


def _classify(config: str, workload: str) -> "str | None":
    """"cpu" / "gpu" for a valid (config, workload) pair, else None."""
    if config in CPU_CONFIGS and workload in CPU_APPS:
        return "cpu"
    if config in GPU_CONFIGS and workload in GPU_KERNELS:
        return "gpu"
    return None


def _no_pair(config: str, workload: str) -> int:
    print(
        f"no matching (config, workload) pair for "
        f"({config!r}, {workload!r}); see `python -m repro list`",
        file=sys.stderr,
    )
    return 2


def _single_run(config: str, workload: str, kind: str, tracer=None):
    """One simulation at the env-controlled sweep sizing."""
    settings = SweepSettings()
    if kind == "cpu":
        return simulate_cpu(
            cpu_config(config),
            workload,
            instructions=settings.instructions,
            warmup=settings.warmup,
            tracer=tracer,
        )
    return simulate_gpu(gpu_config(config), workload, tracer=tracer)


def _run_record(run, kind: str) -> dict:
    """The machine-readable ``run --json`` payload."""
    record = {
        "kind": kind,
        "config": run.config,
        "workload": run.app if kind == "cpu" else run.kernel,
        "time_s": run.time_s,
        "energy_j": run.energy_j,
        "power_w": run.power_w,
        "ed": run.ed,
        "ed2": run.ed2,
    }
    if kind == "cpu":
        core = run.core
        record.update(
            cycles=core.cycles,
            committed=core.committed,
            ipc=core.ipc,
            bpred_miss_rate=core.branch_mispredict_rate,
            dl1_hit_rate=core.dl1_hit_rate,
            dl1_fast_way_hit_rate=core.dl1_fast_hit_rate,
        )
    else:
        cu = run.gpu.cu_result
        record.update(
            cycles=cu.cycles,
            instructions=cu.instructions,
            ipc=cu.ipc,
            rf_cache_hit_rate=cu.rf_cache_hit_rate,
        )
    return record


def _cmd_run(args: argparse.Namespace) -> int:
    kind = _classify(args.config, args.workload)
    if kind is None:
        return _no_pair(args.config, args.workload)
    run = _single_run(args.config, args.workload, kind)
    if args.json:
        print(json.dumps(_run_record(run, kind), indent=2))
        return 0
    if kind == "cpu":
        core = run.core
        print(f"{args.config} on {args.workload} (CPU):")
        print(f"  time    {run.time_s * 1e6:.2f} us   energy {run.energy_j * 1e3:.3f} mJ")
        print(f"  ED      {run.ed:.3e}   ED^2  {run.ed2:.3e}")
        print(
            f"  ipc {core.ipc:.2f}  bpred-miss {core.branch_mispredict_rate:.3f}  "
            f"dl1-hit {core.dl1_hit_rate:.3f}  fast-way {core.dl1_fast_hit_rate:.3f}"
        )
    else:
        cu = run.gpu.cu_result
        print(f"{args.config} on {args.workload} (GPU):")
        print(f"  time    {run.time_s * 1e6:.2f} us   energy {run.energy_j * 1e3:.3f} mJ")
        print(f"  ED      {run.ed:.3e}   ED^2  {run.ed2:.3e}")
        print(f"  cu-ipc {cu.ipc:.2f}  rf-cache-hit {cu.rf_cache_hit_rate:.2f}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    kind = _classify(args.config, args.workload)
    if kind is None:
        return _no_pair(args.config, args.workload)
    obs.set_enabled(True)
    try:
        run = _single_run(args.config, args.workload, kind)
        if kind == "cpu":
            stats = collect_cpu_stats(run)
        else:
            stats = collect_gpu_stats(run)
        if getattr(args, "prom", False):
            # Capture the typed registry state while obs is still on;
            # rendering happens after the flag is restored.
            from repro.obs.metrics import get_registry

            prom_state = get_registry().export_state()
    finally:
        obs.set_enabled(False)
    if getattr(args, "prom", False):
        from repro.obs.export import prometheus_text

        print(prometheus_text(prom_state), end="")
        return 0
    if args.json:
        print(json.dumps(stats, indent=2))
    else:
        print(format_stats(stats))
        if kind == "cpu":
            print("\nstall breakdown:")
            print(stall_breakdown_table([run]))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    kind = _classify(args.config, args.workload)
    if kind is None:
        return _no_pair(args.config, args.workload)
    if args.capacity <= 0:
        print("--capacity must be positive", file=sys.stderr)
        return 2
    tracer = PipelineTracer(
        capacity=args.capacity, process_name=f"{args.config}/{args.workload}"
    )
    obs.set_enabled(True)
    try:
        _single_run(args.config, args.workload, kind, tracer=tracer)
    finally:
        obs.set_enabled(False)
    tracer.write(args.out)
    print(
        f"wrote {len(tracer)} events to {args.out} "
        f"({tracer.emitted} emitted, {tracer.dropped} dropped; "
        f"open in chrome://tracing or Perfetto)"
    )
    return 0


def _sweep_status_table(results: dict, workloads: "list[str]") -> str:
    """ok / `--` status matrix for a finished sweep."""
    name_w = max(len(w) for w in workloads) + 2
    configs = list(results)
    header = " " * name_w + "".join(f"{c:>{len(c) + 2}}" for c in configs)
    lines = [header]
    for workload in workloads:
        row = "".join(
            f"{'ok' if results[c][workload] is not None else '--':>{len(c) + 2}}"
            for c in configs
        )
        lines.append(f"{workload:<{name_w}}" + row)
    return "\n".join(lines)


class _SweepTerminated(BaseException):
    """SIGTERM arrived mid-sweep, converted so cleanup can run.

    A ``BaseException`` (like ``KeyboardInterrupt``) on purpose: the
    guard's retry loop catches ``Exception`` to contain simulation
    crashes, and a termination request must cut through it, not be
    classified as a crash and retried.
    """


def _cmd_sweep(args: argparse.Namespace) -> int:
    known = GPU_CONFIGS if args.gpu else CPU_CONFIGS
    unknown = [n for n in args.configs if n not in known]
    if unknown:
        kind = "GPU" if args.gpu else "CPU"
        print(
            f"unknown {kind} configs: {unknown}; choose from {sorted(known)}",
            file=sys.stderr,
        )
        return 2
    if args.resume and not args.checkpoint:
        print("--resume requires --checkpoint PATH", file=sys.stderr)
        return 2
    if args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2
    if args.workers > 1 and args.isolation == "thread":
        print(
            "--workers > 1 requires --isolation process "
            "(threads cannot parallelise CPU-bound sweeps)",
            file=sys.stderr,
        )
        return 2
    policy = GuardPolicy(
        timeout_s=args.timeout,
        max_retries=args.max_retries,
        fail_fast=args.fail_fast,
    )
    runner = SweepRunner(
        policy=policy, checkpoint=args.checkpoint, resume=args.resume,
        store=args.store,
    )
    workloads = runner.settings.kernels if args.gpu else runner.settings.apps
    interrupted = False

    def _on_sigterm(_signum, _frame):
        raise _SweepTerminated()

    try:
        old_sigterm = signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:  # not the main thread (embedded callers)
        old_sigterm = None
    try:
        try:
            if args.gpu:
                results = runner.gpu_sweep(
                    args.configs, workers=args.workers, isolation=args.isolation
                )
            else:
                results = runner.cpu_sweep(
                    args.configs, workers=args.workers, isolation=args.isolation
                )
        except SweepError as exc:
            runner.save_checkpoint()
            print(f"sweep aborted (--fail-fast): {exc}", file=sys.stderr)
            return 1
        except _SweepTerminated:
            # SIGTERM = an orchestrator asking for an orderly stop: flush
            # the checkpoint and report "completed with gaps" (exit 3),
            # so `--checkpoint ... --resume` serves exactly the rest.
            runner.save_checkpoint()
            hint = (
                f"; rerun with --checkpoint {args.checkpoint} --resume "
                f"to continue"
                if args.checkpoint
                else ""
            )
            print(f"\nsweep terminated (SIGTERM){hint}", file=sys.stderr)
            return 3
        except KeyboardInterrupt:
            runner.save_checkpoint()
            interrupted = True
            results = {}
    finally:
        if old_sigterm is not None:
            signal.signal(signal.SIGTERM, old_sigterm)
    saved = runner.save_checkpoint()
    failures = list(runner.failures.values())
    if interrupted:
        hint = (
            f"; rerun with --checkpoint {args.checkpoint} --resume to continue"
            if args.checkpoint
            else ""
        )
        print(f"\nsweep interrupted{hint}", file=sys.stderr)
        return 130
    if args.json:
        cells = {
            config: {
                workload: (
                    None if run is None else {
                        "time_s": run.time_s,
                        "energy_j": run.energy_j,
                        "ed2": run.ed2,
                    }
                )
                for workload, run in row.items()
            }
            for config, row in results.items()
        }
        print(
            json.dumps(
                {
                    "kind": "gpu" if args.gpu else "cpu",
                    "configs": args.configs,
                    "workloads": workloads,
                    "cells": cells,
                    "failures": [f.to_dict() for f in failures],
                    "failure_table": failure_table(failures),
                    "telemetry": runner.telemetry.summary(),
                },
                indent=2,
            )
        )
    else:
        total = len(args.configs) * len(workloads)
        done = sum(
            1 for row in results.values() for run in row.values() if run is not None
        )
        print(_sweep_status_table(results, workloads))
        print(f"\n{done}/{total} cells ok, {len(failures)} failed")
        if failures:
            print(failure_table(failures))
        print(runner.telemetry.cache_summary())
        if args.checkpoint:
            print(f"checkpoint: {args.checkpoint} ({saved} entries)")
    return 3 if failures else 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.obs.top import run_top

    if args.interval <= 0:
        print("--interval must be positive", file=sys.stderr)
        return 2
    if args.fleet and args.health_file:
        print("--fleet and --health-file are mutually exclusive",
              file=sys.stderr)
        return 2
    if not args.fleet and not args.health_file:
        print("top requires --health-file PATH (or --fleet PATH)",
              file=sys.stderr)
        return 2
    run_top(
        args.fleet or args.health_file,
        interval_s=args.interval,
        iterations=1 if args.once else None,
        fleet=bool(args.fleet),
    )
    return 0


def _parse_hostport(value: str, default_port: int = 7077) -> "tuple[str, int]":
    host, sep, port = value.rpartition(":")
    if not sep:
        return value, default_port
    return host or "127.0.0.1", int(port)


def _cmd_fabric_coordinator(args: argparse.Namespace) -> int:
    import asyncio

    from repro.fabric import FabricConfig, FabricCoordinator

    known = GPU_CONFIGS if args.gpu else CPU_CONFIGS
    unknown = [n for n in args.configs if n not in known]
    if unknown:
        kind = "GPU" if args.gpu else "CPU"
        print(
            f"unknown {kind} configs: {unknown}; choose from {sorted(known)}",
            file=sys.stderr,
        )
        return 2
    if args.resume and not args.checkpoint:
        print("--resume requires --checkpoint PATH", file=sys.stderr)
        return 2
    host, port = _parse_hostport(args.listen)
    runner = SweepRunner(
        policy=GuardPolicy(
            timeout_s=args.timeout, max_retries=args.max_retries
        ),
        checkpoint=args.checkpoint,
        resume=args.resume,
        store=args.store,
    )
    run_kind = "gpu" if args.gpu else "cpu"
    workloads = runner.settings.kernels if args.gpu else runner.settings.apps
    cells = [
        (run_kind, config, workload)
        for config in args.configs
        for workload in workloads
    ]
    coordinator = FabricCoordinator(
        runner,
        cells,
        FabricConfig(
            host=host,
            port=port,
            heartbeat_s=args.heartbeat,
            heartbeat_timeout_s=args.heartbeat_timeout,
            task_timeout_s=args.task_timeout,
            min_nodes=args.nodes,
            join_timeout_s=args.join_timeout,
            rejoin_grace_s=args.grace,
            drain_deadline_s=args.drain_deadline,
            fleet_dir=args.fleet_dir,
        ),
    )

    def _on_signal(_signum, _frame):
        coordinator.request_shutdown()

    old_handlers = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            old_handlers.append((signum, signal.signal(signum, _on_signal)))
        except ValueError:  # not the main thread (embedded callers)
            pass
    async def _serve_with_status_front():
        # A status-only front door next to the fabric listener: no job
        # routes, just healthz/readyz/metrics and GET /v1/fleet from
        # the coordinator's live summary.
        from repro.serve.http import HttpConfig, HttpFrontDoor

        http_host, http_port = _parse_hostport(args.http, default_port=8080)

        def _status() -> dict:
            doc = dict(coordinator.summary())
            doc.setdefault("alive", True)
            doc.setdefault("ready", True)
            return doc

        front = HttpFrontDoor(
            None,
            HttpConfig(host=http_host, port=http_port),
            status_provider=_status,
            telemetry=runner.telemetry,
        )
        await front.start()
        print(f"fabric: http status on {front.url}",
              file=sys.stderr, flush=True)
        try:
            return await coordinator.serve()
        finally:
            front.request_shutdown()
            await front.drain()

    try:
        if args.http:
            fabric_summary = asyncio.run(_serve_with_status_front())
        else:
            fabric_summary = asyncio.run(coordinator.serve())
    finally:
        for signum, handler in old_handlers:
            signal.signal(signum, handler)

    # Assemble the report straight from the runner caches in
    # deterministic cell order -- the exact construction the serial
    # sweep uses, so the two are byte-identical.  (Never re-execute
    # here: a gap must stay a gap, not trigger a local retry.)
    cache = runner._cache_for(run_kind)
    results = {
        config: {w: cache.get((config, w)) for w in workloads}
        for config in args.configs
    }
    failures = list(runner.failures.values())
    if args.json:
        cells_doc = {
            config: {
                workload: (
                    None if run is None else {
                        "time_s": run.time_s,
                        "energy_j": run.energy_j,
                        "ed2": run.ed2,
                    }
                )
                for workload, run in row.items()
            }
            for config, row in results.items()
        }
        print(
            json.dumps(
                {
                    "kind": run_kind,
                    "configs": args.configs,
                    "workloads": workloads,
                    "cells": cells_doc,
                    "failures": [f.to_dict() for f in failures],
                    "failure_table": failure_table(failures),
                    "telemetry": runner.telemetry.summary(),
                    "fabric": fabric_summary,
                },
                indent=2,
            )
        )
    else:
        total = len(args.configs) * len(workloads)
        done = sum(
            1 for row in results.values() for run in row.values()
            if run is not None
        )
        print(_sweep_status_table(results, workloads))
        counters = fabric_summary["counters"]
        print(
            f"\n{done}/{total} cells ok, {len(failures)} failed | "
            f"{counters['nodes_joined']} node(s) joined, "
            f"{counters['nodes_dead']} died, "
            f"{counters['resubmitted']} resubmitted, "
            f"{counters['fenced']} fenced, "
            f"{counters['duplicates']} duplicates dropped"
        )
        if failures:
            print(failure_table(failures))
        print(runner.telemetry.cache_summary())
        if args.checkpoint:
            print(f"checkpoint: {args.checkpoint}")
    return 3 if failures else 0


def _cmd_fabric_node(args: argparse.Namespace) -> int:
    from repro.fabric import FabricNode, NodeConfig

    if args.resume and not args.checkpoint:
        print("--resume requires --checkpoint PATH", file=sys.stderr)
        return 2
    if args.workers > 1 and args.isolation == "thread":
        print(
            "--workers > 1 requires --isolation process "
            "(threads cannot parallelise CPU-bound sweeps)",
            file=sys.stderr,
        )
        return 2
    host, port = _parse_hostport(args.connect)
    node = FabricNode(NodeConfig(
        host=host,
        port=port,
        name=args.name,
        workers=args.workers,
        isolation=args.isolation,
        queue_capacity=args.queue_capacity,
        checkpoint=args.checkpoint,
        resume=args.resume,
        store=args.store,
        health_file=args.health_file,
    ))

    def _on_signal(_signum, _frame):
        node.request_shutdown()

    old_handlers = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            old_handlers.append((signum, signal.signal(signum, _on_signal)))
        except ValueError:
            pass
    try:
        summary = node.run()
    finally:
        for signum, handler in old_handlers:
            signal.signal(signum, handler)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        counters = summary["counters"]
        print(
            f"fabric node {summary['node']}: "
            f"{counters['assigned']} assigned, "
            f"{counters['results_sent']} results sent, "
            f"{counters['connects']} connect(s), "
            f"{counters['reconnects']} reconnect(s)"
        )
    return 0


def _cmd_fabric(args: argparse.Namespace) -> int:
    if args.fabric_command == "coordinator":
        return _cmd_fabric_coordinator(args)
    return _cmd_fabric_node(args)


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.store.cas import ResultStore

    store = ResultStore(args.root)
    if args.store_command == "fsck":
        report = store.fsck(quarantine=not args.no_quarantine)
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            print(
                f"store fsck: {report['checked']} checked, "
                f"{report['ok']} ok, {len(report['damaged'])} damaged, "
                f"{report['quarantined']} quarantined, "
                f"{report['orphans_swept']} orphan temps swept"
            )
            for item in report["damaged"]:
                print(f"  damaged [{item['reason']}] {item['path']}")
        # Damage found *this run* fails the check; quarantining (the
        # default) repairs the store, so an immediately rerun fsck is 0.
        return 1 if report["damaged"] else 0

    report = store.gc(
        max_bytes=args.max_bytes, keep_sim_version=args.keep_version
    )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(
            f"store gc: {report['removed_stale']} stale-version removed, "
            f"{report['removed_over_budget']} over-budget removed, "
            f"{report['remaining']} remaining ({report['bytes']} bytes)"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import BreakerPolicy, ServiceConfig, SimService
    from repro.serve.health import read_health

    if args.health:
        if not args.health_file:
            print("--health requires --health-file PATH", file=sys.stderr)
            return 2
        snapshot = read_health(args.health_file)
        if snapshot is None:
            print(
                f"no readable health snapshot at {args.health_file}",
                file=sys.stderr,
            )
            return 1
        if args.json:
            print(json.dumps(snapshot.to_dict(), indent=2, sort_keys=True))
        else:
            print(snapshot.describe())
        return 0

    if not args.jobs and not args.http:
        print("serve requires --jobs FILE (or --http HOST:PORT, or --health)",
              file=sys.stderr)
        return 2
    if args.resume and not args.checkpoint:
        print("--resume requires --checkpoint PATH", file=sys.stderr)
        return 2
    obs_requested = bool(args.obs_log or args.trace_out)
    obs_was_enabled = obs.enabled()
    if obs_requested:
        obs.set_enabled(True)
    policy = GuardPolicy(timeout_s=args.timeout, max_retries=args.max_retries)
    runner = SweepRunner(
        policy=policy, checkpoint=args.checkpoint, resume=args.resume,
        store=args.store,
    )
    config = ServiceConfig(
        capacity=args.queue_capacity,
        workers=args.workers,
        isolation=args.isolation,
        drain_deadline_s=args.drain_deadline,
        breaker=BreakerPolicy(
            failure_threshold=args.breaker_threshold,
            recovery_s=args.breaker_recovery,
            max_recovery_s=max(args.breaker_recovery * 10.0, args.breaker_recovery),
        ),
        health_file=args.health_file,
    )
    service = SimService(runner, config)

    front = None
    if args.http:
        from repro.serve.http import HttpConfig, HttpFrontDoor

        http_host, http_port = _parse_hostport(args.http, default_port=8080)
        front = HttpFrontDoor(service, HttpConfig(
            host=http_host,
            port=http_port,
            read_timeout_s=args.read_timeout,
            max_connections=args.max_connections,
            rate_per_s=args.rate_limit,
            rate_burst=args.rate_burst,
            drain_deadline_s=args.drain_deadline,
        ))

    def _on_signal(_signum, _frame):
        # With a front door the drain order matters: stop accepting
        # HTTP first; the service drains after the loop exits.
        if front is not None:
            front.request_shutdown()
        else:
            service.request_shutdown()

    old_handlers = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            old_handlers.append((signum, signal.signal(signum, _on_signal)))
        except ValueError:  # not the main thread (embedded callers)
            pass

    def _narrate(line: str, admission) -> None:
        if admission is None:
            print(f"serve: {line}", file=sys.stderr)
        elif not admission.admitted:
            print(
                f"serve: shed [{admission.reason}] {line}"
                + (f" ({admission.detail})" if admission.detail else ""),
                file=sys.stderr,
            )

    try:
        service.start()
        submitted = malformed = 0
        if front is None:
            if args.jobs:
                submitted, malformed = service.intake(
                    args.jobs, follow=args.follow, on_line=_narrate
                )
            if not args.follow:
                service.wait_idle()
        else:
            import asyncio
            import threading

            intake_done = {}
            intake_thread = None
            if args.jobs:
                def _intake() -> None:
                    try:
                        intake_done["result"] = service.intake(
                            args.jobs, follow=args.follow, on_line=_narrate
                        )
                    except Exception as exc:  # surfaced, never silent
                        print(f"serve: intake failed: {exc}",
                              file=sys.stderr)

                intake_thread = threading.Thread(
                    target=_intake, name="serve-intake", daemon=True
                )

            async def _serve_http() -> None:
                await front.start()
                print(f"serve: http listening on {front.url}",
                      file=sys.stderr, flush=True)
                if intake_thread is not None:
                    intake_thread.start()
                try:
                    await front.wait_shutdown()
                finally:
                    await front.drain()

            asyncio.run(_serve_http())
            service.request_shutdown()
            if intake_thread is not None:
                intake_thread.join(timeout=args.drain_deadline)
                submitted, malformed = intake_done.get("result", (0, 0))
        summary = service.shutdown()
    finally:
        for signum, handler in old_handlers:
            signal.signal(signum, handler)

    if obs_requested:
        from repro.obs.events import chrome_trace, get_event_log

        elog = get_event_log()
        if args.obs_log:
            count = elog.write_jsonl(args.obs_log)
            print(f"serve: wrote {count} events to {args.obs_log}",
                  file=sys.stderr)
        if args.trace_out:
            with open(args.trace_out, "w") as handle:
                json.dump(chrome_trace(elog.events()), handle)
            print(f"serve: wrote Chrome trace to {args.trace_out}",
                  file=sys.stderr)
        if not obs_was_enabled:
            obs.set_enabled(False)

    counters = summary["counters"]
    if args.json:
        summary["submitted_from_file"] = submitted
        summary["malformed_lines"] = malformed
        print(json.dumps(summary, indent=2))
    else:
        print(
            f"serve: {counters['submitted']} submitted, "
            f"{counters['served']} served, {counters['failed']} failed, "
            f"{counters['shed']} shed, {counters['cancelled']} cancelled"
            + (f", {malformed} malformed lines" if malformed else "")
            + (" [DEGRADED: thread isolation]" if summary["degraded"] else "")
        )
        shed_reasons = runner.telemetry.shed_counts()
        if shed_reasons:
            print(
                "shed reasons: "
                + ", ".join(f"{k}={v}" for k, v in sorted(shed_reasons.items()))
            )
        failures = list(runner.failures.values())
        if failures:
            print(failure_table(failures))
        print(runner.telemetry.cache_summary())
        if args.checkpoint:
            print(f"checkpoint: {args.checkpoint}")
    return 3 if service.gap_count() else 0


def _make_client(args: argparse.Namespace):
    from repro.serve.client import ClientConfig, ServeClient

    return ServeClient(args.url, ClientConfig(
        max_attempts=args.max_attempts,
        backoff_base_s=args.backoff,
        timeout_s=args.http_timeout,
        seed=args.seed,
    ))


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeError

    client = _make_client(args)
    specs = [
        {
            "run_kind": args.run_kind,
            "config": config,
            "workload": workload,
            "priority": args.priority,
            **({"deadline_s": args.deadline_s}
               if args.deadline_s is not None else {}),
        }
        for config in args.configs
        for workload in (args.workloads or ["lu"])
    ]
    responses = []
    exit_code = 0
    for spec in specs:
        cell = f"{spec['config']}/{spec['workload']}"
        try:
            body = client.submit(
                spec, idempotency_key=args.idempotency_key
            )
            if args.wait and body.get("status") not in (
                "served", "failed", "shed", "cancelled"
            ):
                body = client.wait(
                    body["job_id"], timeout_s=args.wait_timeout
                )
            responses.append({"cell": cell, **body})
            if body.get("status") in ("failed", "shed", "cancelled"):
                exit_code = 1
            if not args.json:
                note = " (deduplicated)" if body.get("deduplicated") else (
                    " (cache)" if body.get("served_from") == "cache" else ""
                )
                print(f"{cell}: {body.get('job_id')} "
                      f"{body.get('status')}{note}")
        except ServeError as exc:
            responses.append({"cell": cell, "error": str(exc)})
            exit_code = 1
            if not args.json:
                print(f"{cell}: ERROR {exc}", file=sys.stderr)
    if args.json:
        print(json.dumps(responses, indent=2, sort_keys=True))
    return exit_code


def _cmd_poll(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeError

    client = _make_client(args)
    records = []
    exit_code = 0
    for job_id in args.job_ids:
        try:
            record = (
                client.wait(job_id, timeout_s=args.wait_timeout)
                if args.wait else client.poll(job_id)
            )
        except ServeError as exc:
            records.append({"job_id": job_id, "error": str(exc)})
            exit_code = 1
            if not args.json:
                print(f"{job_id}: ERROR {exc}", file=sys.stderr)
            continue
        if record is None:
            records.append({"job_id": job_id, "error": "unknown_job"})
            exit_code = 1
            if not args.json:
                print(f"{job_id}: unknown job", file=sys.stderr)
            continue
        records.append(record)
        if record.get("status") in ("failed", "shed", "cancelled"):
            exit_code = 1
        if not args.json:
            detail = record.get("detail") or ""
            print(f"{job_id}: {record.get('status')}"
                  + (f" ({detail})" if detail else ""))
    if args.json:
        print(json.dumps(records, indent=2, sort_keys=True))
    return exit_code


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro import bench

    if args.tolerance < 0:
        print("--tolerance must be >= 0", file=sys.stderr)
        return 2
    report = bench.run_bench(
        instructions=args.instructions,
        warmup=min(args.instructions // 4, 5000),
        repeats=args.repeats,
    )
    if args.update_baseline:
        bench.save_baseline(report, args.baseline)
        if not args.json:
            print(f"baseline written: {args.baseline}")
    baseline = bench.load_baseline(args.baseline)
    problems = (
        bench.compare(report, baseline, tolerance=args.tolerance)
        if baseline is not None
        else bench.compare(report, {}, tolerance=args.tolerance)
    )
    if args.json:
        print(
            json.dumps(
                {
                    "report": report,
                    "baseline": args.baseline if baseline is not None else None,
                    "tolerance": args.tolerance,
                    "regressions": problems,
                },
                indent=2,
            )
        )
    else:
        print(bench.format_report(report, problems if baseline is not None else None))
        if baseline is None:
            print(
                f"no baseline at {args.baseline} (exactness still checked); "
                f"write one with --update-baseline"
            )
    return 1 if problems else 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show exhibits, configs, and workloads")

    p_exhibit = sub.add_parser("exhibit", help="regenerate paper exhibits")
    p_exhibit.add_argument("names", nargs="+", metavar="NAME")

    p_run = sub.add_parser("run", help="run one configuration on one workload")
    p_run.add_argument("config")
    p_run.add_argument("workload")
    p_run.add_argument(
        "--json", action="store_true", help="emit a machine-readable JSON record"
    )

    p_stats = sub.add_parser(
        "stats", help="run one pair and dump the structured counter tree"
    )
    p_stats.add_argument("config")
    p_stats.add_argument("workload")
    p_stats.add_argument(
        "--json", action="store_true", help="emit the counter tree as JSON"
    )
    p_stats.add_argument(
        "--prom", action="store_true",
        help="emit the metrics registry in Prometheus text format instead",
    )

    p_trace = sub.add_parser(
        "trace", help="run one pair and write a Chrome trace-event file"
    )
    p_trace.add_argument("config")
    p_trace.add_argument("workload")
    p_trace.add_argument("--out", required=True, metavar="FILE")
    p_trace.add_argument(
        "--capacity",
        type=int,
        default=65536,
        help="ring-buffer size (oldest events drop beyond this)",
    )

    p_sweep = sub.add_parser(
        "sweep",
        help="run a resilient (config x workload) sweep with recorded gaps",
    )
    p_sweep.add_argument("configs", nargs="+", metavar="CONFIG")
    p_sweep.add_argument(
        "--gpu", action="store_true", help="sweep GPU configs over kernels"
    )
    p_sweep.add_argument(
        "--checkpoint", metavar="PATH",
        help="persist result caches here after every executed run",
    )
    p_sweep.add_argument(
        "--resume", action="store_true",
        help="preload a matching checkpoint; only missing cells execute",
    )
    p_sweep.add_argument(
        "--store", metavar="DIR", default=None,
        help="durable content-addressed result store: cache misses read "
        "through it, executed cells write back (default $REPRO_STORE)",
    )
    p_sweep.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="wall-clock budget per run attempt (seconds)",
    )
    p_sweep.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="retries per cell with exponential backoff (default 2)",
    )
    p_sweep.add_argument(
        "--fail-fast", action="store_true",
        help="abort the sweep on the first failed cell",
    )
    p_sweep.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="parallel worker processes (N > 1 implies --isolation process)",
    )
    p_sweep.add_argument(
        "--isolation", choices=("thread", "process"), default=None,
        help="run attempts in-process under the thread guard (default for "
        "--workers 1) or in SIGKILL-supervised worker processes",
    )
    p_sweep.add_argument(
        "--json", action="store_true",
        help="emit cells, failures, and telemetry as JSON",
    )

    p_serve = sub.add_parser(
        "serve",
        help="run the admission-controlled simulation job service",
    )
    p_serve.add_argument(
        "--jobs", metavar="FILE",
        help="JSONL job file (one job spec per line)",
    )
    p_serve.add_argument(
        "--follow", action="store_true",
        help="tail the job file for new jobs until SIGTERM/SIGINT",
    )
    p_serve.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="concurrent dispatcher slots (default 1)",
    )
    p_serve.add_argument(
        "--isolation", choices=("thread", "process"), default="thread",
        help="execute jobs in-process (thread) or in SIGKILL-supervised "
        "worker processes (process); spawn failures degrade to thread",
    )
    p_serve.add_argument(
        "--queue-capacity", type=int, default=64, metavar="N",
        help="bounded queue size; admissions beyond it shed queue_full",
    )
    p_serve.add_argument(
        "--breaker-threshold", type=int, default=3, metavar="N",
        help="consecutive crash/timeout failures of one (run_kind, "
        "config) that open its circuit breaker (default 3)",
    )
    p_serve.add_argument(
        "--breaker-recovery", type=float, default=30.0, metavar="S",
        help="seconds an open breaker waits before a half-open probe "
        "(default 30; escalates exponentially under repeated trips)",
    )
    p_serve.add_argument(
        "--drain-deadline", type=float, default=10.0, metavar="S",
        help="graceful-shutdown budget for in-flight jobs (default 10)",
    )
    p_serve.add_argument(
        "--checkpoint", metavar="PATH",
        help="persist result caches here after every served job",
    )
    p_serve.add_argument(
        "--resume", action="store_true",
        help="preload a matching checkpoint; cached cells serve instantly",
    )
    p_serve.add_argument(
        "--store", metavar="DIR", default=None,
        help="durable content-addressed result store: cache misses read "
        "through it, executed cells write back (default $REPRO_STORE)",
    )
    p_serve.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="wall-clock budget per run attempt (seconds)",
    )
    p_serve.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="retries per job with exponential backoff (default 2)",
    )
    p_serve.add_argument(
        "--health-file", metavar="PATH",
        help="write liveness/readiness snapshots here (read by --health)",
    )
    p_serve.add_argument(
        "--health", action="store_true",
        help="dump the latest health snapshot from --health-file and exit",
    )
    p_serve.add_argument(
        "--json", action="store_true",
        help="emit the final job records, counters, and telemetry as JSON",
    )
    p_serve.add_argument(
        "--obs-log", metavar="FILE",
        help="enable observability and write the merged structured event "
        "log (coordinator + workers) as JSONL at shutdown",
    )
    p_serve.add_argument(
        "--trace-out", metavar="FILE",
        help="enable observability and write the merged spans as a Chrome "
        "trace-event file at shutdown",
    )
    p_serve.add_argument(
        "--http", metavar="HOST:PORT",
        help="run the overload-hardened HTTP front door (POST /v1/jobs, "
        "poll/cancel, healthz/readyz/metrics); port 0 binds ephemeral",
    )
    p_serve.add_argument(
        "--rate-limit", type=float, default=0.0, metavar="N",
        help="per-client HTTP token-bucket rate (requests/second); "
        "0 disables (default)",
    )
    p_serve.add_argument(
        "--rate-burst", type=float, default=20.0, metavar="N",
        help="per-client HTTP burst allowance (default 20 requests)",
    )
    p_serve.add_argument(
        "--max-connections", type=int, default=64, metavar="N",
        help="concurrent HTTP connection ceiling; beyond it new "
        "connections get an immediate 503 (default 64)",
    )
    p_serve.add_argument(
        "--read-timeout", type=float, default=5.0, metavar="S",
        help="HTTP header/body read deadline against slow-loris clients "
        "(default 5)",
    )

    def _add_client_options(p) -> None:
        p.add_argument(
            "--url", required=True, metavar="URL",
            help="front-door endpoint, e.g. http://127.0.0.1:8080",
        )
        p.add_argument(
            "--max-attempts", type=int, default=6, metavar="N",
            help="attempts per request before giving up (default 6)",
        )
        p.add_argument(
            "--backoff", type=float, default=0.25, metavar="S",
            help="base retry backoff; doubles per attempt with "
            "deterministic jitter, Retry-After overrides (default 0.25)",
        )
        p.add_argument(
            "--http-timeout", type=float, default=10.0, metavar="S",
            help="per-request socket timeout (default 10)",
        )
        p.add_argument(
            "--seed", type=int, default=0, metavar="N",
            help="seed for the deterministic backoff jitter (default 0)",
        )
        p.add_argument(
            "--wait-timeout", type=float, default=300.0, metavar="S",
            help="--wait budget per job before giving up (default 300)",
        )
        p.add_argument(
            "--json", action="store_true",
            help="emit the structured responses as JSON",
        )

    p_submit = sub.add_parser(
        "submit",
        help="submit jobs to a running HTTP front door (idempotent retries)",
    )
    p_submit.add_argument(
        "configs", nargs="+", metavar="CONFIG",
        help="configuration names to submit",
    )
    p_submit.add_argument(
        "--workload", dest="workloads", action="append", metavar="NAME",
        help="workload(s) per config (repeatable; default lu)",
    )
    p_submit.add_argument(
        "--run-kind", choices=("cpu", "gpu", "dvfs"), default="cpu",
        help="simulation kind (default cpu)",
    )
    p_submit.add_argument(
        "--priority", type=int, default=10, metavar="N",
        help="queue priority, lower is more urgent (default 10)",
    )
    p_submit.add_argument(
        "--deadline-s", type=float, default=None, metavar="S",
        help="latest useful start; expired jobs shed past_deadline",
    )
    p_submit.add_argument(
        "--idempotency-key", metavar="KEY",
        help="explicit idempotency key (default: content-addressed "
        "from each spec)",
    )
    p_submit.add_argument(
        "--wait", action="store_true",
        help="poll each accepted job until it reaches a terminal state",
    )
    _add_client_options(p_submit)

    p_poll = sub.add_parser(
        "poll",
        help="poll job records on a running HTTP front door",
    )
    p_poll.add_argument(
        "job_ids", nargs="+", metavar="JOB_ID",
        help="job id(s) returned by submit",
    )
    p_poll.add_argument(
        "--wait", action="store_true",
        help="block until each job reaches a terminal state",
    )
    _add_client_options(p_poll)

    p_top = sub.add_parser(
        "top",
        help="live dashboard tailing a service's health + metrics snapshots",
    )
    p_top.add_argument(
        "--health-file", metavar="PATH",
        help="the running service's --health-file path",
    )
    p_top.add_argument(
        "--fleet", metavar="PATH",
        help="render a fabric fleet rollup from <fleet-dir>/fleet.json "
        "instead of a single service's health file",
    )
    p_top.add_argument(
        "--interval", type=float, default=1.0, metavar="S",
        help="refresh interval in seconds (default 1.0)",
    )
    p_top.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit (for scripts and tests)",
    )

    p_fabric = sub.add_parser(
        "fabric",
        help="distributed sweep tier: one coordinator, N worker nodes",
    )
    fabric_sub = p_fabric.add_subparsers(
        dest="fabric_command", required=True
    )
    p_coord = fabric_sub.add_parser(
        "coordinator",
        help="own a sweep's cell list; hash cells onto connected nodes, "
        "resubmit in-flight cells of dead nodes exactly once",
    )
    p_coord.add_argument(
        "configs", nargs="+", metavar="CONFIG",
        help="CPU (or, with --gpu, GPU) configurations to sweep",
    )
    p_coord.add_argument(
        "--gpu", action="store_true",
        help="sweep GPU configurations over kernels instead of CPU/apps",
    )
    p_coord.add_argument(
        "--listen", default="127.0.0.1:0", metavar="HOST:PORT",
        help="bind address (default 127.0.0.1:0 = ephemeral port, "
        "printed to stderr at startup)",
    )
    p_coord.add_argument(
        "--nodes", type=int, default=1, metavar="N",
        help="wait for N nodes to join before distributing (default 1)",
    )
    p_coord.add_argument(
        "--checkpoint", metavar="PATH",
        help="persist the authoritative result caches here",
    )
    p_coord.add_argument(
        "--resume", action="store_true",
        help="preload a matching checkpoint; cached cells never leave "
        "the coordinator",
    )
    p_coord.add_argument(
        "--store", metavar="DIR", default=None,
        help="durable content-addressed result store: stored cells never "
        "leave the coordinator either (default $REPRO_STORE)",
    )
    p_coord.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="wall-clock budget per run attempt on each node (seconds)",
    )
    p_coord.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="node-local retries per cell (default 2)",
    )
    p_coord.add_argument(
        "--heartbeat", type=float, default=0.5, metavar="S",
        help="node heartbeat interval (default 0.5)",
    )
    p_coord.add_argument(
        "--heartbeat-timeout", type=float, default=3.0, metavar="S",
        help="heartbeat silence that declares a node dead (default 3)",
    )
    p_coord.add_argument(
        "--task-timeout", type=float, default=120.0, metavar="S",
        help="per-assignment budget before resubmission (default 120)",
    )
    p_coord.add_argument(
        "--join-timeout", type=float, default=60.0, metavar="S",
        help="how long to wait for the first --nodes joins (default 60)",
    )
    p_coord.add_argument(
        "--grace", type=float, default=10.0, metavar="S",
        help="after all nodes die, how long to wait for a rejoin before "
        "shedding the remaining cells (default 10)",
    )
    p_coord.add_argument(
        "--drain-deadline", type=float, default=10.0, metavar="S",
        help="SIGTERM drain budget for the whole fleet (default 10)",
    )
    p_coord.add_argument(
        "--fleet-dir", metavar="DIR",
        help="publish per-node health + the fleet rollup here "
        "(read by `repro top --fleet DIR/fleet.json`)",
    )
    p_coord.add_argument(
        "--json", action="store_true",
        help="emit the sweep report (sweep --json shape) plus a "
        "'fabric' summary as JSON",
    )
    p_coord.add_argument(
        "--http", metavar="HOST:PORT",
        help="also serve a status-only HTTP front (healthz/readyz/"
        "metrics plus GET /v1/fleet from the live coordinator summary)",
    )
    p_node = fabric_sub.add_parser(
        "node",
        help="run one worker node backed by the simulation job service",
    )
    p_node.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="coordinator address",
    )
    p_node.add_argument(
        "--name", default=None, metavar="NAME",
        help="stable node identity (default node-<pid>); reconnects "
        "under the same name supersede the old session",
    )
    p_node.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="concurrent dispatcher slots (default 1)",
    )
    p_node.add_argument(
        "--isolation", choices=("thread", "process"), default="thread",
        help="execute cells in-process (thread) or in SIGKILL-supervised "
        "worker processes (process)",
    )
    p_node.add_argument(
        "--queue-capacity", type=int, default=256, metavar="N",
        help="bounded local queue; overflow assignments shed back to "
        "the coordinator (default 256)",
    )
    p_node.add_argument(
        "--checkpoint", metavar="PATH",
        help="persist this node's result caches here",
    )
    p_node.add_argument(
        "--resume", action="store_true",
        help="preload a matching checkpoint on startup",
    )
    p_node.add_argument(
        "--store", metavar="DIR", default=None,
        help="durable content-addressed result store shared with the "
        "fleet (default $REPRO_STORE)",
    )
    p_node.add_argument(
        "--health-file", metavar="PATH",
        help="also write this node's health snapshots locally",
    )
    p_node.add_argument(
        "--json", action="store_true",
        help="emit the node's counters as JSON on exit",
    )

    p_store = sub.add_parser(
        "store",
        help="inspect and maintain a durable content-addressed result store",
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)
    p_fsck = store_sub.add_parser(
        "fsck",
        help="verify every entry's checksum, schema, and address; "
        "quarantine damage (exit 1 when damage was found this run)",
    )
    p_fsck.add_argument("root", metavar="DIR", help="store root directory")
    p_fsck.add_argument(
        "--no-quarantine", action="store_true",
        help="report damaged entries but leave them in place",
    )
    p_fsck.add_argument(
        "--json", action="store_true",
        help="emit the fsck report as JSON",
    )
    p_gc = store_sub.add_parser(
        "gc",
        help="drop entries from stale simulator versions and enforce a "
        "size budget (oldest entries first)",
    )
    p_gc.add_argument("root", metavar="DIR", help="store root directory")
    p_gc.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        help="total size budget; oldest entries removed until under it",
    )
    p_gc.add_argument(
        "--keep-version", default=None, metavar="V",
        help="simulator version to keep (default: the current one)",
    )
    p_gc.add_argument(
        "--json", action="store_true",
        help="emit the gc report as JSON",
    )

    p_bench = sub.add_parser(
        "bench",
        help="run the cycle-engine perf microbenchmarks against the baseline",
    )
    p_bench.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="baseline report to gate against "
        "(default benchmarks/perf/BENCH_cycle_engine.json)",
    )
    p_bench.add_argument(
        "--tolerance", type=float, default=0.25, metavar="T",
        help="allowed one-sided ratio shortfall vs baseline (default 0.25)",
    )
    p_bench.add_argument(
        "--update-baseline", action="store_true",
        help="write this run's report as the new baseline",
    )
    p_bench.add_argument(
        "--instructions", type=int, default=30000, metavar="N",
        help="per-cell trace length (default 30000)",
    )
    p_bench.add_argument(
        "--repeats", type=int, default=2, metavar="N",
        help="timing repeats per cell, best-of (default 2)",
    )
    p_bench.add_argument(
        "--json", action="store_true",
        help="emit the report, baseline path, and regressions as JSON",
    )

    args = parser.parse_args(argv)
    if args.command == "bench" and args.baseline is None:
        from repro.bench import DEFAULT_BASELINE

        args.baseline = DEFAULT_BASELINE
    handlers = {
        "list": _cmd_list,
        "exhibit": _cmd_exhibit,
        "run": _cmd_run,
        "stats": _cmd_stats,
        "trace": _cmd_trace,
        "sweep": _cmd_sweep,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "poll": _cmd_poll,
        "top": _cmd_top,
        "fabric": _cmd_fabric,
        "store": _cmd_store,
        "bench": _cmd_bench,
    }
    return handlers[args.command](args)
