"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show available exhibits, CPU/GPU configurations, apps, and kernels.
``exhibit NAME [NAME...]``
    Regenerate paper exhibits (e.g. ``table1``, ``figure7``) and print
    their tables plus paper-vs-measured comparisons.
``run CONFIG WORKLOAD``
    Run one configuration on one workload (CPU app or GPU kernel) and
    print the measurement.

Sweep sizing obeys ``REPRO_INSTRUCTIONS`` / ``REPRO_APPS`` /
``REPRO_KERNELS``, as everywhere else.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.configs import CPU_CONFIGS, GPU_CONFIGS, cpu_config, gpu_config
from repro.core.simulate import simulate_cpu, simulate_gpu
from repro.experiments.figures import ALL_EXHIBITS
from repro.experiments.report import paper_vs_measured
from repro.experiments.runner import SweepRunner
from repro.workloads import CPU_APPS, GPU_KERNELS

#: Exhibits that consume the shared sweep runner.
_SWEEP_EXHIBITS = {
    "figure7", "figure8", "figure9", "figure10", "figure11",
    "figure12", "figure13", "figure14",
}


def _cmd_list(_args: argparse.Namespace) -> int:
    print("exhibits:   ", " ".join(ALL_EXHIBITS))
    print("cpu configs:", " ".join(CPU_CONFIGS))
    print("gpu configs:", " ".join(GPU_CONFIGS))
    print("cpu apps:   ", " ".join(CPU_APPS))
    print("gpu kernels:", " ".join(GPU_KERNELS))
    return 0


def _cmd_exhibit(args: argparse.Namespace) -> int:
    unknown = [n for n in args.names if n not in ALL_EXHIBITS]
    if unknown:
        print(f"unknown exhibits: {unknown}", file=sys.stderr)
        return 2
    runner = SweepRunner()
    for name in args.names:
        fn = ALL_EXHIBITS[name]
        result = fn(runner) if name in _SWEEP_EXHIBITS else fn()
        print(f"\n== {result.exhibit}: {result.title} ==")
        print(result.table)
        print("\npaper vs measured (means):")
        print(paper_vs_measured(result))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.config in CPU_CONFIGS and args.workload in CPU_APPS:
        run = simulate_cpu(cpu_config(args.config), args.workload)
        core = run.core
        print(f"{args.config} on {args.workload} (CPU):")
        print(f"  time    {run.time_s * 1e6:.2f} us   energy {run.energy_j * 1e3:.3f} mJ")
        print(f"  ED      {run.ed:.3e}   ED^2  {run.ed2:.3e}")
        print(
            f"  ipc {core.ipc:.2f}  bpred-miss {core.branch_mispredict_rate:.3f}  "
            f"dl1-hit {core.dl1_hit_rate:.3f}  fast-way {core.dl1_fast_hit_rate:.3f}"
        )
        return 0
    if args.config in GPU_CONFIGS and args.workload in GPU_KERNELS:
        run = simulate_gpu(gpu_config(args.config), args.workload)
        cu = run.gpu.cu_result
        print(f"{args.config} on {args.workload} (GPU):")
        print(f"  time    {run.time_s * 1e6:.2f} us   energy {run.energy_j * 1e3:.3f} mJ")
        print(f"  ED      {run.ed:.3e}   ED^2  {run.ed2:.3e}")
        print(f"  cu-ipc {cu.ipc:.2f}  rf-cache-hit {cu.rf_cache_hit_rate:.2f}")
        return 0
    print(
        f"no matching (config, workload) pair for "
        f"({args.config!r}, {args.workload!r}); see `python -m repro list`",
        file=sys.stderr,
    )
    return 2


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show exhibits, configs, and workloads")

    p_exhibit = sub.add_parser("exhibit", help="regenerate paper exhibits")
    p_exhibit.add_argument("names", nargs="+", metavar="NAME")

    p_run = sub.add_parser("run", help="run one configuration on one workload")
    p_run.add_argument("config")
    p_run.add_argument("workload")

    args = parser.parse_args(argv)
    handlers = {"list": _cmd_list, "exhibit": _cmd_exhibit, "run": _cmd_run}
    return handlers[args.command](args)
