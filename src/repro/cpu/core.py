"""The cycle-level out-of-order core engine.

Per cycle the engine performs, in order: commit (up to commit width, in
program order, completed entries only), issue (oldest-first scan of the
issue queue; an op issues when its sources are ready and a functional unit
port is free), dispatch (frontend queue into ROB/IQ/LSQ, resources
permitting, with dual-speed ALU steering decided here), and fetch (IL1
access per line, branch prediction, BTB, RAS, and misprediction redirect
stalls).  Loads access the memory hierarchy at issue and complete after the
level-appropriate round trip; mispredicted branches block fetch until they
resolve plus a redirect penalty.

The design goal is that every effect HetCore's evaluation depends on is
mechanistic here:

* TFET ALUs (2-cycle) break back-to-back dependent issue -- visible as a
  dependent chain's ops issuing every other cycle;
* TFET FPU pipelines are longer but still single-cycle issue, so FP-dense
  code with ILP keeps them full while latency-bound chains suffer;
* the TFET DL1 (4-cycle) stretches every load-use chain, while the
  asymmetric DL1 serves MRU-resident lines in 1 cycle;
* a bigger ROB/FP-RF admits more in-flight FP ops to cover the deeper
  pipelines;
* branch mispredictions hurt more when the resolving ALU is slower.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from dataclasses import dataclass, field
from functools import partial
from heapq import heappop, heappush

from repro import obs
from repro.obs import batch_disabled, cycle_skip_disabled
from repro.cpu.branch import BranchTargetBuffer, ReturnAddressStack, TournamentPredictor
from repro.cpu.resources import CoreResources, ResourceConfig
from repro.cpu.soa import decode_trace, decode_trace_uncached
from repro.cpu.steering import DualSpeedSteering
from repro.cpu.trace import Trace
from repro.cpu.units import FunctionalUnitPool
from repro.cpu.uops import N_UOP_TYPES, UopType
from repro.mem.hierarchy import MemoryHierarchy
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import (
    STAGE_COMMIT,
    STAGE_FETCH,
    STAGE_ISSUE,
    STAGE_MEM,
    STAGE_STALL,
    STAGE_STEER,
    PipelineTracer,
)

_INF = 1 << 60

_LOAD = int(UopType.LOAD)
_STORE = int(UopType.STORE)
_BRANCH = int(UopType.BRANCH)
_CALL = int(UopType.CALL)
_RET = int(UopType.RET)
_IALU = int(UopType.IALU)
_IMUL = int(UopType.IMUL)
_IDIV = int(UopType.IDIV)
_FADD = int(UopType.FADD)
_FMUL = int(UopType.FMUL)
_FDIV = int(UopType.FDIV)
_NOP = int(UopType.NOP)

#: Trace-event name per op (tracing-only lookup, off the default path).
_TRACE_NAMES = {int(t): t.name.lower() for t in UopType}

#: Stall-bucket code (see ``_run_fast``) -> tracer reason string.
_STALL_REASONS = ("idle", "frontend", "dep", "mem", "structural")

_ALU_CLASS = frozenset({_IALU, _BRANCH, _CALL, _RET, _NOP})
_MULDIV_CLASS = frozenset({_IMUL, _IDIV})
_FP_CLASS = frozenset({_FADD, _FMUL, _FDIV})
_MEM_CLASS = frozenset({_LOAD, _STORE})
_INT_WRITERS = frozenset({_IALU, _IMUL, _IDIV, _LOAD})
_FP_WRITERS = frozenset({_FADD, _FMUL, _FDIV})


def _class_table(members: frozenset) -> tuple[bool, ...]:
    """Dense bool table indexed by UopType value (hot-loop class tests)."""
    return tuple(v in members for v in range(N_UOP_TYPES))


_IS_ALU = _class_table(_ALU_CLASS)
_IS_FP = _class_table(_FP_CLASS)
_IS_MEM = _class_table(_MEM_CLASS)
_IS_INT_WRITER = _class_table(_INT_WRITERS)
_IS_FP_WRITER = _class_table(_FP_WRITERS)


def _zero() -> int:
    return 0


@dataclass
class CoreConfig:
    """Static core parameters (Table III defaults)."""

    freq_ghz: float = 2.0
    fetch_width: int = 4
    dispatch_width: int = 4
    issue_width: int = 4
    commit_width: int = 4
    #: Frontend refill after a mispredicted branch resolves.
    redirect_penalty: int = 10
    #: Bubble when a taken branch misses the BTB.
    btb_miss_penalty: int = 2
    #: Decoded-uop buffer between fetch and dispatch.
    fetch_buffer: int = 16
    resources: ResourceConfig = field(default_factory=ResourceConfig)
    steering_enabled: bool = False
    max_cycles: int = 1 << 40


@dataclass
class ActivityCounts:
    """Per-unit activity over the measured window (feeds the power model)."""

    fetched: int = 0
    dispatched: int = 0
    issued: int = 0
    committed: int = 0
    int_reg_reads: int = 0
    int_reg_writes: int = 0
    fp_reg_reads: int = 0
    fp_reg_writes: int = 0
    bpred_lookups: int = 0
    alu_fast_ops: int = 0
    alu_slow_ops: int = 0
    muldiv_ops: int = 0
    fpu_ops: int = 0
    lsu_ops: int = 0
    loads: int = 0
    stores: int = 0
    il1_accesses: int = 0
    dl1_accesses: int = 0
    dl1_fast_hits: int = 0
    dl1_slow_accesses: int = 0
    dl1_line_moves: int = 0
    l2_accesses: int = 0
    l3_accesses: int = 0
    dram_accesses: int = 0
    #: Stall breakdown: cycles in which no op issued, by first cause.
    stall_frontend_cycles: int = 0
    stall_dep_cycles: int = 0
    stall_mem_cycles: int = 0
    stall_structural_cycles: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)

    def stall_breakdown(self, cycles: int) -> dict[str, float]:
        """Stall-cycle fractions of ``cycles`` (plus the busy remainder)."""
        if cycles <= 0:
            return {k: 0.0 for k in
                    ("frontend", "dep", "mem", "structural", "busy")}
        stalls = {
            "frontend": self.stall_frontend_cycles / cycles,
            "dep": self.stall_dep_cycles / cycles,
            "mem": self.stall_mem_cycles / cycles,
            "structural": self.stall_structural_cycles / cycles,
        }
        stalls["busy"] = max(0.0, 1.0 - sum(stalls.values()))
        return stalls


@dataclass
class CoreResult:
    """Outcome of one measured simulation window."""

    cycles: int
    committed: int
    freq_ghz: float
    activity: ActivityCounts
    branch_mispredict_rate: float
    dl1_hit_rate: float
    dl1_fast_hit_rate: float
    l2_hit_rate: float
    l3_hit_rate: float
    rob_peak: int
    iq_peak: int
    alu_fast_fraction: float
    #: Entries left in the ROB / issue queue / LSQ / rename register files
    #: when the run finished.  A correct run always drains to 0; anything
    #: else is caught by the end-of-run self-check
    #: (:mod:`repro.resilience.selfcheck`) as a corrupt result.
    undrained: int = 0

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def time_s(self) -> float:
        return self.cycles / (self.freq_ghz * 1e9)


class OutOfOrderCore:
    """One out-of-order core bound to a memory hierarchy and unit pool."""

    def __init__(
        self,
        config: CoreConfig,
        hierarchy: MemoryHierarchy,
        units: FunctionalUnitPool,
        name: str = "cpu.core0",
        tracer: "PipelineTracer | None" = None,
    ):
        self.config = config
        self.hierarchy = hierarchy
        self.units = units
        self.name = name
        self.tracer = tracer
        self.predictor = TournamentPredictor()
        self.btb = BranchTargetBuffer()
        self.ras = ReturnAddressStack()
        self.resources = CoreResources(config.resources)
        #: Per-run metrics registry (rebuilt by :meth:`run`).
        self.metrics: "MetricsRegistry | None" = None
        #: Idle cycles the event-driven fast path jumped over in the last
        #: run (and how many distinct jumps) -- observability only, never
        #: part of :class:`CoreResult`.
        self.skipped_cycles = 0
        self.skip_events = 0

    def _build_metrics(
        self, act: ActivityCounts, steering: "DualSpeedSteering | None"
    ) -> MetricsRegistry:
        """A probe-only registry over every counter this core touches.

        Probes read the live objects lazily, so registration costs nothing
        on the per-cycle path; ``snapshot()``/``delta()`` at the warm-up
        boundary replace the old hand-rolled snapshot dict.
        """
        reg = MetricsRegistry(self.name, enabled=True)
        for fname in act.as_dict():
            reg.probe(f"activity.{fname}", partial(getattr, act, fname))
        h = self.hierarchy
        h.il1.publish(reg, "il1")
        h.l2.publish(reg, "l2")
        h.l3.publish(reg, "l3")
        h.dl1.publish(reg, "dl1")
        reg.probe("dram.accesses", lambda: h.dram_accesses)
        predictor = self.predictor
        reg.probe("bpred.lookups", lambda: predictor.lookups)
        reg.probe("bpred.mispredictions", lambda: predictor.mispredictions)
        units = self.units
        reg.probe("alu.fast_ops", lambda: units.alu_fast_ops)
        reg.probe("alu.slow_ops", lambda: units.alu_slow_ops)
        reg.probe("muldiv.ops", lambda: units.muldiv_ops)
        reg.probe("fpu.ops", lambda: units.fpu_ops)
        reg.probe("lsu.ops", lambda: units.lsu_ops)
        if steering is not None:
            steering.publish(reg, "steer")
        else:
            # Steering disabled: the counters would read 0 anyway; constant
            # probes keep the metric namespace stable across configs.
            reg.probe("steer.examined", _zero)
            reg.probe("steer.fast_alu_dispatches", _zero)
            reg.probe("steer.slow_alu_dispatches", _zero)
        reg.probe("engine.skipped_cycles", partial(getattr, self, "skipped_cycles"))
        reg.probe("engine.skip_events", partial(getattr, self, "skip_events"))
        return reg

    def run(self, trace: Trace, warmup: int = 0) -> CoreResult:
        """Execute ``trace`` and return statistics for the post-warmup part.

        ``warmup`` commits are executed first to warm caches and predictor
        state; every counter is then snapshotted and the reported result
        covers only the remaining instructions.

        Two loop bodies implement identical semantics (held together by
        the seed-pinned equivalence suite): the event-driven fast path and
        the per-cycle walk.  Tracer-attached runs take the fast path too
        -- skipped idle stretches surface as synthetic ``skip`` events
        carrying the jumped cycle count and stall reason, so the trace
        stays a faithful (if compressed) account of the same cycles.
        Only the ``REPRO_NO_CYCLE_SKIP`` hatch pins the seed engine.
        """
        if warmup >= len(trace):
            raise ValueError("warmup must be smaller than the trace")
        if not cycle_skip_disabled():
            return self._run_fast(trace, warmup)
        return self._run_legacy(trace, warmup)

    def _run_fast(self, trace: Trace, warmup: int) -> CoreResult:
        """Event-driven fast path: wakeup events instead of per-cycle scans.

        Three structural changes over :meth:`_run_legacy`, none visible in
        the results (DESIGN.md "Cycle-skip invariants" has the proofs):

        * blocked issue-queue entries park on a completion-time heap (or on
          a per-producer waiter list while their producer has not itself
          issued) and are re-examined only when the blocking event arrives,
          instead of being rescanned every cycle;
        * after a scan in which nothing issued, the issue stage sleeps
          until the earliest parked wake or functional-unit release,
          replaying the cached stall classification;
        * a cycle in which commit, issue, dispatch, and fetch all made zero
          progress jumps straight to the next wakeup event, charging the
          jumped cycles to the same stall bucket.

        An attached :class:`PipelineTracer` observes this path directly:
        per-event sites match the legacy walk's, and each idle-cycle jump
        adds one synthetic ``skip`` event (``dur`` = cycles jumped, with
        the replayed stall reason) in place of that many per-cycle stall
        events.  Results remain cycle-exact either way -- the equivalence
        suite diffs trace-on fast runs against the pinned seed engine.
        """
        n = len(trace)
        cfg = self.config
        # Tracing is opt-in per run; a None local keeps the guard to a
        # single truth test per event site (zero-overhead-when-off).
        tracer = self.tracer
        # The SoA decode (hot trace fields unboxed to plain lists, plus
        # precomputed producer indices and fetch-line flags) is memoised
        # on the trace and shared by every run/config/core touching it;
        # the REPRO_NO_BATCH hatch pins PR 5's per-run rebuild instead.
        soa = (
            decode_trace_uncached(trace)
            if batch_disabled()
            else decode_trace(trace)
        )
        op_l = soa.op
        prod1_l = soa.prod1
        prod2_l = soa.prod2
        addr_l = soa.addr
        pc_l = soa.pc
        taken_l = soa.taken
        new_line_l = soa.new_line

        steer_on = cfg.steering_enabled
        steering = (
            DualSpeedSteering(trace, window=cfg.issue_width, enabled=True)
            if steer_on
            else None
        )

        act = ActivityCounts()
        self.skipped_cycles = 0
        self.skip_events = 0
        metrics = self._build_metrics(act, steering)
        self.metrics = metrics
        if obs.enabled():
            get_registry().mount(self.name, metrics)

        ready = [_INF] * n  # completion cycle per trace entry
        rob: deque[int] = deque()
        prefer_fast = [False] * n if steer_on else ()

        # Issue-queue wakeup structures.  ``eligible`` (age-sorted) holds
        # entries not known to be source-blocked; ``parked`` is a min-heap
        # of (wake cycle, idx) for entries whose blocking producer has a
        # known completion time; ``waiters`` maps a not-yet-issued producer
        # to the entries blocked on it (they move to ``parked`` the moment
        # it issues).  ``iq_order`` preserves dispatch order for the stall
        # classifier and is compacted lazily against ``left_iq``.
        eligible: list[int] = []
        parked: list[tuple[int, int]] = []
        waiters: dict[int, list[int]] = {}
        iq_order: deque[int] = deque()
        left_iq = bytearray(n)
        iq_len = 0

        fetch_q: deque[int] = deque()  # decoded uops awaiting dispatch
        next_fetch = 0
        fetch_blocked_until = 0
        pending_redirect = -1  # trace idx of an unresolved mispredicted branch
        #: Last trace index whose IL1 line access already happened --
        #: fetch is strictly in-order, so the precomputed ``new_line``
        #: flag plus this revisit guard (an IL1 miss breaks *after* the
        #: access) replaces the per-uop line comparison.
        line_done = -1

        cycle = 0
        committed = 0
        resources = self.resources
        units = self.units
        hierarchy = self.hierarchy
        predictor = self.predictor
        btb = self.btb
        ras = self.ras

        measure_start_cycle = 0
        snapshot: dict[str, float] | None = None
        if warmup == 0:
            snapshot = metrics.snapshot()

        issue_width = cfg.issue_width
        dispatch_width = cfg.dispatch_width
        commit_width = cfg.commit_width
        fetch_width = cfg.fetch_width
        fetch_buffer = cfg.fetch_buffer
        redirect_penalty = cfg.redirect_penalty
        btb_miss_penalty = cfg.btb_miss_penalty
        max_cycles = cfg.max_cycles
        is_alu_t = _IS_ALU
        is_fp_t = _IS_FP
        is_mem_t = _IS_MEM
        is_intw_t = _IS_INT_WRITER
        is_fpw_t = _IS_FP_WRITER
        can_dispatch = resources.can_dispatch
        do_dispatch = resources.dispatch
        do_issue = resources.issue
        do_commit = resources.commit
        issue_alu = units.issue_alu
        issue_lsu = units.issue_lsu
        issue_fpu = units.issue_fpu
        issue_muldiv = units.issue_muldiv
        data_access = hierarchy.data_access
        il1_rt = hierarchy.latencies.il1_rt
        fetch_access = hierarchy.fetch
        predictor_update = predictor.update
        btb_update = btb.lookup_and_update
        ras_push = ras.push
        ras_pop = ras.pop
        heappush_ = heappush
        heappop_ = heappop
        insort_ = insort

        iq_sleep_until = 0
        sleep_kind = 0

        while committed < n:
            # ---- commit ----
            ncommit = 0
            while rob and ncommit < commit_width:
                head = rob[0]
                if ready[head] >= cycle:
                    break
                rob.popleft()
                hop = op_l[head]
                do_commit(is_mem_t[hop], is_intw_t[hop], is_fpw_t[hop])
                committed += 1
                ncommit += 1
                if tracer is not None:
                    tracer.emit(cycle, "commit", STAGE_COMMIT, idx=head, op=hop)
                if committed == warmup:
                    act.committed = committed  # flushed from the local
                    measure_start_cycle = cycle
                    snapshot = metrics.snapshot()

            # ---- issue ----
            nissued = 0
            #: Stall bucket charged this cycle (0 none, 1 frontend, 2 dep,
            #: 3 mem, 4 structural); the cycle-skip path below replays it
            #: for every jumped cycle, keeping the breakdown cycle-exact.
            stall_kind = 0
            if iq_len:
                if cycle < iq_sleep_until:
                    # Asleep: the previous no-issue scan proved nothing can
                    # issue before iq_sleep_until; replay its stall bucket.
                    stall_kind = sleep_kind
                    if stall_kind == 3:
                        act.stall_mem_cycles += 1
                    elif stall_kind == 2:
                        act.stall_dep_cycles += 1
                    else:
                        act.stall_structural_cycles += 1
                    if tracer is not None:
                        tracer.emit(
                            cycle, "stall", STAGE_STALL,
                            reason=_STALL_REASONS[stall_kind],
                        )
                else:
                    while parked and parked[0][0] <= cycle:
                        insort_(eligible, heappop_(parked)[1])
                    # Lazily materialised survivor list, as in the legacy
                    # scan: cycles in which nothing moves keep ``eligible``
                    # untouched.
                    survivors: "list[int] | None" = None
                    for pos, idx in enumerate(eligible):
                        if nissued >= issue_width:
                            if survivors is None:
                                survivors = eligible[:pos]
                            survivors.extend(eligible[pos:])
                            break
                        p = prod1_l[idx]
                        if p >= 0:
                            w = ready[p]
                            if w > cycle:
                                if survivors is None:
                                    survivors = eligible[:pos]
                                if w < _INF:
                                    heappush_(parked, (w, idx))
                                else:
                                    wl = waiters.get(p)
                                    if wl is None:
                                        waiters[p] = [idx]
                                    else:
                                        wl.append(idx)
                                continue
                        p = prod2_l[idx]
                        if p >= 0:
                            w = ready[p]
                            if w > cycle:
                                if survivors is None:
                                    survivors = eligible[:pos]
                                if w < _INF:
                                    heappush_(parked, (w, idx))
                                else:
                                    wl = waiters.get(p)
                                    if wl is None:
                                        waiters[p] = [idx]
                                    else:
                                        wl.append(idx)
                                continue
                        o = op_l[idx]
                        if is_alu_t[o]:
                            res = issue_alu(
                                cycle, o, prefer_fast[idx] if steer_on else False
                            )
                            if res is None:
                                if survivors is not None:
                                    survivors.append(idx)
                                continue
                            latency = res[0]
                        elif is_mem_t[o]:
                            agu = issue_lsu(cycle)
                            if agu is None:
                                if survivors is not None:
                                    survivors.append(idx)
                                continue
                            if o == _LOAD:
                                access = data_access(addr_l[idx], False)
                                latency = agu + access.latency
                                if tracer is not None and access.level not in (
                                    "dl1", "dl1-fast"
                                ):
                                    tracer.emit(
                                        cycle, "dl1_miss", STAGE_MEM,
                                        idx=idx, level=access.level,
                                    )
                            else:
                                # Stores drain through the store buffer;
                                # they do not stall commit beyond address
                                # generation.
                                data_access(addr_l[idx], True)
                                latency = agu
                        elif is_fp_t[o]:
                            fl = issue_fpu(cycle, o)
                            if fl is None:
                                if survivors is not None:
                                    survivors.append(idx)
                                continue
                            latency = fl
                        else:  # _MULDIV_CLASS
                            ml = issue_muldiv(cycle, o)
                            if ml is None:
                                if survivors is not None:
                                    survivors.append(idx)
                                continue
                            latency = ml
                        completion = cycle + latency
                        ready[idx] = completion
                        do_issue()
                        nissued += 1
                        if tracer is not None:
                            tracer.emit(
                                cycle, _TRACE_NAMES[o], STAGE_ISSUE,
                                dur=latency, idx=idx,
                            )
                        iq_len -= 1
                        left_iq[idx] = 1
                        if survivors is None:
                            survivors = eligible[:pos]
                        wl = waiters.pop(idx, None)
                        if wl is not None:
                            for widx in wl:
                                heappush_(parked, (completion, widx))
                        if idx == pending_redirect:
                            blocked = completion + redirect_penalty
                            if blocked > fetch_blocked_until:
                                fetch_blocked_until = blocked
                            pending_redirect = -1
                    if survivors is not None:
                        eligible = survivors
                    act.issued += nissued
                    if nissued == 0:
                        # Classify by first cause exactly as the legacy
                        # walk does: the oldest still-queued op wins.
                        while left_iq[iq_order[0]]:
                            iq_order.popleft()
                        oldest = iq_order[0]
                        p1 = prod1_l[oldest]
                        p2 = prod2_l[oldest]
                        if p1 >= 0 and ready[p1] > cycle:
                            producer = p1
                        elif p2 >= 0 and ready[p2] > cycle:
                            producer = p2
                        else:
                            producer = -1
                        if producer >= 0:
                            if op_l[producer] == _LOAD:
                                act.stall_mem_cycles += 1
                                stall_kind = 3
                            else:
                                act.stall_dep_cycles += 1
                                stall_kind = 2
                        else:
                            act.stall_structural_cycles += 1
                            stall_kind = 4
                        if tracer is not None:
                            tracer.emit(
                                cycle, "stall", STAGE_STALL,
                                reason=_STALL_REASONS[stall_kind],
                            )
                        # After a no-issue scan every source-blocked entry
                        # sits in ``parked`` (or transitively behind one
                        # that does), so the earliest possible issue is the
                        # heap top; surviving ``eligible`` entries are
                        # port-blocked and wake at the next unit release.
                        wake_i = parked[0][0] if parked else _INF
                        if eligible:
                            w = units.next_release(cycle)
                            if w and w < wake_i:
                                wake_i = w
                        if wake_i < _INF:
                            iq_sleep_until = wake_i
                            sleep_kind = stall_kind
            elif rob or fetch_q or next_fetch < n:
                act.stall_frontend_cycles += 1
                stall_kind = 1
                if tracer is not None:
                    tracer.emit(cycle, "stall", STAGE_STALL, reason="frontend")

            # ---- dispatch ----
            ndisp = 0
            while fetch_q and ndisp < dispatch_width:
                idx = fetch_q[0]
                o = op_l[idx]
                is_mem = is_mem_t[o]
                w_int = is_intw_t[o]
                w_fp = is_fpw_t[o]
                if not can_dispatch(is_mem, w_int, w_fp):
                    break
                fetch_q.popleft()
                do_dispatch(is_mem, w_int, w_fp)
                if steer_on:
                    prefer_fast[idx] = steering.prefer_fast(idx)
                if tracer is not None and is_alu_t[o]:
                    tracer.emit(
                        cycle,
                        "steer_fast"
                        if (steer_on and prefer_fast[idx])
                        else "steer_slow",
                        STAGE_STEER,
                        idx=idx,
                    )
                rob.append(idx)
                eligible.append(idx)
                iq_order.append(idx)
                iq_len += 1
                ndisp += 1
                if o == _LOAD:
                    act.loads += 1
                elif o == _STORE:
                    act.stores += 1
                if prod1_l[idx] >= 0:
                    if is_fp_t[o]:
                        act.fp_reg_reads += 1
                    else:
                        act.int_reg_reads += 1
                if prod2_l[idx] >= 0:
                    if is_fp_t[o]:
                        act.fp_reg_reads += 1
                    else:
                        act.int_reg_reads += 1
                if w_int:
                    act.int_reg_writes += 1
                elif w_fp:
                    act.fp_reg_writes += 1
            act.dispatched += ndisp
            if ndisp:
                iq_sleep_until = 0  # fresh entries may issue next cycle

            # ---- fetch ----
            nfetch = 0
            il1_blocked = False
            if (
                next_fetch < n
                and pending_redirect < 0
                and cycle >= fetch_blocked_until
            ):
                while (
                    nfetch < fetch_width
                    and len(fetch_q) < fetch_buffer
                    and next_fetch < n
                ):
                    idx = next_fetch
                    pc = pc_l[idx]
                    if new_line_l[idx] and idx != line_done:
                        line_done = idx
                        access = fetch_access(pc)
                        act.il1_accesses += 1
                        if access.latency > il1_rt:
                            fetch_blocked_until = cycle + access.latency
                            il1_blocked = True
                            if tracer is not None:
                                tracer.emit(
                                    cycle, "il1_miss", STAGE_FETCH,
                                    dur=access.latency, level=access.level,
                                )
                            break
                    o = op_l[idx]
                    mispredicted = False
                    if o == _BRANCH:
                        act.bpred_lookups += 1
                        outcome = taken_l[idx]
                        mispredicted = predictor_update(pc, outcome)
                        if outcome and not btb_update(pc):
                            blocked = cycle + btb_miss_penalty
                            if blocked > fetch_blocked_until:
                                fetch_blocked_until = blocked
                    elif o == _CALL:
                        ras_push(pc + 4)
                        btb_update(pc)
                    elif o == _RET:
                        # The trace encodes the architected return target in
                        # addr; RAS mispredicts on overflow-induced mismatch.
                        mispredicted = ras_pop(addr_l[idx])
                    fetch_q.append(idx)
                    next_fetch += 1
                    nfetch += 1
                    if mispredicted:
                        pending_redirect = idx
                        if tracer is not None:
                            tracer.emit(cycle, "mispredict", STAGE_FETCH, idx=idx)
                        break
                act.fetched += nfetch

            # ---- event-driven idle-cycle skip ----
            # A cycle in which commit, issue, dispatch, and fetch all made
            # zero progress mutates nothing but one stall counter, so every
            # following cycle is identical until the next wakeup event.
            # Jump straight there and charge the same stall bucket for the
            # cycles jumped over; the wake set covers every comparison the
            # stages test (see DESIGN.md "Cycle-skip invariants").
            if (
                ncommit == 0
                and nissued == 0
                and ndisp == 0
                and nfetch == 0
                and not il1_blocked
                and (not iq_len or iq_sleep_until > cycle)
            ):
                wake = _INF
                if rob:
                    w = ready[rob[0]] + 1
                    if w < wake:
                        wake = w
                # The no-issue scan above already reduced the issue queue's
                # wake set to iq_sleep_until (producer completions and unit
                # port releases).
                if iq_len and iq_sleep_until < wake:
                    wake = iq_sleep_until
                if (
                    next_fetch < n
                    and cycle < fetch_blocked_until < wake
                ):
                    wake = fetch_blocked_until
                extra = wake - cycle - 1
                if extra > 0 and wake < _INF:
                    self.skipped_cycles += extra
                    self.skip_events += 1
                    if tracer is not None:
                        # One synthetic event stands in for the per-cycle
                        # stall events the legacy walk would have emitted
                        # across the jumped stretch.
                        tracer.emit(
                            cycle, "skip", STAGE_STALL,
                            dur=extra, reason=_STALL_REASONS[stall_kind],
                        )
                    if stall_kind == 3:
                        act.stall_mem_cycles += extra
                    elif stall_kind == 2:
                        act.stall_dep_cycles += extra
                    elif stall_kind == 1:
                        act.stall_frontend_cycles += extra
                    elif stall_kind == 4:
                        act.stall_structural_cycles += extra
                    cycle = wake - 1  # the increment below lands on wake

            cycle += 1
            if cycle >= max_cycles:
                raise RuntimeError(
                    f"simulation exceeded max_cycles={max_cycles} "
                    f"(committed {committed}/{n})"
                )

        if snapshot is None:
            raise RuntimeError("warmup never completed")
        act.committed = committed  # flushed from the local (see commit loop)
        undrained = (
            len(rob)
            + iq_len
            + len(fetch_q)
            + resources.rob_used
            + resources.iq_used
            + resources.lsq_used
            + resources.int_regs_used
            + resources.fp_regs_used
        )
        return self._finalize(
            metrics.delta(snapshot),
            cycle - measure_start_cycle,
            n - warmup,
            act,
            undrained,
        )

    def _run_legacy(self, trace: Trace, warmup: int) -> CoreResult:
        """The reference per-cycle walk: all four stages, every cycle.

        Serves the ``REPRO_NO_CYCLE_SKIP`` escape hatch (tracer-attached
        runs ride the fast path since the skip stretches became synthetic
        ``skip`` events).  Under the hatch the seed engine is pinned
        wholesale -- full per-cycle walk *and* boxed numpy scalar indexing
        -- so the benchmark harness measures an honest before/after
        ratio; tracer runs still unbox because trace events must carry
        plain ints.
        """
        n = len(trace)
        cfg = self.config
        # Tracing is opt-in per run; a None local keeps the guard to a
        # single truth test per event site (zero-overhead-when-off).
        tracer = self.tracer
        if tracer is None:
            op_l = trace.op
            src1_l = trace.src1_dist
            src2_l = trace.src2_dist
            addr_l = trace.addr
            pc_l = trace.pc
            taken_l = trace.taken
        else:
            op_l = trace.op.tolist()
            src1_l = trace.src1_dist.tolist()
            src2_l = trace.src2_dist.tolist()
            addr_l = trace.addr.tolist()
            pc_l = trace.pc.tolist()
            taken_l = trace.taken.tolist()

        steering = DualSpeedSteering(
            trace, window=cfg.issue_width, enabled=cfg.steering_enabled
        )

        act = ActivityCounts()
        self.skipped_cycles = 0
        self.skip_events = 0
        metrics = self._build_metrics(act, steering)
        self.metrics = metrics
        if obs.enabled():
            get_registry().mount(self.name, metrics)

        ready = [_INF] * n  # completion cycle per trace entry
        rob: deque[int] = deque()
        iq: list[int] = []
        prefer_fast = [False] * n

        fetch_q: deque[int] = deque()  # decoded uops awaiting dispatch
        next_fetch = 0
        fetch_blocked_until = 0
        pending_redirect = -1  # trace idx of an unresolved mispredicted branch
        last_fetch_line = -1

        cycle = 0
        committed = 0
        resources = self.resources
        units = self.units
        hierarchy = self.hierarchy
        predictor = self.predictor
        btb = self.btb
        ras = self.ras

        measure_start_cycle = 0
        snapshot: dict[str, float] | None = None
        if warmup == 0:
            snapshot = metrics.snapshot()

        issue_width = cfg.issue_width
        dispatch_width = cfg.dispatch_width
        commit_width = cfg.commit_width
        fetch_width = cfg.fetch_width
        fetch_buffer = cfg.fetch_buffer
        max_cycles = cfg.max_cycles

        while committed < n:
            # ---- commit ----
            ncommit = 0
            while rob and ncommit < commit_width:
                head = rob[0]
                if ready[head] >= cycle:
                    break
                rob.popleft()
                hop = int(op_l[head])
                resources.commit(
                    hop in _MEM_CLASS, hop in _INT_WRITERS, hop in _FP_WRITERS
                )
                committed += 1
                ncommit += 1
                act.committed += 1
                if tracer is not None:
                    tracer.emit(cycle, "commit", STAGE_COMMIT, idx=head, op=hop)
                if committed == warmup:
                    measure_start_cycle = cycle
                    snapshot = metrics.snapshot()

            # ---- issue ----
            if iq:
                nissued = 0
                still_waiting: list[int] = []
                for idx in iq:
                    if nissued >= issue_width:
                        still_waiting.append(idx)
                        continue
                    d1 = src1_l[idx]
                    if d1 and ready[idx - d1] > cycle:
                        still_waiting.append(idx)
                        continue
                    d2 = src2_l[idx]
                    if d2 and ready[idx - d2] > cycle:
                        still_waiting.append(idx)
                        continue
                    o = int(op_l[idx])
                    if o in _ALU_CLASS:
                        res = units.issue_alu(cycle, o, prefer_fast[idx])
                        if res is None:
                            still_waiting.append(idx)
                            continue
                        latency = res[0]
                    elif o in _MEM_CLASS:
                        agu = units.issue_lsu(cycle)
                        if agu is None:
                            still_waiting.append(idx)
                            continue
                        access = hierarchy.data_access(int(addr_l[idx]), o == _STORE)
                        if o == _LOAD:
                            latency = agu + access.latency
                        else:
                            # Stores drain through the store buffer; they do
                            # not stall commit beyond address generation.
                            latency = agu
                        if tracer is not None and access.level not in (
                            "dl1", "dl1-fast"
                        ):
                            tracer.emit(
                                cycle, "dl1_miss", STAGE_MEM,
                                idx=idx, level=access.level,
                            )
                    elif o in _FP_CLASS:
                        fl = units.issue_fpu(cycle, o)
                        if fl is None:
                            still_waiting.append(idx)
                            continue
                        latency = fl
                    else:  # _MULDIV_CLASS
                        ml = units.issue_muldiv(cycle, o)
                        if ml is None:
                            still_waiting.append(idx)
                            continue
                        latency = ml
                    completion = cycle + latency
                    ready[idx] = completion
                    resources.issue()
                    nissued += 1
                    if tracer is not None:
                        tracer.emit(
                            cycle, _TRACE_NAMES[o], STAGE_ISSUE,
                            dur=latency, idx=idx,
                        )
                    if idx == pending_redirect:
                        blocked = completion + cfg.redirect_penalty
                        if blocked > fetch_blocked_until:
                            fetch_blocked_until = blocked
                        pending_redirect = -1
                iq = still_waiting
                act.issued += nissued
                if nissued == 0:
                    # Nothing issued: classify the cycle by its first cause.
                    # The oldest blocked op wins; re-examining it here keeps
                    # the per-op issue path above free of any bookkeeping.
                    # An in-flight-load producer counts as a memory stall,
                    # any other producer as a dependency stall; an op held
                    # only by a busy functional unit is structural.
                    oldest = iq[0]
                    d1 = src1_l[oldest]
                    d2 = src2_l[oldest]
                    if d1 and ready[oldest - d1] > cycle:
                        producer = oldest - d1
                    elif d2 and ready[oldest - d2] > cycle:
                        producer = oldest - d2
                    else:
                        producer = -1
                    if producer >= 0:
                        if int(op_l[producer]) == _LOAD:
                            act.stall_mem_cycles += 1
                            reason = "mem"
                        else:
                            act.stall_dep_cycles += 1
                            reason = "dep"
                    else:
                        act.stall_structural_cycles += 1
                        reason = "structural"
                    if tracer is not None:
                        tracer.emit(cycle, "stall", STAGE_STALL, reason=reason)
            elif rob or fetch_q or next_fetch < n:
                act.stall_frontend_cycles += 1
                if tracer is not None:
                    tracer.emit(cycle, "stall", STAGE_STALL, reason="frontend")

            # ---- dispatch ----
            ndisp = 0
            while fetch_q and ndisp < dispatch_width:
                idx = fetch_q[0]
                o = int(op_l[idx])
                is_mem = o in _MEM_CLASS
                w_int = o in _INT_WRITERS
                w_fp = o in _FP_WRITERS
                if not resources.can_dispatch(is_mem, w_int, w_fp):
                    break
                fetch_q.popleft()
                resources.dispatch(is_mem, w_int, w_fp)
                prefer_fast[idx] = steering.prefer_fast(idx)
                if tracer is not None and o in _ALU_CLASS:
                    tracer.emit(
                        cycle,
                        "steer_fast" if prefer_fast[idx] else "steer_slow",
                        STAGE_STEER,
                        idx=idx,
                    )
                rob.append(idx)
                iq.append(idx)
                ndisp += 1
                if o == _LOAD:
                    act.loads += 1
                elif o == _STORE:
                    act.stores += 1
                if src1_l[idx]:
                    if o in _FP_CLASS:
                        act.fp_reg_reads += 1
                    else:
                        act.int_reg_reads += 1
                if src2_l[idx]:
                    if o in _FP_CLASS:
                        act.fp_reg_reads += 1
                    else:
                        act.int_reg_reads += 1
                if w_int:
                    act.int_reg_writes += 1
                elif w_fp:
                    act.fp_reg_writes += 1
            act.dispatched += ndisp

            # ---- fetch ----
            if (
                next_fetch < n
                and pending_redirect < 0
                and cycle >= fetch_blocked_until
            ):
                nfetch = 0
                while (
                    nfetch < fetch_width
                    and len(fetch_q) < fetch_buffer
                    and next_fetch < n
                ):
                    idx = next_fetch
                    pc = int(pc_l[idx])
                    line = pc >> 6
                    if line != last_fetch_line:
                        last_fetch_line = line
                        access = hierarchy.fetch(pc)
                        act.il1_accesses += 1
                        if access.latency > hierarchy.latencies.il1_rt:
                            fetch_blocked_until = cycle + access.latency
                            if tracer is not None:
                                tracer.emit(
                                    cycle, "il1_miss", STAGE_FETCH,
                                    dur=access.latency, level=access.level,
                                )
                            break
                    o = int(op_l[idx])
                    mispredicted = False
                    if o == _BRANCH:
                        act.bpred_lookups += 1
                        outcome = bool(taken_l[idx])
                        mispredicted = predictor.update(pc, outcome)
                        if outcome and not btb.lookup_and_update(pc):
                            fetch_blocked_until = max(
                                fetch_blocked_until, cycle + cfg.btb_miss_penalty
                            )
                    elif o == _CALL:
                        ras.push(pc + 4)
                        btb.lookup_and_update(pc)
                    elif o == _RET:
                        # The trace encodes the architected return target in
                        # addr; RAS mispredicts on overflow-induced mismatch.
                        mispredicted = ras.pop(int(addr_l[idx]))
                    fetch_q.append(idx)
                    next_fetch += 1
                    nfetch += 1
                    act.fetched += 1
                    if mispredicted:
                        pending_redirect = idx
                        if tracer is not None:
                            tracer.emit(cycle, "mispredict", STAGE_FETCH, idx=idx)
                        break

            cycle += 1
            if cycle >= max_cycles:
                raise RuntimeError(
                    f"simulation exceeded max_cycles={max_cycles} "
                    f"(committed {committed}/{n})"
                )

        if snapshot is None:
            raise RuntimeError("warmup never completed")
        undrained = (
            len(rob)
            + len(iq)
            + len(fetch_q)
            + resources.rob_used
            + resources.iq_used
            + resources.lsq_used
            + resources.int_regs_used
            + resources.fp_regs_used
        )
        return self._finalize(
            metrics.delta(snapshot),
            cycle - measure_start_cycle,
            n - warmup,
            act,
            undrained,
        )

    # ------------------------------------------------------------------
    def _finalize(
        self,
        delta: dict[str, float],
        cycles: int,
        committed: int,
        act: ActivityCounts,
        undrained: int = 0,
    ) -> CoreResult:
        """Turn a registry delta (measured window) into a CoreResult."""
        d = delta.get

        # Rebase cumulative activity counters to the measurement window.
        for name in act.as_dict():
            setattr(act, name, int(d(f"activity.{name}", 0)))

        bp_lookups = d("bpred.lookups", 0)
        bp_misses = d("bpred.mispredictions", 0)
        act.bpred_lookups = int(bp_lookups)
        act.alu_fast_ops = int(d("alu.fast_ops", 0))
        act.alu_slow_ops = int(d("alu.slow_ops", 0))
        act.muldiv_ops = int(d("muldiv.ops", 0))
        act.fpu_ops = int(d("fpu.ops", 0))
        act.lsu_ops = int(d("lsu.ops", 0))
        act.l2_accesses = int(d("l2.accesses", 0))
        act.l3_accesses = int(d("l3.accesses", 0))
        act.dram_accesses = int(d("dram.accesses", 0))
        l2_acc = d("l2.accesses", 0)
        l2_hit = d("l2.hits", 0)
        l3_acc = d("l3.accesses", 0)
        l3_hit = d("l3.hits", 0)

        if self.hierarchy.has_asymmetric_dl1:
            fast_hits = d("dl1.fast_way_hits", 0)
            slow_hits = d("dl1.slow_way_hits", 0)
            misses = d("dl1.misses", 0)
            accesses = fast_hits + slow_hits + misses
            act.dl1_accesses = int(accesses)
            act.dl1_fast_hits = int(fast_hits)
            act.dl1_slow_accesses = int(slow_hits + misses)
            act.dl1_line_moves = int(d("dl1.line_moves", 0))
            dl1_hit_rate = (
                (fast_hits + slow_hits) / accesses if accesses else 1.0
            )
            fast_rate = fast_hits / accesses if accesses else 0.0
        else:
            accesses = d("dl1.accesses", 0)
            hits = d("dl1.hits", 0)
            act.dl1_accesses = int(accesses)
            dl1_hit_rate = hits / accesses if accesses else 1.0
            fast_rate = 0.0

        total_alu = act.alu_fast_ops + act.alu_slow_ops
        return CoreResult(
            cycles=cycles,
            committed=committed,
            freq_ghz=self.config.freq_ghz,
            activity=act,
            branch_mispredict_rate=(bp_misses / bp_lookups) if bp_lookups else 0.0,
            dl1_hit_rate=dl1_hit_rate,
            dl1_fast_hit_rate=fast_rate,
            l2_hit_rate=(l2_hit / l2_acc) if l2_acc else 1.0,
            l3_hit_rate=(l3_hit / l3_acc) if l3_acc else 1.0,
            rob_peak=self.resources.rob_peak,
            iq_peak=self.resources.iq_peak,
            alu_fast_fraction=(act.alu_fast_ops / total_alu) if total_alu else 0.0,
            undrained=undrained,
        )
