"""Multicore execution model for the fixed-power-budget studies.

The paper's CPU results compare a 4-core BaseCMOS multicore with (among
others) an 8-core AdvHet-2X multicore running the same total work.  Fully
simulating 8 detailed Python cores per configuration is wasteful, because
within one run all cores execute statistically identical threads; instead
we simulate ``detailed_cores`` of them cycle-by-cycle (with the shared-L3 /
DRAM contention uplift for ``n_cores`` sharers applied inside the memory
hierarchy) and close the loop with a per-application parallel-scaling
model:

``T(n) = CPI(n) * W * (s + (1 - s)/n) * (1 + sync * (n - 1))``

where ``s`` is the profile's serial fraction and ``sync`` its barrier /
imbalance coefficient -- Amdahl's law with a linear synchronisation term,
the same first-order mechanisms that make the paper's AdvHet-2X speedup
sublinear (32% rather than the ideal ~45%).

The substitution is recorded in DESIGN.md; ``detailed_cores`` can be raised
to simulate every core when higher fidelity is wanted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.cpu.core import CoreResult, OutOfOrderCore
from repro.cpu.trace import Trace
from repro.workloads.profiles import AppProfile


@dataclass
class MulticoreResult:
    """Aggregate of one multicore run at fixed total work."""

    n_cores: int
    per_core: list[CoreResult]
    #: Mean cycles-per-instruction across the detailed cores (includes the
    #: contention uplift for n_cores sharers).
    cpi: float
    #: Amdahl + synchronisation multiplier applied to the per-core time.
    scaling_factor: float
    #: Effective execution cycles for the reference total work.
    effective_cycles: float
    freq_ghz: float
    total_work: int

    @property
    def time_s(self) -> float:
        return self.effective_cycles / (self.freq_ghz * 1e9)

    @property
    def representative(self) -> CoreResult:
        """The first detailed core (activity source for the power model)."""
        return self.per_core[0]


def parallel_scaling_factor(profile: AppProfile, n_cores: int) -> float:
    """Per-instruction time multiplier of running the work on ``n_cores``.

    Normalised so that one core gives ``1.0``; perfect scaling would give
    ``1/n``.
    """
    if n_cores < 1:
        raise ValueError("need at least one core")
    s = profile.serial_fraction
    amdahl = s + (1.0 - s) / n_cores
    sync = 1.0 + profile.sync_coeff * (n_cores - 1)
    return amdahl * sync


def run_multicore(
    core_factory: Callable[[int, int], OutOfOrderCore],
    trace_factory: Callable[[int], Trace],
    profile: AppProfile,
    n_cores: int,
    warmup: int,
    detailed_cores: int = 1,
    total_work: int | None = None,
) -> MulticoreResult:
    """Run a multicore configuration at fixed total work.

    ``core_factory(core_index, n_cores)`` must build a fresh core whose
    memory hierarchy already carries the contention model for ``n_cores``
    sharers; ``trace_factory(core_index)`` supplies each detailed core's
    trace (distinct seeds).  ``total_work`` defaults to the measured slice
    size times the core count of the *reference* 4-core machine, but since
    every figure normalises to BaseCMOS the constant cancels; what matters
    is that it is identical across configurations.
    """
    if not 1 <= detailed_cores <= n_cores:
        raise ValueError("detailed_cores must be in [1, n_cores]")
    results: list[CoreResult] = []
    freq = 0.0
    for core_idx in range(detailed_cores):
        core = core_factory(core_idx, n_cores)
        trace = trace_factory(core_idx)
        result = core.run(trace, warmup=warmup)
        results.append(result)
        freq = result.freq_ghz
    cpi = sum(r.cycles / r.committed for r in results) / len(results)
    work = total_work if total_work is not None else 4 * results[0].committed
    scaling = parallel_scaling_factor(profile, n_cores)
    effective_cycles = cpi * work * scaling
    return MulticoreResult(
        n_cores=n_cores,
        per_core=results,
        cpi=cpi,
        scaling_factor=scaling,
        effective_cycles=effective_cycles,
        freq_ghz=freq,
        total_work=work,
    )
