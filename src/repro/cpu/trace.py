"""Dynamic instruction traces in structure-of-arrays form.

A trace is the unit of work the core executes: one entry per dynamic
micro-op, with register dependencies expressed as *distances* (entry ``i``
with ``src1_dist[i] == k`` reads the result of entry ``i - k``).  Distances
of zero mean "no dependency".  Memory ops carry byte addresses; control ops
carry taken/not-taken outcomes.  Everything is stored as numpy arrays so
that traces of a few hundred thousand micro-ops stay cheap to build and
hold, while the simulator reads them element-wise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cpu.uops import UopType, CONTROL_OPS, MEMORY_OPS


@dataclass
class Trace:
    """A dynamic micro-op stream.

    Attributes
    ----------
    op:
        ``int8`` array of :class:`UopType` values.
    src1_dist, src2_dist:
        ``int32`` dependency distances (0 = none).  A distance always points
        at an older entry; the generator guarantees the producer actually
        writes a register.
    addr:
        ``int64`` byte address for LOAD/STORE entries, 0 elsewhere.
    pc:
        ``int64`` instruction address (for IL1 fetch and predictor indexing).
    taken:
        ``bool`` outcome for control entries, False elsewhere.
    """

    op: np.ndarray
    src1_dist: np.ndarray
    src2_dist: np.ndarray
    addr: np.ndarray
    pc: np.ndarray
    taken: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.op)
        for name in ("src1_dist", "src2_dist", "addr", "pc", "taken"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"trace array {name!r} has mismatched length")

    def __len__(self) -> int:
        return len(self.op)

    def validate(self) -> None:
        """Check structural invariants; raises ValueError on violation."""
        n = len(self)
        idx = np.arange(n)
        for dist in (self.src1_dist, self.src2_dist):
            if (dist < 0).any():
                raise ValueError("dependency distances must be non-negative")
            if (dist > idx).any():
                raise ValueError("a dependency points before the trace start")
        mem_mask = np.isin(self.op, [int(t) for t in MEMORY_OPS])
        if (self.addr[mem_mask] < 0).any():
            raise ValueError("memory ops need non-negative addresses")
        ctrl_mask = np.isin(self.op, [int(t) for t in CONTROL_OPS])
        if self.taken[~ctrl_mask].any():
            raise ValueError("only control ops may be taken")

    def mix(self) -> dict[str, float]:
        """Fraction of each micro-op type present in the trace."""
        n = len(self)
        if n == 0:
            return {t.name: 0.0 for t in UopType}
        counts = np.bincount(self.op, minlength=len(UopType))
        return {t.name: counts[int(t)] / n for t in UopType}

    @staticmethod
    def empty() -> "Trace":
        """A zero-length trace (useful for tests)."""
        return Trace(
            op=np.zeros(0, dtype=np.int8),
            src1_dist=np.zeros(0, dtype=np.int32),
            src2_dist=np.zeros(0, dtype=np.int32),
            addr=np.zeros(0, dtype=np.int64),
            pc=np.zeros(0, dtype=np.int64),
            taken=np.zeros(0, dtype=bool),
        )

    @staticmethod
    def from_lists(
        ops: list[UopType],
        src1: list[int] | None = None,
        src2: list[int] | None = None,
        addrs: list[int] | None = None,
        pcs: list[int] | None = None,
        taken: list[bool] | None = None,
    ) -> "Trace":
        """Build a small trace from Python lists (test/example helper)."""
        n = len(ops)
        trace = Trace(
            op=np.array([int(o) for o in ops], dtype=np.int8),
            src1_dist=np.array(src1 or [0] * n, dtype=np.int32),
            src2_dist=np.array(src2 or [0] * n, dtype=np.int32),
            addr=np.array(addrs or [0] * n, dtype=np.int64),
            pc=np.array(pcs if pcs is not None else list(range(0, 4 * n, 4)), dtype=np.int64),
            taken=np.array(taken or [False] * n, dtype=bool),
        )
        trace.validate()
        return trace
