"""Branch prediction: tournament predictor, BTB, and return-address stack.

Table III specifies a tournament predictor (2-level local + global, with a
chooser), a 4-way 2K-entry BTB, and a 32-entry RAS.  The predictor operates
on the synthetic branch streams of :mod:`repro.workloads`; its misprediction
rate therefore *emerges* from each application's branch behaviour instead of
being an input parameter.
"""

from __future__ import annotations


class _CounterTable:
    """A table of saturating 2-bit counters."""

    __slots__ = ("mask", "counters", "init")

    def __init__(self, size: int, init: int = 1):
        if size <= 0 or size & (size - 1):
            raise ValueError("counter table size must be a power of two")
        self.mask = size - 1
        self.init = init
        self.counters = [init] * size

    def predict(self, index: int) -> bool:
        return self.counters[index & self.mask] >= 2

    def update(self, index: int, taken: bool) -> None:
        i = index & self.mask
        c = self.counters[i]
        if taken:
            if c < 3:
                self.counters[i] = c + 1
        elif c > 0:
            self.counters[i] = c - 1


def _pc_hash(pc: int) -> int:
    """Mix pc bits before indexing (cheap Fibonacci hashing).

    Real fetch addresses are well spread; synthetic block layouts put
    branches on a regular grid, which plain modulo indexing would alias
    catastrophically.
    """
    h = (pc >> 2) * 0x9E3779B1
    return (h ^ (h >> 16)) & 0x7FFFFFFF


class TournamentPredictor:
    """2-level local + gshare global, with a pc-indexed chooser.

    The chooser counter trains toward whichever component was correct; ties
    leave it unchanged (the Alpha 21264 scheme).  Two departures from the
    21264: the chooser is pc-indexed and the local history is 6 bits --
    both because synthetic branch streams have no long-range temporal
    structure, so a history-indexed chooser and long local histories train
    far too slowly within a simulation window to be representative of the
    steady state real applications reach after billions of branches.
    """

    def __init__(
        self,
        local_entries: int = 1024,
        local_history_bits: int = 6,
        global_entries: int = 4096,
        chooser_entries: int = 4096,
    ):
        self.local_history = [0] * local_entries
        self._local_entries = local_entries
        self._local_hist_mask = (1 << local_history_bits) - 1
        self.local_table = _CounterTable(1 << local_history_bits)
        self.global_table = _CounterTable(global_entries)
        # pc-indexed chooser, initialised toward the local component (it
        # trains orders of magnitude faster on per-branch-biased streams).
        self.chooser = _CounterTable(chooser_entries, init=1)
        self._ghr = 0
        self._ghr_mask = global_entries - 1
        self.lookups = 0
        self.mispredictions = 0

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""
        self.lookups += 1
        h = _pc_hash(pc)
        lidx = h % self._local_entries
        lhist = self.local_history[lidx] & self._local_hist_mask
        local_pred = self.local_table.predict(lhist)
        gidx = (h ^ self._ghr) & self._ghr_mask
        global_pred = self.global_table.predict(gidx)
        use_global = self.chooser.predict(h)
        return global_pred if use_global else local_pred

    def update(self, pc: int, taken: bool) -> bool:
        """Train on the resolved outcome.  Returns True iff mispredicted.

        Combines predict + update so callers see a single authoritative
        misprediction decision per dynamic branch.
        """
        h = _pc_hash(pc)
        lidx = h % self._local_entries
        lhist = self.local_history[lidx] & self._local_hist_mask
        local_pred = self.local_table.predict(lhist)
        gidx = (h ^ self._ghr) & self._ghr_mask
        global_pred = self.global_table.predict(gidx)
        cidx = h
        use_global = self.chooser.predict(cidx)
        prediction = global_pred if use_global else local_pred
        self.lookups += 1
        mispredicted = prediction != taken
        if mispredicted:
            self.mispredictions += 1
        # Train components and chooser.
        if local_pred != global_pred:
            self.chooser.update(cidx, global_pred == taken)
        self.local_table.update(lhist, taken)
        self.global_table.update(gidx, taken)
        self.local_history[lidx] = ((lhist << 1) | int(taken)) & self._local_hist_mask
        self._ghr = ((self._ghr << 1) | int(taken)) & 0xFFFFFFFF
        return mispredicted

    @property
    def misprediction_rate(self) -> float:
        return self.mispredictions / self.lookups if self.lookups else 0.0


class BranchTargetBuffer:
    """A set-associative BTB; a taken branch missing here costs a refetch."""

    def __init__(self, entries: int = 2048, assoc: int = 4):
        if entries % assoc:
            raise ValueError("entries must divide evenly into ways")
        self.n_sets = entries // assoc
        self.assoc = assoc
        self._sets: list[list[int]] = [[] for _ in range(self.n_sets)]
        self.lookups = 0
        self.misses = 0

    def lookup_and_update(self, pc: int) -> bool:
        """Probe for ``pc`` and install it.  Returns True on hit."""
        self.lookups += 1
        tag = pc >> 2
        s = self._sets[tag % self.n_sets]
        if tag in s:
            if s[0] != tag:
                s.remove(tag)
                s.insert(0, tag)
            return True
        self.misses += 1
        if len(s) >= self.assoc:
            s.pop()
        s.insert(0, tag)
        return False


class ReturnAddressStack:
    """A fixed-depth RAS; overflows wrap (oldest entry is lost)."""

    def __init__(self, depth: int = 32):
        if depth <= 0:
            raise ValueError("RAS depth must be positive")
        self.depth = depth
        self._stack: list[int] = []
        self.pushes = 0
        self.pops = 0
        self.mispredicts = 0

    def push(self, return_pc: int) -> None:
        self.pushes += 1
        if len(self._stack) >= self.depth:
            self._stack.pop(0)
        self._stack.append(return_pc)

    def pop(self, actual_return_pc: int) -> bool:
        """Pop a prediction and compare.  Returns True iff mispredicted."""
        self.pops += 1
        predicted = self._stack.pop() if self._stack else None
        wrong = predicted != actual_return_pc
        if wrong:
            self.mispredicts += 1
        return wrong

    def __len__(self) -> int:
        return len(self._stack)
