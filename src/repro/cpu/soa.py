"""Cached structure-of-arrays decode of the CPU trace hot fields.

The core's fast path (:meth:`repro.cpu.core.OutOfOrderCore._run_fast`)
touches six trace arrays per micro-op plus derived values it used to
recompute on every access: the producer index behind each dependency
distance, the per-:class:`~repro.cpu.uops.UopType` class flags, and the
"does this fetch cross a cache-line boundary" test.  All of those are
pure functions of the trace, so they are decoded **once per trace** here
-- vectorized in numpy, then unboxed to plain Python lists in one
``tolist()`` pass -- and memoised on the trace object itself.  Traces
are shared (the process-wide trace LRU hands the same object to every
configuration of a sweep and every core of a multicore run), so one
decode serves the whole sweep instead of every ``run()`` paying six
``tolist()`` passes plus per-access arithmetic.

Unboxing matters as much as caching: indexing a numpy array yields a
boxed numpy scalar whose arithmetic is several times slower than a plain
``int``, which is why the hot loop consumes lists, not arrays (the
``tests/test_perf_fastpath.py`` audit enforces this).

``REPRO_NO_BATCH=1`` makes the core ignore this cache and rebuild its
per-run lists exactly as PR 5 did -- the differential hatch for the
SoA layer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cpu.trace import Trace
from repro.cpu.uops import N_UOP_TYPES, UopType

_LOAD = int(UopType.LOAD)
_STORE = int(UopType.STORE)

#: Byte shift selecting the instruction-cache line of a pc.
_LINE_SHIFT = 6


@dataclass
class TraceSoA:
    """Per-uop hot state, decoded once per trace.

    Every field is a plain Python list (or equivalent) indexed by trace
    position; see the module docstring for why lists rather than arrays.
    """

    #: UopType value per entry.
    op: "list[int]"
    #: Byte address per entry (0 for non-memory ops).
    addr: "list[int]"
    #: Instruction address per entry.
    pc: "list[int]"
    #: Branch outcome per entry.
    taken: "list[bool]"
    #: Producer trace index per source (-1 = no dependency).  The
    #: validator guarantees distances never point before entry 0, so -1
    #: is unambiguous.
    prod1: "list[int]"
    prod2: "list[int]"
    #: True where this entry's fetch touches a new instruction-cache
    #: line.  Valid because fetch consumes the trace strictly in order:
    #: the line comparison against the previously fetched entry is a
    #: pure function of adjacent pcs.
    new_line: "list[bool]"


def decode_trace(trace: Trace) -> TraceSoA:
    """The memoised SoA decode of ``trace`` (see module docstring)."""
    cached = getattr(trace, "_soa", None)
    if cached is not None:
        return cached
    soa = decode_trace_uncached(trace)
    try:
        trace._soa = soa
    except AttributeError:  # exotic trace type without __dict__
        pass
    return soa


def decode_trace_uncached(trace: Trace) -> TraceSoA:
    """One fresh decode, no memo -- the ``REPRO_NO_BATCH=1`` path, which
    pins PR 5's per-run unboxing cost (and keeps runs free of any
    cross-run shared state)."""
    n = len(trace)
    idx = np.arange(n, dtype=np.int64)
    d1 = trace.src1_dist.astype(np.int64)
    d2 = trace.src2_dist.astype(np.int64)
    prod1 = np.where(d1 > 0, idx - d1, -1)
    prod2 = np.where(d2 > 0, idx - d2, -1)
    lines = trace.pc >> _LINE_SHIFT
    new_line = np.empty(n, dtype=bool)
    if n:
        new_line[0] = True
        np.not_equal(lines[1:], lines[:-1], out=new_line[1:])
    return TraceSoA(
        op=trace.op.tolist(),
        addr=trace.addr.tolist(),
        pc=trace.pc.tolist(),
        taken=trace.taken.tolist(),
        prod1=prod1.tolist(),
        prod2=prod2.tolist(),
        new_line=new_line.tolist(),
    )
