"""Functional-unit pool with per-device latency tables (Table III).

The modelled core has 4 ALUs (branches resolve there too), 2 integer
multiply/divide units, 2 load-store units, and 2 FPUs.  Latencies depend on
the implementing device:

==========  ==========  ==========  ============
op          CMOS        TFET        high-Vt CMOS
==========  ==========  ==========  ============
IALU        1           2           2
IMUL        2           4           3
IDIV        4 (unpip.)  8 (unpip.)  6 (unpip.)
FADD        2           4           3
FMUL        4           8           6
FDIV        8 (every 8) 16 (every 16) 12 (every 12)
==========  ==========  ==========  ============

Adds/multiplies issue every cycle (fully pipelined, which is exactly how
HetCore absorbs the 2x TFET device slowdown at a fixed clock: twice the
stages, same stage rate); divides are unpipelined (issue interval equals
latency).  The dual-speed ALU cluster of AdvHet mixes one CMOS ALU with
three TFET ALUs in the same pool.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.uops import N_UOP_TYPES, UopType


@dataclass(frozen=True)
class LatencyTable:
    """(latency, issue interval) per op class for one device choice."""

    name: str
    ialu: int = 1
    imul: int = 2
    idiv: int = 4
    fadd: int = 2
    fmul: int = 4
    fdiv: int = 8
    agu: int = 1

    def latency_of(self, op: int) -> int:
        """Execution latency of ``op`` (UopType value) on this device."""
        return _LATENCY_ATTR[op](self)


_LATENCY_ATTR = {
    int(UopType.IALU): lambda t: t.ialu,
    int(UopType.BRANCH): lambda t: t.ialu,
    int(UopType.CALL): lambda t: t.ialu,
    int(UopType.RET): lambda t: t.ialu,
    int(UopType.NOP): lambda t: t.ialu,
    int(UopType.IMUL): lambda t: t.imul,
    int(UopType.IDIV): lambda t: t.idiv,
    int(UopType.FADD): lambda t: t.fadd,
    int(UopType.FMUL): lambda t: t.fmul,
    int(UopType.FDIV): lambda t: t.fdiv,
    int(UopType.LOAD): lambda t: t.agu,
    int(UopType.STORE): lambda t: t.agu,
}

CMOS_LATENCIES = LatencyTable(name="cmos", ialu=1, imul=2, idiv=4, fadd=2, fmul=4, fdiv=8)
TFET_LATENCIES = LatencyTable(name="tfet", ialu=2, imul=4, idiv=8, fadd=4, fmul=8, fdiv=16)
#: BaseHighVt (Table IV): high-Vt FPUs and ALUs at 1.4-1.6x CMOS delay.
HIGHVT_LATENCIES = LatencyTable(name="highvt", ialu=2, imul=3, idiv=6, fadd=3, fmul=6, fdiv=12)


class FunctionalUnitPool:
    """Issue-port and occupancy model for the execution units.

    ``alu_table``/``fpu_table`` select the device for each cluster; the
    dual-speed configuration passes ``fast_alu_count`` > 0 together with a
    TFET ``alu_table`` so that the first ``fast_alu_count`` ALUs run at
    CMOS latency.
    """

    def __init__(
        self,
        alu_table: LatencyTable = CMOS_LATENCIES,
        muldiv_table: LatencyTable | None = None,
        fpu_table: LatencyTable = CMOS_LATENCIES,
        alu_count: int = 4,
        muldiv_count: int = 2,
        lsu_count: int = 2,
        fpu_count: int = 2,
        fast_alu_count: int = 0,
        fast_table: LatencyTable = CMOS_LATENCIES,
    ):
        if not 0 <= fast_alu_count <= alu_count:
            raise ValueError("fast_alu_count must fit inside alu_count")
        self.alu_table = alu_table
        self.muldiv_table = muldiv_table or alu_table
        self.fpu_table = fpu_table
        self.fast_table = fast_table
        self.fast_alu_count = fast_alu_count
        # next-free cycle per unit
        self._alu_free = [0] * alu_count
        self._muldiv_free = [0] * muldiv_count
        self._lsu_free = [0] * lsu_count
        self._fpu_free = [0] * fpu_count
        # Issue-order and per-unit latency tables, precomputed once: the
        # issue path runs per dynamic instruction, so it must not rebuild
        # tuples or chase latency lambdas per call.
        fast = tuple(range(fast_alu_count))
        slow = tuple(range(fast_alu_count, alu_count))
        self._order_pref = fast + slow
        self._order_unpref = slow + fast
        self._alu_lat = tuple(
            tuple(
                (self.fast_table if u < fast_alu_count else alu_table).latency_of(op)
                for op in range(N_UOP_TYPES)
            )
            for u in range(alu_count)
        )
        # activity counters (feed the power model)
        self.alu_fast_ops = 0
        self.alu_slow_ops = 0
        self.muldiv_ops = 0
        self.lsu_ops = 0
        self.fpu_ops = 0

    def _alu_latency(self, unit: int, op: int) -> int:
        table = self.fast_table if unit < self.fast_alu_count else self.alu_table
        return table.latency_of(op)

    def issue_alu(self, cycle: int, op: int, prefer_fast: bool) -> tuple[int, bool] | None:
        """Issue an ALU-class op.  Returns (latency, used_fast_alu) or None.

        With steering, preferred ops try the fast (CMOS) ALUs first and fall
        back to slow ones; unpreferred ops do the opposite, which both
        maximises TFET utilisation (power) and keeps the fast ALU available
        for the producer-consumer chains (Section IV-C2).
        """
        free = self._alu_free
        order = self._order_pref if prefer_fast else self._order_unpref
        for unit in order:
            if free[unit] <= cycle:
                free[unit] = cycle + 1  # ALUs are fully pipelined
                if unit < self.fast_alu_count:
                    self.alu_fast_ops += 1
                    return self._alu_lat[unit][op], True
                self.alu_slow_ops += 1
                return self._alu_lat[unit][op], False
        return None

    def issue_muldiv(self, cycle: int, op: int) -> int | None:
        """Issue IMUL (pipelined) or IDIV (unpipelined).  Returns latency."""
        for unit, free_at in enumerate(self._muldiv_free):
            if free_at <= cycle:
                latency = self.muldiv_table.latency_of(op)
                interval = latency if op == int(UopType.IDIV) else 1
                self._muldiv_free[unit] = cycle + interval
                self.muldiv_ops += 1
                return latency
        return None

    def issue_fpu(self, cycle: int, op: int) -> int | None:
        """Issue FADD/FMUL (pipelined) or FDIV (issue interval = latency)."""
        for unit, free_at in enumerate(self._fpu_free):
            if free_at <= cycle:
                latency = self.fpu_table.latency_of(op)
                interval = latency if op == int(UopType.FDIV) else 1
                self._fpu_free[unit] = cycle + interval
                self.fpu_ops += 1
                return latency
        return None

    def issue_lsu(self, cycle: int) -> int | None:
        """Issue a memory op's address generation.  Returns AGU latency."""
        for unit, free_at in enumerate(self._lsu_free):
            if free_at <= cycle:
                self._lsu_free[unit] = cycle + 1
                self.lsu_ops += 1
                return self.alu_table.agu
        return None

    def next_release(self, cycle: int) -> int:
        """Earliest unit next-free time strictly after ``cycle``, or 0.

        Used by the core's idle-cycle skip to bound a wait on a busy issue
        port; 0 means no unit frees later than ``cycle`` (nothing to wait
        for on the execution ports).
        """
        best = 0
        for free in (
            self._alu_free, self._muldiv_free, self._lsu_free, self._fpu_free
        ):
            for t in free:
                if t > cycle and (best == 0 or t < best):
                    best = t
        return best

    def alu_balance(self) -> float:
        """Fraction of ALU ops that ran on the fast (CMOS) ALUs."""
        total = self.alu_fast_ops + self.alu_slow_ops
        return self.alu_fast_ops / total if total else 0.0
