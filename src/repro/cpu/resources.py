"""ROB, issue-queue, and load-store-queue occupancy bookkeeping.

Table III sizes: 128 INT / 80 FP physical registers, 160-entry ROB, 64-entry
issue queue, 48-entry load-store queue.  AdvHet grows the ROB to 192 and the
FP register file to 128 to keep the deeper TFET FPU pipelines fed
(Section IV-C4).  The simulator only needs occupancy semantics -- an entry is
held from dispatch to commit (ROB/LSQ) or dispatch to issue (IQ) -- plus
in-flight register-file pressure for the FP side.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ResourceConfig:
    """Capacity of each back-end structure."""

    rob_entries: int = 160
    iq_entries: int = 64
    lsq_entries: int = 48
    int_regs: int = 128
    fp_regs: int = 80

    def __post_init__(self) -> None:
        for field_name in ("rob_entries", "iq_entries", "lsq_entries", "int_regs", "fp_regs"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")

    def enlarged(self, rob_entries: int = 192, fp_regs: int = 128) -> "ResourceConfig":
        """The AdvHet-style larger ROB / FP RF variant (Table IV)."""
        return ResourceConfig(
            rob_entries=rob_entries,
            iq_entries=self.iq_entries,
            lsq_entries=self.lsq_entries,
            int_regs=self.int_regs,
            fp_regs=fp_regs,
        )


#: Architectural registers pre-allocated out of each physical file; only the
#: remainder is available to rename in-flight producers.
ARCH_INT_REGS = 32
ARCH_FP_REGS = 32


class CoreResources:
    """Occupancy counters with allocate/release discipline."""

    def __init__(self, config: ResourceConfig):
        self.config = config
        self.rob_used = 0
        self.iq_used = 0
        self.lsq_used = 0
        self.int_regs_used = 0
        self.fp_regs_used = 0
        self._int_rename_budget = max(1, config.int_regs - ARCH_INT_REGS)
        self._fp_rename_budget = max(1, config.fp_regs - ARCH_FP_REGS)
        # High-water marks, reported for occupancy analysis.
        self.rob_peak = 0
        self.iq_peak = 0
        self.lsq_peak = 0

    def can_dispatch(self, needs_lsq: bool, writes_int: bool, writes_fp: bool) -> bool:
        """True if one more micro-op fits in every structure it needs."""
        if self.rob_used >= self.config.rob_entries:
            return False
        if self.iq_used >= self.config.iq_entries:
            return False
        if needs_lsq and self.lsq_used >= self.config.lsq_entries:
            return False
        if writes_int and self.int_regs_used >= self._int_rename_budget:
            return False
        if writes_fp and self.fp_regs_used >= self._fp_rename_budget:
            return False
        return True

    def dispatch(self, needs_lsq: bool, writes_int: bool, writes_fp: bool) -> None:
        self.rob_used += 1
        self.iq_used += 1
        if needs_lsq:
            self.lsq_used += 1
        if writes_int:
            self.int_regs_used += 1
        if writes_fp:
            self.fp_regs_used += 1
        if self.rob_used > self.rob_peak:
            self.rob_peak = self.rob_used
        if self.iq_used > self.iq_peak:
            self.iq_peak = self.iq_used
        if self.lsq_used > self.lsq_peak:
            self.lsq_peak = self.lsq_used

    def issue(self) -> None:
        """An op left the issue queue."""
        if self.iq_used <= 0:
            raise RuntimeError("issue-queue underflow")
        self.iq_used -= 1

    def commit(self, needs_lsq: bool, writes_int: bool, writes_fp: bool) -> None:
        """An op retired; free its ROB/LSQ slots and its physical register."""
        if self.rob_used <= 0:
            raise RuntimeError("ROB underflow")
        self.rob_used -= 1
        if needs_lsq:
            if self.lsq_used <= 0:
                raise RuntimeError("LSQ underflow")
            self.lsq_used -= 1
        if writes_int and self.int_regs_used > 0:
            self.int_regs_used -= 1
        if writes_fp and self.fp_regs_used > 0:
            self.fp_regs_used -= 1
