"""Trace-driven, cycle-level out-of-order CPU simulator.

This package is the reproduction's stand-in for Multi2Sim's x86 timing
model.  It simulates the 4-wide out-of-order core of Table III: tournament
branch prediction with BTB and RAS, ROB/IQ/LSQ occupancy, a functional-unit
pool with per-device (CMOS vs TFET) latencies, the memory hierarchy of
:mod:`repro.mem`, the AdvHet dual-speed ALU cluster with dispatch-stage
steering, and activity counters feeding :mod:`repro.power`.

* :mod:`repro.cpu.uops` -- micro-op vocabulary.
* :mod:`repro.cpu.trace` -- structure-of-arrays dynamic instruction traces.
* :mod:`repro.cpu.branch` -- tournament predictor, BTB, RAS.
* :mod:`repro.cpu.resources` -- ROB / issue-queue / LSQ bookkeeping.
* :mod:`repro.cpu.units` -- functional-unit pool with latency tables.
* :mod:`repro.cpu.steering` -- dual-speed ALU dispatch steering.
* :mod:`repro.cpu.core` -- the cycle-level engine.
* :mod:`repro.cpu.multicore` -- multicore wrapper (shared L3 contention +
  per-app parallel scaling) for the fixed-power-budget studies.
"""

from repro.cpu.uops import UopType, MEMORY_OPS, FP_OPS, INT_EXEC_OPS
from repro.cpu.trace import Trace
from repro.cpu.branch import TournamentPredictor, BranchTargetBuffer, ReturnAddressStack
from repro.cpu.resources import CoreResources, ResourceConfig
from repro.cpu.units import FunctionalUnitPool, LatencyTable, CMOS_LATENCIES, TFET_LATENCIES
from repro.cpu.steering import DualSpeedSteering
from repro.cpu.core import CoreConfig, CoreResult, OutOfOrderCore
from repro.cpu.multicore import MulticoreResult, run_multicore

__all__ = [
    "UopType",
    "MEMORY_OPS",
    "FP_OPS",
    "INT_EXEC_OPS",
    "Trace",
    "TournamentPredictor",
    "BranchTargetBuffer",
    "ReturnAddressStack",
    "CoreResources",
    "ResourceConfig",
    "FunctionalUnitPool",
    "LatencyTable",
    "CMOS_LATENCIES",
    "TFET_LATENCIES",
    "DualSpeedSteering",
    "CoreConfig",
    "CoreResult",
    "OutOfOrderCore",
    "MulticoreResult",
    "run_multicore",
]
