"""Micro-op vocabulary for the trace-driven core.

The trace generator emits dynamic instruction streams over this small RISC-
like vocabulary; it covers every functional-unit class in Table III (ALU,
integer multiply/divide, load-store, FP add/multiply/divide, branches, and
call/return for the return-address stack).
"""

from __future__ import annotations

from enum import IntEnum


class UopType(IntEnum):
    """Dynamic micro-op classes."""

    IALU = 0
    IMUL = 1
    IDIV = 2
    FADD = 3
    FMUL = 4
    FDIV = 5
    LOAD = 6
    STORE = 7
    BRANCH = 8
    CALL = 9
    RET = 10
    NOP = 11


#: Ops that access the data cache.
MEMORY_OPS = frozenset({UopType.LOAD, UopType.STORE})

#: Ops executed by the floating-point units.
FP_OPS = frozenset({UopType.FADD, UopType.FMUL, UopType.FDIV})

#: Ops executed by the integer ALU / multiplier cluster (branches resolve on
#: the ALUs as well).
INT_EXEC_OPS = frozenset(
    {UopType.IALU, UopType.IMUL, UopType.IDIV, UopType.BRANCH, UopType.CALL, UopType.RET}
)

#: Ops that write an integer register (consumers may depend on them).
INT_PRODUCERS = frozenset({UopType.IALU, UopType.IMUL, UopType.IDIV, UopType.LOAD})

#: Ops that write a floating-point register.
FP_PRODUCERS = frozenset({UopType.FADD, UopType.FMUL, UopType.FDIV})

#: Control-flow ops (consult the branch predictor).
CONTROL_OPS = frozenset({UopType.BRANCH, UopType.CALL, UopType.RET})

N_UOP_TYPES = len(UopType)
