"""Dispatch-stage steering for the dual-speed ALU cluster (Section IV-C2).

AdvHet keeps one of the four ALUs in CMOS (1-cycle) and the other three in
TFET (2-cycle).  To preserve back-to-back issue of dependent pairs, a
simplified Generation-Time-Gap check runs at dispatch: an ALU op is steered
to the CMOS ALU if any of the next ``window`` trace entries (window = the
core's issue width) consumes its result.  Mis-steers only cost one cycle,
so the scheme stays simple; it also balances utilisation because all
unpreferred ops try the TFET ALUs first (see
:meth:`repro.cpu.units.FunctionalUnitPool.issue_alu`).
"""

from __future__ import annotations

from repro.cpu.trace import Trace
from repro.cpu.uops import UopType

#: Ops eligible for steering (they execute on the ALU cluster).
_ALU_OPS = frozenset(
    {int(UopType.IALU), int(UopType.BRANCH), int(UopType.CALL), int(UopType.RET)}
)


class DualSpeedSteering:
    """Per-dispatch consumer-in-window test over a trace."""

    def __init__(
        self,
        trace: Trace,
        window: int = 4,
        enabled: bool = True,
        max_consumer_distance: int = 2,
    ):
        if window <= 0:
            raise ValueError("steering window must be positive")
        self.window = min(window, max_consumer_distance)
        self.enabled = enabled
        # Unboxed once: prefer_fast runs per dispatched uop, and numpy
        # scalar indexing would box on every window probe.
        self._op = trace.op.tolist()
        self._src1 = trace.src1_dist.tolist()
        self._src2 = trace.src2_dist.tolist()
        self._n = len(trace)
        self.preferred = 0
        self.examined = 0

    def prefer_fast(self, idx: int) -> bool:
        """Should trace entry ``idx`` be steered to the CMOS ALU?

        True iff some entry in ``(idx, idx + window]`` names ``idx`` as a
        source, where the window is capped at the distance a fast ALU can
        actually help (a consumer 3+ instructions away is insensitive to
        one extra cycle).  The cap also keeps the majority of ALU traffic
        on the power-efficient TFET ALUs, one of the scheme's stated
        objectives.  Only meaningful for ALU-class ops.
        """
        if not self.enabled or int(self._op[idx]) not in _ALU_OPS:
            return False
        self.examined += 1
        src1 = self._src1
        src2 = self._src2
        end = min(idx + self.window, self._n - 1)
        for j in range(idx + 1, end + 1):
            gap = j - idx
            if src1[j] == gap or src2[j] == gap:
                self.preferred += 1
                return True
        return False

    @property
    def preference_rate(self) -> float:
        """Fraction of examined ALU ops steered to the fast ALU."""
        return self.preferred / self.examined if self.examined else 0.0

    @property
    def fast_dispatches(self) -> int:
        """ALU ops steered to the CMOS (fast) ALU at dispatch."""
        return self.preferred

    @property
    def slow_dispatches(self) -> int:
        """ALU ops left to the TFET (slow) ALUs at dispatch."""
        return self.examined - self.preferred

    def publish(self, registry, prefix: str = "steer") -> None:
        """Register lazy probes for the steering decision counters."""
        registry.probe(f"{prefix}.examined", lambda: self.examined)
        registry.probe(f"{prefix}.fast_alu_dispatches", lambda: self.fast_dispatches)
        registry.probe(f"{prefix}.slow_alu_dispatches", lambda: self.slow_dispatches)
