"""Benchmark: regenerate Figure 2 (ALU power vs activity factor)."""

from repro.experiments.figures import figure2


def test_figure2(benchmark, record):
    result = benchmark(figure2)
    record(result)
    m = result.measured_means
    assert 3.5 < m["ratio_at_full_activity"] < 5.0
    assert 100 < m["ratio_at_zero_activity"] < 150
