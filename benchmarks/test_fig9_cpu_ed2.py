"""Benchmark: regenerate Figure 9 (CPU ED^2).

Shape targets (paper): BaseHet worse than BaseCMOS (slower), AdvHet best
single-chip design, AdvHet-2X by far the best overall.
"""

from repro.experiments.figures import figure9


def test_figure9(benchmark, runner, record):
    result = benchmark.pedantic(
        figure9, args=(runner,), rounds=2, iterations=1, warmup_rounds=1
    )
    record(result)
    m = result.measured_means
    assert m["BaseHet"] > 1.0
    assert m["AdvHet"] < 1.0
    assert m["AdvHet-2X"] < m["AdvHet"]
