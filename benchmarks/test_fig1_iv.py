"""Benchmark: regenerate Figure 1 (I-V characteristics)."""

from repro.experiments.figures import figure1


def test_figure1(benchmark, record):
    result = benchmark(figure1)
    record(result)
    # Shape check: TFET wins at low Vdd, MOSFET at high, crossover ~0.6 V.
    assert 0.45 < result.measured_means["crossover_v"] < 0.7
