"""Benchmark: regenerate Table I (device characteristics at 15 nm)."""

from repro.experiments.figures import table1


def test_table1(benchmark, record):
    result = benchmark(table1)
    record(result)
    rows = result.rows["rows"]
    assert len(rows) == 9
    assert rows[0]["Si-CMOS"] == 0.73
