"""Benchmark: regenerate Tables II and IV (designs and configurations)."""

from repro.experiments.figures import table2, table4


def test_table2(benchmark, record):
    result = benchmark(table2)
    record(result)
    assert "BaseHet" in result.rows and "AdvHet" in result.rows


def test_table4(benchmark, record):
    result = benchmark(table4)
    record(result)
    assert len(result.rows["cpu"]) == 11
    assert len(result.rows["gpu"]) == 5
