"""Benchmark harness plumbing.

One benchmark per paper exhibit.  The expensive work -- the configuration x
workload sweeps -- is cached in a session-scoped :class:`SweepRunner`, so
the first benchmark iteration pays for the simulations and later rounds
measure the (cached) figure aggregation.  Every benchmark also writes the
regenerated table plus the paper-vs-measured comparison to
``benchmarks/results/<exhibit>.txt`` so a ``--benchmark-only`` run leaves
the reproduced evaluation on disk.

Sweep sizing follows the ``REPRO_INSTRUCTIONS`` / ``REPRO_APPS`` /
``REPRO_KERNELS`` environment variables (defaults: 40k instructions, all
14 apps, all 16 kernels -- a few minutes of pure-Python simulation).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.report import paper_vs_measured
from repro.experiments.runner import SweepRunner

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def runner() -> SweepRunner:
    return SweepRunner()


@pytest.fixture(scope="session")
def record():
    """Persist a regenerated exhibit under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(result) -> None:
        name = result.exhibit.lower().replace(" ", "")
        path = RESULTS_DIR / f"{name}.txt"
        with open(path, "w") as fh:
            fh.write(f"{result.exhibit}: {result.title}\n\n")
            fh.write(result.table)
            fh.write("\n\npaper vs measured (means):\n")
            fh.write(paper_vs_measured(result))
            fh.write("\n")

    return _record
