"""Benchmark: regenerate Figure 12 (GPU ED^2).

Shape targets (paper): BaseHet worse than BaseCMOS, AdvHet slightly
better, AdvHet-2X ~60% lower.
"""

from repro.experiments.figures import figure12


def test_figure12(benchmark, runner, record):
    result = benchmark.pedantic(
        figure12, args=(runner,), rounds=2, iterations=1, warmup_rounds=1
    )
    record(result)
    m = result.measured_means
    assert m["BaseHet"] > 1.0
    assert m["AdvHet"] < m["BaseHet"]
    assert m["AdvHet-2X"] < 0.6
