"""Benchmark: regenerate Figure 3 (Vdd-frequency curves, DVFS deltas)."""

from repro.experiments.figures import figure3


def test_figure3(benchmark, record):
    result = benchmark(figure3)
    record(result)
    m = result.measured_means
    assert abs(m["boost_dv_cmos_mv"] - 75) < 1
    assert abs(m["boost_dv_tfet_mv"] - 90) < 1
    assert abs(m["slow_dv_cmos_mv"] + 70) < 1
    assert abs(m["slow_dv_tfet_mv"] + 80) < 1
