"""Benchmark: regenerate Table III (simulated machine parameters)."""

from repro.experiments.figures import table3


def test_table3(benchmark, record):
    result = benchmark(table3)
    record(result)
    assert "CPU Hardware" in result.rows
    assert "GPU Hardware" in result.rows
