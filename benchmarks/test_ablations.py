"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation sweeps one AdvHet design parameter and checks the paper's
rationale holds: the asymmetric cache's single fast way, the one-CMOS-ALU
cluster, the 6-entry register-file cache, and the steering window.
"""

import dataclasses

import pytest

from repro.core.hetcore import CpuDesign
from repro.core.simulate import simulate_cpu
from repro.gpu import ComputeUnit, CUConfig
from repro.mem.asym import AsymmetricL1
from repro.workloads import cpu_app, generate_trace, generate_kernel, gpu_kernel
from repro.power.model import DeviceKind

_T = DeviceKind.TFET

_ADVHET_KW = dict(
    alu=_T, muldiv=_T, fpu=_T, dl1=_T, l2=_T, l3=_T,
    asym_dl1=True, dual_speed_alu=True, enlarged=True,
)

INSTRUCTIONS = 24_000
WARMUP = 9_000


def _advhet_time(app: str, **overrides) -> float:
    design = CpuDesign(name="ablate", **{**_ADVHET_KW, **overrides})
    return simulate_cpu(
        design, app, instructions=INSTRUCTIONS, warmup=WARMUP
    ).time_s


def test_asym_fast_way_capacity(benchmark, record=None):
    """More fast ways raise the fast-hit rate with diminishing returns."""
    trace = generate_trace(cpu_app("barnes"), 30_000, seed=0)
    import numpy as np
    from repro.cpu.uops import UopType

    mem = np.isin(trace.op, [int(UopType.LOAD), int(UopType.STORE)])
    addrs = trace.addr[mem].tolist()

    def sweep():
        rates = {}
        for assoc in (2, 4, 8, 16):
            cache = AsymmetricL1(total_size_bytes=32 * 1024, assoc=assoc)
            for addr in addrs:
                cache.access(addr)
            rates[assoc] = cache.stats.fast_hit_rate
        return rates

    rates = benchmark(sweep)
    # Bigger fast way (lower assoc -> bigger way size) catches more hits...
    assert rates[2] > rates[8]
    # ...but the paper's 8-way/4KB point already captures most of it.
    assert rates[8] > 0.6 * rates[2]


def test_dual_speed_alu_count(benchmark):
    """One CMOS ALU captures most of the benefit of four (the paper's
    choice maximises TFET coverage)."""

    def sweep():
        times = {}
        for fast in (0, 1, 4):
            if fast == 0:
                t = _advhet_time("barnes", dual_speed_alu=False)
            elif fast == 4:
                t = _advhet_time("barnes", alu=DeviceKind.CMOS,
                                 muldiv=DeviceKind.CMOS, dual_speed_alu=False)
            else:
                t = _advhet_time("barnes")
            times[fast] = t
        return times

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert times[1] < times[0]  # steering helps over all-TFET ALUs
    gain_first = times[0] - times[1]
    gain_rest = times[1] - times[4]
    assert gain_first > gain_rest  # diminishing returns after one CMOS ALU


def test_rf_cache_entry_count(benchmark):
    """Six entries per thread sit at the knee of the hit-rate curve."""
    trace = generate_kernel(gpu_kernel("BlackScholes"))

    def sweep():
        rates = {}
        for entries in (2, 6, 16):
            cfg = CUConfig(
                fma_depth=6, rf_cycles=2,
                rf_cache_enabled=True, rf_cache_entries=entries,
            )
            rates[entries] = ComputeUnit(cfg).run(trace).rf_cache_hit_rate
        return rates

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert rates[2] < rates[6] <= rates[16]
    # The knee: 6 entries capture most of what 16 would.
    assert rates[6] > 0.75 * rates[16]


def test_prefetcher_contribution(benchmark):
    """The next-line prefetcher matters for streaming apps (DESIGN.md's
    substitution note: real hierarchies have one)."""
    from repro.cpu.core import CoreConfig, OutOfOrderCore
    from repro.cpu.units import FunctionalUnitPool
    from repro.mem.hierarchy import CacheLatencies, MemoryHierarchy

    trace = generate_trace(cpu_app("streamcluster"), INSTRUCTIONS, seed=0)

    def run(prefetch_lines):
        core = OutOfOrderCore(
            CoreConfig(),
            MemoryHierarchy(CacheLatencies(), prefetch_lines=prefetch_lines),
            FunctionalUnitPool(),
        )
        return core.run(trace, warmup=WARMUP).cycles

    def sweep():
        return {0: run(0), 2: run(2)}

    cycles = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert cycles[2] < cycles[0]


def test_gpu_compiler_pass_extension(benchmark):
    """Future-work extension: compiler rescheduling recovers part of the
    residual AdvHet GPU loss (Section IV-C4)."""
    from repro.gpu import reschedule_kernel

    trace = generate_kernel(gpu_kernel("BlackScholes"))
    cfg = CUConfig(fma_depth=6, rf_cycles=2, rf_cache_enabled=True)

    def sweep():
        before = ComputeUnit(cfg).run(trace).cycles
        after = ComputeUnit(cfg).run(reschedule_kernel(trace, target_gap=6)).cycles
        return before, after

    before, after = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert after < before


def test_partitioned_rf_alternative(benchmark):
    """Related-work alternative (Section VIII): a Pilot-RF style static
    partition lands between the plain TFET RF and the RF cache."""
    from repro.gpu import profile_hot_registers

    trace = generate_kernel(gpu_kernel("BlackScholes"))

    def sweep():
        plain = ComputeUnit(CUConfig(fma_depth=6, rf_cycles=2)).run(trace).cycles
        cache = ComputeUnit(
            CUConfig(fma_depth=6, rf_cycles=2, rf_cache_enabled=True)
        ).run(trace).cycles
        part = ComputeUnit(
            CUConfig(
                fma_depth=6, rf_cycles=2,
                partitioned_fast_regs=profile_hot_registers(trace, 8),
            )
        ).run(trace).cycles
        return plain, cache, part

    plain, cache, part = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert cache < plain
    assert part < plain


def test_steering_window_sweep(benchmark):
    """The consumer-distance cap trades CMOS-ALU traffic for speed."""
    from repro.cpu.steering import DualSpeedSteering

    trace = generate_trace(cpu_app("barnes"), 20_000, seed=0)

    def sweep():
        rates = {}
        for cap in (1, 2, 4):
            s = DualSpeedSteering(trace, window=4, max_consumer_distance=cap)
            for i in range(len(trace)):
                s.prefer_fast(i)
            rates[cap] = s.preference_rate
        return rates

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert rates[1] < rates[2] < rates[4]
    # Even the widest window keeps the majority of ops on TFET ALUs.
    assert rates[4] < 0.7
