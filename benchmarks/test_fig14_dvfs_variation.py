"""Benchmark: regenerate Figure 14 (DVFS and process variation).

Shape targets (paper): AdvHet saves ~39% at 2 GHz, relatively less when
boosted to 2.5 GHz, more at 1.5 GHz, and slightly less under guardbands.
"""

from repro.experiments.figures import figure14


def test_figure14(benchmark, runner, record):
    result = benchmark.pedantic(
        figure14, args=(runner,), rounds=2, iterations=1, warmup_rounds=1
    )
    record(result)
    m = result.measured_means
    base = m["BaseFreq-2GHz-savings"]
    assert 0.25 < base < 0.45
    assert m["BoostFreq-2.5GHz-savings"] < base
    assert m["SlowFreq-1.5GHz-savings"] > base
    assert m["ProcessVar-savings"] <= base + 0.01
