"""Benchmark: regenerate Figure 7 (CPU execution time, all configs x apps).

Shape targets (paper): BaseTFET ~2x slower, BaseHet ~1.4x, AdvHet within
~10-25%, AdvHet-2X faster than BaseCMOS.
"""

from repro.experiments.figures import figure7


def test_figure7(benchmark, runner, record):
    result = benchmark.pedantic(
        figure7, args=(runner,), rounds=2, iterations=1, warmup_rounds=1
    )
    record(result)
    m = result.measured_means
    assert m["BaseCMOS"] == 1.0
    assert 1.5 < m["BaseTFET"] < 2.1
    assert 1.2 < m["BaseHet"] < 1.55
    assert m["AdvHet"] < m["BaseHet"]
    assert m["AdvHet-2X"] < 1.0
