"""Benchmark: regenerate Figure 11 (GPU energy).

Shape targets (paper): BaseTFET -75%, BaseHet -35%, AdvHet -40%,
AdvHet-2X -34%.
"""

from repro.experiments.figures import figure11


def test_figure11(benchmark, runner, record):
    result = benchmark.pedantic(
        figure11, args=(runner,), rounds=2, iterations=1, warmup_rounds=1
    )
    record(result)
    m = result.measured_means
    assert 0.18 < m["BaseTFET"] < 0.33
    assert 0.5 < m["BaseHet"] < 0.8
    assert m["AdvHet-2X"] < 1.0
