"""Benchmark: regenerate Figure 8 (CPU energy with core/L2/L3 breakdown).

Shape targets (paper): BaseTFET -76%, BaseHet -35%, AdvHet -39%,
AdvHet-2X -34%; savings come from both dynamic and leakage energy.
"""

from repro.experiments.figures import figure8


def test_figure8(benchmark, runner, record):
    result = benchmark.pedantic(
        figure8, args=(runner,), rounds=2, iterations=1, warmup_rounds=1
    )
    record(result)
    m = result.measured_means
    assert 0.18 < m["BaseTFET"] < 0.33
    assert 0.5 < m["BaseHet"] < 0.75
    assert 0.5 < m["AdvHet"] < 0.75
    assert m["AdvHet-2X"] < 1.0
    # Breakdown: the TFET designs cut BOTH dynamic and leakage.
    bd = result.rows["breakdown"]
    for kind in ("core-dyn", "core-leak", "l3-leak"):
        assert bd["BaseHet"][kind] < bd["BaseCMOS"][kind]
