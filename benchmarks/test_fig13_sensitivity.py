"""Benchmark: regenerate Figure 13 (sensitivity analysis).

Shape targets (paper Section VII-C): BaseL3 saves ~10% energy at similar
speed; BaseHighVt does not beat BaseCMOS; BaseHet is slightly slower but
meaningfully more efficient than BaseHet-FastALU; the asymmetric DL1 is
AdvHet's largest single speedup.
"""

from repro.experiments.figures import figure13


def test_figure13(benchmark, runner, record):
    result = benchmark.pedantic(
        figure13, args=(runner,), rounds=2, iterations=1, warmup_rounds=1
    )
    record(result)
    rows = result.rows
    # BaseL3: ~BaseCMOS speed, lower energy.
    assert rows["BaseL3"]["time"] < 1.1
    assert rows["BaseL3"]["energy"] < 0.95
    # BaseHighVt is not cost-effective (energy >= ~BaseCMOS).
    assert rows["BaseHighVt"]["energy"] > 0.93
    # TFET ALUs: BaseHet slightly slower but more efficient than FastALU.
    assert rows["BaseHet"]["time"] > rows["BaseHet-FastALU"]["time"]
    assert rows["BaseHet"]["energy"] < rows["BaseHet-FastALU"]["energy"]
    # The asymmetric DL1 (Split -> AdvHet) is the largest single speedup.
    gain_asym = rows["BaseHet-Split"]["time"] - rows["AdvHet"]["time"]
    gain_split = rows["BaseHet-Enh"]["time"] - rows["BaseHet-Split"]["time"]
    assert gain_asym > gain_split
