"""Benchmark: regenerate Figure 10 (GPU execution time).

Shape targets (paper): BaseTFET 2x slower, BaseHet ~1.28x, AdvHet ~1.20x,
AdvHet-2X ~0.70x.
"""

from repro.experiments.figures import figure10


def test_figure10(benchmark, runner, record):
    result = benchmark.pedantic(
        figure10, args=(runner,), rounds=2, iterations=1, warmup_rounds=1
    )
    record(result)
    m = result.measured_means
    assert 1.9 < m["BaseTFET"] < 2.1
    assert 1.1 < m["BaseHet"] < 1.45
    assert m["AdvHet"] < m["BaseHet"]
    assert m["AdvHet-2X"] < 0.85
