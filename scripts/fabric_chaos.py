"""CI chaos smoke for the distributed sweep fabric.

Runs the full out-of-process topology -- one ``repro fabric coordinator``
and two ``repro fabric node`` subprocesses with seeded network faults on
the node links -- SIGKILLs one node mid-sweep, and asserts the
robustness contract:

* the dead node is detected and its in-flight cells are resubmitted;
* the sweep completes with zero gaps (exit status 0);
* the final report is byte-identical to a serial ``repro sweep`` of the
  same cells (after popping the run-specific ``telemetry``/``fabric``
  keys);
* the fleet rollup file renders via ``repro top --fleet``.

Usage (from the repo root)::

    PYTHONPATH=src python scripts/fabric_chaos.py

Sizing comes from the environment exactly like the CLI does
(``REPRO_INSTRUCTIONS``, ``REPRO_APPS``); the CI job pins both so the
kill lands mid-sweep.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

CONFIGS = ["BaseCMOS", "BaseCMOS-Enh", "BaseTFET", "BaseHet", "AdvHet",
           "AdvHet-2X"]
PORT = int(os.environ.get("FABRIC_CHAOS_PORT", "7177"))
KILL_AFTER_S = float(os.environ.get("FABRIC_CHAOS_KILL_AFTER_S", "1.5"))

NODE_FAULTS = {
    "REPRO_NET_FAULTS": "1",
    "REPRO_NET_FAULTS_DROP_P": "0.05",
    "REPRO_NET_FAULTS_DUP_P": "0.05",
    "REPRO_NET_FAULTS_DELAY_P": "0.10",
    "REPRO_NET_FAULTS_DELAY_S": "0.02",
    "REPRO_NET_FAULTS_SEED": "7",
}


def run(argv, **kwargs):
    return subprocess.run([sys.executable, "-m", "repro", *argv], **kwargs)


def spawn(argv, **kwargs):
    return subprocess.Popen([sys.executable, "-m", "repro", *argv], **kwargs)


def main() -> int:
    workdir = tempfile.mkdtemp(prefix="fabric-chaos-")
    fleet_dir = os.path.join(workdir, "fleet")

    print("== serial baseline ==", flush=True)
    serial = run(["sweep", *CONFIGS, "--json"],
                 capture_output=True, text=True)
    assert serial.returncode == 0, serial.stderr[-2000:]
    baseline = json.loads(serial.stdout)
    assert baseline["failures"] == []

    print("== fabric: coordinator + 2 nodes, SIGKILL one ==", flush=True)
    coordinator = spawn(
        ["fabric", "coordinator", *CONFIGS,
         "--listen", f"127.0.0.1:{PORT}", "--nodes", "2",
         "--task-timeout", "5", "--grace", "30",
         "--fleet-dir", fleet_dir, "--json"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    node_env = {**os.environ, **NODE_FAULTS}
    nodes = {
        name: spawn(
            ["fabric", "node", "--connect", f"127.0.0.1:{PORT}",
             "--name", name],
            env=node_env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        for name in ("chaos-a", "chaos-b")
    }

    time.sleep(KILL_AFTER_S)
    assert coordinator.poll() is None, (
        "sweep finished before the kill; raise REPRO_INSTRUCTIONS"
    )
    victim = nodes["chaos-b"]
    victim.send_signal(signal.SIGKILL)
    print(f"killed chaos-b (pid {victim.pid}) at t={KILL_AFTER_S}s",
          flush=True)

    out, err = coordinator.communicate(timeout=300)
    victim.wait(timeout=30)
    nodes["chaos-a"].wait(timeout=60)
    assert coordinator.returncode == 0, (
        f"coordinator exit {coordinator.returncode}\n{err[-2000:]}"
    )
    report = json.loads(out)

    counters = report["fabric"]["counters"]
    print("fabric counters:", json.dumps(counters), flush=True)
    assert counters["nodes_dead"] >= 1, "the SIGKILLed node was never detected"
    assert counters["resubmitted"] >= 1, "its in-flight cells never resubmitted"
    assert report["failures"] == [], report["failures"]
    for config, row in report["cells"].items():
        for workload, cell in row.items():
            assert cell is not None, f"gap at {config}/{workload}"

    a, b = dict(baseline), dict(report)
    a.pop("telemetry"), b.pop("telemetry"), b.pop("fabric")
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True), (
        "fabric report diverged from the serial sweep"
    )
    print("byte-identical to the serial report", flush=True)

    top = run(["top", "--fleet", os.path.join(fleet_dir, "fleet.json"),
               "--once"], capture_output=True, text=True)
    assert top.returncode == 0, top.stderr
    assert "fleet" in top.stdout, top.stdout
    print(top.stdout, flush=True)
    print("chaos smoke passed", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
