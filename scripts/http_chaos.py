"""CI chaos smoke for the HTTP front door.

Drives ``repro serve --http`` through the whole robustness contract:

* **Phase A** -- a fault-injected server (seeded connection drops and
  delays on the accept/read/write sites) takes submissions from
  concurrent retrying :class:`ServeClient` threads and is SIGTERMed
  mid-run.  Every 2xx-acked job must land in the drain summary as
  ``served`` or as a resumable ``shed`` gap -- never vanish.
* **Phase B** -- a second server resumes from the same checkpoint; the
  same idempotency-keyed cells are resubmitted and must all serve.
* **Exactly-once** -- executed runs across both phases equal the number
  of unique cells: retries, lost 202s, and the drain never double-run
  a cell.
* **Byte-identity** -- a final ``repro sweep --resume`` against the
  chaos checkpoint must serve everything from cache (zero executions)
  and produce a report byte-identical to a clean serial sweep.
* **Breaker trip** -- a separate poisoned phase (every execution
  crashes) must surface ``breaker_open`` 503s to the retrying client,
  not timeouts or tracebacks.

Usage (from the repo root)::

    PYTHONPATH=src python scripts/http_chaos.py

Sizing comes from ``REPRO_INSTRUCTIONS`` / ``REPRO_APPS`` exactly like
the CLI; the CI job pins both so the SIGTERM lands mid-sweep.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.serve.client import (  # noqa: E402
    ClientConfig,
    ServeClient,
    ServeError,
)

CONFIGS = ["BaseCMOS", "BaseTFET", "AdvHet"]
PORT = int(os.environ.get("HTTP_CHAOS_PORT", "18080"))
KILL_AFTER_S = float(os.environ.get("HTTP_CHAOS_KILL_AFTER_S", "2.0"))
N_CLIENTS = 3

SERVER_FAULTS = {
    "REPRO_NET_FAULTS": "1",
    "REPRO_NET_FAULTS_DROP_P": "0.15",
    "REPRO_NET_FAULTS_DELAY_P": "0.20",
    "REPRO_NET_FAULTS_DELAY_S": "0.02",
    "REPRO_NET_FAULTS_SEED": "7",
}


def run(argv, **kwargs):
    return subprocess.run([sys.executable, "-m", "repro", *argv], **kwargs)


def spawn_serve(checkpoint, *, resume=False, env_extra=None, extra_args=()):
    argv = [
        sys.executable, "-m", "repro", "serve",
        "--http", f"127.0.0.1:{PORT}",
        "--checkpoint", checkpoint,
        "--drain-deadline", "20",
        "--json", *extra_args,
    ]
    if resume:
        argv.append("--resume")
    env = {**os.environ, **(env_extra or {})}
    return subprocess.Popen(
        argv, env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True,
    )


def wait_ready(proc, deadline_s=60.0) -> None:
    url = f"http://127.0.0.1:{PORT}/readyz"
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        assert proc.poll() is None, proc.communicate()[1][-2000:]
        try:
            with urllib.request.urlopen(url, timeout=2.0) as response:
                if response.status == 200:
                    return
        except Exception:
            pass
        time.sleep(0.05)
    raise AssertionError("server never became ready")


def stop_server(proc, expect_codes=(0, 3)):
    proc.send_signal(signal.SIGTERM)
    out, err = proc.communicate(timeout=120)
    assert proc.returncode in expect_codes, (
        f"server exit {proc.returncode}\n{err[-3000:]}"
    )
    return json.loads(out), err


def cells(workloads):
    return [(config, workload) for config in CONFIGS
            for workload in workloads]


def cell_spec(config, workload):
    return {
        "id": f"{config}-{workload}", "run_kind": "cpu",
        "config": config, "workload": workload,
    }


def make_client(seed, attempts=8):
    return ServeClient(
        f"http://127.0.0.1:{PORT}",
        ClientConfig(
            max_attempts=attempts,
            backoff_base_s=0.05,
            backoff_cap_s=0.5,
            timeout_s=5.0,
            seed=seed,
            breaker_threshold=5,
            breaker_reset_s=0.5,
        ),
    )


def main() -> int:
    workdir = tempfile.mkdtemp(prefix="http-chaos-")
    checkpoint = os.path.join(workdir, "chaos.ckpt.json")
    workloads = [
        w.strip()
        for w in os.environ.get("REPRO_APPS", "lu,fft").split(",")
        if w.strip()
    ]
    all_cells = cells(workloads)

    print("== serial baseline ==", flush=True)
    serial = run(["sweep", *CONFIGS, "--json"],
                 capture_output=True, text=True)
    assert serial.returncode == 0, serial.stderr[-2000:]
    baseline = json.loads(serial.stdout)
    assert baseline["failures"] == []

    print(f"== phase A: fault-injected server, {N_CLIENTS} retrying "
          f"clients, SIGTERM at t={KILL_AFTER_S}s ==", flush=True)
    server = spawn_serve(checkpoint, env_extra=SERVER_FAULTS)
    wait_ready(server)
    acked: "dict[tuple, str]" = {}
    errors: "list[str]" = []
    lock = threading.Lock()

    def submit_slice(slice_cells, seed):
        client = make_client(seed)
        for config, workload in slice_cells:
            try:
                body = client.submit(cell_spec(config, workload))
                with lock:
                    acked[(config, workload)] = body["job_id"]
            except (ServeError, Exception) as exc:  # noqa: BLE001
                with lock:
                    errors.append(f"{config}/{workload}: {exc}")

    threads = [
        threading.Thread(
            target=submit_slice, args=(all_cells[i::N_CLIENTS], i),
            daemon=True,
        )
        for i in range(N_CLIENTS)
    ]
    for thread in threads:
        thread.start()
    time.sleep(KILL_AFTER_S)
    assert server.poll() is None, (
        "server finished before the kill; raise REPRO_INSTRUCTIONS"
    )
    server.send_signal(signal.SIGTERM)
    print("SIGTERM sent mid-run", flush=True)
    for thread in threads:
        thread.join(timeout=60)
    out, err = server.communicate(timeout=120)
    assert server.returncode in (0, 3), (
        f"server exit {server.returncode}\n{err[-3000:]}"
    )
    summary_a = json.loads(out)
    assert "Traceback" not in err, err[-3000:]

    jobs_a = {j["job_id"]: j for j in summary_a["jobs"]}
    print(f"phase A: {len(acked)} acked, "
          f"{len(errors)} client-side give-ups, counters "
          f"{json.dumps(summary_a['counters'])}", flush=True)
    for cell, job_id in acked.items():
        record = jobs_a.get(job_id)
        assert record is not None, f"acked job {job_id} vanished"
        assert record["status"] in ("served", "shed"), (
            f"acked job {job_id} ended {record['status']!r} "
            "(must serve or become a resumable gap)"
        )
    misses_a = summary_a["telemetry"]["cache"]["cpu"]["misses"]

    print("== phase B: resume from the chaos checkpoint, clean wire ==",
          flush=True)
    server = spawn_serve(checkpoint, resume=True)
    wait_ready(server)
    client = make_client(seed=99, attempts=10)
    for config, workload in all_cells:
        body = client.submit(cell_spec(config, workload))
        record = client.wait(body["job_id"], timeout_s=300.0)
        assert record["status"] == "served", (
            f"{config}/{workload} ended {record['status']!r} on resume"
        )
    summary_b, _err = stop_server(server, expect_codes=(0,))
    misses_b = summary_b["telemetry"]["cache"]["cpu"]["misses"]

    print(f"executed runs: phase A {misses_a} + phase B {misses_b} "
          f"(cells: {len(all_cells)})", flush=True)
    assert misses_a + misses_b == len(all_cells), (
        "exactly-once violated: executed-run total != unique cells"
    )

    print("== final report from the chaos checkpoint ==", flush=True)
    final = run(
        ["sweep", *CONFIGS, "--checkpoint", checkpoint, "--resume",
         "--json"],
        capture_output=True, text=True,
    )
    assert final.returncode == 0, final.stderr[-2000:]
    report = json.loads(final.stdout)
    cache = report["telemetry"]["cache"]["cpu"]
    assert cache["misses"] == 0, (
        f"final report re-executed {cache['misses']} cells; everything "
        "should come from the chaos run's checkpoint"
    )
    a, b = dict(baseline), dict(report)
    a.pop("telemetry"), b.pop("telemetry")
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True), (
        "chaos-run report diverged from the serial sweep"
    )
    print("byte-identical to the serial report", flush=True)

    print("== breaker phase: poisoned config surfaces 503 "
          "breaker_open ==", flush=True)
    poisoned_ck = os.path.join(workdir, "poisoned.ckpt.json")
    server = spawn_serve(
        poisoned_ck,
        env_extra={"REPRO_FAULTS": "1", "REPRO_FAULTS_FAIL_P": "1"},
        extra_args=("--max-retries", "0", "--breaker-threshold", "1",
                    "--breaker-recovery", "300"),
    )
    wait_ready(server)
    breaker_client = make_client(seed=7, attempts=3)
    first = breaker_client.submit(cell_spec("AdvHet", workloads[0]))
    record = breaker_client.wait(first["job_id"], timeout_s=120.0)
    assert record["status"] == "failed", record
    saw_breaker = False
    try:
        breaker_client.submit(cell_spec("AdvHet", workloads[-1]))
    except ServeError as exc:
        body = getattr(exc, "last_body", None) or {}
        saw_breaker = body.get("reason") == "breaker_open"
    assert saw_breaker, "open breaker never surfaced as a 503 shed"
    summary_p, _err = stop_server(server, expect_codes=(0, 3))
    assert summary_p["telemetry"]["shed_reasons"].get("breaker_open", 0) >= 1
    print("http chaos smoke passed", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
