"""CI chaos smoke for the crash-consistent storage layer.

Runs a sweep with a checkpoint AND a durable content-addressed result
store while seeded disk faults (ENOSPC mid-write, torn writes) are
injected at every durable-write site, SIGKILLs the process in the
worst-possible window (after a checkpoint temp file is fsynced, before
the rename), and asserts the durability contract:

* the interrupted run dies by SIGKILL, never by traceback -- injected
  disk failures degrade to recorded events while the sweep runs;
* the resumed run (faults still active) completes with zero gaps and a
  report byte-identical to a clean serial sweep of the same cells;
* ``repro store fsck`` quarantines whatever the torn writes damaged and
  a second fsck exits 0 -- the store heals in place;
* no ``*.tmp.<pid>`` orphan survives anywhere (checkpoint directory or
  store) once the resumed writers' startup sweeps have run.

Usage (from the repo root)::

    PYTHONPATH=src python scripts/store_chaos.py

Sizing comes from the environment exactly like the CLI does
(``REPRO_INSTRUCTIONS``, ``REPRO_APPS``).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile

CONFIGS = ["BaseCMOS", "BaseCMOS-Enh", "BaseTFET", "BaseHet", "AdvHet",
           "AdvHet-2X"]

DISK_FAULTS = {
    "REPRO_DISK_FAULTS": "1",
    "REPRO_DISK_FAULTS_ENOSPC_P": "0.15",
    "REPRO_DISK_FAULTS_TORN_P": "0.15",
    # Seed 1: the first store put tears (silent corruption for the
    # read-side checksum and fsck to catch) and the checkpoint site
    # completes two temp writes early, so the crash hook below fires
    # mid-sweep deterministically.
    "REPRO_DISK_FAULTS_SEED": "1",
}


def run(argv, **kwargs):
    return subprocess.run([sys.executable, "-m", "repro", *argv], **kwargs)


def find_orphans(root) -> "list[str]":
    orphans = []
    for dirpath, _dirnames, filenames in os.walk(root):
        orphans += [os.path.join(dirpath, n) for n in filenames
                    if ".tmp." in n]
    return orphans


def main() -> int:
    workdir = tempfile.mkdtemp(prefix="store-chaos-")
    checkpoint = os.path.join(workdir, "ck", "sweep.ckpt.json")
    store = os.path.join(workdir, "store")

    print("== serial baseline (no faults, no store) ==", flush=True)
    serial = run(["sweep", *CONFIGS, "--json"],
                 capture_output=True, text=True)
    assert serial.returncode == 0, serial.stderr[-2000:]
    baseline = json.loads(serial.stdout)
    assert baseline["failures"] == []
    baseline.pop("telemetry")

    print("== chaos run: disk faults + SIGKILL mid-checkpoint-flush ==",
          flush=True)
    chaos_env = {
        **os.environ, **DISK_FAULTS,
        # Die after the 2nd checkpoint temp file is fsynced, before its
        # rename: the previous checkpoint must survive, the temp must
        # strand, and the next startup sweep must collect it.
        "REPRO_DISKIO_CRASH_AFTER_TMP": "checkpoint:2",
    }
    crashed = run(
        ["sweep", *CONFIGS, "--checkpoint", checkpoint, "--store", store],
        env=chaos_env, capture_output=True, text=True,
    )
    assert crashed.returncode == -9, (
        f"expected death by SIGKILL, got {crashed.returncode}\n"
        f"{crashed.stderr[-2000:]}"
    )
    assert "Traceback" not in crashed.stderr, crashed.stderr[-2000:]
    stranded = find_orphans(workdir)
    print(f"crash window left {len(stranded)} stranded temp(s)", flush=True)
    assert stranded, "the crash window must strand the checkpoint temp"

    print("== resume under the same disk faults ==", flush=True)
    resume_env = {**os.environ, **DISK_FAULTS}
    resumed = run(
        ["sweep", *CONFIGS, "--checkpoint", checkpoint, "--store", store,
         "--resume", "--json"],
        env=resume_env, capture_output=True, text=True,
    )
    assert resumed.returncode == 0, resumed.stderr[-2000:]
    report = json.loads(resumed.stdout)
    assert report["failures"] == [], report["failures"]
    telemetry = report.pop("telemetry")
    print("store counters:", json.dumps(telemetry.get("store", {})),
          flush=True)
    print("diskio writes:",
          json.dumps({k: v for k, v in telemetry.items() if k == "checkpoint"}),
          flush=True)
    assert json.dumps(report, sort_keys=True) == json.dumps(
        baseline, sort_keys=True
    ), "resumed report diverged from the clean serial sweep"
    print("byte-identical to the serial report", flush=True)

    print("== store fsck: quarantine damage, then verify clean ==",
          flush=True)
    first = run(["store", "fsck", store], capture_output=True, text=True)
    print(first.stdout, flush=True)
    assert first.returncode in (0, 1), first.stderr[-2000:]
    second = run(["store", "fsck", store], capture_output=True, text=True)
    print(second.stdout, flush=True)
    assert second.returncode == 0, (
        "fsck did not heal the store: " + second.stdout
    )

    orphans = find_orphans(workdir)
    assert not orphans, f"orphaned temps survived: {orphans}"
    print("no *.tmp.* orphans anywhere; store chaos smoke passed",
          flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
