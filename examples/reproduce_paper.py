"""Regenerate every table and figure of the paper's evaluation.

Runs the full experiment harness -- all 15 exhibits -- and prints each one
followed by its paper-vs-measured comparison.  With default settings this
sweeps 11 CPU configurations x 14 applications and 5 GPU configurations x
16 kernels (several minutes of pure-Python cycle simulation); set
``REPRO_INSTRUCTIONS`` / ``REPRO_APPS`` / ``REPRO_KERNELS`` for a quick
pass, e.g.::

    REPRO_INSTRUCTIONS=20000 REPRO_APPS=barnes,lu,radix \\
        python examples/reproduce_paper.py

Pass ``--markdown FILE`` to also write an EXPERIMENTS.md-style report.
"""

import argparse
import sys
import time

from repro.experiments import ALL_EXHIBITS
from repro.experiments.report import full_report, paper_vs_measured
from repro.experiments.runner import SweepRunner


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--markdown", metavar="FILE", default=None,
        help="also write a paper-vs-measured markdown report",
    )
    parser.add_argument(
        "exhibits", nargs="*", default=list(ALL_EXHIBITS),
        help=f"subset to run (default: all of {', '.join(ALL_EXHIBITS)})",
    )
    args = parser.parse_args(argv)

    unknown = [e for e in args.exhibits if e not in ALL_EXHIBITS]
    if unknown:
        parser.error(f"unknown exhibits: {unknown}")

    #: Exhibits that consume the shared sweep runner.
    sweep_exhibits = {
        "figure7", "figure8", "figure9", "figure10", "figure11",
        "figure12", "figure13", "figure14",
    }
    runner = SweepRunner()
    results = []
    for name in args.exhibits:
        fn = ALL_EXHIBITS[name]
        start = time.time()
        result = fn(runner) if name in sweep_exhibits else fn()
        elapsed = time.time() - start
        results.append(result)
        print(f"\n{'=' * 72}")
        print(f"{result.exhibit}: {result.title}   [{elapsed:.1f}s]")
        print("=" * 72)
        print(result.table)
        comparison = paper_vs_measured(result)
        print("\npaper vs measured (means):")
        print(comparison)

    if args.markdown:
        with open(args.markdown, "w") as fh:
            fh.write("# HetCore reproduction: paper vs measured\n\n")
            fh.write(full_report(results))
        print(f"\nwrote {args.markdown}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
