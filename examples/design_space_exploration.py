"""Design-space exploration: which units should move to TFET?

The paper picks its TFET units (Section IV-B) by power, pipelinability,
latency sensitivity, and area.  This example uses the public ``CpuDesign``
API to rebuild that argument empirically: it TFET-ifies one unit group at a
time on a floating-point app (`blackscholes`) and a pointer chaser
(`canneal`), then stacks the AdvHet mitigations back on, printing the time
and energy cost of each step.

Usage::

    python examples/design_space_exploration.py
"""

from repro import CpuDesign, simulate_cpu
from repro.power.model import DeviceKind

_C = DeviceKind.CMOS
_T = DeviceKind.TFET

#: Single-unit moves, then the paper's stacked designs.
DESIGNS = [
    CpuDesign(name="all-CMOS"),
    CpuDesign(name="+TFET FPUs", fpu=_T, muldiv=_T),
    CpuDesign(name="+TFET ALUs", alu=_T),
    CpuDesign(name="+TFET DL1", dl1=_T),
    CpuDesign(name="+TFET L2+L3", l2=_T, l3=_T),
    CpuDesign(
        name="BaseHet(all)", alu=_T, muldiv=_T, fpu=_T, dl1=_T, l2=_T, l3=_T
    ),
    CpuDesign(
        name="+dual-speed", alu=_T, muldiv=_T, fpu=_T, dl1=_T, l2=_T, l3=_T,
        dual_speed_alu=True,
    ),
    CpuDesign(
        name="+asym DL1", alu=_T, muldiv=_T, fpu=_T, dl1=_T, l2=_T, l3=_T,
        dual_speed_alu=True, asym_dl1=True,
    ),
    CpuDesign(
        name="AdvHet(+ROB)", alu=_T, muldiv=_T, fpu=_T, dl1=_T, l2=_T, l3=_T,
        dual_speed_alu=True, asym_dl1=True, enlarged=True,
    ),
]


def explore(app: str) -> None:
    print(f"\n--- {app} ---")
    base = simulate_cpu(DESIGNS[0], app)
    print(f"{'design':<14}{'time':>8}{'energy':>9}{'ED^2':>8}")
    for design in DESIGNS:
        run = simulate_cpu(design, app)
        print(
            f"{design.name:<14}"
            f"{run.time_s / base.time_s:>8.3f}"
            f"{run.energy_j / base.energy_j:>9.3f}"
            f"{run.ed2 / base.ed2:>8.3f}"
        )


def main() -> None:
    print("=== Which units belong in TFET? ===")
    print("(each '+' row moves ONLY that unit group; the bottom rows stack)")
    explore("blackscholes")  # FP-dense: FPU move hurts most, ROB helps
    explore("canneal")       # pointer chaser: DL1 move hurts most
    print(
        "\nNote how the asymmetric DL1 claws back nearly all of the DL1 "
        "penalty, and the dual-speed cluster most of the ALU penalty -- "
        "the AdvHet recipe of Section IV-C."
    )


if __name__ == "__main__":
    main()
