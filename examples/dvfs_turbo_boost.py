"""Hetero-device DVFS: turbo boost and slow-down on a two-Vdd core.

HetCore runs CMOS units at one supply and TFET units at another, so a DVFS
transition must move *both* rails along their own Vdd-frequency curves
(Section III-D).  This example walks a frequency ladder, printing the
voltage pair for each step and the resulting energy for BaseCMOS and
AdvHet, plus the process-variation guardband case of Section VII-D.

Usage::

    python examples/dvfs_turbo_boost.py
"""

from repro import HetCoreDvfs, cpu_config
from repro.devices.variation import VariationGuardbands
from repro.devices.vf import NOMINAL_V_CMOS, NOMINAL_V_TFET

APP = "lu"
FREQUENCIES = [1.5, 1.75, 2.0, 2.25, 2.5]


def main() -> None:
    dvfs = HetCoreDvfs()

    print("=== Voltage pairs along the DVFS ladder (Figure 3) ===")
    print(f"{'freq':>6}{'V_CMOS':>9}{'V_TFET':>9}{'dV_CMOS':>9}{'dV_TFET':>9}")
    for f in FREQUENCIES:
        p = dvfs.point(f)
        print(
            f"{f:>5.2f}G{p.pair.v_cmos:>9.3f}{p.pair.v_tfet:>9.3f}"
            f"{p.pair.delta_v_cmos_mv:>8.0f}m{p.pair.delta_v_tfet_mv:>8.0f}m"
        )
    print(
        "\nThe TFET curve is shallower, so boosts cost more TFET millivolts"
        "\nthan CMOS millivolts -- and slow-downs give more back."
    )

    print(f"\n=== Energy on '{APP}' (normalised to BaseCMOS @ 2 GHz) ===")
    base_2ghz = dvfs.simulate_at(cpu_config("BaseCMOS"), APP, 2.0)
    print(f"{'freq':>6}{'BaseCMOS':>10}{'AdvHet':>9}{'savings':>9}")
    for f in FREQUENCIES:
        cmos = dvfs.simulate_at(cpu_config("BaseCMOS"), APP, f)
        adv = dvfs.simulate_at(cpu_config("AdvHet"), APP, f)
        e_cmos = cmos.energy_j / base_2ghz.energy_j
        e_adv = adv.energy_j / base_2ghz.energy_j
        print(
            f"{f:>5.2f}G{e_cmos:>10.3f}{e_adv:>9.3f}"
            f"{1 - e_adv / e_cmos:>8.1%}"
        )

    g = VariationGuardbands()
    vc, vt = g.guarded_voltages(NOMINAL_V_CMOS, NOMINAL_V_TFET)
    print(
        f"\n=== Process variation (guardbands: CMOS -> {vc:.2f} V, "
        f"TFET -> {vt:.2f} V) ==="
    )
    cmos = dvfs.simulate_at(cpu_config("BaseCMOS"), APP, 2.0, variation=True)
    adv = dvfs.simulate_at(cpu_config("AdvHet"), APP, 2.0, variation=True)
    e_cmos = cmos.energy_j / base_2ghz.energy_j
    e_adv = adv.energy_j / base_2ghz.energy_j
    print(
        f"BaseCMOS {e_cmos:.3f}   AdvHet {e_adv:.3f}   "
        f"relative savings {1 - e_adv / e_cmos:.1%}"
    )
    print(
        "Both designs pay for the guardbands; AdvHet keeps most (but not "
        "quite all) of its relative advantage, as in Figure 14."
    )


if __name__ == "__main__":
    main()
