"""Quickstart: simulate HetCore designs on one CPU app and one GPU kernel.

Runs the paper's headline comparison -- BaseCMOS vs BaseHet vs AdvHet --
on the `barnes` application and the `DCT` kernel, and prints execution
time, energy, and ED^2 normalised to the all-CMOS baseline.

Usage::

    python examples/quickstart.py
"""

from repro import cpu_config, gpu_config, simulate_cpu, simulate_gpu


def main() -> None:
    print("=== HetCore quickstart ===\n")

    print("CPU: SPLASH-2 'barnes' on the 4-core machine of Table III")
    cpu_runs = {
        name: simulate_cpu(cpu_config(name), "barnes")
        for name in ("BaseCMOS", "BaseTFET", "BaseHet", "AdvHet", "AdvHet-2X")
    }
    base = cpu_runs["BaseCMOS"]
    header = f"{'config':<12}{'time':>8}{'energy':>9}{'ED^2':>8}{'IPC':>7}{'DL1 fast':>10}"
    print(header)
    for name, run in cpu_runs.items():
        print(
            f"{name:<12}"
            f"{run.time_s / base.time_s:>8.3f}"
            f"{run.energy_j / base.energy_j:>9.3f}"
            f"{run.ed2 / base.ed2:>8.3f}"
            f"{run.core.ipc:>7.2f}"
            f"{run.core.dl1_fast_hit_rate:>10.2f}"
        )

    print("\nGPU: AMD-SDK 'DCT' on the 8-CU machine of Table III")
    gpu_runs = {
        name: simulate_gpu(gpu_config(name), "DCT")
        for name in ("BaseCMOS", "BaseTFET", "BaseHet", "AdvHet", "AdvHet-2X")
    }
    gbase = gpu_runs["BaseCMOS"]
    print(f"{'config':<12}{'time':>8}{'energy':>9}{'ED^2':>8}{'RFC hit':>9}")
    for name, run in gpu_runs.items():
        print(
            f"{name:<12}"
            f"{run.time_s / gbase.time_s:>8.3f}"
            f"{run.energy_j / gbase.energy_j:>9.3f}"
            f"{run.ed2 / gbase.ed2:>8.3f}"
            f"{run.gpu.cu_result.rf_cache_hit_rate:>9.2f}"
        )

    print(
        "\nThe paper's story in two lines: AdvHet trades a small slowdown "
        "for ~40% energy savings,\nand under a fixed power budget "
        "(AdvHet-2X) it is faster *and* far more efficient."
    )


if __name__ == "__main__":
    main()
