"""GPU latency-hiding techniques beyond the paper's evaluation.

The paper's AdvHet GPU still runs ~20% slower than all-CMOS because the
deeper TFET FMA pipeline and slower register file expose latency the
6-entry register-file cache cannot fully hide.  Two remedies the paper
*discusses* but does not evaluate are implemented here:

1. **compiler rescheduling** (Section IV-C4 "future work"): reorder each
   wavefront's instructions to stretch producer-consumer distances;
2. **a partitioned register file** (Section VIII, after Pilot-RF): keep
   the hottest registers in a small CMOS partition instead of caching.

Usage::

    python examples/gpu_latency_hiding.py
"""

from repro.gpu import (
    ComputeUnit,
    CUConfig,
    mean_dependency_distance,
    profile_hot_registers,
    reschedule_kernel,
)
from repro.workloads import GPU_KERNELS, generate_kernel

KERNELS = ["BlackScholes", "MatrixMultiplication", "DCT", "SobelFilter"]


def main() -> None:
    print("=== Hiding TFET latency in the AdvHet GPU ===\n")
    print(
        f"{'kernel':<22}{'CMOS':>7}{'AdvHet':>8}{'+sched':>8}"
        f"{'+part.RF':>9}{'dep-dist':>10}"
    )
    for name in KERNELS:
        trace = generate_kernel(GPU_KERNELS[name])
        cmos = ComputeUnit(
            CUConfig(fma_depth=3, rf_cycles=1, rf_cache_enabled=True)
        ).run(trace)
        advhet_cfg = CUConfig(fma_depth=6, rf_cycles=2, rf_cache_enabled=True)
        advhet = ComputeUnit(advhet_cfg).run(trace)

        # Fair frame: the compiler pass would be applied to the CMOS
        # build too, so both sides of the "+sched" column use the
        # rescheduled stream.
        scheduled = reschedule_kernel(trace, target_gap=6)
        cmos_sched = ComputeUnit(
            CUConfig(fma_depth=3, rf_cycles=1, rf_cache_enabled=True)
        ).run(scheduled)
        with_sched = ComputeUnit(advhet_cfg).run(scheduled)

        partitioned = ComputeUnit(
            CUConfig(
                fma_depth=6,
                rf_cycles=2,
                partitioned_fast_regs=profile_hot_registers(trace, 8),
            )
        ).run(trace)

        base = cmos.cycles
        print(
            f"{name:<22}{1.0:>7.2f}{advhet.cycles / base:>8.2f}"
            f"{with_sched.cycles / cmos_sched.cycles:>8.2f}"
            f"{partitioned.cycles / base:>9.2f}"
            f"  {mean_dependency_distance(trace):>4.1f}"
            f"->{mean_dependency_distance(scheduled):<4.1f}"
        )
    print(
        "\nThe list scheduler stretches dependency distances and recovers a"
        "\nlarge share of AdvHet's residual loss -- supporting the paper's"
        "\nconjecture that compiler support would close most of the GPU gap."
        "\nThe static partitioned RF is simpler than the RF cache (no tags)"
        "\nbut recovers less, matching the Section VIII discussion."
    )


if __name__ == "__main__":
    main()
