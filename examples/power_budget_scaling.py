"""Fixed-power-budget scaling: the AdvHet-2X argument (Section VII-A1/B1).

Measures the per-chip power of each design over several workloads, derives
how many AdvHet cores (or GPU compute units) fit in the BaseCMOS budget,
and then evaluates the scaled-up machine at fixed total work.

Usage::

    python examples/power_budget_scaling.py
"""

from repro import (
    PowerBudgetAnalysis,
    cpu_config,
    gpu_config,
    simulate_cpu,
    simulate_gpu,
)

CPU_APPS = ["barnes", "lu", "fft", "blackscholes"]
GPU_KERNELS = ["DCT", "BlackScholes", "Reduction", "MatrixTranspose"]


def cpu_story() -> None:
    print("=== CPU: how many AdvHet cores fit in the 4-core CMOS budget? ===")
    base = [simulate_cpu(cpu_config("BaseCMOS"), a) for a in CPU_APPS]
    adv = [simulate_cpu(cpu_config("AdvHet"), a) for a in CPU_APPS]
    comparison = PowerBudgetAnalysis.compare(base, adv)
    print(
        f"chip power: BaseCMOS {comparison.baseline_power_w:.2f} W, "
        f"AdvHet {comparison.candidate_power_w:.2f} W "
        f"(ratio {comparison.power_ratio:.2f}x)"
    )
    factor = comparison.units_within_budget
    print(f"-> the budget affords {factor}x the cores: AdvHet-{factor}X\n")

    twox = [simulate_cpu(cpu_config("AdvHet-2X"), a) for a in CPU_APPS]
    print(f"{'app':<14}{'time':>8}{'energy':>9}{'ED^2':>8}   (AdvHet-2X / BaseCMOS)")
    for b, t in zip(base, twox):
        print(
            f"{b.app:<14}{t.time_s / b.time_s:>8.3f}"
            f"{t.energy_j / b.energy_j:>9.3f}{t.ed2 / b.ed2:>8.3f}"
        )


def gpu_story() -> None:
    print("\n=== GPU: 16 AdvHet CUs in the 8-CU CMOS budget ===")
    base = [simulate_gpu(gpu_config("BaseCMOS"), k) for k in GPU_KERNELS]
    adv = [simulate_gpu(gpu_config("AdvHet"), k) for k in GPU_KERNELS]
    comparison = PowerBudgetAnalysis.compare(base, adv)
    print(
        f"chip power: BaseCMOS {comparison.baseline_power_w:.2f} W, "
        f"AdvHet {comparison.candidate_power_w:.2f} W "
        f"(ratio {comparison.power_ratio:.2f}x)"
    )
    twox = [simulate_gpu(gpu_config("AdvHet-2X"), k) for k in GPU_KERNELS]
    print(f"{'kernel':<18}{'time':>8}{'energy':>9}{'ED^2':>8}   (AdvHet-2X / BaseCMOS)")
    for b, t in zip(base, twox):
        print(
            f"{b.kernel:<18}{t.time_s / b.time_s:>8.3f}"
            f"{t.energy_j / b.energy_j:>9.3f}{t.ed2 / b.ed2:>8.3f}"
        )


def main() -> None:
    cpu_story()
    gpu_story()
    print(
        "\nDoubling units at fixed power turns AdvHet's small slowdown into"
        "\na net speedup while keeping the energy advantage -- the paper's"
        "\nheadline 32%/30% gains with ~65% lower ED^2."
    )


if __name__ == "__main__":
    main()
