"""Tests for repro.mem.cache (set-associative LRU cache)."""

import pytest

from repro.mem.cache import Cache, CacheStats


def make_cache(size=1024, assoc=2, line=64):
    return Cache("t", size, assoc, line)


class TestGeometry:
    def test_set_count(self):
        c = Cache("t", 32 * 1024, 8, 64)
        assert c.n_sets == 64

    def test_direct_mapped(self):
        c = Cache("t", 4 * 1024, 1, 64)
        assert c.n_sets == 64

    def test_rejects_nonpow2_sets(self):
        with pytest.raises(ValueError):
            Cache("t", 3 * 1024, 2, 64)

    def test_rejects_indivisible_size(self):
        with pytest.raises(ValueError):
            Cache("t", 1000, 3, 64)

    def test_rejects_nonpow2_line(self):
        with pytest.raises(ValueError):
            Cache("t", 1024, 2, 48)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Cache("t", 0, 2, 64)


class TestAccessSemantics:
    def test_cold_miss_then_hit(self):
        c = make_cache()
        assert c.access(0x1000) is False
        assert c.access(0x1000) is True

    def test_same_line_different_words_hit(self):
        c = make_cache()
        c.access(0x1000)
        assert c.access(0x1000 + 63) is True

    def test_adjacent_lines_are_distinct(self):
        c = make_cache()
        c.access(0x1000)
        assert c.access(0x1000 + 64) is False

    def test_lru_eviction_order(self):
        c = Cache("t", 2 * 64, 2, 64)  # one set, two ways
        c.access(0x000)
        c.access(0x040)   # set is {0x40 (MRU), 0x00}
        c.access(0x000)   # touch -> {0x00 (MRU), 0x40}
        c.access(0x080)   # evicts 0x40
        assert c.probe(0x000)
        assert not c.probe(0x040)
        assert c.probe(0x080)

    def test_capacity_never_exceeded(self):
        c = make_cache(size=1024, assoc=2)
        for i in range(200):
            c.access(i * 64)
        assert c.resident_lines <= 1024 // 64

    def test_writeback_counted_on_dirty_eviction(self):
        c = Cache("t", 2 * 64, 2, 64)
        c.access(0x000, is_write=True)
        c.access(0x040)
        c.access(0x080)  # evicts... LRU is 0x000 (dirty)
        assert c.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        c = Cache("t", 2 * 64, 2, 64)
        c.access(0x000)
        c.access(0x040)
        c.access(0x080)
        assert c.stats.writebacks == 0
        assert c.stats.evictions == 1

    def test_write_hit_marks_dirty(self):
        c = Cache("t", 2 * 64, 2, 64)
        c.access(0x000)
        c.access(0x000, is_write=True)
        c.access(0x040)
        c.access(0x080)
        assert c.stats.writebacks == 1


class TestLookupNoFill:
    def test_lookup_miss_does_not_allocate(self):
        c = make_cache()
        assert c.lookup(0x1000) is False
        assert not c.probe(0x1000)

    def test_lookup_hit_updates_recency(self):
        c = Cache("t", 2 * 64, 2, 64)
        c.access(0x000)
        c.access(0x040)
        c.lookup(0x000)  # refresh
        c.access(0x080)  # should evict 0x040
        assert c.probe(0x000)
        assert not c.probe(0x040)

    def test_lookup_counts_stats(self):
        c = make_cache()
        c.lookup(0x0)
        assert c.stats.accesses == 1
        assert c.stats.misses == 1


class TestExtractInsert:
    def test_extract_removes_line(self):
        c = make_cache()
        c.access(0x1000)
        present, dirty = c.extract(0x1000)
        assert present and not dirty
        assert not c.probe(0x1000)

    def test_extract_reports_dirty(self):
        c = make_cache()
        c.access(0x1000, is_write=True)
        present, dirty = c.extract(0x1000)
        assert present and dirty

    def test_extract_missing_line(self):
        c = make_cache()
        assert c.extract(0x2000) == (False, False)

    def test_insert_evicts_and_returns_victim(self):
        c = Cache("t", 2 * 64, 2, 64)
        c.access(0x000, is_write=True)
        c.access(0x040)
        victim, dirty = c.insert(0x080)
        assert victim == 0x000
        assert dirty is True
        assert c.probe(0x080)

    def test_insert_into_space_returns_none(self):
        c = make_cache()
        victim, dirty = c.insert(0x1000)
        assert victim is None and dirty is False

    def test_insert_existing_refreshes(self):
        c = Cache("t", 2 * 64, 2, 64)
        c.access(0x000)
        c.access(0x040)
        c.insert(0x000)
        c.access(0x080)
        assert c.probe(0x000)

    def test_insert_victim_address_maps_to_same_set(self):
        c = Cache("t", 4 * 1024, 1, 64)  # direct-mapped, 64 sets
        addr = 5 * 64
        c.access(addr)
        victim, _ = c.insert(addr + 4 * 1024)  # same set, different tag
        assert victim is not None
        assert (victim >> 6) % c.n_sets == (addr >> 6) % c.n_sets


class TestStats:
    def test_hit_rate_math(self):
        c = make_cache()
        c.access(0x0)
        c.access(0x0)
        c.access(0x0)
        assert c.stats.hit_rate == pytest.approx(2 / 3)
        assert c.stats.miss_rate == pytest.approx(1 / 3)

    def test_untouched_cache_rates(self):
        s = CacheStats()
        assert s.hit_rate == 1.0
        assert s.miss_rate == 0.0

    def test_reset(self):
        c = make_cache()
        c.access(0x0)
        c.stats.reset()
        assert c.stats.accesses == 0
        assert c.probe(0x0)  # contents preserved

    def test_invalidate_all(self):
        c = make_cache()
        c.access(0x0)
        c.invalidate_all()
        assert c.resident_lines == 0
